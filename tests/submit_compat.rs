//! API-compatibility tests for the 0.6.0 submission redesign: every
//! deprecated `submit_*` shim must book the **identical** schedule and
//! counters as the [`TaskSpec`] builder path it forwards to. The legs
//! run the same workload on fresh devices and compare [`QueueStats`]
//! with `==` plus the per-completion timeline, so any divergence —
//! ordering, batching, TTL handling, per-tenant booking — fails loudly.
//!
//! This is the only file in the workspace allowed to call the
//! deprecated variants (the CI audit greps for strays elsewhere).
#![allow(deprecated)]

use std::any::Any;
use std::time::Duration;

use apu_sim::queue::BatchRunner;
use apu_sim::{
    ApuDevice, BatchKey, DeviceCluster, DeviceQueue, Priority, QueueConfig, QueueStats,
    RoutePolicy, SimConfig, TaskSpec, VecOp,
};

fn device() -> ApuDevice {
    ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20))
}

fn echo_runner<'t>() -> BatchRunner<'t> {
    Box::new(|dev: &mut ApuDevice, payloads: Vec<Box<dyn Any>>| {
        let report = dev.run_task(|ctx| {
            ctx.core_mut().charge(VecOp::MulS16);
            Ok(())
        })?;
        Ok((report, payloads.into_iter().map(Ok).collect()))
    })
}

fn charge_job(ops: u32) -> apu_sim::queue::Job<'static> {
    Box::new(move |dev: &mut ApuDevice| {
        let r = dev.run_task(|ctx| {
            for _ in 0..ops {
                ctx.core_mut().charge(VecOp::AddU16);
            }
            Ok(())
        })?;
        Ok((r, Box::new(()) as Box<dyn Any>))
    })
}

/// (handle, started, finished, attempts, batch, ok) — the observable
/// schedule of one completion.
type Timeline = Vec<(u64, Duration, Duration, u32, usize, bool)>;

fn timeline(done: &[apu_sim::Completion]) -> Timeline {
    done.iter()
        .map(|c| {
            (
                c.handle.id(),
                c.started_at,
                c.finished_at,
                c.attempts,
                c.batch_size,
                c.is_ok(),
            )
        })
        .collect()
}

/// Runs the mixed workload through one `DeviceQueue`, via either the
/// deprecated shims or the `TaskSpec` builders.
fn run_queue_leg(use_shims: bool) -> (QueueStats, Timeline) {
    let us = Duration::from_micros;
    let mut dev = device();
    let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(4));
    let key = BatchKey::new(3);
    if use_shims {
        // Four long jobs saturate every core so the 1µs-TTL task below
        // cannot start in time and must shed.
        for _ in 0..4 {
            q.submit_at(Priority::High, Duration::ZERO, charge_job(20_000))
                .unwrap();
        }
        q.submit_at(Priority::Normal, us(10), charge_job(2))
            .unwrap();
        q.submit_weighted(Priority::Low, us(20), 3, charge_job(4))
            .unwrap();
        // A 1µs TTL this deep in the backlog expires: the shed path must
        // agree between the legs too.
        q.submit_with_ttl(Priority::Low, us(30), us(1), charge_job(1))
            .unwrap();
        q.submit_batchable(Priority::Normal, us(40), key, Box::new(0u32), echo_runner())
            .unwrap();
        q.submit_batchable_with_ttl(
            Priority::Normal,
            us(41),
            Duration::from_millis(40),
            key,
            Box::new(1u32),
            echo_runner(),
        )
        .unwrap();
        q.submit_kernel(Priority::High, |ctx| {
            ctx.core_mut().charge(VecOp::AddU16);
            Ok(())
        })
        .unwrap();
        q.submit_job(Priority::Normal, us(50), |dev: &mut ApuDevice| {
            let r = dev.run_task(|ctx| {
                ctx.core_mut().charge(VecOp::AddU16);
                Ok(())
            })?;
            Ok((r, 7u64))
        })
        .unwrap();
    } else {
        for _ in 0..4 {
            q.submit(TaskSpec::job(charge_job(20_000)).priority(Priority::High))
                .unwrap();
        }
        q.submit(TaskSpec::job(charge_job(2)).at(us(10))).unwrap();
        q.submit(
            TaskSpec::job(charge_job(4))
                .priority(Priority::Low)
                .at(us(20))
                .weight(3),
        )
        .unwrap();
        q.submit(
            TaskSpec::job(charge_job(1))
                .priority(Priority::Low)
                .at(us(30))
                .ttl(us(1)),
        )
        .unwrap();
        q.submit(TaskSpec::batch(key, Box::new(0u32), echo_runner()).at(us(40)))
            .unwrap();
        q.submit(
            TaskSpec::batch(key, Box::new(1u32), echo_runner())
                .at(us(41))
                .ttl(Duration::from_millis(40)),
        )
        .unwrap();
        q.submit(
            TaskSpec::kernel(|ctx: &mut apu_sim::ApuContext<'_>| {
                ctx.core_mut().charge(VecOp::AddU16);
                Ok(())
            })
            .priority(Priority::High),
        )
        .unwrap();
        q.submit(
            TaskSpec::typed(|dev: &mut ApuDevice| {
                let r = dev.run_task(|ctx| {
                    ctx.core_mut().charge(VecOp::AddU16);
                    Ok(())
                })?;
                Ok((r, 7u64))
            })
            .at(us(50)),
        )
        .unwrap();
    }
    let done = q.drain().unwrap();
    (q.stats().clone(), timeline(&done))
}

#[test]
fn queue_shims_book_identically_to_the_builder_path() {
    let (shim_stats, shim_timeline) = run_queue_leg(true);
    let (spec_stats, spec_timeline) = run_queue_leg(false);
    // QueueStats derives PartialEq over every counter, the per-tenant
    // map, and the latency reservoirs — one comparison covers them all.
    assert_eq!(shim_stats, spec_stats);
    assert_eq!(shim_timeline, spec_timeline);
    // The workload really exercised the interesting paths.
    assert!(shim_stats.expired >= 1, "TTL leg must shed");
    assert!(shim_stats.batches >= 1, "weighted leg must book a batch");
    assert_eq!(shim_stats.submitted, 11);
}

/// Runs the mixed workload through a 3-shard `DeviceCluster`, via
/// either the deprecated shims or the `TaskSpec` builders.
fn run_cluster_leg(use_shims: bool) -> (QueueStats, Vec<QueueStats>) {
    let us = Duration::from_micros;
    let mut devices: Vec<ApuDevice> = (0..3).map(|_| device()).collect();
    let mut cluster = DeviceCluster::new(
        devices.iter_mut().collect(),
        QueueConfig::default().with_max_batch(4),
        RoutePolicy::RoundRobin,
    )
    .unwrap();
    let key = BatchKey::new(5);
    if use_shims {
        // Saturate shard 1's cores so its 1µs-TTL task below must shed.
        for _ in 0..4 {
            cluster
                .submit_to(1, Priority::High, Duration::ZERO, charge_job(20_000))
                .unwrap();
        }
        cluster
            .submit_at(Priority::Normal, us(5), charge_job(1))
            .unwrap();
        cluster
            .submit_to(2, Priority::High, us(6), charge_job(2))
            .unwrap();
        cluster
            .submit_with_ttl_to(1, Priority::Low, us(7), us(1), charge_job(1))
            .unwrap();
        cluster
            .submit_job(Priority::Normal, us(8), |dev: &mut ApuDevice| {
                let r = dev.run_task(|ctx| {
                    ctx.core_mut().charge(VecOp::AddU16);
                    Ok(())
                })?;
                Ok((r, 1u8))
            })
            .unwrap();
        cluster
            .submit_batchable(Priority::Normal, us(9), key, Box::new(0u32), echo_runner())
            .unwrap();
        cluster
            .submit_batchable_to(
                0,
                Priority::Normal,
                us(10),
                key,
                Box::new(1u32),
                echo_runner(),
            )
            .unwrap();
        cluster
            .submit_batchable_with_ttl_to(
                0,
                Priority::Normal,
                us(11),
                Duration::from_millis(40),
                key,
                Box::new(2u32),
                echo_runner(),
            )
            .unwrap();
    } else {
        for _ in 0..4 {
            cluster
                .submit(
                    TaskSpec::job(charge_job(20_000))
                        .priority(Priority::High)
                        .on_shard(1),
                )
                .unwrap();
        }
        cluster
            .submit(TaskSpec::job(charge_job(1)).at(us(5)))
            .unwrap();
        cluster
            .submit(
                TaskSpec::job(charge_job(2))
                    .priority(Priority::High)
                    .at(us(6))
                    .on_shard(2),
            )
            .unwrap();
        cluster
            .submit(
                TaskSpec::job(charge_job(1))
                    .priority(Priority::Low)
                    .at(us(7))
                    .ttl(us(1))
                    .on_shard(1),
            )
            .unwrap();
        cluster
            .submit(
                TaskSpec::typed(|dev: &mut ApuDevice| {
                    let r = dev.run_task(|ctx| {
                        ctx.core_mut().charge(VecOp::AddU16);
                        Ok(())
                    })?;
                    Ok((r, 1u8))
                })
                .at(us(8)),
            )
            .unwrap();
        cluster
            .submit(TaskSpec::batch(key, Box::new(0u32), echo_runner()).at(us(9)))
            .unwrap();
        cluster
            .submit(
                TaskSpec::batch(key, Box::new(1u32), echo_runner())
                    .at(us(10))
                    .on_shard(0),
            )
            .unwrap();
        cluster
            .submit(
                TaskSpec::batch(key, Box::new(2u32), echo_runner())
                    .at(us(11))
                    .ttl(Duration::from_millis(40))
                    .on_shard(0),
            )
            .unwrap();
    }
    let report = cluster.drain().unwrap();
    let per_shard: Vec<QueueStats> = report.shards.iter().map(|s| s.stats.clone()).collect();
    (report.merged_stats(), per_shard)
}

#[test]
fn cluster_shims_book_identically_to_the_builder_path() {
    let (shim_merged, shim_shards) = run_cluster_leg(true);
    let (spec_merged, spec_shards) = run_cluster_leg(false);
    assert_eq!(shim_merged, spec_merged);
    // Placement must agree shard by shard, not just in aggregate — a
    // routing divergence that happens to balance would slip through the
    // merged comparison.
    assert_eq!(shim_shards, spec_shards);
    assert_eq!(shim_merged.submitted, 11);
    assert!(shim_merged.expired >= 1, "TTL leg must shed");
}

/// The option-gap fix: every (weight, TTL, batchable) combination is
/// expressible through one builder chain — combinations the old
/// `submit_*` family had no method for.
#[test]
fn builder_expresses_combinations_the_shim_family_could_not() {
    let us = Duration::from_micros;
    let mut dev = device();
    let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(8));
    let key = BatchKey::new(2);
    // Weighted + TTL + batchable: no deprecated variant took all three.
    q.submit(
        TaskSpec::batch(key, Box::new(0u32), echo_runner())
            .priority(Priority::Low)
            .at(us(1))
            .weight(5)
            .ttl(Duration::from_millis(80)),
    )
    .unwrap();
    // Weighted + TTL single job: also previously inexpressible.
    q.submit(
        TaskSpec::job(charge_job(1))
            .at(us(2))
            .weight(2)
            .ttl(Duration::from_millis(80)),
    )
    .unwrap();
    let done = q.drain().unwrap();
    assert_eq!(done.len(), 2);
    assert!(done.iter().all(|c| c.is_ok()));
    let s = q.stats();
    // Batch-weight semantics: the batchable task carries weight 5, the
    // single task weight 2.
    assert_eq!(s.dispatched_tasks, 7);
    assert_eq!(s.max_batch_size, 5);
}
