//! Structural invariants of the device-timeline trace stream
//! (`apu_sim::trace`): the recorded events must form a consistent
//! narrative of the run — every dispatch retires all of its members,
//! spans never overlap on a core or DMA-engine track, trace-side task
//! accounting equals [`QueueStats`] accounting, and fault events appear
//! exactly as often as the armed [`FaultPlan`] fired.
//!
//! The suite runs in both simulator modes via `APU_SIM_TEST_MODE` (see
//! the CI matrix); trace structure is mode-independent.

use std::collections::HashMap;
use std::time::Duration;

use apu_sim::{
    ApuDevice, Cycles, DeviceQueue, ExecMode, FaultPlan, Priority, QueueConfig, RetryPolicy,
    SimConfig, TaskSpec, TraceEvent, TraceEventKind, TraceRecorder, VecOp, Vmr,
};
use hbm_sim::{DramSpec, MemorySystem};
use proptest::prelude::*;
use rag::{CorpusSpec, EmbeddingStore, RagServer, ServeConfig, ServeReport, ShardedRagServer};

fn device() -> ApuDevice {
    ApuDevice::new(
        SimConfig::default()
            .with_exec_mode(ExecMode::from_env(ExecMode::Functional))
            .with_l4_bytes(8 << 20),
    )
}

fn store(chunks: usize) -> EmbeddingStore {
    EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks,
        },
        77,
    )
}

/// Serves an open-loop query stream with a recorder installed, returning
/// the report, the recorded events, and the device's final fault counts.
fn serve_traced(
    queries: usize,
    fault_rate: f64,
    ttl: Option<Duration>,
) -> (ServeReport, Vec<TraceEvent>, u64) {
    let st = store(4_096);
    let mut dev = device();
    if fault_rate > 0.0 {
        dev.inject_faults(FaultPlan::new(42).fail_task_rate(fault_rate));
    }
    let (sink, recorder) = TraceRecorder::shared();
    dev.install_trace_sink(sink);
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let report = {
        let cfg = ServeConfig {
            ttl,
            retry: (fault_rate > 0.0).then(RetryPolicy::default),
            ..ServeConfig::default()
        };
        let mut server = RagServer::new(&mut dev, &mut hbm, &st, cfg);
        for i in 0..queries {
            server
                .submit(Duration::from_micros(20 * i as u64), st.query(i as u64))
                .expect("submission under capacity");
        }
        server.drain().expect("drain")
    };
    let injected = dev.fault_counts().injected_total();
    dev.clear_trace_sink();
    let events = recorder.borrow().events().to_vec();
    (report, events, injected)
}

/// Every `DispatchIssued` retires each of its members exactly once with
/// a matching dispatch id, every submitted handle reaches exactly one
/// terminal event, and no retire references an unknown dispatch.
#[test]
fn every_dispatch_retires_all_its_members() {
    let (report, events, _) = serve_traced(16, 0.0, None);

    let mut dispatch_members: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut submitted: Vec<u64> = Vec::new();
    let mut retires: Vec<(u64, u64)> = Vec::new(); // (handle, dispatch)
    for e in &events {
        match &e.kind {
            TraceEventKind::TaskSubmitted { handle, .. } => submitted.push(*handle),
            TraceEventKind::DispatchIssued {
                dispatch, members, ..
            } => {
                assert!(
                    !members.is_empty(),
                    "dispatch {dispatch} carries no members"
                );
                assert!(
                    dispatch_members
                        .insert(*dispatch, members.clone())
                        .is_none(),
                    "dispatch id {dispatch} issued twice"
                );
            }
            TraceEventKind::TaskRetired {
                handle, dispatch, ..
            } => retires.push((*handle, *dispatch)),
            _ => {}
        }
    }
    assert_eq!(submitted.len(), 16, "one submission event per query");
    assert_eq!(
        dispatch_members.len() as u64,
        report.queue.dispatches,
        "one DispatchIssued per booked dispatch"
    );

    // Each dispatch's members retire exactly once, under its id.
    let mut retired_per_dispatch: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(h, d) in &retires {
        assert!(
            dispatch_members.contains_key(&d),
            "retire of task {h} references unknown dispatch {d}"
        );
        retired_per_dispatch.entry(d).or_default().push(h);
    }
    for (d, members) in &dispatch_members {
        let mut got = retired_per_dispatch.remove(d).unwrap_or_default();
        let mut want = members.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "dispatch {d} must retire exactly its members");
    }

    // Fault-free, TTL-free: every submitted handle retires exactly once.
    let mut retired: Vec<u64> = retires.iter().map(|&(h, _)| h).collect();
    retired.sort_unstable();
    submitted.sort_unstable();
    assert_eq!(retired, submitted);
}

/// Span timestamps are monotone and non-overlapping per track: dispatch
/// spans on each core, and transfer spans on each DMA engine.
#[test]
fn span_timestamps_are_monotone_per_track() {
    // RAG stream for dispatch spans, plus a hand-rolled double-buffered
    // kernel so both async DMA engines appear in the trace.
    let (_, events, _) = serve_traced(12, 0.0, None);

    let mut core_spans: HashMap<usize, Vec<(Cycles, Cycles)>> = HashMap::new();
    for e in &events {
        if let TraceEventKind::DispatchIssued {
            start,
            finish,
            cores,
            ..
        } = &e.kind
        {
            assert!(*start <= *finish);
            for &c in cores {
                core_spans.entry(c).or_default().push((*start, *finish));
            }
        }
    }
    assert!(!core_spans.is_empty(), "the stream must dispatch");
    for (core, mut spans) in core_spans {
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "core {core} runs overlapping dispatches: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    // Async DMA: per-engine bookings never overlap and issue stamps are
    // monotone in emission order.
    let mut dev = device();
    let (sink, recorder) = TraceRecorder::shared();
    dev.install_trace_sink(sink);
    let n = dev.config().vr_len;
    let h = dev.alloc_u16(8 * n).expect("alloc");
    dev.run_task(|ctx| {
        let mut pending = ctx.dma_l4_to_l1_async(Vmr::new(0), h)?;
        for i in 0..8usize {
            ctx.dma_wait(pending);
            if i + 1 < 8 {
                pending = ctx.dma_l4_to_l1_async(
                    Vmr::new(((i + 1) % 2) as u8),
                    h.offset_by((i + 1) * n * 2)?,
                )?;
            }
            for _ in 0..64 {
                ctx.core_mut().charge(VecOp::MulS16);
            }
        }
        ctx.dma_wait_all();
        Ok(())
    })
    .expect("kernel");
    dev.clear_trace_sink();

    let mut engine_spans: HashMap<(usize, usize), Vec<(Cycles, Cycles)>> = HashMap::new();
    let mut last_ts: HashMap<(usize, usize), Cycles> = HashMap::new();
    let mut dma_events = 0;
    for e in recorder.borrow().events() {
        if let TraceEventKind::DmaIssued {
            core,
            engine,
            start,
            completes_at,
            bytes,
        } = &e.kind
        {
            dma_events += 1;
            assert_eq!(*bytes as usize, n * 2, "full-vector transfers");
            assert!(e.ts <= *start, "a transfer cannot start before its issue");
            assert!(*start < *completes_at);
            let track = (*core, *engine);
            if let Some(prev) = last_ts.insert(track, e.ts) {
                assert!(prev <= e.ts, "issue stamps regress on {track:?}");
            }
            engine_spans
                .entry(track)
                .or_default()
                .push((*start, *completes_at));
        }
    }
    assert_eq!(dma_events, 8, "one DmaIssued per async transfer");
    assert!(
        engine_spans.len() >= 2,
        "double buffering must exercise both engines"
    );
    for (track, spans) in engine_spans {
        for w in spans.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "engine {track:?} overlaps transfers: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }
}

/// Trace-side task accounting equals [`QueueStats`] accounting: summed
/// `DispatchIssued::tasks` equals `dispatched_tasks`, and terminal /
/// retry event counts match the failure counters.
#[test]
fn trace_accounting_matches_queue_stats() {
    let (report, events, _) = serve_traced(24, 0.0, None);
    let mut dispatched_tasks = 0u64;
    let mut batch_members = 0u64;
    for e in &events {
        match &e.kind {
            TraceEventKind::DispatchIssued { tasks, .. } => dispatched_tasks += tasks,
            TraceEventKind::BatchFormed { members, .. } => batch_members += members.len() as u64,
            _ => {}
        }
    }
    assert_eq!(
        dispatched_tasks, report.queue.dispatched_tasks,
        "summed DispatchIssued::tasks must equal QueueStats::dispatched_tasks"
    );
    // Every submission here is batchable and fault-free, so each query
    // is dispatched exactly once by the batch it was formed into.
    assert_eq!(
        batch_members, report.queue.dispatched_tasks,
        "batch membership in the trace must cover every dispatched task"
    );
}

/// A faulted, TTL'd overload emits exactly the injected fault events,
/// one retry event per booked retry, and one expiry event per shed task.
#[test]
fn faulted_runs_emit_exactly_the_injected_fault_events() {
    let (report, events, injected) = serve_traced(32, 0.3, Some(Duration::from_millis(4)));
    let mut faults = 0u64;
    let mut retries = 0u64;
    let mut expired = 0u64;
    let mut failed = 0u64;
    for e in &events {
        match &e.kind {
            TraceEventKind::FaultInjected { .. } => faults += 1,
            TraceEventKind::TaskRetried { .. } => retries += 1,
            TraceEventKind::TaskExpired { .. } => expired += 1,
            TraceEventKind::TaskFailed { .. } => failed += 1,
            _ => {}
        }
    }
    assert!(injected > 0, "a 30% rate must inject");
    assert_eq!(faults, injected, "one FaultInjected event per injection");
    assert_eq!(retries, report.queue.retries, "one TaskRetried per retry");
    assert_eq!(expired, report.queue.expired, "one TaskExpired per shed");
    assert_eq!(
        failed + expired,
        report.failed() as u64,
        "terminal pre-dispatch events must cover every failed completion"
    );
}

/// Installing a sink adds zero virtual time: the served stream's
/// schedule and stats are bit-identical with and without a recorder.
#[test]
fn tracing_is_a_pure_observer() {
    let timeline = |traced: bool| {
        let st = store(4_096);
        let mut dev = device();
        let recorder = traced.then(|| {
            let (sink, recorder) = TraceRecorder::shared();
            dev.install_trace_sink(sink);
            recorder
        });
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let mut server = RagServer::new(&mut dev, &mut hbm, &st, ServeConfig::default());
        for i in 0..12u64 {
            server
                .submit(Duration::from_micros(20 * i), st.query(i))
                .expect("submit");
        }
        let report = server.drain().expect("drain");
        if let Some(r) = &recorder {
            assert!(!r.borrow().is_empty(), "the recorder must observe events");
        }
        report
            .completions
            .iter()
            .map(|c| (c.ticket.id(), c.started_at, c.finished_at))
            .collect::<Vec<_>>()
    };
    assert_eq!(timeline(false), timeline(true));
}

type ChargeJob = Box<
    dyn FnOnce(&mut ApuDevice) -> apu_sim::Result<(apu_sim::TaskReport, Box<dyn std::any::Any>)>,
>;

/// Builds a cheap device job charging `ops` vector ops.
fn charge_job(ops: u32) -> ChargeJob {
    Box::new(move |dev| {
        let r = dev.run_task(|ctx| {
            for _ in 0..ops {
                ctx.core_mut().charge(VecOp::AddU16);
            }
            Ok(())
        })?;
        Ok((r, Box::new(()) as Box<dyn std::any::Any>))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary interleavings of plain / TTL'd submissions under an
    /// optional fault plan with retries, every completion's per-stage
    /// latency components sum *exactly* to its end-to-end latency, and
    /// the aggregated stage totals sum to `QueueStats::total_latency`.
    #[test]
    fn stage_latency_components_sum_to_completion_latency(
        tasks in proptest::collection::vec(
            // (arrival µs, has-ttl flag, ttl µs, priority class, op count)
            (0u64..400, 0u8..2, 20u64..4_000, 0u8..3, 1u32..96),
            1..24,
        ),
        faulted in 0u8..2,
    ) {
        let mut dev = device();
        if faulted == 1 {
            dev.inject_faults(FaultPlan::new(9).fail_task_rate(0.25));
        }
        let cfg = QueueConfig::default().with_retry(RetryPolicy::default());
        let mut queue = DeviceQueue::new(&mut dev, cfg);
        let n = tasks.len();
        for &(arrival_us, has_ttl, ttl_us, prio, ops) in &tasks {
            let priority = [Priority::Low, Priority::Normal, Priority::High][prio as usize];
            let arrival = Duration::from_micros(arrival_us);
            let spec = TaskSpec::job(charge_job(ops)).priority(priority).at(arrival);
            let spec = if has_ttl == 1 {
                spec.ttl(Duration::from_micros(ttl_us))
            } else {
                spec
            };
            queue.submit(spec).expect("submission under capacity");
        }
        let done = queue.drain().expect("drain never aborts");
        prop_assert_eq!(done.len(), n, "every handle retires");
        for c in &done {
            let stages = c.stage_breakdown();
            prop_assert_eq!(
                stages.total(),
                c.latency(),
                "stage components must sum to the end-to-end latency of task {:?}",
                c.handle
            );
            prop_assert_eq!(stages.queue_wait, c.wait());
        }
        prop_assert_eq!(queue.stats().stage_totals().total(), queue.stats().total_latency);
    }
}

/// Failover attempts never double-count stage time: a query that first
/// lands on a dead replica and is re-issued elsewhere still satisfies
/// `stages.total() == latency()` exactly — the failed attempt's device
/// time is absorbed into `queue_wait` of the surviving attempt, not
/// added on top — and the report-level stage totals stay consistent
/// with the end-to-end latency sum.
#[test]
fn failover_attempts_do_not_double_count_stage_time() {
    let st = store(2_048);
    let mut server = ShardedRagServer::new(
        &st,
        2,
        SimConfig::default()
            .with_exec_mode(ExecMode::from_env(ExecMode::Functional))
            .with_l4_bytes(8 << 20),
        ServeConfig {
            replicas: 2,
            ..ServeConfig::default()
        },
    )
    .expect("cluster construction");
    server.inject_faults_replica(0, 0, FaultPlan::new(11).fail_every_kth_task(1));
    for i in 0..4u64 {
        server
            .submit(Duration::from_micros(15 * i), st.query(i))
            .expect("submit");
    }
    let report = server.drain().expect("drain");

    assert_eq!(report.served(), 4);
    assert_eq!(report.degraded(), 0);
    assert!(
        report.replica.failovers >= 1,
        "the dead replica was never hit"
    );
    let mut failed_over = 0usize;
    for done in &report.completions {
        assert_eq!(
            done.stages.total(),
            done.latency(),
            "query {} stage components must sum exactly to its latency \
             even across {} failover attempt(s)",
            done.ticket.id(),
            done.failovers
        );
        failed_over += (done.failovers > 0) as usize;
    }
    assert!(failed_over >= 1, "some completion must carry a failover");
    // Aggregated: the queue-level stage totals cover exactly the booked
    // end-to-end latency (successful attempts only — failed attempts
    // are never booked, so nothing is counted twice).
    assert_eq!(
        report.queue.stage_totals().total(),
        report.queue.total_latency,
        "report-level stage totals must not double-count failover attempts"
    );
    assert!(report.latency_percentile(0.5) > Duration::ZERO);
}

/// `latency_percentile` over a stream where *every* query failed (the
/// whole cluster is dead — no replica to fail over to): percentiles rank
/// only served completions, so the documented all-failed edge case must
/// return `Duration::ZERO` rather than ranking failed attempts.
#[test]
fn latency_percentile_of_an_all_failed_stream_is_zero() {
    let st = store(1_024);
    let mut server = ShardedRagServer::new(
        &st,
        1,
        SimConfig::default()
            .with_exec_mode(ExecMode::from_env(ExecMode::Functional))
            .with_l4_bytes(8 << 20),
        ServeConfig {
            replicas: 2,
            ..ServeConfig::default()
        },
    )
    .expect("cluster construction");
    for r in 0..2 {
        server.inject_faults_replica(0, r, FaultPlan::new(23).fail_every_kth_task(1));
    }
    for i in 0..3u64 {
        server
            .submit(Duration::from_micros(15 * i), st.query(i))
            .expect("submit");
    }
    let report = server.drain().expect("drain");

    assert_eq!(report.served(), 0, "the whole replica set is dead");
    assert_eq!(report.failed(), 3);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(
            report.latency_percentile(q),
            Duration::ZERO,
            "p{q} of an all-failed stream must be zero, not a ranked failure"
        );
    }
    assert_eq!(
        report.queue.stage_totals().total(),
        report.queue.total_latency
    );
}
