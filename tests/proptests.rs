//! Property-based tests over the core data structures and kernels:
//! GVML operation semantics vs scalar references, reduction exactness,
//! layout permutations, float encodings, DRAM model sanity, and
//! device/CPU agreement on randomized workloads.

use apu_sim::{ApuDevice, SimConfig, Vr};
use gvml::prelude::*;
use proptest::prelude::*;

fn with_core<R>(f: impl FnOnce(&mut apu_sim::ApuCore) -> apu_sim::Result<R>) -> R {
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
    let mut out = None;
    dev.run_task(|ctx| {
        out = Some(f(ctx.core_mut())?);
        Ok(())
    })
    .expect("task");
    out.unwrap()
}

fn fill_prefix(core: &mut apu_sim::ApuCore, vr: Vr, data: &[u16]) {
    let reg = core.vr_mut(vr).unwrap();
    reg.fill(0);
    reg[..data.len()].copy_from_slice(data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn elementwise_ops_match_scalar_semantics(
        a in proptest::collection::vec(any::<u16>(), 64..200),
        b in proptest::collection::vec(any::<u16>(), 64..200),
    ) {
        let n = a.len().min(b.len());
        let (got_add, got_mul, got_sub) = with_core(|core| {
            fill_prefix(core, Vr::new(0), &a);
            fill_prefix(core, Vr::new(1), &b);
            core.add_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            let add = core.vr(Vr::new(2))?[..n].to_vec();
            core.mul_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            let mul = core.vr(Vr::new(2))?[..n].to_vec();
            core.sub_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            let sub = core.vr(Vr::new(2))?[..n].to_vec();
            Ok((add, mul, sub))
        });
        for i in 0..n {
            prop_assert_eq!(got_add[i], a[i].wrapping_add(b[i]));
            prop_assert_eq!(got_mul[i] as i16, (a[i] as i16).wrapping_mul(b[i] as i16));
            prop_assert_eq!(got_sub[i] as i16, (a[i] as i16).wrapping_sub(b[i] as i16));
        }
    }

    #[test]
    fn subgroup_sums_are_exact(
        data in proptest::collection::vec(-100i16..100, 256),
        log_s in 1u32..8,
    ) {
        let s = 1usize << log_s;
        let words: Vec<u16> = data.iter().map(|&v| v as u16).collect();
        let heads = with_core(|core| {
            fill_prefix(core, Vr::new(0), &words);
            core.add_subgrp_s16(Vr::new(1), Vr::new(0), s, 256)?;
            Ok(core.vr(Vr::new(1))?[..256].to_vec())
        });
        for head in (0..256).step_by(s) {
            let expect: i16 = data[head..head + s].iter().fold(0i16, |acc, &v| acc.wrapping_add(v));
            prop_assert_eq!(heads[head] as i16, expect, "subgroup at {}", head);
        }
    }

    #[test]
    fn max_subgrp_finds_the_argmax(
        data in proptest::collection::vec(any::<u16>(), 128),
    ) {
        let (maxes, tags) = with_core(|core| {
            fill_prefix(core, Vr::new(0), &data);
            core.create_index_u16(Vr::new(1))?;
            core.max_subgrp_u16(Vr::new(2), Vr::new(0), 128, 128, Some((Vr::new(3), Vr::new(1))))?;
            Ok((core.vr(Vr::new(2))?[0], core.vr(Vr::new(3))?[0]))
        });
        // lanes beyond the prefix are zero; ignore them unless all data is 0
        let (best_i, best_v) = data
            .iter()
            .enumerate()
            .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))
            .map(|(i, v)| (i, *v))
            .unwrap();
        if best_v > 0 {
            prop_assert_eq!(maxes, best_v);
            prop_assert_eq!(tags as usize, best_i);
        }
    }

    #[test]
    fn f16_roundtrip_is_monotone_on_normals(
        x in -60000.0f32..60000.0,
        y in -60000.0f32..60000.0,
    ) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        let a = gvml::f16_to_f32(gvml::f16_from_f32(lo));
        let b = gvml::f16_to_f32(gvml::f16_from_f32(hi));
        prop_assert!(a <= b, "rounding broke order: {lo} -> {a}, {hi} -> {b}");
    }

    #[test]
    fn gf16_relative_error_is_bounded(x in 1.0e-6f32..1.0e8) {
        let r = gvml::gf16_to_f32(gvml::gf16_from_f32(x));
        prop_assert!(((r - x) / x).abs() < 2e-3, "{x} decoded as {r}");
    }

    #[test]
    fn layout_apply_is_a_permutation(rows in 1usize..12, cols in 1usize..12) {
        let data: Vec<u32> = (0..rows * cols).map(|i| i as u32).collect();
        let cm = cis_core::Layout::col_major(rows, cols);
        let mut permuted = cm.apply(&data);
        permuted.sort_unstable();
        prop_assert_eq!(permuted, data);
    }

    #[test]
    fn binmm_device_matches_cpu_on_random_shapes(
        seed in 0u64..1000,
        m in 1usize..12,
    ) {
        let a = binmm::BinMatrix::random(m, 128, seed);
        let b = binmm::BinMatrix::random(2048, 128, seed + 1);
        let expected = binmm::cpu_matmul(&a, &b);
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(32 << 20));
        let run = binmm::ApuMatmul::new(a, b)
            .unwrap()
            .run(&mut dev, cis_core::MatmulVariant::Baseline)
            .unwrap();
        prop_assert_eq!(run.c, expected);
    }

    #[test]
    fn hbm_time_is_monotone_in_bytes(kb1 in 1u64..512, kb2 in 1u64..512) {
        let (lo, hi) = (kb1.min(kb2) << 10, kb1.max(kb2) << 10);
        let mut m1 = hbm_sim::MemorySystem::new(hbm_sim::DramSpec::hbm2e_16gb());
        let mut m2 = hbm_sim::MemorySystem::new(hbm_sim::DramSpec::hbm2e_16gb());
        let t_lo = m1.stream_read(0, lo).cycles;
        let t_hi = m2.stream_read(0, hi).cycles;
        prop_assert!(t_lo <= t_hi);
    }

    #[test]
    fn percentile_is_nearest_rank(
        ms in proptest::collection::vec(0u64..10_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        use std::time::Duration;
        let samples: Vec<Duration> = ms.iter().map(|&m| Duration::from_millis(m)).collect();
        let got = apu_sim::queue::percentile(&samples, q);
        // Nearest-rank definition: the smallest sample s such that at
        // least ceil(q·n) samples are ≤ s.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        prop_assert_eq!(got, sorted[rank - 1]);
        // Structural properties: bounded by the extremes, monotone in q.
        prop_assert!(got >= sorted[0] && got <= sorted[n - 1]);
        let higher = apu_sim::queue::percentile(&samples, (q + 0.1).min(1.0));
        prop_assert!(higher >= got);
    }

    #[test]
    fn coalesce_plan_never_loses_bytes(
        rows in proptest::collection::vec((0usize..64, 1usize..8), 1..20),
    ) {
        let transfers: Vec<cis_core::RowTransfer> = rows
            .iter()
            .enumerate()
            .map(|(i, &(slot, len))| cis_core::RowTransfer {
                src_off: slot * 4096,
                bytes: len * 512,
                dst_off: i * 4096,
            })
            .collect();
        let plan = cis_core::CoalescePlan::plan(&transfers);
        let planned: usize = plan.chunks.iter().map(|&(_, _, b)| b).sum();
        prop_assert_eq!(planned, plan.unique_bytes);
        prop_assert!(plan.unique_bytes <= plan.naive_bytes);
        prop_assert!(plan.chunks.len() + plan.subgroup_copies >= 1);
        prop_assert!(plan.chunks.len() <= plan.naive_transactions);
    }
}
