//! Differential / property tests for sharded retrieval: for any corpus,
//! query set, `k`, and shard count, the merged per-shard top-k must be
//! element-identical — ids AND scores, with the global tie-break (score
//! descending, chunk ascending) — to the single-device top-k over the
//! whole corpus.
//!
//! Two layers of evidence:
//!
//! * a cheap pure-CPU property (many cases): shard [`cpu_retrieve`]
//!   results, globalize the chunk ids, merge with [`top_k`] — equals
//!   [`cpu_retrieve`] on the unsharded store;
//! * a device differential (fewer cases, functional simulation): a full
//!   [`rag::ShardedRagServer`] drain — fan-out, per-shard continuous
//!   batching, scatter-gather merge — equals the synchronous
//!   single-device [`retrieve_batch`] on the whole corpus.
//!
//! The CI shard axis (`APU_SIM_TEST_SHARDS`) picks the cluster width for
//! the end-to-end case; the properties sweep shard counts 1..=8 on their
//! own.

use std::time::Duration;

use apu_sim::{ApuDevice, ExecMode, SimConfig};
use hbm_sim::{DramSpec, MemorySystem};
use proptest::prelude::*;
use rag::cpu::{cpu_retrieve, top_k};
use rag::{retrieve_batch, CorpusSpec, EmbeddingStore, Hit, ServeConfig, ShardedRagServer};

fn store(chunks: usize, seed: u64) -> EmbeddingStore {
    EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks,
        },
        seed,
    )
}

/// Merges per-shard CPU retrievals into a global top-k: retrieve on each
/// shard's local store, lift hits to global chunk ids, and re-rank.
fn sharded_cpu_top_k(st: &EmbeddingStore, query: &[i16], k: usize, shards: usize) -> Vec<Hit> {
    let mut merged = Vec::new();
    for shard in st.shards(shards) {
        if shard.store.spec().chunks == 0 {
            continue;
        }
        let (hits, _) = cpu_retrieve(&shard.store, query, k, 2);
        merged.extend(hits.into_iter().map(|h| Hit {
            chunk: h.chunk + shard.base,
            score: h.score,
        }));
    }
    top_k(merged, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pure-CPU merge property, cheap enough for a wide sweep: for any
    /// corpus, seed, k 1..=8, and shard count 1..=8 (including counts
    /// that leave trailing shards empty), the sharded merge is
    /// element-identical to the unsharded scan.
    #[test]
    fn sharded_cpu_merge_equals_global_top_k(
        chunks in 1usize..600,
        seed in 0u64..1_000,
        k in 1usize..=8,
        shards in 1usize..=8,
        query_id in 0u64..100,
    ) {
        let st = store(chunks, seed);
        let query = st.query(query_id);
        let (expected, _) = cpu_retrieve(&st, &query, k, 2);
        let merged = sharded_cpu_top_k(&st, &query, k, shards);
        prop_assert_eq!(merged, expected, "chunks={} shards={} k={}", chunks, shards, k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Device differential: a full sharded serve — per-shard devices,
    /// continuous batching, scatter-gather merge — returns exactly the
    /// hits of the synchronous single-device batch kernel on the whole
    /// corpus, for every query, with ids and scores intact.
    #[test]
    fn sharded_server_matches_single_device_retrieval(
        chunks in 64usize..=1024,
        k in 1usize..=8,
        shards in 1usize..=8,
        nq in 1usize..=3,
    ) {
        let st = store(chunks, 77);
        let queries: Vec<Vec<i16>> = (0..nq as u64).map(|i| st.query(i)).collect();

        // Synchronous single-device reference on the unsharded corpus.
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_exec_mode(ExecMode::Functional)
                .with_l4_bytes(8 << 20),
        );
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let reference = retrieve_batch(&mut dev, &mut hbm, &st, &queries, k)
            .expect("reference retrieval");

        let mut server = ShardedRagServer::new(
            &st,
            shards,
            SimConfig::default()
                .with_exec_mode(ExecMode::Functional)
                .with_l4_bytes(8 << 20),
            ServeConfig {
                k,
                ..ServeConfig::default()
            },
        )
        .expect("cluster construction");
        for (i, q) in queries.iter().enumerate() {
            server
                .submit(Duration::from_micros(10 * i as u64), q.clone())
                .expect("submit");
        }
        let report = server.drain().expect("drain");

        prop_assert_eq!(report.completions.len(), nq);
        prop_assert_eq!(report.served(), nq);
        prop_assert_eq!(report.degraded(), 0);
        for done in &report.completions {
            prop_assert_eq!(
                done.hits().expect("served"),
                &reference.hits[done.ticket.id() as usize][..],
                "query {} diverged: chunks={} shards={} k={}",
                done.ticket.id(), chunks, shards, k
            );
        }
    }
}

/// End-to-end check on the CI shard axis: `APU_SIM_TEST_SHARDS` (default
/// 3) sets the cluster width, `APU_SIM_TEST_MODE` the simulation mode.
/// Scheduling/accounting assertions hold in both modes; hit equality is
/// gated on functional execution.
#[test]
fn ci_shard_axis_serves_the_full_stream() {
    let shards: usize = std::env::var("APU_SIM_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3);
    let mode = ExecMode::from_env(ExecMode::Functional);
    let st = store(6_000, 42);
    let queries: Vec<Vec<i16>> = (0..12).map(|i| st.query(i)).collect();

    let mut server = ShardedRagServer::new(
        &st,
        shards,
        SimConfig::default()
            .with_exec_mode(mode)
            .with_l4_bytes(8 << 20),
        ServeConfig::default(),
    )
    .expect("cluster construction");
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(Duration::from_micros(25 * i as u64), q.clone())
            .expect("submit");
    }
    let report = server.drain().expect("drain");

    assert_eq!(report.completions.len(), queries.len());
    assert_eq!(report.served(), queries.len());
    assert_eq!(report.shards.len(), shards);
    for shard_stats in &report.shards {
        assert_eq!(shard_stats.submitted as usize, queries.len());
        assert_eq!(shard_stats.completed as usize, queries.len());
    }
    for done in &report.completions {
        assert_eq!((done.shards_ok, done.shards_total), (shards, shards));
        assert_eq!(done.stages.total(), done.latency());
    }
    if mode.is_functional() {
        for done in &report.completions {
            let expected = sharded_cpu_top_k(&st, &queries[done.ticket.id() as usize], 5, 1);
            assert_eq!(done.hits().expect("served"), &expected[..]);
        }
    }
}
