//! Differential / property tests for sharded retrieval: for any corpus,
//! query set, `k`, and shard count, the merged per-shard top-k must be
//! element-identical — ids AND scores, with the global tie-break (score
//! descending, chunk ascending) — to the single-device top-k over the
//! whole corpus.
//!
//! Two layers of evidence:
//!
//! * a cheap pure-CPU property (many cases): shard [`cpu_retrieve`]
//!   results, globalize the chunk ids, merge with [`top_k`] — equals
//!   [`cpu_retrieve`] on the unsharded store;
//! * a device differential (fewer cases, functional simulation): a full
//!   [`rag::ShardedRagServer`] drain — fan-out, per-shard continuous
//!   batching, scatter-gather merge — equals the synchronous
//!   single-device [`retrieve_batch`] on the whole corpus.
//!
//! A third layer covers replication: the **kill-a-replica**
//! differential. With every shard held by a replica group, killing any
//! single replica must leave every query's top-k element-identical to
//! the flat single-device scan — transparent failover, zero degraded
//! answers. Only when a *whole* replica set is down may the answer
//! degrade to the surviving shards.
//!
//! The CI shard axis (`APU_SIM_TEST_SHARDS`) picks the cluster width for
//! the end-to-end case and `APU_SIM_TEST_REPLICAS` the replication
//! factor; the properties sweep shard counts 1..=8 on their own.

use std::time::Duration;

use apu_sim::{ApuDevice, ExecMode, FaultPlan, SimConfig};
use hbm_sim::{DramSpec, MemorySystem};
use proptest::prelude::*;
use rag::cpu::{cpu_retrieve, top_k};
use rag::{retrieve_batch, CorpusSpec, EmbeddingStore, Hit, ServeConfig, ShardedRagServer};

fn store(chunks: usize, seed: u64) -> EmbeddingStore {
    EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks,
        },
        seed,
    )
}

/// Merges per-shard CPU retrievals into a global top-k: retrieve on each
/// shard's local store, lift hits to global chunk ids, and re-rank.
fn sharded_cpu_top_k(st: &EmbeddingStore, query: &[i16], k: usize, shards: usize) -> Vec<Hit> {
    let mut merged = Vec::new();
    for shard in st.shards(shards) {
        if shard.store.spec().chunks == 0 {
            continue;
        }
        let (hits, _) = cpu_retrieve(&shard.store, query, k, 2);
        merged.extend(hits.into_iter().map(|h| Hit {
            chunk: h.chunk + shard.base,
            score: h.score,
        }));
    }
    top_k(merged, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pure-CPU merge property, cheap enough for a wide sweep: for any
    /// corpus, seed, k 1..=8, and shard count 1..=8 (including counts
    /// that leave trailing shards empty), the sharded merge is
    /// element-identical to the unsharded scan.
    #[test]
    fn sharded_cpu_merge_equals_global_top_k(
        chunks in 1usize..600,
        seed in 0u64..1_000,
        k in 1usize..=8,
        shards in 1usize..=8,
        query_id in 0u64..100,
    ) {
        let st = store(chunks, seed);
        let query = st.query(query_id);
        let (expected, _) = cpu_retrieve(&st, &query, k, 2);
        let merged = sharded_cpu_top_k(&st, &query, k, shards);
        prop_assert_eq!(merged, expected, "chunks={} shards={} k={}", chunks, shards, k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Device differential: a full sharded serve — per-shard devices,
    /// continuous batching, scatter-gather merge — returns exactly the
    /// hits of the synchronous single-device batch kernel on the whole
    /// corpus, for every query, with ids and scores intact.
    #[test]
    fn sharded_server_matches_single_device_retrieval(
        chunks in 64usize..=1024,
        k in 1usize..=8,
        shards in 1usize..=8,
        nq in 1usize..=3,
    ) {
        let st = store(chunks, 77);
        let queries: Vec<Vec<i16>> = (0..nq as u64).map(|i| st.query(i)).collect();

        // Synchronous single-device reference on the unsharded corpus.
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_exec_mode(ExecMode::Functional)
                .with_l4_bytes(8 << 20),
        );
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let reference = retrieve_batch(&mut dev, &mut hbm, &st, &queries, k)
            .expect("reference retrieval");

        let mut server = ShardedRagServer::new(
            &st,
            shards,
            SimConfig::default()
                .with_exec_mode(ExecMode::Functional)
                .with_l4_bytes(8 << 20),
            ServeConfig {
                k,
                ..ServeConfig::default()
            },
        )
        .expect("cluster construction");
        for (i, q) in queries.iter().enumerate() {
            server
                .submit(Duration::from_micros(10 * i as u64), q.clone())
                .expect("submit");
        }
        let report = server.drain().expect("drain");

        prop_assert_eq!(report.completions.len(), nq);
        prop_assert_eq!(report.served(), nq);
        prop_assert_eq!(report.degraded(), 0);
        for done in &report.completions {
            prop_assert_eq!(
                done.hits().expect("served"),
                &reference.hits[done.ticket.id() as usize][..],
                "query {} diverged: chunks={} shards={} k={}",
                done.ticket.id(), chunks, shards, k
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Kill-a-replica differential: for any corpus, k, shard count, and
    /// replication factor ≥ 2, kill one replica of one shard (every task
    /// on it faults) and the replicated serve must still return, for
    /// every query, exactly the hits of the synchronous single-device
    /// scan — ids and scores intact, nothing degraded — while the report
    /// shows real failovers happened.
    #[test]
    fn killing_one_replica_keeps_every_query_exact(
        chunks in 64usize..=400,
        k in 1usize..=6,
        shards in 1usize..=3,
        replicas in 2usize..=3,
        victim in 0usize..64,
    ) {
        let st = store(chunks, 91);
        let nq = 3usize; // ≥ replicas, so the victim serves at least one primary
        let queries: Vec<Vec<i16>> = (0..nq as u64).map(|i| st.query(i)).collect();

        // Synchronous single-device reference on the unsharded corpus.
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_exec_mode(ExecMode::Functional)
                .with_l4_bytes(8 << 20),
        );
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let reference = retrieve_batch(&mut dev, &mut hbm, &st, &queries, k)
            .expect("reference retrieval");

        let mut server = ShardedRagServer::new(
            &st,
            shards,
            SimConfig::default()
                .with_exec_mode(ExecMode::Functional)
                .with_l4_bytes(8 << 20),
            ServeConfig {
                k,
                replicas,
                ..ServeConfig::default()
            },
        )
        .expect("cluster construction");

        // Kill one arbitrary replica: every task it receives faults.
        let (dead_shard, dead_replica) = (victim % shards, (victim / shards) % replicas);
        server.inject_faults_replica(
            dead_shard,
            dead_replica,
            FaultPlan::new(7).fail_every_kth_task(1),
        );

        for (i, q) in queries.iter().enumerate() {
            server
                .submit(Duration::from_micros(10 * i as u64), q.clone())
                .expect("submit");
        }
        let report = server.drain().expect("drain");

        prop_assert_eq!(report.completions.len(), nq);
        prop_assert_eq!(report.served(), nq, "fault must be transparent");
        prop_assert_eq!(report.degraded(), 0, "a healthy replica remained");
        prop_assert!(
            report.replica.failovers >= 1,
            "the dead replica must have been hit at least once \
             (shards={} replicas={} victim=({},{}))",
            shards, replicas, dead_shard, dead_replica
        );
        prop_assert_eq!(report.shards.len(), shards * replicas);
        for done in &report.completions {
            prop_assert!(!done.is_degraded());
            prop_assert_eq!((done.shards_ok, done.shards_total), (shards, shards));
            prop_assert_eq!(done.stages.total(), done.latency());
            prop_assert_eq!(
                done.hits().expect("served"),
                &reference.hits[done.ticket.id() as usize][..],
                "query {} diverged: chunks={} shards={} replicas={} k={} victim=({},{})",
                done.ticket.id(), chunks, shards, replicas, k, dead_shard, dead_replica
            );
        }
    }
}

/// Degradation is reserved for total loss: killing *every* replica of
/// one shard degrades the answers to the surviving shards (still
/// served), while killing all-but-one leaves them exact.
#[test]
fn only_a_whole_dead_replica_set_degrades_answers() {
    let st = store(300, 13);
    let queries: Vec<Vec<i16>> = (0..3u64).map(|i| st.query(i)).collect();
    let config = |replicas| ServeConfig {
        k: 4,
        replicas,
        ..ServeConfig::default()
    };
    let sim = || {
        SimConfig::default()
            .with_exec_mode(ExecMode::Functional)
            .with_l4_bytes(8 << 20)
    };

    // All but one replica of shard 1 dead: exact, nothing degraded.
    let mut server = ShardedRagServer::new(&st, 2, sim(), config(3)).expect("cluster");
    for r in 0..2 {
        server.inject_faults_replica(1, r, FaultPlan::new(5).fail_every_kth_task(1));
    }
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(Duration::from_micros(10 * i as u64), q.clone())
            .expect("submit");
    }
    let report = server.drain().expect("drain");
    assert_eq!(report.served(), queries.len());
    assert_eq!(report.degraded(), 0);

    // The whole replica set of shard 1 dead: served but degraded.
    let mut server = ShardedRagServer::new(&st, 2, sim(), config(2)).expect("cluster");
    for r in 0..2 {
        server.inject_faults_replica(1, r, FaultPlan::new(5).fail_every_kth_task(1));
    }
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(Duration::from_micros(10 * i as u64), q.clone())
            .expect("submit");
    }
    let report = server.drain().expect("drain");
    assert_eq!(report.served(), queries.len());
    assert_eq!(report.degraded(), queries.len());
    for done in &report.completions {
        assert!(done.is_degraded());
        assert_eq!((done.shards_ok, done.shards_total), (1, 2));
    }
}

/// End-to-end check on the CI shard/replica axes: `APU_SIM_TEST_SHARDS`
/// sets the cluster width (default 3), `APU_SIM_TEST_REPLICAS` the
/// replication factor (default 1), `APU_SIM_TEST_MODE` the simulation
/// mode. With replication a replica of shard 0 is killed outright, so
/// the stream must be served *through* failover. Scheduling/accounting
/// assertions hold in both modes; hit equality is gated on functional
/// execution.
#[test]
fn ci_shard_axis_serves_the_full_stream() {
    let axis = |var: &str, default: usize| -> usize {
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(default)
    };
    let shards = axis("APU_SIM_TEST_SHARDS", 3);
    let replicas = axis("APU_SIM_TEST_REPLICAS", 1);
    let mode = ExecMode::from_env(ExecMode::Functional);
    let st = store(6_000, 42);
    let queries: Vec<Vec<i16>> = (0..12).map(|i| st.query(i)).collect();

    let mut server = ShardedRagServer::new(
        &st,
        shards,
        SimConfig::default()
            .with_exec_mode(mode)
            .with_l4_bytes(8 << 20),
        ServeConfig {
            replicas,
            ..ServeConfig::default()
        },
    )
    .expect("cluster construction");
    if replicas >= 2 {
        // Kill one replica of shard 0; failover must keep the stream
        // exact and non-degraded.
        server.inject_faults_replica(0, 0, FaultPlan::new(3).fail_every_kth_task(1));
    }
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(Duration::from_micros(25 * i as u64), q.clone())
            .expect("submit");
    }
    let report = server.drain().expect("drain");

    assert_eq!(report.completions.len(), queries.len());
    assert_eq!(report.served(), queries.len());
    assert_eq!(report.degraded(), 0);
    assert_eq!(report.shards.len(), shards * replicas);
    assert_eq!(report.replica.per_shard, replicas);
    assert_eq!(report.replica.groups, shards);
    // Each replica group serves the whole stream between its members
    // (the dead replica's failed attempts re-land on its peers).
    for group in 0..shards {
        let served: u64 = (0..replicas)
            .map(|r| report.shards[group * replicas + r].completed)
            .sum();
        assert!(
            served as usize >= queries.len(),
            "group {group} completed only {served} of {}",
            queries.len()
        );
    }
    if replicas >= 2 {
        assert!(
            report.replica.failovers >= 1,
            "the dead replica was never hit"
        );
        assert!(report.replica.failover_served >= 1);
    }
    for done in &report.completions {
        assert_eq!((done.shards_ok, done.shards_total), (shards, shards));
        assert_eq!(done.stages.total(), done.latency());
    }
    if mode.is_functional() {
        for done in &report.completions {
            let expected = sharded_cpu_top_k(&st, &queries[done.ticket.id() as usize], 5, 1);
            assert_eq!(done.hits().expect("served"), &expected[..]);
        }
    }
}
