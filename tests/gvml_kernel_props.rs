//! Differential property tests pinning every vectorized GVML kernel to
//! a scalar reference oracle.
//!
//! The interpreter and the GVML element-wise kernels were rewritten from
//! indexed loops to iterator/slice form; these properties re-derive each
//! op's result lane by lane from the documented scalar semantics across
//! random lane counts and values, with the 16-bit edge cases (0, 1,
//! `i16::MAX`, `i16::MIN`, `u16::MAX`, and neighbors) force-injected
//! into every sample so sign and wrap boundaries are always exercised.

use apu_sim::{ApuDevice, Marker, SimConfig, Vr};
use gvml::prelude::*;
use gvml::shift::ShiftDir;
use proptest::prelude::*;

fn with_core<R>(f: impl FnOnce(&mut apu_sim::ApuCore) -> apu_sim::Result<R>) -> R {
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
    let mut out = None;
    dev.run_task(|ctx| {
        out = Some(f(ctx.core_mut())?);
        Ok(())
    })
    .expect("task");
    out.unwrap()
}

fn fill_prefix(core: &mut apu_sim::ApuCore, vr: Vr, data: &[u16]) {
    let reg = core.vr_mut(vr).unwrap();
    reg.fill(0);
    reg[..data.len()].copy_from_slice(data);
}

/// The 16-bit boundary values every sample must contain: zero, one, the
/// signed extremes and their neighbors, and the unsigned extremes.
const EDGES: [u16; 8] = [0, 1, 0x7FFF, 0x8000, 0x8001, 0xFFFE, u16::MAX, 0x00FF];

/// Overwrites the head of `v` with [`EDGES`] rotated by `rot`, so paired
/// operands line up different edge×edge combinations (e.g. rot 0 vs 3
/// puts `i16::MIN / -1` in the same lane for the division ops).
fn inject_edges(v: &mut [u16], rot: usize) {
    for (i, slot) in v.iter_mut().take(EDGES.len()).enumerate() {
        *slot = EDGES[(i + rot) % EDGES.len()];
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bit_and_shift_ops_match_scalar_semantics(
        mut a in proptest::collection::vec(any::<u16>(), 32..200),
        mut b in proptest::collection::vec(any::<u16>(), 32..200),
        shift in 0u32..16,
    ) {
        inject_edges(&mut a, 0);
        inject_edges(&mut b, 3);
        let n = a.len().min(b.len());
        let got = with_core(|core| {
            fill_prefix(core, Vr::new(0), &a);
            fill_prefix(core, Vr::new(1), &b);
            let mut out = Vec::new();
            core.and_16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.or_16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.xor_16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.not_16(Vr::new(2), Vr::new(0))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.popcnt_16(Vr::new(2), Vr::new(0))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.sl_imm_16(Vr::new(2), Vr::new(0), shift)?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.sr_imm_u16(Vr::new(2), Vr::new(0), shift)?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.sr_imm_s16(Vr::new(2), Vr::new(0), shift)?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            Ok(out)
        });
        for i in 0..n {
            prop_assert_eq!(got[0][i], a[i] & b[i]);
            prop_assert_eq!(got[1][i], a[i] | b[i]);
            prop_assert_eq!(got[2][i], a[i] ^ b[i]);
            prop_assert_eq!(got[3][i], !a[i]);
            prop_assert_eq!(got[4][i], a[i].count_ones() as u16);
            prop_assert_eq!(got[5][i], a[i] << shift);
            prop_assert_eq!(got[6][i], a[i] >> shift);
            prop_assert_eq!(got[7][i] as i16, (a[i] as i16) >> shift);
        }
    }

    #[test]
    fn wrapping_and_division_arithmetic_matches_scalar_semantics(
        mut a in proptest::collection::vec(any::<u16>(), 32..200),
        mut b in proptest::collection::vec(any::<u16>(), 32..200),
    ) {
        // Rotation 3 pairs a=0x8000 with b=0xFFFF: the i16::MIN / -1
        // overflow case for div_s16, and guarantees zero divisors.
        inject_edges(&mut a, 0);
        inject_edges(&mut b, 3);
        let n = a.len().min(b.len());
        let got = with_core(|core| {
            fill_prefix(core, Vr::new(0), &a);
            fill_prefix(core, Vr::new(1), &b);
            let mut out = Vec::new();
            core.add_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.add_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.sub_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.mul_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.div_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.div_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.recip_u16(Vr::new(2), Vr::new(0))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            Ok(out)
        });
        for i in 0..n {
            prop_assert_eq!(got[0][i], a[i].wrapping_add(b[i]));
            // add_s16 and add_u16 agree bit-for-bit on the wrap; the op
            // exists for its distinct cycle charge.
            prop_assert_eq!(got[1][i], a[i].wrapping_add(b[i]));
            prop_assert_eq!(got[2][i], a[i].wrapping_sub(b[i]));
            prop_assert_eq!(got[3][i], a[i].wrapping_mul(b[i]));
            prop_assert_eq!(got[4][i], a[i].checked_div(b[i]).unwrap_or(0xFFFF));
            let expect_sdiv = if b[i] as i16 == 0 {
                -1i16
            } else {
                (a[i] as i16).wrapping_div(b[i] as i16)
            };
            prop_assert_eq!(got[5][i] as i16, expect_sdiv);
            let expect_recip = if a[i] == 0 {
                0xFFFF
            } else {
                ((65536u32 + u32::from(a[i]) / 2) / u32::from(a[i])).min(0xFFFF) as u16
            };
            prop_assert_eq!(got[6][i], expect_recip);
        }
    }

    #[test]
    fn minmax_abs_and_saturating_ops_match_scalar_semantics(
        mut a in proptest::collection::vec(any::<u16>(), 32..200),
        mut b in proptest::collection::vec(any::<u16>(), 32..200),
    ) {
        inject_edges(&mut a, 0);
        inject_edges(&mut b, 5);
        let n = a.len().min(b.len());
        let got = with_core(|core| {
            fill_prefix(core, Vr::new(0), &a);
            fill_prefix(core, Vr::new(1), &b);
            let mut out = Vec::new();
            core.min_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.max_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.min_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.max_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.abs_s16(Vr::new(2), Vr::new(0))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.add_sat_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.sub_sat_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            core.add_sat_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            out.push(core.vr(Vr::new(2))?[..n].to_vec());
            Ok(out)
        });
        for i in 0..n {
            prop_assert_eq!(got[0][i], a[i].min(b[i]));
            prop_assert_eq!(got[1][i], a[i].max(b[i]));
            prop_assert_eq!(got[2][i] as i16, (a[i] as i16).min(b[i] as i16));
            prop_assert_eq!(got[3][i] as i16, (a[i] as i16).max(b[i] as i16));
            // abs(i16::MIN) wraps back to i16::MIN, like the hardware.
            prop_assert_eq!(got[4][i] as i16, (a[i] as i16).wrapping_abs());
            prop_assert_eq!(got[5][i], a[i].saturating_add(b[i]));
            prop_assert_eq!(got[6][i], a[i].saturating_sub(b[i]));
            prop_assert_eq!(got[7][i] as i16, (a[i] as i16).saturating_add(b[i] as i16));
        }
    }

    #[test]
    fn comparisons_and_masked_copies_match_scalar_semantics(
        mut a in proptest::collection::vec(any::<u16>(), 32..200),
        mut b in proptest::collection::vec(any::<u16>(), 32..200),
        imm in any::<u16>(),
        fill_imm in any::<u16>(),
    ) {
        inject_edges(&mut a, 0);
        inject_edges(&mut b, 3);
        // Equal lengths keep every lane past the prefix zero in both
        // operands, so the count_m oracle below is exact.
        let n = a.len().min(b.len());
        a.truncate(n);
        b.truncate(n);
        // Guarantee some equal lanes and at least one imm match.
        b[n / 2] = a[n / 2];
        a[n - 1] = imm;
        let (marks, count_lt, masked, masked_imm) = with_core(|core| {
            fill_prefix(core, Vr::new(0), &a);
            fill_prefix(core, Vr::new(1), &b);
            let mut marks = Vec::new();
            core.eq_16(Marker::new(0), Vr::new(0), Vr::new(1))?;
            marks.push(core.marker(Marker::new(0))?[..n].to_vec());
            core.gt_u16(Marker::new(0), Vr::new(0), Vr::new(1))?;
            marks.push(core.marker(Marker::new(0))?[..n].to_vec());
            core.lt_u16(Marker::new(1), Vr::new(0), Vr::new(1))?;
            marks.push(core.marker(Marker::new(1))?[..n].to_vec());
            core.ge_u16(Marker::new(0), Vr::new(0), Vr::new(1))?;
            marks.push(core.marker(Marker::new(0))?[..n].to_vec());
            core.le_u16(Marker::new(0), Vr::new(0), Vr::new(1))?;
            marks.push(core.marker(Marker::new(0))?[..n].to_vec());
            core.lt_s16(Marker::new(0), Vr::new(0), Vr::new(1))?;
            marks.push(core.marker(Marker::new(0))?[..n].to_vec());
            core.eq_imm_16(Marker::new(0), Vr::new(0), imm)?;
            marks.push(core.marker(Marker::new(0))?[..n].to_vec());
            // Beyond the filled prefix both registers are zero, so 0 < 0
            // never marks and count_m equals the prefix count.
            let count_lt = core.count_m(Marker::new(1))?;
            // Masked copies through the lt marker: dst starts as a copy
            // of a, takes b (resp. fill_imm) only where marked.
            core.cpy_16(Vr::new(2), Vr::new(0))?;
            core.cpy_16_msk(Vr::new(2), Vr::new(1), Marker::new(1))?;
            let masked = core.vr(Vr::new(2))?[..n].to_vec();
            core.cpy_16(Vr::new(2), Vr::new(0))?;
            core.cpy_imm_16_msk(Vr::new(2), fill_imm, Marker::new(1))?;
            let masked_imm = core.vr(Vr::new(2))?[..n].to_vec();
            Ok((marks, count_lt, masked, masked_imm))
        });
        let mut expect_lt_count = 0u32;
        for i in 0..n {
            prop_assert_eq!(marks[0][i], a[i] == b[i]);
            prop_assert_eq!(marks[1][i], a[i] > b[i]);
            prop_assert_eq!(marks[2][i], a[i] < b[i]);
            prop_assert_eq!(marks[3][i], a[i] >= b[i]);
            prop_assert_eq!(marks[4][i], a[i] <= b[i]);
            prop_assert_eq!(marks[5][i], (a[i] as i16) < (b[i] as i16));
            prop_assert_eq!(marks[6][i], a[i] == imm);
            let lt = a[i] < b[i];
            expect_lt_count += u32::from(lt);
            prop_assert_eq!(masked[i], if lt { b[i] } else { a[i] });
            prop_assert_eq!(masked_imm[i], if lt { fill_imm } else { a[i] });
        }
        prop_assert_eq!(count_lt, expect_lt_count);
    }

    #[test]
    fn subgroup_reductions_match_a_scalar_fold(
        data in proptest::collection::vec(any::<u16>(), 256),
        log_s in 0u32..8,
        // Values drawn from a tiny domain force duplicate extrema, so the
        // first-occurrence tie-break is exercised on every case.
        tie_data in proptest::collection::vec(0u16..4, 128),
    ) {
        let s = 1usize << log_s;
        let (sums, maxes, max_tags, mins, min_tags) = with_core(|core| {
            fill_prefix(core, Vr::new(0), &data);
            core.add_subgrp_s16(Vr::new(1), Vr::new(0), s, 256)?;
            let sums = core.vr(Vr::new(1))?[..256].to_vec();
            fill_prefix(core, Vr::new(0), &tie_data);
            core.create_index_u16(Vr::new(4))?;
            core.max_subgrp_u16(Vr::new(1), Vr::new(0), 128, 128, Some((Vr::new(2), Vr::new(4))))?;
            let maxes = core.vr(Vr::new(1))?[0];
            let max_tags = core.vr(Vr::new(2))?[0];
            core.min_subgrp_u16(Vr::new(1), Vr::new(0), 128, 128, Some((Vr::new(2), Vr::new(4))))?;
            Ok((sums, maxes, max_tags, core.vr(Vr::new(1))?[0], core.vr(Vr::new(2))?[0]))
        });
        for head in (0..256).step_by(s) {
            let expect = data[head..head + s]
                .iter()
                .fold(0i16, |acc, &v| acc.wrapping_add(v as i16));
            prop_assert_eq!(sums[head] as i16, expect, "sum head {}", head);
            for (lane, &v) in sums.iter().enumerate().take(head + s).skip(head + 1) {
                prop_assert_eq!(v, 0, "non-head lane {} not zeroed", lane);
            }
        }
        // First occurrence wins ties in both directions.
        let arg_max = tie_data
            .iter()
            .enumerate()
            .max_by(|(i, x), (j, y)| x.cmp(y).then(j.cmp(i)))
            .unwrap();
        let arg_min = tie_data
            .iter()
            .enumerate()
            .min_by(|(_, x), (_, y)| x.cmp(y))
            .unwrap();
        prop_assert_eq!(maxes, *arg_max.1);
        prop_assert_eq!(max_tags as usize, arg_max.0);
        prop_assert_eq!(mins, *arg_min.1);
        prop_assert_eq!(min_tags as usize, arg_min.0);
    }

    #[test]
    fn subgroup_replication_matches_scalar_copy(
        src in proptest::collection::vec(any::<u16>(), 256),
        log_s in 0u32..6,
        extra in 0u32..3,
        range_sub in 1usize..40,
        range_start in 0usize..100,
        range_len in 1usize..150,
    ) {
        let s = 1usize << log_s;
        let r = s << extra; // subgroup divides group, both powers of two
        let (grp, rng) = with_core(|core| {
            fill_prefix(core, Vr::new(0), &src);
            core.cpy_subgrp_16(Vr::new(1), Vr::new(0), s, r)?;
            let grp = core.vr(Vr::new(1))?[..256].to_vec();
            // Seed the range destination with a sentinel so untouched
            // lanes are detectable.
            core.cpy_imm_16(Vr::new(2), 0xBEEF)?;
            core.cpy_subgrp_16_range(
                Vr::new(2),
                Vr::new(0),
                range_sub,
                range_start,
                range_start + range_len,
            )?;
            Ok((grp, core.vr(Vr::new(2))?[..400].to_vec()))
        });
        // Full-register form: each group repeats its leading subgroup.
        for (lane, &got) in grp.iter().enumerate() {
            let expect = src[(lane / r) * r + lane % s];
            prop_assert_eq!(got, expect, "lane {}", lane);
        }
        // Range form: [start, end) cycles through src[0..range_sub],
        // everything else keeps the sentinel.
        for (lane, &got) in rng.iter().enumerate() {
            let expect = if lane >= range_start && lane < range_start + range_len {
                src[(lane - range_start) % range_sub]
            } else {
                0xBEEF
            };
            prop_assert_eq!(got, expect, "lane {}", lane);
        }
    }

    #[test]
    fn element_shifts_move_and_zero_fill_like_the_scalar_model(
        data in proptest::collection::vec(any::<u16>(), 256),
        k in 1usize..64,
    ) {
        let (head, tail, slow) = with_core(|core| {
            fill_prefix(core, Vr::new(0), &data);
            fill_prefix(core, Vr::new(1), &data);
            fill_prefix(core, Vr::new(2), &data);
            core.shift_elements(Vr::new(0), k, ShiftDir::TowardHead)?;
            core.shift_elements(Vr::new(1), k, ShiftDir::TowardTail)?;
            core.shift_elements_slow(Vr::new(2), k, ShiftDir::TowardHead)?;
            Ok((
                core.vr(Vr::new(0))?[..256].to_vec(),
                core.vr(Vr::new(1))?[..256].to_vec(),
                core.vr(Vr::new(2))?[..256].to_vec(),
            ))
        });
        for i in 0..256 {
            // Lanes past the 256-element prefix start zero, so shifting
            // toward the head pulls zeros in at the prefix boundary.
            let expect_head = if i + k < 256 { data[i + k] } else { 0 };
            let expect_tail = if i >= k { data[i - k] } else { 0 };
            prop_assert_eq!(head[i], expect_head, "toward-head lane {}", i);
            prop_assert_eq!(tail[i], expect_tail, "toward-tail lane {}", i);
            // The forced-slow path is functionally identical.
            prop_assert_eq!(slow[i], expect_head, "slow-path lane {}", i);
        }
    }
}
