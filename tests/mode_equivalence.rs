//! Timing-only mode must charge exactly the cycles functional mode
//! charges — the property that makes paper-scale timing-only sweeps
//! trustworthy (DESIGN.md §1).
//!
//! The one sanctioned exception is data-dependent control flow (e.g. the
//! histogram occupied-bin scan), which timing-only resolves to the
//! worst case.

use apu_sim::{ApuDevice, ExecMode, SimConfig, Vmr, Vr};
use binmm::{ApuMatmul, BinMatrix};
use cis_core::MatmulVariant;
use gvml::prelude::*;
use hbm_sim::{DramSpec, MemorySystem};
use rag::{ApuRetriever, CorpusSpec, EmbeddingStore, RagVariant};

fn devices(l4: usize) -> (ApuDevice, ApuDevice) {
    (
        ApuDevice::new(SimConfig::default().with_l4_bytes(l4)),
        ApuDevice::new(
            SimConfig::default()
                .with_l4_bytes(l4)
                .with_exec_mode(ExecMode::TimingOnly),
        ),
    )
}

#[test]
fn gvml_sequence_is_mode_equivalent() {
    let (mut f, mut t) = devices(8 << 20);
    let kernel = |dev: &mut ApuDevice| {
        let h = dev.alloc_u16(32 * 1024).unwrap();
        dev.run_task(|ctx| {
            ctx.dma_l4_to_l1(Vmr::new(0), h)?;
            ctx.load(Vr::new(0), Vmr::new(0))?;
            let core = ctx.core_mut();
            core.cpy_imm_16(Vr::new(1), 3)?;
            core.mul_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            core.add_subgrp_s16(Vr::new(3), Vr::new(2), 256, 1024)?;
            core.eq_imm_16(Marker::new(0), Vr::new(3), 0)?;
            core.count_m(Marker::new(0))?;
            ctx.store(Vmr::new(1), Vr::new(3))?;
            ctx.dma_l1_to_l4(h, Vmr::new(1))
        })
        .unwrap()
    };
    let rf = kernel(&mut f);
    let rt = kernel(&mut t);
    assert_eq!(rf.cycles, rt.cycles);
    assert_eq!(rf.stats.commands, rt.stats.commands);
    assert_eq!(rf.stats.micro_ops, rt.stats.micro_ops);
}

#[test]
fn binmm_variants_are_mode_equivalent() {
    let problem = ApuMatmul::new(
        BinMatrix::random(32, 2048, 1),
        BinMatrix::random(2048, 2048, 2),
    )
    .unwrap();
    let (mut f, mut t) = devices(64 << 20);
    for v in MatmulVariant::ALL {
        let rf = problem.run(&mut f, v).unwrap();
        let rt = problem.run(&mut t, v).unwrap();
        assert_eq!(
            rf.report.cycles,
            rt.report.cycles,
            "{} diverges between modes",
            v.label()
        );
        assert!(rt.c.is_empty() && !rf.c.is_empty());
    }
}

#[test]
fn rag_retrieval_is_mode_equivalent() {
    let spec = CorpusSpec {
        corpus_bytes: 0,
        chunks: 40_000,
    };
    let store_f = EmbeddingStore::materialized(spec, 5);
    let store_t = EmbeddingStore::size_only(spec, 5);
    let q = store_f.query(0);
    let (mut f, mut t) = devices(8 << 20);
    for variant in [RagVariant::NoOpt, RagVariant::Opt1, RagVariant::AllOpts] {
        let mut hbm_f = MemorySystem::new(DramSpec::hbm2e_16gb());
        let mut hbm_t = MemorySystem::new(DramSpec::hbm2e_16gb());
        let (_, bf, rf) = ApuRetriever::new(variant)
            .retrieve(&mut f, &mut hbm_f, &store_f, &q, 5)
            .unwrap();
        let (_, bt, rt) = ApuRetriever::new(variant)
            .retrieve(&mut t, &mut hbm_t, &store_t, &q, 5)
            .unwrap();
        assert_eq!(rf.cycles, rt.cycles, "{} diverges", variant.label());
        assert!((bf.total_ms() - bt.total_ms()).abs() < 1e-9);
    }
}

#[test]
fn phoenix_wordcount_is_mode_equivalent() {
    let text = phoenix::wordcount::generate(60_000, 3);
    let (mut f, mut t) = devices(16 << 20);
    for o in [phoenix::OptConfig::none(), phoenix::OptConfig::all()] {
        // Baseline extraction volume is data-dependent; timing-only uses
        // the expectation hint, so compare only the optimized config
        // exactly and the baseline loosely.
        let (_, rf) = phoenix::wordcount::apu(&mut f, &text, o).unwrap();
        let (_, rt) = phoenix::wordcount::apu(&mut t, &text, o).unwrap();
        if o.reduction_mapping {
            assert_eq!(rf.cycles, rt.cycles);
        } else {
            let ratio = rf.cycles.get() as f64 / rt.cycles.get() as f64;
            assert!((0.5..2.0).contains(&ratio), "baseline ratio {ratio}");
        }
    }
}
