//! Golden-trace determinism: the recorded device timeline is a pure
//! function of (seed, workload, [`ExecMode`]).
//!
//! Two guarantees are pinned:
//!
//! * **Byte-identical replays** — the same seed and workload produce a
//!   byte-identical [`TraceRecorder::signature`] (timestamps included)
//!   on every run within one mode.
//! * **Mode-independent structure** — `Functional` and `TimingOnly`
//!   runs of the same workload produce identical
//!   [`TraceEvent::kind_signature`] streams: the *narrative* (who was
//!   submitted, batched, dispatched, faulted, retried, retired, and in
//!   what order) never depends on whether payload data is simulated.
//!
//! The suite also runs under `APU_SIM_TEST_MODE` (CI matrix), but the
//! cross-mode assertions construct both modes explicitly so they hold
//! regardless of the ambient mode.

use std::time::Duration;

use apu_sim::{ApuDevice, ExecMode, FaultPlan, RetryPolicy, SimConfig, TraceRecorder};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{CorpusSpec, EmbeddingStore, RagServer, ServeConfig, ShardedRagServer};

/// Runs the fixed golden workload — a 32-query open-loop stream with a
/// deterministic 40% task-fault plan, bounded retries, and a tight TTL
/// — in the given mode, returning the recorder.
fn record(mode: ExecMode) -> TraceRecorder {
    let st = EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 4_096,
        },
        7,
    );
    let mut dev = ApuDevice::new(
        SimConfig::default()
            .with_exec_mode(mode)
            .with_l4_bytes(8 << 20),
    );
    dev.inject_faults(FaultPlan::new(13).fail_task_rate(0.4));
    let (sink, recorder) = TraceRecorder::shared();
    dev.install_trace_sink(sink);
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    {
        let cfg = ServeConfig {
            ttl: Some(Duration::from_millis(2)),
            retry: Some(RetryPolicy::default()),
            ..ServeConfig::default()
        };
        let mut server = RagServer::new(&mut dev, &mut hbm, &st, cfg);
        for i in 0..32u64 {
            server
                .submit(Duration::from_micros(20 * i), st.query(i))
                .expect("submit");
        }
        server.drain().expect("drain");
    }
    dev.clear_trace_sink();
    let recorder = std::rc::Rc::try_unwrap(recorder)
        .expect("device handle was cleared")
        .into_inner();
    assert!(!recorder.is_empty(), "the workload must emit events");
    recorder
}

/// Same seed, same workload, same mode → byte-identical trace,
/// timestamps included.
#[test]
fn replays_are_byte_identical() {
    let mode = ExecMode::from_env(ExecMode::Functional);
    let a = record(mode);
    let b = record(mode);
    assert_eq!(a.signature(), b.signature());
    assert_eq!(a.len(), b.len());
}

/// Functional and timing-only runs tell the same story: identical
/// timestamp-free event streams, event for event.
#[test]
fn functional_and_timing_traces_agree_modulo_timestamps() {
    let functional = record(ExecMode::Functional);
    let timing = record(ExecMode::TimingOnly);
    let f = functional.kind_signatures();
    let t = timing.kind_signatures();
    assert_eq!(
        f.len(),
        t.len(),
        "modes must emit the same number of events"
    );
    for (i, (fs, ts)) in f.iter().zip(&t).enumerate() {
        assert_eq!(fs, ts, "event {i} diverges between modes");
    }
}

/// The golden workload exercises every lifecycle event class, so the
/// byte-identity above is a meaningful pin, not a vacuous one.
#[test]
fn golden_workload_covers_the_event_vocabulary() {
    use apu_sim::TraceEventKind::*;
    let rec = record(ExecMode::from_env(ExecMode::Functional));
    let mut saw = [false; 7];
    for e in rec.events() {
        let slot = match &e.kind {
            TaskSubmitted { .. } => 0,
            BatchFormed { .. } => 1,
            DispatchIssued { .. } => 2,
            TaskRetired { .. } => 3,
            TaskRetried { .. } => 4,
            FaultInjected { .. } => 5,
            TaskFailed { .. } | TaskExpired { .. } => 6,
            _ => continue,
        };
        saw[slot] = true;
    }
    const NAMES: [&str; 7] = [
        "TaskSubmitted",
        "BatchFormed",
        "DispatchIssued",
        "TaskRetired",
        "TaskRetried",
        "FaultInjected",
        "TaskFailed/TaskExpired",
    ];
    for (seen, name) in saw.iter().zip(NAMES) {
        assert!(seen, "golden workload never emitted {name}");
    }
}

/// Runs the fixed failover workload — a 2-shard × 2-replica cluster with
/// replica (0,0) killed outright and an 8-query open-loop stream — in
/// the given mode, returning one recorder per device (device order:
/// shard-major, replica-minor).
fn record_failover(mode: ExecMode) -> Vec<TraceRecorder> {
    let st = EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 2_048,
        },
        7,
    );
    let mut server = ShardedRagServer::new(
        &st,
        2,
        SimConfig::default()
            .with_exec_mode(mode)
            .with_l4_bytes(8 << 20),
        ServeConfig {
            replicas: 2,
            ..ServeConfig::default()
        },
    )
    .expect("cluster construction");
    server.inject_faults_replica(0, 0, FaultPlan::new(11).fail_every_kth_task(1));
    let mut recorders = Vec::new();
    for s in 0..2 {
        for r in 0..2 {
            let (sink, recorder) = TraceRecorder::shared();
            server.replica_device_mut(s, r).install_trace_sink(sink);
            recorders.push(recorder);
        }
    }
    for i in 0..8u64 {
        server
            .submit(Duration::from_micros(20 * i), st.query(i))
            .expect("submit");
    }
    let report = server.drain().expect("drain");
    assert_eq!(report.served(), 8, "failover must keep the stream whole");
    assert_eq!(report.degraded(), 0);
    assert!(report.replica.failovers >= 1);
    for s in 0..2 {
        for r in 0..2 {
            server.replica_device_mut(s, r).clear_trace_sink();
        }
    }
    recorders
        .into_iter()
        .map(|r| {
            let rec = std::rc::Rc::try_unwrap(r)
                .expect("device handle was cleared")
                .into_inner();
            assert!(!rec.is_empty(), "every replica must emit events");
            rec
        })
        .collect()
}

/// The failover scenario replays byte-identically, per device — the
/// fault on the dead replica, the `replica-down` transition, and every
/// `failover` re-issue land at the same cycle on every run — and the
/// replication-specific events actually appear in the stream.
#[test]
fn failover_replays_are_byte_identical() {
    let mode = ExecMode::from_env(ExecMode::Functional);
    let a = record_failover(mode);
    let b = record_failover(mode);
    assert_eq!(a.len(), b.len());
    for (d, (ra, rb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(
            ra.signature(),
            rb.signature(),
            "device {d} trace diverges between identical runs"
        );
    }
    let all_kinds: Vec<String> = a.iter().flat_map(|r| r.kind_signatures()).collect();
    assert!(
        all_kinds.iter().any(|k| k.starts_with("replica-down")),
        "the dead replica must be marked down in the trace"
    );
    assert!(
        all_kinds.iter().any(|k| k.starts_with("failover")),
        "failover re-issues must be traced"
    );
}

/// Functional and timing-only runs of the failover scenario tell the
/// same story on every device: identical timestamp-free event streams,
/// including the same faults, down transitions, and failover re-issues.
#[test]
fn failover_functional_and_timing_traces_agree() {
    let functional = record_failover(ExecMode::Functional);
    let timing = record_failover(ExecMode::TimingOnly);
    assert_eq!(functional.len(), timing.len());
    for (d, (f, t)) in functional.iter().zip(&timing).enumerate() {
        let fs = f.kind_signatures();
        let ts = t.kind_signatures();
        assert_eq!(
            fs.len(),
            ts.len(),
            "device {d}: modes must emit the same number of events"
        );
        for (i, (a, b)) in fs.iter().zip(&ts).enumerate() {
            assert_eq!(a, b, "device {d} event {i} diverges between modes");
        }
    }
}
