//! Failure-containment tests for the DeviceQueue serving engine.
//!
//! The contract under test: a fault — injected, kernel-raised, or a
//! missed deadline — is contained to the task it hits. Every submitted
//! handle retires with a completion (success or error), siblings of a
//! poisoned batch member serve hits bitwise-identical to a fault-free
//! run, deadline-expired tasks never touch the device, and retries are
//! bounded and deterministic.
//!
//! The suite runs in both simulator modes via `APU_SIM_TEST_MODE` (see
//! the CI matrix); data-equality assertions are gated on functional
//! mode, scheduling/accounting assertions hold in both.

use std::collections::HashMap;
use std::time::Duration;

use apu_sim::{
    ApuDevice, DeviceQueue, Error, ExecMode, FaultPlan, QueueConfig, RetryPolicy, SimConfig,
    TaskSpec, VecOp,
};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{CorpusSpec, EmbeddingStore, Hit, RagServer, ServeConfig, ServeReport, ShardedRagServer};

fn mode() -> ExecMode {
    ExecMode::from_env(ExecMode::Functional)
}

fn device() -> ApuDevice {
    ApuDevice::new(
        SimConfig::default()
            .with_exec_mode(mode())
            .with_l4_bytes(8 << 20),
    )
}

fn store(chunks: usize) -> EmbeddingStore {
    EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks,
        },
        77,
    )
}

/// Serves `queries` through a fresh device; `fault_rate > 0` arms a
/// deterministic fault plan with bounded retries.
fn serve(st: &EmbeddingStore, queries: &[Vec<i16>], fault_rate: f64) -> ServeReport {
    let mut dev = device();
    if fault_rate > 0.0 {
        dev.inject_faults(FaultPlan::new(42).fail_task_rate(fault_rate));
    }
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let cfg = ServeConfig {
        retry: (fault_rate > 0.0).then(RetryPolicy::default),
        ..ServeConfig::default()
    };
    let mut server = RagServer::new(&mut dev, &mut hbm, st, cfg);
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(Duration::from_micros(20 * i as u64), q.clone())
            .expect("submission under capacity");
    }
    server.drain().expect("drain never aborts on task failure")
}

fn hits_by_ticket(r: &ServeReport) -> HashMap<u64, Vec<Hit>> {
    r.completions
        .iter()
        .filter_map(|c| c.hits().map(|h| (c.ticket.id(), h.to_vec())))
        .collect()
}

/// One failing job in a stream of ten leaves the other nine untouched:
/// the drain does not abort, the failed handle retires with its error,
/// and accounting splits cleanly into completed vs failed.
#[test]
fn single_task_failure_is_isolated() {
    let mut dev = device();
    let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
    let mut handles = Vec::new();
    for i in 0..10u32 {
        let h = if i == 4 {
            q.submit(TaskSpec::job(Box::new(|_dev: &mut ApuDevice| {
                Err(Error::TaskFailed("injected kernel failure".into()))
            })))
        } else {
            q.submit(TaskSpec::typed(move |dev: &mut ApuDevice| {
                let r = dev.run_task(|ctx| {
                    ctx.core_mut().charge(VecOp::AddU16);
                    Ok(())
                })?;
                Ok((r, i))
            }))
        }
        .expect("submission");
        handles.push(h);
    }
    let done = q.drain().expect("drain must not abort on the failure");
    assert_eq!(done.len(), 10, "no dropped handles");
    for (i, &h) in handles.iter().enumerate() {
        let c = done.iter().find(|c| c.handle == h).expect("handle retired");
        if i == 4 {
            assert!(matches!(c.error(), Some(Error::TaskFailed(_))));
        } else {
            assert_eq!(c.output::<u32>(), Some(&(i as u32)));
        }
    }
    assert_eq!(q.stats().completed, 9);
    assert_eq!(q.stats().failed, 1);
}

/// A 10% injected task-failure rate: every query retires (served or
/// failed, never dropped), and each served query's hits are bitwise
/// identical to the fault-free run of the same stream.
#[test]
fn injected_faults_leave_survivors_bitwise_identical() {
    let st = store(8_192);
    let queries: Vec<Vec<i16>> = (0..24).map(|i| st.query(500 + i)).collect();
    let clean = serve(&st, &queries, 0.0);
    let faulted = serve(&st, &queries, 0.1);

    assert_eq!(clean.completions.len(), queries.len());
    assert_eq!(
        faulted.completions.len(),
        queries.len(),
        "every query must retire, served or failed"
    );
    assert_eq!(faulted.served() + faulted.failed(), queries.len());
    for c in &faulted.completions {
        if let Some(e) = c.error() {
            assert!(
                matches!(e, Error::FaultInjected(_)),
                "unexpected failure cause: {e}"
            );
        }
    }
    if mode().is_functional() {
        let clean_hits = hits_by_ticket(&clean);
        for (ticket, hits) in hits_by_ticket(&faulted) {
            assert_eq!(
                &hits, &clean_hits[&ticket],
                "query {ticket} diverged from the fault-free run"
            );
        }
    }
}

/// A poisoned batch member fails alone: the fault plan targets single
/// members of coalesced dispatches, and their siblings still serve hits
/// identical to an unbatched, fault-free reference.
#[test]
fn poisoned_batch_member_fails_alone() {
    let st = store(8_192);
    let queries: Vec<Vec<i16>> = (0..8).map(|i| st.query(900 + i)).collect();

    // Every second task check fails: with all eight queries arriving
    // together, coalesced dispatches lose alternating members while the
    // rest of the batch proceeds.
    let mut dev = device();
    dev.inject_faults(FaultPlan::new(1).fail_every_kth_task(2));
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let mut server = RagServer::new(&mut dev, &mut hbm, &st, ServeConfig::default());
    for q in &queries {
        server.submit(Duration::ZERO, q.clone()).expect("submit");
    }
    let faulted = server.drain().expect("drain");

    assert_eq!(faulted.completions.len(), queries.len());
    assert_eq!(faulted.failed(), queries.len() / 2);
    assert_eq!(faulted.served(), queries.len() / 2);
    for c in faulted.completions.iter().filter(|c| !c.is_ok()) {
        assert!(matches!(c.error(), Some(Error::FaultInjected(_))));
    }
    // Siblings of poisoned members ride a *smaller* batch but produce
    // the same hits as the fault-free run.
    let clean = serve(&st, &queries, 0.0);
    if mode().is_functional() {
        let clean_hits = hits_by_ticket(&clean);
        for (ticket, hits) in hits_by_ticket(&faulted) {
            assert_eq!(
                &hits, &clean_hits[&ticket],
                "sibling {ticket} diverged after a batch mate was poisoned"
            );
        }
    }
}

/// Deadline-expired queries are shed without ever dispatching: under an
/// overload the TTL'd stream reports `DeadlineExceeded` errors, the
/// survivors serve normally, and shed queries consume no device time.
#[test]
fn deadline_expired_queries_never_dispatch() {
    let st = store(8_192);
    // 32 queries arriving back-to-back against a multi-ms per-dispatch
    // service time: the backlog cannot clear within a 3 ms TTL.
    let queries: Vec<Vec<i16>> = (0..32).map(|i| st.query(i)).collect();
    let mut dev = device();
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let cfg = ServeConfig {
        max_batch: 1, // no coalescing: the backlog drains slowly
        ttl: Some(Duration::from_millis(3)),
        ..ServeConfig::default()
    };
    let mut server = RagServer::new(&mut dev, &mut hbm, &st, cfg);
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(Duration::from_micros(i as u64), q.clone())
            .expect("submit");
    }
    let report = server.drain().expect("drain");

    assert_eq!(report.completions.len(), queries.len());
    assert!(
        report.queue.expired > 0,
        "the overloaded stream must shed work"
    );
    assert!(report.served() > 0, "early arrivals still serve");
    assert_eq!(report.failed() as u64, report.queue.expired);
    for c in report.completions.iter().filter(|c| !c.is_ok()) {
        assert!(matches!(c.error(), Some(Error::DeadlineExceeded { .. })));
        assert_eq!(
            c.started_at, c.finished_at,
            "shed queries consume no device time"
        );
    }
    // Shed queries do not inflate dispatch counters.
    assert_eq!(report.queue.dispatches as usize, report.served());
}

/// Runs `queries` through a three-shard cluster; `fault_shard` arms a
/// fail-every-dispatch plan on that one shard.
fn serve_sharded(
    st: &EmbeddingStore,
    queries: &[Vec<i16>],
    fault_shard: Option<usize>,
) -> ServeReport {
    let mut server = ShardedRagServer::new(
        st,
        3,
        SimConfig::default()
            .with_exec_mode(mode())
            .with_l4_bytes(8 << 20),
        ServeConfig::default(),
    )
    .expect("cluster construction");
    if let Some(shard) = fault_shard {
        server.inject_faults(shard, FaultPlan::new(7).fail_every_kth_task(1));
    }
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(Duration::from_micros(20 * i as u64), q.clone())
            .expect("submission under capacity");
    }
    server.drain().expect("drain never aborts on shard failure")
}

/// A fully faulted shard in a three-shard cluster is contained to that
/// shard: every query still serves (degraded, never failed), the healthy
/// shards' completions are bitwise identical to the fault-free run, and
/// the cluster-level accounting balances — queries split cleanly into
/// served vs failed, shard-task counters into completed vs failed.
#[test]
fn faulted_shard_degrades_queries_and_leaves_other_shards_bitwise_identical() {
    let st = store(9_000);
    let queries: Vec<Vec<i16>> = (0..10).map(|i| st.query(300 + i)).collect();
    let clean = serve_sharded(&st, &queries, None);
    let faulted = serve_sharded(&st, &queries, Some(1));

    // Query-level accounting balances: everything retires, nothing
    // fails — losing one of three shards degrades, it does not fail.
    assert_eq!(faulted.completions.len(), queries.len());
    assert_eq!(faulted.served() + faulted.failed(), queries.len());
    assert_eq!(faulted.served(), queries.len());
    assert_eq!(faulted.failed(), 0);
    assert_eq!(faulted.degraded(), queries.len());
    for c in &faulted.completions {
        assert_eq!((c.shards_ok, c.shards_total), (2, 3));
        assert!(c.is_degraded(), "query {} must be flagged", c.ticket.id());
    }

    // Shard-task accounting: only shard 1 fails, and exactly once per
    // query; the cluster aggregate is the sum of the shard queues.
    assert_eq!(faulted.shards[1].failed as usize, queries.len());
    assert_eq!(faulted.shards[0].failed + faulted.shards[2].failed, 0);
    assert_eq!(faulted.shards[0].completed as usize, queries.len());
    assert_eq!(faulted.shards[2].completed as usize, queries.len());
    assert_eq!(
        faulted.queue.completed + faulted.queue.failed,
        faulted.shards.iter().map(|s| s.completed + s.failed).sum()
    );

    // The healthy shards never see the fault: their queue counters and
    // their hits match the fault-free run exactly.
    for shard in [0usize, 2] {
        assert_eq!(
            faulted.shards[shard].completed, clean.shards[shard].completed,
            "shard {shard} accounting diverged"
        );
    }
    if mode().is_functional() {
        // Degraded hits are exact over the healthy shards: re-rank the
        // fault-free (full-corpus) hits without shard 1's chunk range
        // and the result must match bitwise.
        let shard1 = st.shards(3)[1].range();
        let clean_hits = hits_by_ticket(&clean);
        for c in &faulted.completions {
            let hits = c.hits().expect("served");
            assert!(
                hits.iter().all(|h| !shard1.contains(&h.chunk)),
                "query {} leaked hits from the faulted shard",
                c.ticket.id()
            );
            // Full-corpus hits that already avoid shard 1 must survive
            // unchanged at the head of the degraded ranking.
            let expected_head: Vec<Hit> = clean_hits[&c.ticket.id()]
                .iter()
                .filter(|h| !shard1.contains(&h.chunk))
                .copied()
                .collect();
            assert_eq!(
                &hits[..expected_head.len()],
                &expected_head[..],
                "query {} reordered surviving hits",
                c.ticket.id()
            );
        }
    }
}

/// Retries are bounded by the policy and fully deterministic: the same
/// seed yields the same per-query attempt counts, outcomes, and retry
/// totals on every run.
#[test]
fn retries_are_bounded_and_deterministic() {
    let st = store(4_096);
    let queries: Vec<Vec<i16>> = (0..12).map(|i| st.query(i)).collect();
    let outcomes = |r: &ServeReport| -> Vec<(u64, bool, u32)> {
        let mut v: Vec<_> = r
            .completions
            .iter()
            .map(|c| (c.ticket.id(), c.is_ok(), c.attempts))
            .collect();
        v.sort_unstable();
        v
    };
    let a = serve(&st, &queries, 0.3);
    let b = serve(&st, &queries, 0.3);
    assert_eq!(
        outcomes(&a),
        outcomes(&b),
        "fault plan must be deterministic"
    );
    assert_eq!(a.queue.retries, b.queue.retries);
    let max_attempts = RetryPolicy::default().max_retries + 1;
    for (ticket, _, attempts) in outcomes(&a) {
        assert!(
            attempts <= max_attempts,
            "query {ticket} exceeded the retry budget: {attempts} attempts"
        );
    }
    assert!(
        a.queue.retries > 0,
        "a 30% fault rate must trigger at least one retry"
    );
}
