//! Property tests for the SLO-aware traffic engine: weighted fair-share
//! scheduling never starves a tenant and tracks the configured shares;
//! EDF-ordered batch coalescing preserves the sharded-vs-flat retrieval
//! exactness of `tests/sharding_props.rs`; and the workload-trace
//! generator is a pure function of its seed.

use std::time::Duration;

use apu_sim::{
    ApuDevice, ArrivalProcess, DeviceQueue, ExecMode, Priority, QueueConfig, SchedPolicy,
    SimConfig, TaskSpec, TenantId, TenantTraffic, TrafficSpec, VecOp,
};
use hbm_sim::{DramSpec, MemorySystem};
use proptest::prelude::*;
use rag::{retrieve_batch, CorpusSpec, EmbeddingStore, QuerySpec, ServeConfig, ShardedRagServer};

fn device() -> ApuDevice {
    ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20))
}

fn charge_spec(tenant: TenantId) -> TaskSpec<'static> {
    TaskSpec::kernel(|ctx: &mut apu_sim::ApuContext<'_>| {
        ctx.core_mut().charge(VecOp::AddU16);
        Ok(())
    })
    .tenant(tenant)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No starvation: with every tenant backlogged from t=0 at one
    /// priority, each tenant's FIRST task dispatches within the first
    /// `tenants` dispatches — regardless of how skewed the fair-share
    /// weights are and which tenant submitted first. (Start-time fair
    /// queueing tags a tenant's first admission with the current virtual
    /// time, so no weight assignment can push it behind another tenant's
    /// whole backlog.)
    #[test]
    fn fair_share_never_starves_a_tenant(
        weights in proptest::collection::vec(1u64..=9, 2..=4),
        per_tenant in 2usize..=5,
        rotate in 0usize..4,
    ) {
        let tenants = weights.len();
        let mut dev = device();
        let mut cfg = QueueConfig::default().with_scheduler(SchedPolicy::SloAware);
        for (i, &w) in weights.iter().enumerate() {
            cfg = cfg.with_tenant_weight(TenantId::new(i as u64), w);
        }
        let mut q = DeviceQueue::new(&mut dev, cfg);
        // Submission order rotates so the starved-candidate tenant is
        // not always the last submitter.
        for j in 0..per_tenant {
            for t in 0..tenants {
                let t = (t + rotate) % tenants;
                q.submit(charge_spec(TenantId::new(t as u64))).unwrap();
                let _ = j;
            }
        }
        let done = q.drain().unwrap();
        prop_assert_eq!(done.len(), tenants * per_tenant);
        for t in 0..tenants as u64 {
            let first = done
                .iter()
                .position(|c| c.tenant.get() == t)
                .expect("every tenant completes");
            prop_assert!(
                first < tenants,
                "tenant {} first served at dispatch {} (weights {:?})",
                t, first, &weights
            );
        }
        // Bounded wait in aggregate: every tenant finishes all its work.
        let s = q.stats();
        for t in 0..tenants as u64 {
            prop_assert_eq!(s.per_tenant[&t].completed, per_tenant as u64);
        }
    }

    /// Weighted share: two backlogged tenants split the first `n`
    /// dispatches in proportion to their configured weights, within a
    /// ±2 discretization tolerance.
    #[test]
    fn fair_share_tracks_the_configured_ratio(
        w_heavy in 1u64..=6,
        w_light in 1u64..=6,
        n in 4usize..=10,
    ) {
        let heavy = TenantId::new(1);
        let light = TenantId::new(2);
        let mut dev = device();
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default()
                .with_scheduler(SchedPolicy::SloAware)
                .with_tenant_weight(heavy, w_heavy)
                .with_tenant_weight(light, w_light),
        );
        for _ in 0..12 {
            q.submit(charge_spec(heavy)).unwrap();
        }
        for _ in 0..12 {
            q.submit(charge_spec(light)).unwrap();
        }
        let done = q.drain().unwrap();
        let got = done
            .iter()
            .take(n)
            .filter(|c| c.tenant == heavy)
            .count() as f64;
        let expected = n as f64 * w_heavy as f64 / (w_heavy + w_light) as f64;
        prop_assert!(
            (got - expected).abs() <= 2.0,
            "heavy got {} of first {} dispatches, expected ~{:.2} (weights {}:{})",
            got, n, expected, w_heavy, w_light
        );
    }

    /// The trace generator is a pure function of (spec, seed, horizon):
    /// two generations agree event-for-event, events are sorted, and
    /// every deadline is exactly the arrival plus the tenant's SLO.
    #[test]
    fn workload_traces_are_seed_deterministic(
        seed in any::<u64>(),
        rate in 50.0f64..3000.0,
        horizon_ms in 5u64..=100,
    ) {
        let slo = Duration::from_millis(4);
        let spec = TrafficSpec::new(vec![
            TenantTraffic::new(TenantId::new(1), ArrivalProcess::Poisson { rate_qps: rate })
                .slo(slo),
            TenantTraffic::new(
                TenantId::new(2),
                ArrivalProcess::Burst {
                    base_qps: rate / 4.0,
                    burst_qps: rate * 2.0,
                    period: Duration::from_millis(10),
                    burst_len: Duration::from_millis(2),
                },
            )
            .priority(Priority::Low),
        ]);
        let horizon = Duration::from_millis(horizon_ms);
        let a = spec.generate(seed, horizon);
        let b = spec.generate(seed, horizon);
        prop_assert_eq!(&a.events, &b.events, "same seed, same trace");
        for w in a.events.windows(2) {
            prop_assert!(w[0].at <= w[1].at, "events sorted by arrival");
        }
        for e in &a.events {
            prop_assert!(e.at < horizon);
            match e.tenant.get() {
                1 => prop_assert_eq!(e.deadline, Some(e.at + slo)),
                _ => prop_assert_eq!(e.deadline, None),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// EDF-within-batch-key under the SLO-aware scheduler preserves the
    /// sharded-vs-flat exactness property: deadline-tagged, tenant-tagged
    /// queries served by a sharded SLO-aware cluster return exactly the
    /// hits of the synchronous single-device kernel — reordering batch
    /// membership by deadline must never change retrieval results.
    #[test]
    fn slo_scheduling_preserves_sharded_retrieval_exactness(
        chunks in 64usize..=512,
        k in 1usize..=6,
        shards in 1usize..=6,
        nq in 2usize..=4,
    ) {
        let st = EmbeddingStore::materialized(
            CorpusSpec { corpus_bytes: 0, chunks },
            77,
        );
        let queries: Vec<Vec<i16>> = (0..nq as u64).map(|i| st.query(i)).collect();

        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_exec_mode(ExecMode::Functional)
                .with_l4_bytes(8 << 20),
        );
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let reference = retrieve_batch(&mut dev, &mut hbm, &st, &queries, k)
            .expect("reference retrieval");

        let mut server = ShardedRagServer::new(
            &st,
            shards,
            SimConfig::default()
                .with_exec_mode(ExecMode::Functional)
                .with_l4_bytes(8 << 20),
            ServeConfig {
                k,
                queue: QueueConfig::default()
                    .with_scheduler(SchedPolicy::SloAware)
                    .with_tenant_weight(TenantId::new(1), 4),
                ..ServeConfig::default()
            },
        )
        .expect("cluster construction");
        for (i, q) in queries.iter().enumerate() {
            server
                .submit_query(
                    QuerySpec::new(Duration::from_micros(10 * i as u64), q.clone())
                        .tenant(TenantId::new(1 + (i as u64 % 2)))
                        // Staggered SLOs give EDF a real ordering choice;
                        // generous enough that nothing sheds.
                        .ttl(Duration::from_secs(2 + (nq - i) as u64)),
                )
                .expect("submit");
        }
        let report = server.drain().expect("drain");

        prop_assert_eq!(report.served(), nq);
        prop_assert_eq!(report.degraded(), 0);
        for done in &report.completions {
            prop_assert_eq!(
                done.hits().expect("served"),
                &reference.hits[done.ticket.id() as usize][..],
                "query {} diverged: chunks={} shards={} k={}",
                done.ticket.id(), chunks, shards, k
            );
        }
        // Per-tenant accounting fans out with the queries.
        let per_tenant = &report.queue.per_tenant;
        let tasks: u64 = per_tenant.values().map(|t| t.submitted).sum();
        prop_assert_eq!(tasks, (nq * shards) as u64);
    }
}

/// Hedged fan-out on a healthy cluster stays exact: every (query, shard)
/// pair gets a primary and a hedge copy, the merge keeps one winner per
/// shard, and the hits still match the synchronous single-device kernel.
#[test]
fn hedged_fanout_preserves_exactness_and_doubles_shard_tasks() {
    let st = EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 600,
        },
        77,
    );
    let queries: Vec<Vec<i16>> = (0..3u64).map(|i| st.query(i)).collect();
    let sim = SimConfig::default()
        .with_exec_mode(ExecMode::Functional)
        .with_l4_bytes(8 << 20);

    let mut dev = ApuDevice::new(sim.clone());
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let reference = retrieve_batch(&mut dev, &mut hbm, &st, &queries, 5).expect("reference");

    let shards = 3;
    let mut server = ShardedRagServer::new(
        &st,
        shards,
        sim,
        ServeConfig {
            hedge: Some(Duration::from_micros(200)),
            ..ServeConfig::default()
        },
    )
    .expect("cluster construction");
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(Duration::from_micros(5 * i as u64), q.clone())
            .expect("submit");
    }
    let report = server.drain().expect("drain");

    assert_eq!(report.completions.len(), queries.len());
    assert_eq!(report.served(), queries.len());
    for done in &report.completions {
        assert_eq!((done.shards_ok, done.shards_total), (shards, shards));
        assert_eq!(
            done.hits().expect("served"),
            &reference.hits[done.ticket.id() as usize][..],
            "query {}",
            done.ticket.id()
        );
    }
    // Queue counters see both copies; the query count does not.
    assert_eq!(
        report.queue.submitted,
        (queries.len() * shards * 2) as u64,
        "hedging doubles shard-tasks"
    );
}
