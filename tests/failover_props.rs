//! Property tests for the replication layer: placement invariants,
//! health-tracker semantics, and the consistent-hash minimal-movement
//! bound behind elastic resharding.
//!
//! These are pure `apu-sim` properties — no device simulation — so they
//! sweep wide parameter spaces cheaply. The end-to-end kill-a-replica
//! differential (replicated serving equals the flat single-device scan
//! under replica faults) lives in `tests/sharding_props.rs`; this file
//! proves the building blocks it relies on:
//!
//! * every shard always has at least one replica, and replicas of one
//!   shard land on **distinct** devices whenever capacity allows;
//! * a device is down exactly when its trailing streak of
//!   device-attributable failures reaches the threshold, and any
//!   success revives it;
//! * resharding N → N±1 with [`key_shard`] moves at most
//!   `ceil(keys/N) + slack` keys — the minimal-movement property that
//!   makes elastic scale-up/down cheap while serving.

use apu_sim::{key_shard, HealthTracker, Placement};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Placement invariants over the full (shards, replicas, devices)
    /// lattice: construction succeeds for any non-zero counts, every
    /// shard gets `min(replicas, devices)` replicas (≥ 1), all device
    /// indices are in range, and no shard holds two copies on the same
    /// device.
    #[test]
    fn placement_gives_every_shard_distinct_in_range_replicas(
        shards in 1usize..=16,
        replicas in 1usize..=4,
        devices in 1usize..=16,
    ) {
        let p = Placement::new(shards, replicas, devices).expect("non-zero counts");
        prop_assert_eq!(p.shards(), shards);
        prop_assert_eq!(p.devices(), devices);
        prop_assert_eq!(p.width(), replicas.min(devices));
        for s in 0..shards {
            let group = p.replicas(s);
            prop_assert!(!group.is_empty(), "shard {} has no replica", s);
            prop_assert_eq!(group.len(), replicas.min(devices));
            let mut sorted = group.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(
                sorted.len(), group.len(),
                "shard {} placed two copies on one device: {:?}", s, group
            );
            for &d in group {
                prop_assert!(d < devices, "device {} out of range", d);
            }
        }
        // Deterministic: the same inputs always give the same placement.
        prop_assert_eq!(&p, &Placement::new(shards, replicas, devices).unwrap());
    }

    /// Health differential: replay an arbitrary outcome sequence against
    /// a trivial trailing-streak model. A device must be down exactly
    /// when its trailing failure streak has reached the threshold, and
    /// the number of up→down transitions must match the model's.
    #[test]
    fn health_tracker_matches_the_trailing_streak_model(
        threshold in 1u32..=3,
        events in proptest::collection::vec((0usize..4, any::<bool>()), 0..64),
    ) {
        let devices = 4;
        let mut tracker = HealthTracker::with_threshold(devices, threshold);
        let mut streak = vec![0u32; devices];
        let mut down = vec![false; devices];
        let mut transitions = 0u64;
        for &(d, ok) in &events {
            if ok {
                tracker.record_success(d);
                streak[d] = 0;
                down[d] = false;
            } else {
                tracker.record_failure(d);
                streak[d] += 1;
                if !down[d] && streak[d] >= threshold {
                    down[d] = true;
                    transitions += 1;
                }
            }
        }
        for (d, &is_down) in down.iter().enumerate() {
            prop_assert_eq!(
                tracker.is_up(d), !is_down,
                "device {} diverged after {:?}", d, events
            );
        }
        prop_assert_eq!(tracker.down_transitions(), transitions);
        let expected_down: Vec<usize> =
            (0..devices).filter(|&d| down[d]).collect();
        prop_assert_eq!(tracker.down_devices(), expected_down);
    }

    /// Minimal-movement bound for elastic resharding: growing or
    /// shrinking the shard count by one moves at most
    /// `ceil(keys/from) + slack` keys (the jump hash's expected movement
    /// is `keys / max(from, to)`; the slack absorbs per-case variance).
    /// Every key's assignment stays in range before and after.
    #[test]
    fn resharding_by_one_moves_at_most_its_fair_share(
        keys in proptest::collection::vec(any::<u64>(), 32..=512),
        from in 1usize..=6,
        grow in any::<bool>(),
    ) {
        let to = if grow { from + 1 } else { from.max(2) - 1 };
        let mut moved = 0usize;
        for &key in &keys {
            let a = key_shard(key, from);
            let b = key_shard(key, to);
            prop_assert!(a < from, "shard {} out of range {}", a, from);
            prop_assert!(b < to, "shard {} out of range {}", b, to);
            if a != b {
                moved += 1;
            }
        }
        if from == to {
            prop_assert_eq!(moved, 0);
        } else {
            let slack = keys.len() / 8 + 8;
            let bound = keys.len().div_ceil(from) + slack;
            prop_assert!(
                moved <= bound,
                "resharding {} -> {} moved {} of {} keys (bound {})",
                from, to, moved, keys.len(), bound
            );
        }
    }
}

/// A resized [`Placement`] keeps the invariants (this is the placement
/// side of elastic scale-up/down; key movement is bounded above).
#[test]
fn resized_placement_keeps_width_and_distinctness() {
    let p = Placement::new(4, 2, 8).unwrap();
    for new_shards in [3usize, 5] {
        let q = p.resized(new_shards).unwrap();
        assert_eq!(q.shards(), new_shards);
        assert_eq!(q.devices(), 8);
        assert_eq!(q.width(), 2);
        for s in 0..new_shards {
            let g = q.replicas(s);
            assert_eq!(g.len(), 2);
            assert_ne!(g[0], g[1]);
        }
    }
}
