//! Integration tests for the device command-queue serving engine:
//! mixed RAG + Phoenix traffic through one [`DeviceQueue`], priority
//! ordering, stats accounting against the device totals, and
//! byte-identical results between the queued and synchronous paths.

use std::time::Duration;

use apu_sim::{ApuDevice, DeviceQueue, Priority, QueueConfig, SimConfig, TaskSpec, VcuStats};
use hbm_sim::{DramSpec, MemorySystem};
use phoenix::{histogram, OptConfig};
use rag::{retrieve_batch, CorpusSpec, EmbeddingStore, Hit, RagServer, ServeConfig};

fn store(chunks: usize) -> EmbeddingStore {
    EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks,
        },
        7,
    )
}

#[test]
fn mixed_rag_and_phoenix_tasks_share_the_queue() {
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(16 << 20));
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let store = store(8192);
    let stats_before = dev.stats_total();

    let pixels = histogram::generate(30_000, 3);
    let queries: Vec<Vec<i16>> = (0..3).map(|i| store.query(i)).collect();

    let (hist_out, rag_hits, completion_stats) = {
        let hbm_cell = std::cell::RefCell::new(&mut hbm);
        let mut queue = DeviceQueue::new(&mut dev, QueueConfig::default());

        // Background analytics at low priority...
        let h_hist = histogram::enqueue(&mut queue, Priority::Low, &pixels, OptConfig::all())
            .expect("histogram submission");
        // ...and a latency-sensitive retrieval batch at high priority.
        let q = queries.clone();
        let st = &store;
        let h_rag = queue
            .submit(
                TaskSpec::typed(move |dev: &mut ApuDevice| {
                    let mut hbm = hbm_cell.borrow_mut();
                    let r = retrieve_batch(dev, &mut hbm, st, &q, 5)?;
                    Ok((r.report.clone(), r.hits))
                })
                .priority(Priority::High),
            )
            .expect("rag submission");

        let done = queue.drain().expect("mixed drain");
        assert_eq!(done.len(), 2);
        // The high-priority retrieval dispatches first even though the
        // histogram was submitted first (finish order may differ: the
        // short histogram can retire before the long retrieval).
        let by_handle = |h| done.iter().find(|c| c.handle == h).unwrap();
        assert!(by_handle(h_rag).started_at <= by_handle(h_hist).started_at);

        // Completion-report stats must sum to the device's own totals.
        let mut sum = VcuStats::default();
        for c in &done {
            sum.merge(&c.report.stats);
        }

        let mut hist = None;
        let mut hits = None;
        for c in done {
            if c.handle == h_hist {
                hist = Some(c.into_output::<histogram::Histogram>().unwrap());
            } else {
                hits = Some(c.into_output::<Vec<Vec<Hit>>>().unwrap());
            }
        }
        (hist.unwrap(), hits.unwrap(), sum)
    };

    let delta = &dev.stats_total() - &stats_before;
    assert_eq!(
        delta, completion_stats,
        "queue completion stats must equal the device stats delta"
    );

    // Functional results are correct for both workload families.
    assert_eq!(hist_out, histogram::cpu(&pixels));
    let mut hbm2 = MemorySystem::new(DramSpec::hbm2e_16gb());
    let mut dev2 = ApuDevice::new(SimConfig::default().with_l4_bytes(16 << 20));
    let sync = retrieve_batch(&mut dev2, &mut hbm2, &store, &queries, 5).unwrap();
    assert_eq!(rag_hits, sync.hits);
}

#[test]
fn priority_order_is_respected_on_a_single_core() {
    // One core makes dispatch order fully observable: everything queued
    // at time zero must retire in strict priority order.
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(16 << 20).with_cores(1));
    let pixels = histogram::generate(8_192, 1);
    let mut queue = DeviceQueue::new(&mut dev, QueueConfig::default());
    let order = [
        Priority::Low,
        Priority::Normal,
        Priority::High,
        Priority::Normal,
        Priority::Low,
    ];
    let handles: Vec<_> = order
        .iter()
        .map(|&p| histogram::enqueue(&mut queue, p, &pixels, OptConfig::none()).unwrap())
        .collect();
    let done = queue.drain().unwrap();
    let finish_rank = |i: usize| {
        done.iter()
            .position(|c| c.handle == handles[i])
            .expect("every handle retires")
    };
    // High (index 2) first; then the Normals FIFO (1 then 3); then the
    // Lows FIFO (0 then 4).
    let ranks: Vec<usize> = (0..order.len()).map(finish_rank).collect();
    assert_eq!(ranks, vec![3, 1, 0, 2, 4]);
}

#[test]
fn served_queries_match_synchronous_batches_bytewise() {
    let st = store(10_000);
    let queries: Vec<Vec<i16>> = (0..8).map(|i| st.query(100 + i)).collect();

    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20));
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let report = {
        let mut server = RagServer::new(&mut dev, &mut hbm, &st, ServeConfig::default());
        for q in &queries {
            server.submit(Duration::ZERO, q.clone()).unwrap();
        }
        server.drain().unwrap()
    };

    let mut dev2 = ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20));
    let mut hbm2 = MemorySystem::new(DramSpec::hbm2e_16gb());
    let sync = retrieve_batch(&mut dev2, &mut hbm2, &st, &queries, 5).unwrap();

    assert_eq!(report.completions.len(), queries.len());
    for done in &report.completions {
        assert_eq!(
            done.hits().expect("served"),
            sync.hits[done.ticket.id() as usize]
        );
    }
}
