//! Scheduler-invariant tests for the continuous-batching dispatcher.
//!
//! Continuous batching changes *when* work runs, not *what* runs or in
//! which order peers observe it. These tests pin the four invariants the
//! dispatcher must preserve no matter how batches form:
//!
//! 1. FIFO within a priority class survives coalescing;
//! 2. a batch never mixes priority classes or [`BatchKey`]s;
//! 3. batched retrieval results are bitwise-identical to the per-query
//!    synchronous path;
//! 4. admission control ([`QueueFull`]) triggers at exactly
//!    `max_pending`, independent of batch formation;
//!
//! plus the headline claim: at equal (saturating) offered load the
//! batched drain sustains strictly higher simulated QPS than the same
//! stream served one query per dispatch, with identical hits.
//!
//! [`QueueFull`]: apu_sim::Error::QueueFull

use std::collections::HashMap;
use std::time::Duration;

use apu_sim::{
    ApuDevice, BatchKey, Completion, DeviceQueue, Error, Priority, QueueConfig, SimConfig,
    TaskSpec, VecOp,
};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{ApuRetriever, CorpusSpec, EmbeddingStore, RagServer, RagVariant, ServeConfig};

/// Submits a batchable no-output job tagged with `tag` so dispatch
/// composition is observable from the completion stream.
fn submit_echo(
    q: &mut DeviceQueue<'_, '_>,
    priority: Priority,
    arrival: Duration,
    key: u64,
    tag: u32,
) -> apu_sim::TaskHandle {
    q.submit(
        TaskSpec::batch(
            BatchKey::new(key),
            Box::new(tag),
            Box::new(
                |dev: &mut ApuDevice, payloads: Vec<Box<dyn std::any::Any>>| {
                    let report = dev.run_task(|ctx| {
                        ctx.core_mut().charge(VecOp::MulS16);
                        Ok(())
                    })?;
                    Ok((report, payloads.into_iter().map(Ok).collect()))
                },
            ),
        )
        .priority(priority)
        .at(arrival),
    )
    .expect("submission under capacity")
}

fn device() -> ApuDevice {
    ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20))
}

/// Invariant 1: within one (priority, key) class, dispatch start times
/// and batch membership follow submission order — coalescing never lets
/// a later submission overtake an earlier one of its own class.
#[test]
fn fifo_within_class_survives_batching() {
    let mut dev = device();
    let mut q = DeviceQueue::new(
        &mut dev,
        QueueConfig::default()
            .with_max_batch(3)
            .with_max_batch_wait(Duration::from_millis(1)),
    );
    let handles: Vec<_> = (0..10)
        .map(|i| {
            submit_echo(
                &mut q,
                Priority::Normal,
                Duration::from_micros(10 * i),
                7,
                i as u32,
            )
        })
        .collect();
    let done = q.drain().expect("drain");

    // Reconstruct per-handle start times; submission order must imply
    // non-decreasing dispatch order.
    let started: HashMap<_, _> = done.iter().map(|c| (c.handle, c.started_at)).collect();
    for pair in handles.windows(2) {
        assert!(
            started[&pair[0]] <= started[&pair[1]],
            "job submitted earlier must not start later than its successor"
        );
    }
    // And within one dispatch, members are a contiguous run of the
    // submission order (no gaps: job i and i+2 batched while i+1 rides
    // a later dispatch would violate FIFO).
    let mut by_dispatch: HashMap<u64, Vec<usize>> = HashMap::new();
    for c in &done {
        let idx = handles.iter().position(|&h| h == c.handle).unwrap();
        by_dispatch
            .entry(c.dispatch.expect("dispatched"))
            .or_default()
            .push(idx);
    }
    for (dispatch, mut members) in by_dispatch {
        members.sort_unstable();
        for pair in members.windows(2) {
            assert_eq!(
                pair[1],
                pair[0] + 1,
                "dispatch {dispatch} skipped a submission: members {members:?}"
            );
        }
    }
}

/// Invariant 2: grouping completions by dispatch id, every group has a
/// single priority and a single batch key — the dispatcher never forms
/// mixed batches even when compatible-looking work is interleaved.
#[test]
fn batches_never_mix_priorities_or_keys() {
    let mut dev = device();
    let mut q = DeviceQueue::new(
        &mut dev,
        QueueConfig::default()
            .with_max_batch(8)
            .with_max_batch_wait(Duration::from_millis(5)),
    );
    // Interleave two keys and three priorities, all arriving inside one
    // batch window so the dispatcher is maximally tempted to merge.
    for i in 0..24u64 {
        let priority = match i % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        submit_echo(
            &mut q,
            priority,
            Duration::from_micros(i),
            1 + (i % 2),
            i as u32,
        );
    }
    let done = q.drain().expect("drain");
    assert_eq!(done.len(), 24);

    let mut groups: HashMap<u64, Vec<&Completion>> = HashMap::new();
    for c in &done {
        groups
            .entry(c.dispatch.expect("dispatched"))
            .or_default()
            .push(c);
    }
    assert!(
        groups.len() > 3,
        "expected several distinct dispatches, got {}",
        groups.len()
    );
    for (dispatch, members) in groups {
        let p0 = members[0].priority;
        let k0 = members[0].batch_key;
        assert!(k0.is_some(), "batchable members carry their key");
        for m in &members {
            assert_eq!(m.priority, p0, "dispatch {dispatch} mixed priorities");
            assert_eq!(m.batch_key, k0, "dispatch {dispatch} mixed batch keys");
        }
        assert_eq!(members.len(), members[0].batch_size);
    }
}

/// Invariant 3: every hit list coming out of the batched server is
/// bitwise-identical to a fresh per-query retrieval on a fresh device —
/// batching is a scheduling optimization, not a numerical one.
#[test]
fn batched_hits_are_bitwise_identical_to_per_query_retrieval() {
    let store = EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 8_192,
        },
        11,
    );
    let queries: Vec<Vec<i16>> = (0..9).map(|i| store.query(300 + i)).collect();

    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20));
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let report = {
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
        for (i, q) in queries.iter().enumerate() {
            server
                .submit(Duration::from_micros(20 * i as u64), q.clone())
                .unwrap();
        }
        server.drain().unwrap()
    };
    assert_eq!(report.completions.len(), queries.len());
    assert!(
        report.completions.iter().any(|c| c.batch_size > 1),
        "the stream must actually exercise coalescing"
    );

    let retriever = ApuRetriever::new(RagVariant::AllOpts);
    for done in &report.completions {
        let mut dev2 = ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20));
        let mut hbm2 = MemorySystem::new(DramSpec::hbm2e_16gb());
        let (hits, _, _) = retriever
            .retrieve(
                &mut dev2,
                &mut hbm2,
                &store,
                &queries[done.ticket.id() as usize],
                5,
            )
            .unwrap();
        assert_eq!(
            done.hits().expect("served"),
            hits,
            "query {} diverged from the synchronous path",
            done.ticket.id()
        );
    }
}

/// Invariant 4: admission control counts *pending submissions*, so
/// `QueueFull` fires at exactly `max_pending` no matter how many
/// dispatches the backlog would later coalesce into.
#[test]
fn queue_full_fires_at_exactly_max_pending() {
    let mut dev = device();
    let mut q = DeviceQueue::new(
        &mut dev,
        QueueConfig::default()
            .with_max_pending(4)
            .with_max_batch(8)
            .with_max_batch_wait(Duration::from_millis(1)),
    );
    for i in 0..4 {
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, 1, i);
    }
    // All four pending jobs would fold into ONE dispatch, but admission
    // is by submission count: the fifth submit must be rejected.
    let err = q
        .submit(TaskSpec::batch(
            BatchKey::new(1),
            Box::new(4u32),
            Box::new(
                |dev: &mut ApuDevice, payloads: Vec<Box<dyn std::any::Any>>| {
                    let report = dev.run_task(|_| Ok(()))?;
                    Ok((report, payloads.into_iter().map(Ok).collect()))
                },
            ),
        ))
        .expect_err("fifth submission must be rejected");
    match err {
        Error::QueueFull { pending, capacity } => {
            assert_eq!((pending, capacity), (4, 4));
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    let done = q.drain().expect("drain");
    assert_eq!(done.len(), 4);
    assert_eq!(
        done[0].batch_size, 4,
        "backlog still coalesces after reject"
    );
}

/// The acceptance bar: at a saturating offered load, the batched drain
/// sustains strictly higher simulated QPS than the unbatched drain of
/// the very same stream, and both produce identical hits per query.
#[test]
fn batched_drain_beats_unbatched_at_equal_offered_load() {
    let store = EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 16_384,
        },
        42,
    );
    // Saturating: arrivals far faster than per-query service, and more
    // queries than cores × MAX_BATCH can absorb in one wave.
    let queries: Vec<Vec<i16>> = (0..48).map(|i| store.query(i)).collect();
    let serve = |max_batch: usize| {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(16 << 20));
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let cfg = ServeConfig {
            max_batch,
            ..ServeConfig::default()
        };
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, cfg);
        for (i, q) in queries.iter().enumerate() {
            server
                .submit(Duration::from_micros(50 * i as u64), q.clone())
                .unwrap();
        }
        server.drain().unwrap()
    };

    let batched = serve(rag::MAX_BATCH);
    let unbatched = serve(1);

    assert_eq!(batched.completions.len(), queries.len());
    assert_eq!(unbatched.completions.len(), queries.len());

    // Identical hits, query by query.
    let by_ticket = |r: &rag::ServeReport| -> HashMap<u64, Vec<rag::Hit>> {
        r.completions
            .iter()
            .map(|c| (c.ticket.id(), c.hits().expect("served").to_vec()))
            .collect()
    };
    assert_eq!(by_ticket(&batched), by_ticket(&unbatched));

    // Fewer device dispatches, strictly higher sustained throughput.
    assert!(batched.queue.dispatches < unbatched.queue.dispatches);
    assert!(unbatched.completions.iter().all(|c| c.batch_size == 1));
    assert!(
        batched.throughput_qps() > unbatched.throughput_qps(),
        "batched {:.0} QPS must beat unbatched {:.0} QPS",
        batched.throughput_qps(),
        unbatched.throughput_qps()
    );
}
