//! Timing fast-forward must be observably invisible: the same workload
//! run with memoized replay enabled and disabled books byte-identical
//! cycles, statistics, and results (DESIGN.md §5i). Only wall-clock may
//! differ.
//!
//! The replay guards (timing-only mode, no faults, no trace sink, idle
//! DMA engines) are unit-tested in `apu-sim`; this test pins the
//! end-to-end property on the real RAG batch kernel and on a serving
//! queue, the paths `serve_qps --smoke` accelerates.

use apu_sim::{ApuDevice, ExecMode, SimConfig};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{retrieve_batch, CorpusSpec, EmbeddingStore};

fn timing_device(fast_forward: bool) -> ApuDevice {
    ApuDevice::new(
        SimConfig::default()
            .with_exec_mode(ExecMode::TimingOnly)
            .with_l4_bytes(1 << 20)
            .with_fast_forward(fast_forward),
    )
}

/// Runs the batched retrieval kernel several times (same signature) and
/// returns the per-call reports plus the final core clock.
fn run_batches(dev: &mut ApuDevice, n_calls: usize) -> (Vec<apu_sim::TaskReport>, u64) {
    let store = EmbeddingStore::size_only(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 100_000,
        },
        7,
    );
    let queries: Vec<Vec<i16>> = (0..4).map(|i| store.query(i)).collect();
    let mut reports = Vec::new();
    for _ in 0..n_calls {
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let r = retrieve_batch(dev, &mut hbm, &store, &queries, 5).unwrap();
        assert!(
            r.hits.iter().all(Vec::is_empty),
            "timing mode returns no hits"
        );
        reports.push(r.report);
    }
    let cycles = dev.core(0).unwrap().cycles().get();
    (reports, cycles)
}

#[test]
fn fast_forward_replays_are_byte_identical_to_normal_runs() {
    let mut normal = timing_device(false);
    let mut ff = timing_device(true);
    let (reports_n, cycles_n) = run_batches(&mut normal, 4);
    let (reports_f, cycles_f) = run_batches(&mut ff, 4);
    assert_eq!(reports_n, reports_f);
    assert_eq!(cycles_n, cycles_f);
    assert_eq!(normal.stats_total(), ff.stats_total());
    // The fast-forward device actually replayed: first call recorded,
    // the rest hit the cache.
    assert_eq!(ff.memo_counters().misses, 1);
    assert_eq!(ff.memo_counters().hits, 3);
    assert_eq!(normal.memo_counters().hits, 0);
}

#[test]
fn fast_forward_reruns_on_signature_change() {
    let mut dev = timing_device(true);
    let store = EmbeddingStore::size_only(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 50_000,
        },
        7,
    );
    let q1: Vec<Vec<i16>> = (0..1).map(|i| store.query(i)).collect();
    let q2: Vec<Vec<i16>> = (0..2).map(|i| store.query(i)).collect();
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let a = retrieve_batch(&mut dev, &mut hbm, &store, &q1, 5).unwrap();
    // Different batch size → different signature → fresh execution.
    let b = retrieve_batch(&mut dev, &mut hbm, &store, &q2, 5).unwrap();
    // Different k → different signature as well.
    let c = retrieve_batch(&mut dev, &mut hbm, &store, &q1, 7).unwrap();
    assert_eq!(dev.memo_counters().misses, 3);
    assert_eq!(dev.memo_counters().hits, 0);
    assert_ne!(a.report.cycles, b.report.cycles);
    // And replaying each signature again hits all three entries.
    retrieve_batch(&mut dev, &mut hbm, &store, &q1, 5).unwrap();
    retrieve_batch(&mut dev, &mut hbm, &store, &q2, 5).unwrap();
    retrieve_batch(&mut dev, &mut hbm, &store, &q1, 7).unwrap();
    assert_eq!(dev.memo_counters().hits, 3);
    let _ = c;
}

#[test]
fn fast_forward_memo_keys_include_the_corpus_epoch() {
    // Live-corpus segments carry an epoch ([`EmbeddingStore::epoch`]),
    // bumped whenever compaction produces a new base of possibly
    // identical shape. The memo key must include it: otherwise a
    // fast-forward replay could charge a pre-compaction segment's
    // cycles for a post-compaction scan. Same shape + different epoch
    // must miss; the same epoch scanned again must hit.
    let mut dev = timing_device(true);
    let spec = CorpusSpec {
        corpus_bytes: 0,
        chunks: 50_000,
    };
    let before = EmbeddingStore::size_only(spec, 7);
    let after = EmbeddingStore::size_only(spec, 7).with_epoch(9);
    let queries: Vec<Vec<i16>> = (0..2).map(|i| before.query(i)).collect();
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let a = retrieve_batch(&mut dev, &mut hbm, &before, &queries, 5).unwrap();
    let b = retrieve_batch(&mut dev, &mut hbm, &after, &queries, 5).unwrap();
    assert_eq!(
        dev.memo_counters().misses,
        2,
        "a new epoch of the same shape must not replay stale timing"
    );
    assert_eq!(dev.memo_counters().hits, 0);
    // Identical shape ⇒ identical charges; only the memo identity
    // differs.
    assert_eq!(a.report, b.report);
    // Re-scanning each epoch replays its own entry.
    retrieve_batch(&mut dev, &mut hbm, &before, &queries, 5).unwrap();
    retrieve_batch(&mut dev, &mut hbm, &after, &queries, 5).unwrap();
    assert_eq!(dev.memo_counters().hits, 2);
    assert_eq!(dev.memo_counters().misses, 2);
}

#[test]
fn functional_mode_ignores_fast_forward_and_stays_correct() {
    // In functional mode the fast-forward flag must change nothing: hits
    // are data-dependent, so every run executes.
    let mk = |ff: bool| {
        ApuDevice::new(
            SimConfig::default()
                .with_l4_bytes(8 << 20)
                .with_fast_forward(ff),
        )
    };
    let store = EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 40_000,
        },
        77,
    );
    let queries: Vec<Vec<i16>> = (0..3).map(|i| store.query(i)).collect();
    let run = |dev: &mut ApuDevice| {
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        retrieve_batch(dev, &mut hbm, &store, &queries, 5).unwrap()
    };
    let mut dev_off = mk(false);
    let mut dev_on = mk(true);
    let off1 = run(&mut dev_off);
    let on1 = run(&mut dev_on);
    let on2 = run(&mut dev_on);
    assert_eq!(off1.hits, on1.hits);
    assert_eq!(on1.hits, on2.hits);
    assert!(!on1.hits[0].is_empty());
    assert_eq!(off1.report, on1.report);
    assert_eq!(dev_on.memo_counters().hits, 0);
}
