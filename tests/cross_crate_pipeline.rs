//! Integration tests spanning crates: the full stack from the host API
//! through GVML kernels, the analytical framework, the HBM model, and
//! the energy accounting.

use apu_sim::{ApuDevice, SimConfig};
use cis_core::{recommend_mapping, ReductionMapping};
use cis_energy::ApuPowerModel;
use cis_model::{LatencyEstimator, ModelParams};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{Platform, RagPipeline, RagVariant};

#[test]
fn simulator_and_model_agree_on_a_simple_stream_kernel() {
    // Simulate a tile-streaming kernel and predict it with the framework;
    // the gap must be the documented second-order overheads (small).
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(32 << 20));
    let tiles = 16;
    let h = dev.alloc_u16(tiles * 32 * 1024).unwrap();
    let report = dev
        .run_task(|ctx| {
            use gvml::prelude::*;
            for tile in 0..tiles {
                ctx.dma_l4_to_l2(0, h.offset_by(tile * 64 * 1024)?, 64 * 1024)?;
                ctx.dma_l2_to_l1(apu_sim::Vmr::new(0))?;
                ctx.load(apu_sim::Vr::new(0), apu_sim::Vmr::new(0))?;
                ctx.core_mut().mul_u16(
                    apu_sim::Vr::new(1),
                    apu_sim::Vr::new(0),
                    apu_sim::Vr::new(0),
                )?;
                ctx.core_mut().add_u16(
                    apu_sim::Vr::new(2),
                    apu_sim::Vr::new(2),
                    apu_sim::Vr::new(1),
                )?;
            }
            Ok(())
        })
        .unwrap();

    let mut est = LatencyEstimator::new(ModelParams::leda_e());
    for _ in 0..tiles {
        est.fast_dma_l4_to_l2(64 * 1024);
        est.direct_dma_l2_to_l1_32k();
        est.gvml_load_16();
        est.gvml_mul_u16();
        est.gvml_add_u16();
    }
    let predicted = est.report().total_cycles;
    let measured = report.cycles.get() as f64;
    let err = (predicted - measured).abs() / measured;
    assert!(
        err < 0.01,
        "model error {:.2}% on a stream kernel",
        err * 100.0
    );
}

#[test]
fn reduction_advice_matches_simulated_outcome() {
    // cis-core recommends temporal mapping for matmul-like shapes; the
    // binmm simulator agrees.
    let p = ModelParams::leda_e();
    assert_eq!(
        recommend_mapping(&p, 64, 1024 * 2048),
        ReductionMapping::Temporal
    );
    let problem = binmm::ApuMatmul::new(
        binmm::BinMatrix::random(32, 1024, 1),
        binmm::BinMatrix::random(2048, 1024, 2),
    )
    .unwrap();
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(64 << 20));
    let spatial = problem
        .run(&mut dev, cis_core::MatmulVariant::Baseline)
        .unwrap();
    let temporal = problem
        .run(&mut dev, cis_core::MatmulVariant::Opt1)
        .unwrap();
    assert!(temporal.report.cycles < spatial.report.cycles);
}

#[test]
fn energy_accounting_composes_across_crates() {
    // Run a device kernel, stream DRAM traffic, and fold both into the
    // rail model.
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20));
    let report = dev
        .run_task(|ctx| {
            use gvml::prelude::*;
            for _ in 0..100 {
                ctx.core_mut().mul_s16(
                    apu_sim::Vr::new(2),
                    apu_sim::Vr::new(0),
                    apu_sim::Vr::new(1),
                )?;
            }
            Ok(())
        })
        .unwrap();
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    hbm.stream_read(0, 8 << 20);
    let dram = hbm_sim::DramEnergy::from_stats(
        hbm.spec(),
        &hbm_sim::EnergyParams::hbm2e(),
        &hbm.stats(),
        hbm.horizon(),
    );
    let breakdown =
        ApuPowerModel::leda_e().breakdown(&report, apu_sim::Frequency::LEDA_E, dram.total_j());
    assert!(breakdown.total_j() > 0.0);
    assert!(breakdown.dram_j > 0.0);
    let s: f64 = breakdown.fractions().iter().sum();
    assert!((s - 1.0).abs() < 1e-9);
}

#[test]
fn rag_pipeline_runs_every_platform() {
    let pipeline = RagPipeline::paper();
    let mut dev = ApuDevice::new(
        SimConfig::default()
            .with_l4_bytes(1 << 20)
            .with_exec_mode(apu_sim::ExecMode::TimingOnly),
    );
    let store =
        rag::EmbeddingStore::size_only(rag::CorpusSpec::from_corpus_bytes(10_000_000_000), 0);
    let q = vec![1i16; rag::corpus::EMBED_DIM];
    let mut results = Vec::new();
    for platform in [
        Platform::CpuModel,
        Platform::Gpu,
        Platform::Apu(RagVariant::NoOpt),
        Platform::Apu(RagVariant::AllOpts),
    ] {
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let e2e = pipeline
            .run(platform, &store, &q, &mut dev, &mut hbm)
            .unwrap();
        assert!(e2e.total_ms() > e2e.generation_ms);
        results.push((e2e.platform.clone(), e2e.retrieval_ms));
    }
    // the optimized CIS beats the unoptimized CIS and the CPU
    let get = |name: &str| {
        results
            .iter()
            .find(|(p, _)| p == name)
            .map(|(_, ms)| *ms)
            .unwrap()
    };
    assert!(get("CIS all opts") < get("CIS no opt"));
    assert!(get("CIS all opts") < get("CPU"));
}

#[test]
fn workspace_reexports_compose() {
    // The root crate exposes every layer.
    let _ = cis_repro::apu_sim::SimConfig::default();
    let _ = cis_repro::cis_model::ModelParams::leda_e();
    let _ = cis_repro::hbm_sim::DramSpec::hbm2e_16gb();
    let _ = cis_repro::phoenix::App::ALL;
}
