//! Snapshot-consistency differential harness for the live corpus
//! ([`rag::MutableCorpus`], DESIGN.md §5k).
//!
//! A mutable corpus serves queries while ingest, deletes, and background
//! compaction mutate it. The contract under test: **every query is
//! answered against exactly the immutable snapshot it captured at
//! admission** — base + sealed deltas minus tombstones — no matter how
//! writes, drains, and compactions interleave around it. The oracle is a
//! CPU flat scan ([`rag::flat_scan`]) of the query's own pinned
//! snapshot; equality is element-identical (ids AND scores).
//!
//! * **interleaving property** (headline): arbitrary op sequences —
//!   insert / delete / query / compact / drain — across shard counts
//!   1..=4, replicas 1..=2, flat and full-probe IVF serving; each
//!   query's top-k must equal the flat scan of its snapshot;
//! * **IVF candidate invariant**: partial-probe IVF over a mutated
//!   corpus (uncompacted deltas included) returns only live snapshot
//!   documents with exact scores, in tie-break order, never beating the
//!   snapshot flat scan rank-for-rank;
//! * **compaction fault paths**: a transient fault on the compaction
//!   task's (unique) batch key is outlasted by the queue's bounded
//!   retry; an unrecoverable fault abandons the compaction — counted,
//!   re-requestable — while every query keeps serving exact results
//!   from its snapshot;
//! * **determinism**: same seed, same churn stream → byte-identical
//!   hits, corpus counters, and Prometheus text, across the CI axes.
//!
//! The CI mutation axis (`APU_SIM_TEST_MUTATION=static|churn`) drives
//! the end-to-end case, composing with the `APU_SIM_TEST_MODE` /
//! `APU_SIM_TEST_SHARDS` / `APU_SIM_TEST_REPLICAS` /
//! `APU_SIM_TEST_INDEX` axes and with `APU_SIM_FAST_FORWARD` (memo keys
//! carry the segment epoch, pinned by `tests/fast_forward.rs`).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use apu_sim::{ExecMode, FaultPlan, RetryPolicy, SimConfig};
use proptest::prelude::*;
use rag::cpu::dot;
use rag::{
    flat_scan, CorpusSpec, EmbeddingStore, Hit, IndexMode, QueryTicket, ServeConfig,
    ShardedRagServer, Snapshot,
};

fn store(chunks: usize, seed: u64) -> EmbeddingStore {
    EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks,
        },
        seed,
    )
}

fn sim(mode: ExecMode) -> SimConfig {
    SimConfig::default()
        .with_exec_mode(mode)
        .with_l4_bytes(8 << 20)
}

fn axis(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

/// A query in flight: the ticket, the snapshot it pinned at admission,
/// and its vector — everything the flat-scan oracle needs.
type PinnedQuery = (QueryTicket, Arc<Snapshot>, Vec<i16>);

/// Drains the server and checks every completion against the CPU flat
/// scan of exactly the snapshot that query captured.
fn drain_and_check(server: &mut ShardedRagServer, pending: &mut Vec<PinnedQuery>, k: usize) {
    let report = server.drain().expect("drain");
    assert_eq!(report.completions.len(), pending.len());
    assert_eq!(report.served(), pending.len());
    assert_eq!(report.degraded(), 0);
    for done in &report.completions {
        let (_, snap, q) = pending
            .iter()
            .find(|(tk, _, _)| *tk == done.ticket)
            .expect("completion for a submitted query");
        let want = flat_scan(snap, q, k);
        assert_eq!(
            done.hits().expect("served"),
            &want[..],
            "query {:?} diverged from the flat scan of snapshot {}",
            done.ticket,
            snap.id
        );
    }
    pending.clear();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Headline interleaving property: for ANY sequence of inserts,
    /// deletes, queries, compaction requests, and drains — across shard
    /// counts, replica counts, and flat vs full-probe IVF serving —
    /// each query's top-k is element-identical to a CPU flat scan of
    /// exactly the snapshot it captured at admission.
    #[test]
    fn any_interleaving_serves_each_query_exactly_its_snapshot(
        chunks in 24usize..160,
        seed in 0u64..300,
        shards in 1usize..=4,
        replicas in 1usize..=2,
        k in 1usize..=6,
        use_ivf in any::<bool>(),
        nlist in 2usize..=5,
        ops in proptest::collection::vec((0u8..5, 0u64..1_000), 1..48),
    ) {
        let st = store(chunks, seed);
        // Full probe makes IVF pruning vacuous, so the flat-scan oracle
        // applies verbatim; partial probe has its own invariant below.
        let index = if use_ivf {
            IndexMode::Ivf { nlist, nprobe: nlist }
        } else {
            IndexMode::Flat
        };
        let mut server = ShardedRagServer::new_mutable(
            &st,
            shards,
            sim(ExecMode::Functional),
            ServeConfig {
                k,
                replicas,
                index,
                ..ServeConfig::default()
            },
        )
        .expect("server construction");
        let n_shards = server.shard_count();

        let mut t = 0u64;
        let mut live_ids: Vec<u32> = (0..chunks as u32).collect();
        let mut pending: Vec<PinnedQuery> = Vec::new();
        for (op, arg) in ops {
            t += 7;
            match op {
                0 => {
                    let id = server
                        .insert_doc(&st.query(10_000 + arg))
                        .expect("insert on a mutable server");
                    live_ids.push(id);
                }
                1 => {
                    if !live_ids.is_empty() {
                        let doc = live_ids.swap_remove(arg as usize % live_ids.len());
                        prop_assert!(server.delete_doc(doc).expect("mutable server"));
                    }
                }
                2 => {
                    let q = st.query(arg);
                    let snap = server.corpus_snapshot().expect("mutable server");
                    let ticket = server
                        .submit(Duration::from_micros(t), q.clone())
                        .expect("submit");
                    pending.push((ticket, snap, q));
                }
                3 => {
                    // May be None (nothing to merge / already in
                    // flight) — both are legitimate outcomes.
                    let _ = server
                        .request_compaction(arg as usize % n_shards, Duration::from_micros(t))
                        .expect("shard in range");
                }
                _ => drain_and_check(&mut server, &mut pending, k),
            }
        }
        drain_and_check(&mut server, &mut pending, k);

        // The model's view of the live set matches the corpus.
        prop_assert_eq!(server.corpus_stats().live_docs as usize, live_ids.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// IVF candidate invariant over a mutated corpus, uncompacted
    /// deltas included: with partial probing every hit is a live
    /// document of the query's snapshot (no tombstone or unborn-doc
    /// leak), carries the exact inner-product score, the list obeys the
    /// global tie-break, and rank-for-rank never beats the snapshot's
    /// flat scan — pruning can lose candidates, never invent them.
    #[test]
    fn partial_probe_ivf_over_a_mutated_corpus_keeps_candidates_exact(
        chunks in 48usize..200,
        seed in 0u64..200,
        shards in 1usize..=3,
        k in 1usize..=6,
        nlist in 3usize..=8,
        nprobe in 1usize..=2,
        inserts in 1usize..=6,
        deletes in 0usize..=4,
        nq in 1usize..=3,
    ) {
        let st = store(chunks, seed);
        let mut server = ShardedRagServer::new_mutable(
            &st,
            shards,
            sim(ExecMode::Functional),
            ServeConfig {
                k,
                index: IndexMode::Ivf { nlist, nprobe },
                ..ServeConfig::default()
            },
        )
        .expect("server construction");

        let mut embeddings: HashMap<u32, Vec<i16>> = HashMap::new();
        for i in 0..inserts {
            let emb = st.query(20_000 + i as u64);
            let id = server.insert_doc(&emb).expect("insert");
            embeddings.insert(id, emb);
        }
        for d in 0..deletes {
            // Deterministic spread over the base docs.
            let _ = server.delete_doc((d * 17 % chunks) as u32).expect("mutable");
        }

        let snap = server.corpus_snapshot().expect("mutable");
        let live: HashSet<u32> = snap
            .shards
            .iter()
            .flat_map(|sh| {
                sh.segments
                    .iter()
                    .flat_map(|seg| seg.ids.iter().copied())
                    .filter(|doc| sh.tombstones.binary_search(doc).is_err())
            })
            .collect();

        let queries: Vec<Vec<i16>> = (0..nq as u64).map(|i| st.query(i)).collect();
        for (i, q) in queries.iter().enumerate() {
            server
                .submit(Duration::from_micros(10 * i as u64), q.clone())
                .expect("submit");
        }
        let report = server.drain().expect("drain");
        prop_assert_eq!(report.served(), nq);
        prop_assert!(report.ivf.searches >= 1, "no IVF dispatch recorded");
        for done in &report.completions {
            let q = &queries[done.ticket.id() as usize];
            let hits = done.hits().expect("served");
            let flat = flat_scan(&snap, q, k);
            prop_assert!(hits.len() <= flat.len());
            for h in hits {
                prop_assert!(
                    live.contains(&h.chunk),
                    "hit {} is deleted or unborn in snapshot {}", h.chunk, snap.id
                );
                let emb = embeddings
                    .get(&h.chunk)
                    .map(Vec::as_slice)
                    .unwrap_or_else(|| st.embedding(h.chunk as usize));
                prop_assert_eq!(h.score, dot(q, emb), "chunk {} score not exact", h.chunk);
            }
            for w in hits.windows(2) {
                prop_assert!(
                    w[0].score > w[1].score
                        || (w[0].score == w[1].score && w[0].chunk < w[1].chunk),
                    "tie-break violated: {:?} before {:?}", w[0], w[1]
                );
            }
            for (rank, h) in hits.iter().enumerate() {
                prop_assert!(
                    h.score <= flat[rank].score,
                    "rank {rank}: ivf {} beats the snapshot flat scan {}",
                    h.score, flat[rank].score
                );
            }
        }
    }
}

/// A transient fault on the compaction task — armed on its unique batch
/// key, firing twice — is outlasted by the queue's bounded retry: the
/// compaction completes on the third attempt, no failure is counted,
/// and every query riding the same drain still serves exact results
/// from its snapshot.
#[test]
fn bounded_retry_outlasts_a_transient_compaction_fault() {
    let st = store(300, 11);
    let k = 5;
    let mut server = ShardedRagServer::new_mutable(
        &st,
        2,
        sim(ExecMode::Functional),
        ServeConfig {
            k,
            retry: Some(RetryPolicy {
                max_retries: 3,
                backoff: Duration::from_micros(50),
                multiplier: 2.0,
            }),
            ..ServeConfig::default()
        },
    )
    .expect("server construction");

    let doc = server.insert_doc(&st.query(900)).expect("insert");
    let shard = doc as usize % 2;
    let ticket = server
        .request_compaction(shard, Duration::from_micros(5))
        .expect("shard in range")
        .expect("the insert left a delta to merge");
    server.inject_faults(shard, FaultPlan::new(3).fail_batch_key_times(ticket.key, 2));

    let snap = server.corpus_snapshot().expect("mutable");
    let queries: Vec<Vec<i16>> = (0..4u64).map(|i| st.query(i)).collect();
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(Duration::from_micros(10 + 20 * i as u64), q.clone())
            .expect("submit");
    }
    let report = server.drain().expect("drain");
    assert_eq!(report.served(), 4);
    assert_eq!(report.degraded(), 0);
    assert_eq!(
        report.corpus.compactions, 1,
        "retry must complete the merge"
    );
    assert_eq!(report.corpus.compaction_failures, 0);
    for done in &report.completions {
        let q = &queries[done.ticket.id() as usize];
        assert_eq!(done.hits().expect("served"), &flat_scan(&snap, q, k)[..]);
    }
    // The merged base serves the next query bit-identically.
    let snap2 = server.corpus_snapshot().expect("mutable");
    assert_eq!(snap2.live_docs(), 301);
    let q = st.query(900);
    server
        .submit(Duration::from_micros(900), q.clone())
        .expect("submit");
    let report2 = server.drain().expect("drain");
    let done = &report2.completions[0];
    assert_eq!(done.hits().expect("served"), &flat_scan(&snap2, &q, k)[..]);
    assert!(done.hits().unwrap().iter().any(|h| h.chunk == doc));
}

/// An unrecoverable compaction fault is contained: the compaction is
/// abandoned (counted, corpus untouched), queries keep serving exact
/// results from their snapshots, and the compaction can be re-requested
/// — with a fresh unique key — and completes once the fault clears.
#[test]
fn a_failed_compaction_never_degrades_queries_and_is_rerequestable() {
    let st = store(240, 29);
    let k = 4;
    let mut server = ShardedRagServer::new_mutable(
        &st,
        2,
        sim(ExecMode::Functional),
        ServeConfig {
            k,
            retry: Some(RetryPolicy {
                max_retries: 1,
                backoff: Duration::from_micros(40),
                multiplier: 2.0,
            }),
            ..ServeConfig::default()
        },
    )
    .expect("server construction");

    let doc = server.insert_doc(&st.query(700)).expect("insert");
    let shard = doc as usize % 2;
    assert!(server.delete_doc(1).expect("mutable"));
    let ticket = server
        .request_compaction(shard, Duration::from_micros(5))
        .expect("shard in range")
        .expect("pending work to merge");
    // Permanent trigger: the retry budget cannot outlast it.
    server.inject_faults(shard, FaultPlan::new(7).fail_batch_key(ticket.key));

    let snap = server.corpus_snapshot().expect("mutable");
    let queries: Vec<Vec<i16>> = (0..4u64).map(|i| st.query(i)).collect();
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(Duration::from_micros(10 + 20 * i as u64), q.clone())
            .expect("submit");
    }
    let report = server.drain().expect("drain");
    assert_eq!(
        report.served(),
        4,
        "a failed compaction must not fail queries"
    );
    assert_eq!(
        report.degraded(),
        0,
        "a failed compaction must not degrade queries"
    );
    assert_eq!(report.corpus.compactions, 0);
    assert_eq!(report.corpus.compaction_failures, 1);
    for done in &report.completions {
        let q = &queries[done.ticket.id() as usize];
        assert_eq!(done.hits().expect("served"), &flat_scan(&snap, q, k)[..]);
    }
    // The uncompacted state is fully intact…
    let snap2 = server.corpus_snapshot().expect("mutable");
    assert_eq!(snap2.live_docs(), 240);
    assert!(snap2.shards[shard].segments.len() > 1, "delta not merged");

    // …and compaction is re-requestable under a fresh key, succeeding
    // once the fault clears.
    server.inject_faults(shard, FaultPlan::new(7));
    let ticket2 = server
        .request_compaction(shard, Duration::from_micros(500))
        .expect("shard in range")
        .expect("the delta is still pending");
    assert_ne!(ticket2.key, ticket.key, "every plan carries a unique key");
    let q = st.query(700);
    server
        .submit(Duration::from_micros(510), q.clone())
        .expect("submit");
    let report2 = server.drain().expect("drain");
    assert_eq!(report2.corpus.compactions, 1);
    assert_eq!(
        report2.corpus.compaction_failures, 1,
        "counter is cumulative"
    );
    let done = &report2.completions[0];
    assert_eq!(done.hits().expect("served"), &flat_scan(&snap2, &q, k)[..]);
}

/// Everything observable from one churn run: per-ticket hits, corpus
/// counters, Prometheus text.
type ChurnObservables = (Vec<(u64, Option<Vec<Hit>>)>, rag::CorpusStats, String);

/// Runs one fixed churn stream — interleaved queries, inserts, deletes,
/// a mid-stream compaction, across two drains.
fn churn_run(shards: usize, replicas: usize, mode: ExecMode, index: IndexMode) -> ChurnObservables {
    let st = store(1_024, 42);
    let mut server = ShardedRagServer::new_mutable(
        &st,
        shards,
        sim(mode),
        ServeConfig {
            k: 8,
            replicas,
            index,
            ..ServeConfig::default()
        },
    )
    .expect("server construction");
    let mut hits: Vec<(u64, Option<Vec<Hit>>)> = Vec::new();
    let mut pinned: Vec<(QueryTicket, Arc<Snapshot>, Vec<i16>)> = Vec::new();
    let drain = |server: &mut ShardedRagServer,
                 pinned: &mut Vec<(QueryTicket, Arc<Snapshot>, Vec<i16>)>,
                 hits: &mut Vec<(u64, Option<Vec<Hit>>)>| {
        let report = server.drain().expect("drain");
        assert_eq!(report.completions.len(), pinned.len());
        assert_eq!(report.served(), pinned.len());
        if mode.is_functional() {
            for done in &report.completions {
                let (_, snap, q) = pinned
                    .iter()
                    .find(|(tk, _, _)| *tk == done.ticket)
                    .expect("known ticket");
                if !index.is_ivf() {
                    assert_eq!(done.hits().expect("served"), &flat_scan(snap, q, 8)[..]);
                }
            }
        }
        hits.extend(
            report
                .completions
                .iter()
                .map(|c| (c.ticket.id(), c.hits().map(<[Hit]>::to_vec))),
        );
        pinned.clear();
        report
    };
    for i in 0..12u64 {
        if i % 3 == 0 {
            server.insert_doc(&st.query(5_000 + i)).expect("insert");
        }
        if i % 4 == 1 {
            server.delete_doc(i as u32 * 13).expect("mutable");
        }
        let q = st.query(i);
        let snap = server.corpus_snapshot().expect("mutable");
        let ticket = server
            .submit(Duration::from_micros(25 * i), q.clone())
            .expect("submit");
        pinned.push((ticket, snap, q));
        if i == 5 {
            server
                .request_compaction(0, Duration::from_micros(25 * i + 5))
                .expect("shard in range");
        }
    }
    drain(&mut server, &mut pinned, &mut hits);
    // Post-compaction churn: the second drain serves snapshots over the
    // merged base (and, under fast-forward, fresh epoch-keyed memos).
    for i in 12..18u64 {
        if i % 2 == 0 {
            server.insert_doc(&st.query(5_000 + i)).expect("insert");
        }
        let q = st.query(i);
        let snap = server.corpus_snapshot().expect("mutable");
        let ticket = server
            .submit(Duration::from_micros(25 * i), q.clone())
            .expect("submit");
        pinned.push((ticket, snap, q));
    }
    let report = drain(&mut server, &mut pinned, &mut hits);
    (hits, report.corpus, report.prometheus_text())
}

/// Same-seed determinism under churn on the CI axes: two identical
/// mutation streams must produce byte-identical hits, corpus counters,
/// and Prometheus text — in both simulation modes, any shard/replica
/// shape, flat or IVF, with or without fast-forward.
#[test]
fn same_seed_churn_serves_are_byte_identical() {
    let shards = axis("APU_SIM_TEST_SHARDS", 2);
    let replicas = axis("APU_SIM_TEST_REPLICAS", 1);
    let mode = ExecMode::from_env(ExecMode::Functional);
    let index = match std::env::var("APU_SIM_TEST_INDEX").as_deref() {
        Ok("ivf") => IndexMode::ivf_default(),
        _ => IndexMode::Flat,
    };
    let first = churn_run(shards, replicas, mode, index);
    let second = churn_run(shards, replicas, mode, index);
    assert_eq!(first.0, second.0, "hit lists diverged run-to-run");
    assert_eq!(first.1, second.1, "corpus counters diverged run-to-run");
    assert_eq!(first.2, second.2, "prometheus text diverged run-to-run");
}

/// End-to-end check on the CI mutation axis: `APU_SIM_TEST_MUTATION`
/// selects a static corpus (the pre-mutation fast path must stay fully
/// served and export all-zero corpus counters) or the churn stream
/// (live ingest + deletes + mid-stream compaction must stay fully
/// served with the `apu_corpus_*` series populated), composing with the
/// mode, shard, replica, index, and fast-forward axes.
#[test]
fn ci_mutation_axis_serves_the_full_stream() {
    let churn = matches!(
        std::env::var("APU_SIM_TEST_MUTATION").as_deref(),
        Ok("churn")
    );
    let shards = axis("APU_SIM_TEST_SHARDS", 2);
    let replicas = axis("APU_SIM_TEST_REPLICAS", 1);
    let mode = ExecMode::from_env(ExecMode::Functional);
    let index = match std::env::var("APU_SIM_TEST_INDEX").as_deref() {
        Ok("ivf") => IndexMode::ivf_default(),
        _ => IndexMode::Flat,
    };
    if churn {
        let (hits, corpus, text) = churn_run(shards, replicas, mode, index);
        assert_eq!(hits.len(), 18);
        assert!(corpus.inserts >= 4);
        assert!(corpus.deletes >= 1);
        assert_eq!(corpus.compactions + corpus.compaction_failures, 1);
        assert!(corpus.snapshots >= 2);
        assert!(text.contains("apu_corpus_inserts_total"));
        assert!(text.contains("apu_corpus_compactions_total"));
    } else {
        let st = store(1_024, 42);
        let mut server = ShardedRagServer::new(
            &st,
            shards,
            sim(mode),
            ServeConfig {
                k: 8,
                replicas,
                index,
                ..ServeConfig::default()
            },
        )
        .expect("server construction");
        for i in 0..12u64 {
            server
                .submit(Duration::from_micros(25 * i), st.query(i))
                .expect("submit");
        }
        let report = server.drain().expect("drain");
        assert_eq!(report.served(), 12);
        assert_eq!(report.corpus, rag::CorpusStats::default());
        assert!(report
            .prometheus_text()
            .contains("apu_corpus_compactions_total 0"));
    }
}
