//! Recall@k differential harness for the on-device IVF index
//! ([`rag::IvfIndex`], paper §5.3 extended with approximate retrieval).
//!
//! IVF trades scan work for recall by probing only `nprobe` of `nlist`
//! clusters, but every candidate it does score is scored **exactly** —
//! the same biased-dot kernel as the flat scan. That yields three
//! checkable properties plus a determinism guarantee:
//!
//! * **exactness of the candidates** (many cases): every IVF hit
//!   carries the true inner-product score of its chunk, hits obey the
//!   global tie-break (score descending, chunk ascending), and
//!   rank-for-rank an IVF list never beats the flat top-k;
//! * **full probe ≡ flat** (device differential): with `nprobe ==
//!   nlist` the pruning is vacuous, so a sharded IVF serve must return,
//!   for every query, hits element-identical to the flat serve — ids
//!   AND scores — across shard counts 1..=4;
//! * **recall floor** (seeded): on a clustered corpus with
//!   topic-conditioned queries, recall@10 at the `serve_ann` bench
//!   defaults ([`DEFAULT_NLIST`]/[`DEFAULT_NPROBE`]) stays ≥ 0.9;
//! * **determinism**: the same seed yields byte-identical serve reports
//!   (hits and Prometheus text) run-to-run, in both simulation modes
//!   and across the CI shard/replica axes.
//!
//! The CI index axis (`APU_SIM_TEST_INDEX=flat|ivf`) picks the serving
//! default for the end-to-end case, composing with the existing
//! `APU_SIM_TEST_MODE` / `APU_SIM_TEST_SHARDS` / `APU_SIM_TEST_REPLICAS`
//! axes.

use std::collections::HashSet;
use std::time::Duration;

use apu_sim::{ApuDevice, ExecMode, SimConfig};
use hbm_sim::{DramSpec, MemorySystem};
use proptest::prelude::*;
use rag::cpu::{cpu_retrieve, dot};
use rag::{
    ClusteredCorpus, CorpusSpec, EmbeddingStore, Hit, IndexMode, IvfIndex, QuerySpec, ServeConfig,
    ShardedRagServer, DEFAULT_NLIST, DEFAULT_NPROBE, MAX_BATCH,
};

fn store(chunks: usize, seed: u64) -> EmbeddingStore {
    EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks,
        },
        seed,
    )
}

fn sim(mode: ExecMode) -> SimConfig {
    SimConfig::default()
        .with_exec_mode(mode)
        .with_l4_bytes(8 << 20)
}

fn functional_device() -> (ApuDevice, MemorySystem) {
    (
        ApuDevice::new(sim(ExecMode::Functional)),
        MemorySystem::new(DramSpec::hbm2e_16gb()),
    )
}

fn axis(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Candidate exactness: for any corpus, index shape, and probe
    /// width, every IVF hit scores its chunk exactly (bit-identical to
    /// the CPU dot product), the list obeys the global tie-break, and
    /// no rank of the IVF list beats the same rank of the flat top-k —
    /// pruning can only lose candidates, never invent or inflate them.
    #[test]
    fn ivf_hits_are_exact_and_never_beat_flat(
        chunks in 64usize..600,
        seed in 0u64..500,
        nlist in 2usize..=16,
        nprobe in 1usize..=4,
        k in 1usize..=8,
        nq in 1usize..=3,
    ) {
        let st = store(chunks, seed);
        let index = IvfIndex::build(&st, nlist);
        let queries: Vec<Vec<i16>> = (0..nq as u64).map(|i| st.query(i)).collect();
        let (mut dev, mut hbm) = functional_device();
        let out = index
            .search_batch(&mut dev, &mut hbm, &queries, k, nprobe)
            .expect("ivf search");
        prop_assert_eq!(out.hits.len(), nq);
        for (q, hits) in out.hits.iter().enumerate() {
            let (flat, _) = cpu_retrieve(&st, &queries[q], k, 2);
            prop_assert!(hits.len() <= flat.len());
            for h in hits {
                prop_assert_eq!(
                    h.score,
                    dot(&queries[q], st.embedding(h.chunk as usize)),
                    "chunk {} carries a non-exact score", h.chunk
                );
            }
            for w in hits.windows(2) {
                prop_assert!(
                    w[0].score > w[1].score
                        || (w[0].score == w[1].score && w[0].chunk < w[1].chunk),
                    "tie-break violated: {:?} before {:?}", w[0], w[1]
                );
            }
            for (rank, h) in hits.iter().enumerate() {
                prop_assert!(
                    h.score <= flat[rank].score,
                    "rank {rank}: ivf {} beats flat {}", h.score, flat[rank].score
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Full-probe differential: with `nprobe == nlist` every cluster is
    /// rescored, so the sharded IVF serve — per-shard index, fan-out,
    /// exact global merge — must return hits element-identical to the
    /// flat serve for every query, across shard counts 1..=4.
    #[test]
    fn full_probe_sharded_ivf_equals_flat_serving(
        chunks in 64usize..=512,
        seed in 0u64..200,
        k in 1usize..=8,
        shards in 1usize..=4,
        nlist in 2usize..=8,
        nq in 1usize..=3,
    ) {
        let st = store(chunks, seed);
        let queries: Vec<Vec<i16>> = (0..nq as u64).map(|i| st.query(i)).collect();
        let serve = |index: IndexMode| {
            let mut server = ShardedRagServer::new(
                &st,
                shards,
                sim(ExecMode::Functional),
                ServeConfig {
                    k,
                    index,
                    ..ServeConfig::default()
                },
            )
            .expect("cluster construction");
            for (i, q) in queries.iter().enumerate() {
                server
                    .submit(Duration::from_micros(10 * i as u64), q.clone())
                    .expect("submit");
            }
            server.drain().expect("drain")
        };
        let flat = serve(IndexMode::Flat);
        let ivf = serve(IndexMode::Ivf { nlist, nprobe: nlist });
        prop_assert_eq!(ivf.completions.len(), nq);
        prop_assert_eq!(ivf.served(), nq);
        prop_assert!(ivf.ivf.searches >= 1, "no IVF dispatch recorded");
        prop_assert_eq!(ivf.ivf.queries as usize, nq * shards.min(chunks));
        for (f, i) in flat.completions.iter().zip(&ivf.completions) {
            prop_assert_eq!(f.ticket, i.ticket);
            prop_assert_eq!(
                f.hits().expect("flat served"),
                i.hits().expect("ivf served"),
                "full probe diverged: chunks={} shards={} nlist={} k={}",
                chunks, shards, nlist, k
            );
        }
    }
}

/// Seeded recall floor at the `serve_ann` bench defaults: on a
/// clustered corpus with topic-conditioned queries, probing
/// [`DEFAULT_NPROBE`] of [`DEFAULT_NLIST`] clusters keeps mean
/// recall@10 ≥ 0.9 against the exact CPU scan. Everything is seeded —
/// the corpus, the k-means training, the query stream — so this is a
/// regression gate, not a statistical test.
#[test]
fn recall_at_10_meets_the_bench_floor_on_a_clustered_corpus() {
    let corpus = ClusteredCorpus::new(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 8192,
        },
        64,
        1,
        7,
    );
    let index = IvfIndex::build(&corpus.store, DEFAULT_NLIST);
    let k = 10;
    let queries: Vec<Vec<i16>> = (0..24u64)
        .map(|i| corpus.query_near(i as usize % corpus.topics(), i))
        .collect();

    let (mut dev, mut hbm) = functional_device();
    let mut hits: Vec<Vec<Hit>> = Vec::new();
    for batch in queries.chunks(MAX_BATCH) {
        let out = index
            .search_batch(&mut dev, &mut hbm, batch, k, DEFAULT_NPROBE)
            .expect("ivf search");
        hits.extend(out.hits);
    }

    let mut recall_sum = 0.0f64;
    for (i, got) in hits.iter().enumerate() {
        let (truth, _) = cpu_retrieve(&corpus.store, &queries[i], k, 4);
        let truth_ids: HashSet<u32> = truth.iter().map(|h| h.chunk).collect();
        let found = got.iter().filter(|h| truth_ids.contains(&h.chunk)).count();
        recall_sum += found as f64 / k as f64;
    }
    let recall = recall_sum / hits.len() as f64;
    assert!(
        recall >= 0.9,
        "recall@10 = {recall:.3} at nlist={DEFAULT_NLIST} nprobe={DEFAULT_NPROBE}"
    );
}

/// Same-seed determinism on the CI axes: two identical IVF serves —
/// same corpus seed, same stream, same shard/replica/mode axes — must
/// produce byte-identical results: per-query hit lists and the full
/// Prometheus rendering (which folds in latencies, batch stats, and the
/// `apu_ivf_*` counters). Runs in whichever mode `APU_SIM_TEST_MODE`
/// selects; timing-only serves compare the data-independent fallback
/// probes the same way.
#[test]
fn same_seed_ivf_serves_are_byte_identical() {
    let shards = axis("APU_SIM_TEST_SHARDS", 2);
    let replicas = axis("APU_SIM_TEST_REPLICAS", 1);
    let mode = ExecMode::from_env(ExecMode::Functional);
    let run = || {
        let corpus = ClusteredCorpus::new(
            CorpusSpec {
                corpus_bytes: 0,
                chunks: 2048,
            },
            16,
            1,
            42,
        );
        let mut server = ShardedRagServer::new(
            &corpus.store,
            shards,
            sim(mode),
            ServeConfig {
                k: 10,
                replicas,
                index: IndexMode::Ivf {
                    nlist: 16,
                    nprobe: 2,
                },
                ..ServeConfig::default()
            },
        )
        .expect("cluster construction");
        for i in 0..12u64 {
            server
                .submit_query(QuerySpec::new(
                    Duration::from_micros(20 * i),
                    corpus.query_near(i as usize % corpus.topics(), i),
                ))
                .expect("submit");
        }
        let report = server.drain().expect("drain");
        let hits: Vec<Option<Vec<Hit>>> = report
            .completions
            .iter()
            .map(|c| c.hits().map(<[Hit]>::to_vec))
            .collect();
        (hits, report.ivf, report.prometheus_text())
    };
    let first = run();
    let second = run();
    assert_eq!(first.0, second.0, "hit lists diverged run-to-run");
    assert_eq!(first.1, second.1, "ivf stats diverged run-to-run");
    assert_eq!(first.2, second.2, "prometheus text diverged run-to-run");
}

/// End-to-end check on the CI index axis: `APU_SIM_TEST_INDEX` selects
/// the serving default (`flat` or `ivf`), composing with the mode and
/// shard/replica axes. The stream must be fully served in either mode;
/// under functional execution flat answers are checked against the
/// exact CPU scan and IVF answers for candidate exactness, and an IVF
/// serve must surface its probe counters in the report and the
/// Prometheus rendering.
#[test]
fn ci_index_axis_serves_the_full_stream() {
    let index = match std::env::var("APU_SIM_TEST_INDEX").as_deref() {
        Ok("ivf") => IndexMode::ivf_default(),
        _ => IndexMode::Flat,
    };
    let shards = axis("APU_SIM_TEST_SHARDS", 3);
    let replicas = axis("APU_SIM_TEST_REPLICAS", 1);
    let mode = ExecMode::from_env(ExecMode::Functional);
    let corpus = ClusteredCorpus::new(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 4096,
        },
        32,
        1,
        42,
    );
    let k = 10;
    let queries: Vec<Vec<i16>> = (0..12u64)
        .map(|i| corpus.query_near(i as usize % corpus.topics(), i))
        .collect();

    let mut server = ShardedRagServer::new(
        &corpus.store,
        shards,
        sim(mode),
        ServeConfig {
            k,
            replicas,
            index,
            ..ServeConfig::default()
        },
    )
    .expect("cluster construction");
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(Duration::from_micros(25 * i as u64), q.clone())
            .expect("submit");
    }
    let report = server.drain().expect("drain");

    assert_eq!(report.completions.len(), queries.len());
    assert_eq!(report.served(), queries.len());
    assert_eq!(report.degraded(), 0);
    if index.is_ivf() {
        assert!(report.ivf.searches >= 1, "no IVF dispatch recorded");
        assert_eq!(report.ivf.queries as usize, queries.len() * shards);
        assert!(report.prometheus_text().contains("apu_ivf_searches_total"));
    } else {
        assert_eq!(report.ivf, rag::IvfStats::default());
    }
    if mode.is_functional() {
        for done in &report.completions {
            let q = &queries[done.ticket.id() as usize];
            let hits = done.hits().expect("served");
            match index {
                IndexMode::Flat => {
                    let (expected, _) = cpu_retrieve(&corpus.store, q, k, 2);
                    assert_eq!(hits, &expected[..]);
                }
                IndexMode::Ivf { .. } => {
                    for h in hits {
                        assert_eq!(h.score, dot(q, corpus.store.embedding(h.chunk as usize)));
                    }
                }
            }
        }
    }
}
