//! Property tests for the DRAM model: address-map bijectivity, timing
//! monotonicity, and energy/statistics consistency.

use hbm_sim::{AccessKind, AddressMap, DramEnergy, DramSpec, EnergyParams, MemorySystem};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Distinct burst-aligned addresses decode to distinct
    /// (channel, rank, bank-group, bank, row, column) tuples within the
    /// device's address space.
    #[test]
    fn address_decode_is_injective(bursts in proptest::collection::hash_set(0u64..1_000_000, 2..64)) {
        let spec = DramSpec::hbm2e_16gb();
        let map = AddressMap::new(spec.clone());
        let g = spec.access_bytes() as u64;
        let mut seen = std::collections::HashMap::new();
        for b in bursts {
            let d = map.decode(b * g);
            if let Some(prev) = seen.insert(
                (d.channel, d.rank, d.bank_group, d.bank, d.row, d.column),
                b,
            ) {
                prop_assert_eq!(prev, b, "two bursts decode identically");
            }
        }
    }

    /// Every byte of a burst decodes to the same location.
    #[test]
    fn burst_bytes_are_coherent(burst in 0u64..1_000_000, off in 0usize..64) {
        let spec = DramSpec::hbm2e_16gb();
        let map = AddressMap::new(spec.clone());
        let g = spec.access_bytes() as u64;
        let a = map.decode(burst * g);
        let b = map.decode(burst * g + off as u64);
        prop_assert_eq!(a, b);
    }

    /// The completion horizon is monotone: every access finishes at or
    /// after the latest completion so far minus nothing — no access can
    /// travel back in time, whatever the address pattern.
    #[test]
    fn horizon_is_monotone(addrs in proptest::collection::vec(0u64..(1u64 << 30), 1..200)) {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        let mut last_horizon = 0;
        for a in addrs {
            let done = mem.access(AccessKind::Read, a, 0);
            prop_assert!(done >= 1);
            prop_assert!(mem.horizon() >= last_horizon);
            prop_assert!(mem.horizon() >= done);
            last_horizon = mem.horizon();
        }
    }

    /// Energy is non-negative, additive in its categories, and grows
    /// with traffic.
    #[test]
    fn energy_is_monotone_in_traffic(kb1 in 4u64..128, kb2 in 4u64..128) {
        let (lo, hi) = ((kb1.min(kb2)) << 10, (kb1.max(kb2)) << 10);
        let run = |bytes: u64| {
            let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
            mem.stream_read(0, bytes);
            DramEnergy::from_stats(
                mem.spec(),
                &EnergyParams::hbm2e(),
                &mem.stats(),
                mem.horizon(),
            )
            .total_j()
        };
        let (e_lo, e_hi) = (run(lo), run(hi));
        prop_assert!(e_lo >= 0.0);
        prop_assert!(e_hi + 1e-15 >= e_lo, "energy shrank: {e_lo} -> {e_hi}");
    }

    /// Statistics account for every access issued.
    #[test]
    fn stats_count_every_access(n in 1u64..500) {
        let spec = DramSpec::hbm2e_16gb();
        let g = spec.access_bytes() as u64;
        let mut mem = MemorySystem::new(spec);
        for i in 0..n {
            mem.access(AccessKind::Read, i * g * 7919, 0);
        }
        let s = mem.stats();
        prop_assert_eq!(s.reads, n);
        prop_assert_eq!(s.bytes, n * g);
        prop_assert!(s.row_hits <= n);
        prop_assert!(s.activates <= n);
    }
}
