#![warn(missing_docs)]

//! DRAM timing and energy simulator in the spirit of Ramulator 2 +
//! DRAMPower, specialized for the paper's methodology: the RAG evaluation
//! models the shared off-chip memory with a **simulated HBM2e** (16 GB,
//! 2 ranks, 8 channels, 1.6 GHz, 380–420 GB/s peak) while everything else
//! is measured on the device. A DDR4 preset models the APU's native
//! 23.8 GB/s device DRAM for comparison benches.
//!
//! The simulator tracks per-bank row-buffer state, bank/rank timing
//! constraints (tRCD/tRP/tRAS/tCCD/tRRD/tFAW), per-channel data-bus
//! occupancy, and periodic refresh (tREFI/tRFC), using an in-order
//! open-page controller with channel-interleaved address mapping.
//! Energy is accounted per command plus background power, DRAMPower
//! style.
//!
//! ```rust
//! use hbm_sim::{DramSpec, MemorySystem};
//!
//! let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
//! let res = mem.stream_read(0, 64 << 20); // read 64 MiB
//! let gbps = res.bandwidth_gbps();
//! assert!(gbps > 380.0 && gbps < 425.0, "achieved {gbps} GB/s");
//! ```

pub mod address;
pub mod energy;
pub mod spec;
pub mod system;

pub use address::{AddressMap, DecodedAddr};
pub use energy::{DramEnergy, EnergyParams};
pub use spec::DramSpec;
pub use system::{AccessKind, MemorySystem, StreamResult};
