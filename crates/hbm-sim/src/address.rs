//! Physical address decomposition.
//!
//! Uses the bandwidth-friendly interleaving common to HBM controllers:
//! low address bits select the byte within a burst, then the channel,
//! then bank group / bank (so sequential streams rotate across channels
//! and banks before reusing a row), then column, rank, and row.

use serde::{Deserialize, Serialize};

use crate::spec::DramSpec;

/// A decoded physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank group within the rank.
    pub bank_group: usize,
    /// Bank within the group.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Column (burst index within the row).
    pub column: u64,
}

impl DecodedAddr {
    /// Flat bank identifier within the whole system.
    pub fn flat_bank(&self, spec: &DramSpec) -> usize {
        ((self.channel * spec.ranks + self.rank) * spec.bank_groups + self.bank_group)
            * spec.banks_per_group
            + self.bank
    }
}

/// Address mapper for a given DRAM spec.
#[derive(Debug, Clone)]
pub struct AddressMap {
    spec: DramSpec,
    bursts_per_row: u64,
}

impl AddressMap {
    /// Creates a mapper.
    pub fn new(spec: DramSpec) -> Self {
        let bursts_per_row = (spec.row_bytes / spec.access_bytes()) as u64;
        AddressMap {
            spec,
            bursts_per_row,
        }
    }

    /// The spec this mapper was built for.
    pub fn spec(&self) -> &DramSpec {
        &self.spec
    }

    /// Bursts (access-granularity units) per DRAM row.
    pub fn bursts_per_row(&self) -> u64 {
        self.bursts_per_row
    }

    /// Decodes a byte address into channel/rank/bank/row/column, using
    /// interleaving order (low→high):
    /// byte-in-burst, channel, bank group, bank, column, rank, row.
    pub fn decode(&self, byte_addr: u64) -> DecodedAddr {
        let s = &self.spec;
        let mut a = byte_addr / s.access_bytes() as u64;
        let channel = (a % s.channels as u64) as usize;
        a /= s.channels as u64;
        let bank_group = (a % s.bank_groups as u64) as usize;
        a /= s.bank_groups as u64;
        let bank = (a % s.banks_per_group as u64) as usize;
        a /= s.banks_per_group as u64;
        let column = a % self.bursts_per_row;
        a /= self.bursts_per_row;
        let rank = (a % s.ranks as u64) as usize;
        a /= s.ranks as u64;
        let row = a % s.rows as u64;
        DecodedAddr {
            channel,
            rank,
            bank_group,
            bank,
            row,
            column,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_addresses_rotate_channels_first() {
        let m = AddressMap::new(DramSpec::hbm2e_16gb());
        let g = m.spec().access_bytes() as u64;
        let d0 = m.decode(0);
        let d1 = m.decode(g);
        let d7 = m.decode(7 * g);
        let d8 = m.decode(8 * g);
        assert_eq!(d0.channel, 0);
        assert_eq!(d1.channel, 1);
        assert_eq!(d7.channel, 7);
        assert_eq!(d8.channel, 0);
        // after one channel sweep the bank group advances
        assert_eq!(d8.bank_group, 1);
        assert_eq!(d8.row, d0.row);
    }

    #[test]
    fn same_burst_bytes_map_identically() {
        let m = AddressMap::new(DramSpec::hbm2e_16gb());
        assert_eq!(m.decode(0), m.decode(63));
        assert_ne!(m.decode(0), m.decode(64));
    }

    #[test]
    fn row_advances_after_all_banks_and_columns() {
        let m = AddressMap::new(DramSpec::hbm2e_16gb());
        let s = m.spec().clone();
        let stride = (s.access_bytes()
            * s.channels
            * s.bank_groups
            * s.banks_per_group
            * (s.row_bytes / s.access_bytes())
            * s.ranks) as u64;
        assert_eq!(m.decode(stride).row, 1);
        assert_eq!(m.decode(stride - 1).row, 0);
    }

    #[test]
    fn flat_bank_ids_are_unique() {
        let spec = DramSpec::hbm2e_16gb();
        let m = AddressMap::new(spec.clone());
        let total = spec.channels * spec.ranks * spec.bank_groups * spec.banks_per_group;
        let mut seen = std::collections::HashSet::new();
        let g = spec.access_bytes() as u64;
        for i in 0..(total as u64 * 4) {
            let d = m.decode(i * g);
            let fb = d.flat_bank(&spec);
            assert!(fb < total);
            seen.insert(fb);
        }
        assert_eq!(seen.len(), total / spec.ranks); // rank bit is above columns
    }
}
