//! The memory system: an in-order open-page controller over per-bank
//! state, per-channel data buses, and per-rank activation windows and
//! refresh.

use serde::{Deserialize, Serialize};

use crate::address::AddressMap;
use crate::spec::DramSpec;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// DRAM read.
    Read,
    /// DRAM write.
    Write,
}

/// Per-bank state.
#[derive(Debug, Clone, Default)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest cycle the next command to this bank may issue.
    ready_at: u64,
    /// Cycle of the last ACT (for tRAS).
    act_at: u64,
}

/// Per-(channel, rank) state.
#[derive(Debug, Clone)]
struct RankState {
    /// Sliding window of recent ACT times (for tFAW).
    recent_acts: Vec<u64>,
    /// Last ACT time (for tRRD).
    last_act: u64,
    /// Next scheduled refresh boundary.
    next_refresh: u64,
}

/// Aggregate command statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Row activations issued.
    pub activates: u64,
    /// Read bursts issued.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Refresh operations performed.
    pub refreshes: u64,
    /// Bytes transferred.
    pub bytes: u64,
}

impl SystemStats {
    /// Row-buffer hit rate over all accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Result of a streamed transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamResult {
    /// Bytes moved.
    pub bytes: u64,
    /// Elapsed memory-clock cycles.
    pub cycles: u64,
    /// Elapsed wall time in nanoseconds.
    pub ns: f64,
}

impl StreamResult {
    /// Achieved bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.ns == 0.0 {
            0.0
        } else {
            self.bytes as f64 / self.ns
        }
    }

    /// Elapsed time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.ns / 1e6
    }
}

/// A simulated DRAM system.
#[derive(Debug)]
pub struct MemorySystem {
    map: AddressMap,
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    /// Earliest cycle each channel's data bus is free.
    bus_free: Vec<u64>,
    stats: SystemStats,
    /// High-water mark of completion times (the system clock).
    horizon: u64,
}

impl MemorySystem {
    /// Creates a memory system for the given device.
    pub fn new(spec: DramSpec) -> Self {
        spec.assert_valid();
        let n_banks = spec.channels * spec.ranks * spec.bank_groups * spec.banks_per_group;
        let n_ranks = spec.channels * spec.ranks;
        let t_refi = spec.t_refi;
        MemorySystem {
            banks: vec![BankState::default(); n_banks],
            ranks: (0..n_ranks)
                .map(|_| RankState {
                    recent_acts: Vec::new(),
                    last_act: 0,
                    next_refresh: t_refi,
                })
                .collect(),
            bus_free: vec![0; spec.channels],
            stats: SystemStats::default(),
            horizon: 0,
            map: AddressMap::new(spec),
        }
    }

    /// The device spec.
    pub fn spec(&self) -> &DramSpec {
        self.map.spec()
    }

    /// Aggregate statistics since creation.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Current completion horizon in cycles.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    fn rank_key(&self, channel: usize, rank: usize) -> usize {
        channel * self.map.spec().ranks + rank
    }

    /// Applies any refreshes scheduled before `t` on the given rank,
    /// blocking its banks and closing their rows.
    fn catch_up_refresh(&mut self, channel: usize, rank: usize, t: u64) {
        let key = self.rank_key(channel, rank);
        let spec = self.map.spec().clone();
        while self.ranks[key].next_refresh <= t {
            let boundary = self.ranks[key].next_refresh;
            let end = boundary + spec.t_rfc;
            let bank_base = key * spec.banks_per_rank();
            for b in 0..spec.banks_per_rank() {
                let bank = &mut self.banks[bank_base + b];
                bank.ready_at = bank.ready_at.max(end);
                bank.open_row = None;
            }
            self.ranks[key].next_refresh = boundary + spec.t_refi;
            self.stats.refreshes += 1;
        }
    }

    /// Earliest ACT issue time at or after `t` respecting tRRD and tFAW.
    fn act_constraint(&mut self, channel: usize, rank: usize, t: u64) -> u64 {
        let key = self.rank_key(channel, rank);
        let spec = self.map.spec();
        let t_rrd = spec.t_rrd;
        let t_faw = spec.t_faw;
        let rs = &mut self.ranks[key];
        let mut issue = t.max(rs.last_act + t_rrd);
        rs.recent_acts.retain(|&a| a + t_faw > issue);
        if rs.recent_acts.len() >= 4 {
            let oldest = rs.recent_acts[rs.recent_acts.len() - 4];
            issue = issue.max(oldest + t_faw);
        }
        issue
    }

    fn note_act(&mut self, channel: usize, rank: usize, at: u64) {
        let key = self.rank_key(channel, rank);
        let rs = &mut self.ranks[key];
        rs.last_act = at;
        rs.recent_acts.push(at);
        if rs.recent_acts.len() > 8 {
            rs.recent_acts.remove(0);
        }
        self.stats.activates += 1;
    }

    /// Performs one burst access arriving at cycle `arrival`; returns its
    /// data-completion cycle.
    pub fn access(&mut self, kind: AccessKind, byte_addr: u64, arrival: u64) -> u64 {
        let d = self.map.decode(byte_addr);
        let spec = self.map.spec().clone();
        self.catch_up_refresh(d.channel, d.rank, arrival + spec.t_refi);
        let flat = d.flat_bank(&spec);

        // Open the right row.
        let hit = self.banks[flat].open_row == Some(d.row);
        let mut cmd_ready = self.banks[flat].ready_at.max(arrival);
        if !hit {
            if self.banks[flat].open_row.is_some() {
                // PRE: respect tRAS since the ACT that opened the row.
                let pre_at = cmd_ready.max(self.banks[flat].act_at + spec.t_ras);
                cmd_ready = pre_at + spec.t_rp;
            }
            let act_at = self.act_constraint(d.channel, d.rank, cmd_ready);
            self.note_act(d.channel, d.rank, act_at);
            self.banks[flat].open_row = Some(d.row);
            self.banks[flat].act_at = act_at;
            cmd_ready = act_at + spec.t_rcd;
        } else {
            self.stats.row_hits += 1;
        }

        // Column command: wait for the data bus slot.
        let lat = match kind {
            AccessKind::Read => spec.t_cl,
            AccessKind::Write => spec.t_cwl,
        };
        let bus = &mut self.bus_free[d.channel];
        let issue = cmd_ready.max(bus.saturating_sub(lat));
        let data_start = (issue + lat).max(*bus);
        let data_end = data_start + spec.burst_cycles();
        *bus = data_end;
        // Same-bank column spacing.
        self.banks[flat].ready_at = issue + spec.t_ccd_l;

        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.stats.bytes += spec.access_bytes() as u64;
        self.horizon = self.horizon.max(data_end);
        data_end
    }

    /// Reads (or writes) a contiguous byte range starting at cycle
    /// `arrival`; returns the completion cycle of the last burst.
    pub fn transfer(&mut self, kind: AccessKind, start_addr: u64, bytes: u64, arrival: u64) -> u64 {
        let g = self.map.spec().access_bytes() as u64;
        let first = start_addr / g;
        let last = (start_addr + bytes.max(1) - 1) / g;
        let mut end = arrival;
        for burst in first..=last {
            end = end.max(self.access(kind, burst * g, arrival));
        }
        end
    }

    /// Streams a contiguous read starting now and reports achieved
    /// bandwidth.
    pub fn stream_read(&mut self, start_addr: u64, bytes: u64) -> StreamResult {
        let begin = self.horizon;
        let end = self.transfer(AccessKind::Read, start_addr, bytes, begin);
        let cycles = end - begin;
        StreamResult {
            bytes,
            cycles,
            ns: cycles as f64 * self.map.spec().clock_ns(),
        }
    }

    /// Streams a contiguous write starting now.
    pub fn stream_write(&mut self, start_addr: u64, bytes: u64) -> StreamResult {
        let begin = self.horizon;
        let end = self.transfer(AccessKind::Write, start_addr, bytes, begin);
        let cycles = end - begin;
        StreamResult {
            bytes,
            cycles,
            ns: cycles as f64 * self.map.spec().clock_ns(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_stream_hits_paper_bandwidth_band() {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        let res = mem.stream_read(0, 64 << 20);
        let bw = res.bandwidth_gbps();
        assert!((380.0..=425.0).contains(&bw), "achieved {bw} GB/s");
        // Streaming opens each 16-burst row once: 15/16 hits, minus
        // refresh-induced reopenings.
        assert!(mem.stats().hit_rate() > 0.90);
    }

    #[test]
    fn ddr4_is_an_order_of_magnitude_slower() {
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let mut ddr = MemorySystem::new(DramSpec::ddr4_apu());
        let h = hbm.stream_read(0, 16 << 20);
        let d = ddr.stream_read(0, 16 << 20);
        assert!(d.ns > h.ns * 10.0);
        let bw = d.bandwidth_gbps();
        assert!((20.0..=24.0).contains(&bw), "DDR4 achieved {bw} GB/s");
    }

    #[test]
    fn random_access_is_much_slower_than_streaming() {
        let spec = DramSpec::hbm2e_16gb();
        let mut mem = MemorySystem::new(spec.clone());
        // Strided accesses that always miss the row buffer: jump a full
        // row-cycling stride each access within one bank.
        let row_stride = (spec.access_bytes()
            * spec.channels
            * spec.bank_groups
            * spec.banks_per_group
            * (spec.row_bytes / spec.access_bytes())
            * spec.ranks) as u64;
        let mut end = 0;
        let n = 2000u64;
        for i in 0..n {
            end = end.max(mem.access(AccessKind::Read, i * row_stride, 0));
        }
        let random_bw = (n * spec.access_bytes() as u64) as f64 / (end as f64 * spec.clock_ns());
        let mut mem2 = MemorySystem::new(spec.clone());
        let stream_bw = mem2
            .stream_read(0, n * spec.access_bytes() as u64)
            .bandwidth_gbps();
        assert!(
            stream_bw > 4.0 * random_bw,
            "stream {stream_bw} vs random {random_bw}"
        );
        assert_eq!(mem.stats().row_hits, 0);
    }

    #[test]
    fn refresh_happens_on_long_streams() {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        mem.stream_read(0, 256 << 20);
        assert!(mem.stats().refreshes > 0);
    }

    #[test]
    fn writes_are_tracked_separately() {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        let r = mem.stream_write(0, 1 << 20);
        assert!(r.bandwidth_gbps() > 100.0);
        assert!(mem.stats().writes > 0);
        assert_eq!(mem.stats().reads, 0);
    }

    #[test]
    fn back_to_back_streams_advance_the_horizon() {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        let a = mem.stream_read(0, 1 << 20);
        let h1 = mem.horizon();
        let b = mem.stream_read(0, 1 << 20);
        assert!(mem.horizon() > h1);
        // Second pass re-reads the same rows: at least as fast.
        assert!(b.cycles <= a.cycles + 100);
    }

    #[test]
    fn tiny_transfer_is_latency_bound() {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        let r = mem.stream_read(0, 64);
        // One burst: ACT + tRCD + tCL + burst ≈ 50 cycles, far below peak BW.
        assert!(r.cycles >= 40);
        assert!(r.bandwidth_gbps() < 10.0);
    }
}
