//! The memory system: an in-order open-page controller over per-bank
//! state, per-channel data buses, and per-rank activation windows and
//! refresh.

use serde::{Deserialize, Serialize};

use crate::address::AddressMap;
use crate::spec::DramSpec;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// DRAM read.
    Read,
    /// DRAM write.
    Write,
}

/// Per-bank state.
#[derive(Debug, Clone, Default)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest cycle the next command to this bank may issue.
    ready_at: u64,
    /// Cycle of the last ACT (for tRAS).
    act_at: u64,
}

/// Per-(channel, rank) state.
#[derive(Debug, Clone)]
struct RankState {
    /// Sliding window of recent ACT times (for tFAW).
    recent_acts: Vec<u64>,
    /// Last ACT time (for tRRD).
    last_act: u64,
    /// Next scheduled refresh boundary.
    next_refresh: u64,
}

/// Aggregate command statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Row activations issued.
    pub activates: u64,
    /// Read bursts issued.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Refresh operations performed.
    pub refreshes: u64,
    /// Bytes transferred.
    pub bytes: u64,
}

impl SystemStats {
    /// Row-buffer hit rate over all accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// Result of a streamed transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamResult {
    /// Bytes moved.
    pub bytes: u64,
    /// Elapsed memory-clock cycles.
    pub cycles: u64,
    /// Elapsed wall time in nanoseconds.
    pub ns: f64,
}

impl StreamResult {
    /// Achieved bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        if self.ns == 0.0 {
            0.0
        } else {
            self.bytes as f64 / self.ns
        }
    }

    /// Elapsed time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.ns / 1e6
    }
}

/// A simulated DRAM system.
#[derive(Debug)]
pub struct MemorySystem {
    map: AddressMap,
    banks: Vec<BankState>,
    ranks: Vec<RankState>,
    /// Earliest cycle each channel's data bus is free.
    bus_free: Vec<u64>,
    stats: SystemStats,
    /// High-water mark of completion times (the system clock).
    horizon: u64,
    /// Accesses whose command time was clipped by the arrival instant
    /// rather than by bank state. The steady-state stream fast path may
    /// only extrapolate windows where this never fired: an
    /// arrival-clipped bank compares state against a *constant*, and
    /// that comparison can flip as state advances, breaking the
    /// time-translation argument below.
    arrival_clips: u64,
}

/// Snapshot of the full timing state at a window boundary of one
/// streamed transfer (all fields the next window's outcome depends on).
struct StreamSnapshot {
    end: u64,
    horizon: u64,
    arrival_clips: u64,
    refreshes: u64,
    /// Per bank: (open_row, ready_at, act_at).
    banks: Vec<(Option<u64>, u64, u64)>,
    /// Per rank: (recent_acts, last_act, next_refresh).
    ranks: Vec<(Vec<u64>, u64, u64)>,
    bus_free: Vec<u64>,
    stats: SystemStats,
}

/// The per-window state advance of a steady periodic stream: every
/// time-like field moves by `wall` (or stays put), rows advance by a
/// fixed integer, and the command statistics grow by a fixed amount.
struct WindowDelta {
    /// Uniform time advance per window.
    wall: u64,
    /// Per bank: (row increment, ready_at delta, act_at delta); the time
    /// deltas are each either 0 or `wall`.
    banks: Vec<(u64, u64, u64)>,
    /// Per rank: last_act delta (0 or `wall`); recent_acts entries all
    /// move by `wall`.
    ranks: Vec<u64>,
    /// Per channel bus delta (0 or `wall`).
    bus_free: Vec<u64>,
    /// Command-count growth per window.
    stats: SystemStats,
}

impl MemorySystem {
    /// Creates a memory system for the given device.
    pub fn new(spec: DramSpec) -> Self {
        spec.assert_valid();
        let n_banks = spec.channels * spec.ranks * spec.bank_groups * spec.banks_per_group;
        let n_ranks = spec.channels * spec.ranks;
        let t_refi = spec.t_refi;
        MemorySystem {
            banks: vec![BankState::default(); n_banks],
            ranks: (0..n_ranks)
                .map(|_| RankState {
                    recent_acts: Vec::new(),
                    last_act: 0,
                    next_refresh: t_refi,
                })
                .collect(),
            bus_free: vec![0; spec.channels],
            stats: SystemStats::default(),
            horizon: 0,
            arrival_clips: 0,
            map: AddressMap::new(spec),
        }
    }

    /// The device spec.
    pub fn spec(&self) -> &DramSpec {
        self.map.spec()
    }

    /// Aggregate statistics since creation.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// Current completion horizon in cycles.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    fn rank_key(&self, channel: usize, rank: usize) -> usize {
        channel * self.map.spec().ranks + rank
    }

    /// Applies any refreshes scheduled before `t` on the given rank,
    /// blocking its banks and closing their rows.
    fn catch_up_refresh(&mut self, channel: usize, rank: usize, t: u64) {
        let key = self.rank_key(channel, rank);
        let next = self.ranks[key].next_refresh;
        if next > t {
            return;
        }
        let spec = self.map.spec().clone();
        // All elapsed refresh intervals fire at once: boundaries
        // increase monotonically, so only the last interval's recovery
        // window survives the per-bank `max`, and closing the rows is
        // idempotent — batching is state- and stats-identical to firing
        // them one by one.
        let n = (t - next) / spec.t_refi + 1;
        let last = next + (n - 1) * spec.t_refi;
        let end = last + spec.t_rfc;
        let bank_base = key * spec.banks_per_rank();
        for b in 0..spec.banks_per_rank() {
            let bank = &mut self.banks[bank_base + b];
            bank.ready_at = bank.ready_at.max(end);
            bank.open_row = None;
        }
        self.ranks[key].next_refresh = last + spec.t_refi;
        self.stats.refreshes += n;
    }

    /// Earliest ACT issue time at or after `t` respecting tRRD and tFAW.
    fn act_constraint(&mut self, channel: usize, rank: usize, t: u64) -> u64 {
        let key = self.rank_key(channel, rank);
        let spec = self.map.spec();
        let t_rrd = spec.t_rrd;
        let t_faw = spec.t_faw;
        let rs = &mut self.ranks[key];
        let mut issue = t.max(rs.last_act + t_rrd);
        rs.recent_acts.retain(|&a| a + t_faw > issue);
        if rs.recent_acts.len() >= 4 {
            let oldest = rs.recent_acts[rs.recent_acts.len() - 4];
            issue = issue.max(oldest + t_faw);
        }
        issue
    }

    fn note_act(&mut self, channel: usize, rank: usize, at: u64) {
        let key = self.rank_key(channel, rank);
        let rs = &mut self.ranks[key];
        rs.last_act = at;
        rs.recent_acts.push(at);
        if rs.recent_acts.len() > 8 {
            rs.recent_acts.remove(0);
        }
        self.stats.activates += 1;
    }

    /// Performs one burst access arriving at cycle `arrival`; returns its
    /// data-completion cycle.
    pub fn access(&mut self, kind: AccessKind, byte_addr: u64, arrival: u64) -> u64 {
        let d = self.map.decode(byte_addr);
        let spec = self.map.spec().clone();
        self.catch_up_refresh(d.channel, d.rank, arrival + spec.t_refi);
        let flat = d.flat_bank(&spec);

        // Open the right row.
        let hit = self.banks[flat].open_row == Some(d.row);
        if arrival > self.banks[flat].ready_at {
            self.arrival_clips += 1;
        }
        let mut cmd_ready = self.banks[flat].ready_at.max(arrival);
        if !hit {
            if self.banks[flat].open_row.is_some() {
                // PRE: respect tRAS since the ACT that opened the row.
                let pre_at = cmd_ready.max(self.banks[flat].act_at + spec.t_ras);
                cmd_ready = pre_at + spec.t_rp;
            }
            let act_at = self.act_constraint(d.channel, d.rank, cmd_ready);
            self.note_act(d.channel, d.rank, act_at);
            self.banks[flat].open_row = Some(d.row);
            self.banks[flat].act_at = act_at;
            cmd_ready = act_at + spec.t_rcd;
        } else {
            self.stats.row_hits += 1;
        }

        // Column command: wait for the data bus slot.
        let lat = match kind {
            AccessKind::Read => spec.t_cl,
            AccessKind::Write => spec.t_cwl,
        };
        let bus = &mut self.bus_free[d.channel];
        let issue = cmd_ready.max(bus.saturating_sub(lat));
        let data_start = (issue + lat).max(*bus);
        let data_end = data_start + spec.burst_cycles();
        *bus = data_end;
        // Same-bank column spacing.
        self.banks[flat].ready_at = issue + spec.t_ccd_l;

        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.stats.bytes += spec.access_bytes() as u64;
        self.horizon = self.horizon.max(data_end);
        data_end
    }

    /// Reads (or writes) a contiguous byte range starting at cycle
    /// `arrival`; returns the completion cycle of the last burst.
    pub fn transfer(&mut self, kind: AccessKind, start_addr: u64, bytes: u64, arrival: u64) -> u64 {
        let g = self.map.spec().access_bytes() as u64;
        let first = start_addr / g;
        let last = (start_addr + bytes.max(1) - 1) / g;
        // Long contiguous streams are periodic: the address map rotates
        // channel -> bank group -> bank -> column -> rank before the row
        // advances, so after `window` bursts the controller revisits the
        // same banks one row further along. Once the pipeline reaches
        // steady state, consecutive windows are exact time-translated
        // copies of each other — detect that and apply the remaining
        // windows in O(1) instead of burst-by-burst. Bit-exactness: the
        // controller's update rules are maxes of state-plus-constant
        // terms, so shifting every live state field by the observed
        // uniform delta shifts every outcome by the same delta, provided
        // no comparison against a transfer constant (the arrival clip,
        // the refresh bound) fired during the observed windows.
        let window = self.rotation_bursts();
        let mut end = arrival;
        let mut burst = first;
        let mut snaps: Vec<StreamSnapshot> = Vec::new();
        while burst <= last {
            end = end.max(self.access(kind, burst * g, arrival));
            burst += 1;
            let done = burst - first;
            if window == 0 || !done.is_multiple_of(window) || last + 1 - burst < window {
                continue;
            }
            snaps.push(self.snapshot(end));
            if snaps.len() < 3 {
                continue;
            }
            if snaps.len() > 3 {
                snaps.remove(0);
            }
            if let Some(delta) = Self::steady_delta(&snaps) {
                let k = (last + 1 - burst) / window;
                if k > 0 {
                    self.apply_windows(&delta, k);
                    end += k * delta.wall;
                    burst += k * window;
                    snaps.clear();
                }
            }
        }
        end
    }

    /// Bursts per full address-rotation period: one visit to every
    /// (channel, bank group, bank, column, rank) before the row index
    /// advances.
    fn rotation_bursts(&self) -> u64 {
        let s = self.map.spec();
        (s.channels * s.bank_groups * s.banks_per_group * s.ranks) as u64
            * self.map.bursts_per_row()
    }

    fn snapshot(&self, end: u64) -> StreamSnapshot {
        StreamSnapshot {
            end,
            horizon: self.horizon,
            arrival_clips: self.arrival_clips,
            refreshes: self.stats.refreshes,
            banks: self
                .banks
                .iter()
                .map(|b| (b.open_row, b.ready_at, b.act_at))
                .collect(),
            ranks: self
                .ranks
                .iter()
                .map(|r| (r.recent_acts.clone(), r.last_act, r.next_refresh))
                .collect(),
            bus_free: self.bus_free.clone(),
            stats: self.stats,
        }
    }

    /// Checks whether the last three window snapshots describe a steady
    /// periodic stream, and if so returns its per-window delta. Every
    /// time-like field must advance by the same `wall` (or not at all,
    /// consistently), rows must advance by a fixed per-bank increment,
    /// and no refresh or arrival clip may have fired in either window.
    fn steady_delta(snaps: &[StreamSnapshot]) -> Option<WindowDelta> {
        let (a, b, c) = (&snaps[0], &snaps[1], &snaps[2]);
        let wall = b.end.checked_sub(a.end)?;
        if wall == 0 || c.end - b.end != wall {
            return None;
        }
        if b.horizon - a.horizon != wall || c.horizon - b.horizon != wall {
            return None;
        }
        if b.arrival_clips != a.arrival_clips || c.arrival_clips != b.arrival_clips {
            return None;
        }
        if b.refreshes != a.refreshes || c.refreshes != b.refreshes {
            return None;
        }
        // A time-like field may sit still or move by exactly `wall`, and
        // must do the same thing in both observed windows.
        let step = |x: u64, y: u64, z: u64| -> Option<u64> {
            let d = y.checked_sub(x)?;
            if z.checked_sub(y)? != d || (d != 0 && d != wall) {
                return None;
            }
            Some(d)
        };
        let mut banks = Vec::with_capacity(a.banks.len());
        for ((ba, bb), bc) in a.banks.iter().zip(&b.banks).zip(&c.banks) {
            let row_inc = match (ba.0, bb.0, bc.0) {
                (Some(x), Some(y), Some(z)) => {
                    let d = y.checked_sub(x)?;
                    if z.checked_sub(y)? != d {
                        return None;
                    }
                    d
                }
                (None, None, None) => 0,
                _ => return None,
            };
            banks.push((row_inc, step(ba.1, bb.1, bc.1)?, step(ba.2, bb.2, bc.2)?));
        }
        let mut ranks = Vec::with_capacity(a.ranks.len());
        for ((ra, rb), rc) in a.ranks.iter().zip(&b.ranks).zip(&c.ranks) {
            if ra.2 != rb.2 || rb.2 != rc.2 {
                return None; // refresh schedule must be settled
            }
            if ra.0.len() != rb.0.len() || rb.0.len() != rc.0.len() {
                return None;
            }
            for ((&x, &y), &z) in ra.0.iter().zip(&rb.0).zip(&rc.0) {
                if y.checked_sub(x)? != wall || z.checked_sub(y)? != wall {
                    return None;
                }
            }
            ranks.push(step(ra.1, rb.1, rc.1)?);
        }
        let mut bus_free = Vec::with_capacity(a.bus_free.len());
        for ((&x, &y), &z) in a.bus_free.iter().zip(&b.bus_free).zip(&c.bus_free) {
            bus_free.push(step(x, y, z)?);
        }
        let d1 = Self::stats_delta(&a.stats, &b.stats)?;
        let d2 = Self::stats_delta(&b.stats, &c.stats)?;
        if d1 != d2 {
            return None;
        }
        Some(WindowDelta {
            wall,
            banks,
            ranks,
            bus_free,
            stats: d1,
        })
    }

    fn stats_delta(a: &SystemStats, b: &SystemStats) -> Option<SystemStats> {
        Some(SystemStats {
            activates: b.activates.checked_sub(a.activates)?,
            reads: b.reads.checked_sub(a.reads)?,
            writes: b.writes.checked_sub(a.writes)?,
            row_hits: b.row_hits.checked_sub(a.row_hits)?,
            refreshes: b.refreshes.checked_sub(a.refreshes)?,
            bytes: b.bytes.checked_sub(a.bytes)?,
        })
    }

    /// Advances the state by `k` steady windows at once.
    ///
    /// Rows advance modulo the row count: row values influence timing
    /// only through the per-bank `open_row == decoded row` equality,
    /// and decoded rows are themselves a modulo of the linearly
    /// advancing address — shifting both sides by `k * row_inc mod
    /// rows` preserves every equality outcome, so extrapolation runs
    /// straight through address-space wrap-around.
    fn apply_windows(&mut self, d: &WindowDelta, k: u64) {
        let rows = self.map.spec().rows as u64;
        for (bank, &(row_inc, ready_d, act_d)) in self.banks.iter_mut().zip(&d.banks) {
            if row_inc > 0 {
                bank.open_row = bank.open_row.map(|r| (r + k * row_inc % rows) % rows);
            }
            bank.ready_at += k * ready_d;
            bank.act_at += k * act_d;
        }
        for (rank, &last_act_d) in self.ranks.iter_mut().zip(&d.ranks) {
            rank.last_act += k * last_act_d;
            for t in &mut rank.recent_acts {
                *t += k * d.wall;
            }
        }
        for (bus, &bd) in self.bus_free.iter_mut().zip(&d.bus_free) {
            *bus += k * bd;
        }
        self.stats.activates += k * d.stats.activates;
        self.stats.reads += k * d.stats.reads;
        self.stats.writes += k * d.stats.writes;
        self.stats.row_hits += k * d.stats.row_hits;
        self.stats.refreshes += k * d.stats.refreshes;
        self.stats.bytes += k * d.stats.bytes;
        self.horizon += k * d.wall;
    }

    /// Streams a contiguous read starting now and reports achieved
    /// bandwidth.
    pub fn stream_read(&mut self, start_addr: u64, bytes: u64) -> StreamResult {
        let begin = self.horizon;
        let end = self.transfer(AccessKind::Read, start_addr, bytes, begin);
        let cycles = end - begin;
        StreamResult {
            bytes,
            cycles,
            ns: cycles as f64 * self.map.spec().clock_ns(),
        }
    }

    /// Streams a contiguous write starting now.
    pub fn stream_write(&mut self, start_addr: u64, bytes: u64) -> StreamResult {
        let begin = self.horizon;
        let end = self.transfer(AccessKind::Write, start_addr, bytes, begin);
        let cycles = end - begin;
        StreamResult {
            bytes,
            cycles,
            ns: cycles as f64 * self.map.spec().clock_ns(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_stream_hits_paper_bandwidth_band() {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        let res = mem.stream_read(0, 64 << 20);
        let bw = res.bandwidth_gbps();
        assert!((380.0..=425.0).contains(&bw), "achieved {bw} GB/s");
        // Streaming opens each 16-burst row once: 15/16 hits, minus
        // refresh-induced reopenings.
        assert!(mem.stats().hit_rate() > 0.90);
    }

    #[test]
    fn ddr4_is_an_order_of_magnitude_slower() {
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let mut ddr = MemorySystem::new(DramSpec::ddr4_apu());
        let h = hbm.stream_read(0, 16 << 20);
        let d = ddr.stream_read(0, 16 << 20);
        assert!(d.ns > h.ns * 10.0);
        let bw = d.bandwidth_gbps();
        assert!((20.0..=24.0).contains(&bw), "DDR4 achieved {bw} GB/s");
    }

    #[test]
    fn random_access_is_much_slower_than_streaming() {
        let spec = DramSpec::hbm2e_16gb();
        let mut mem = MemorySystem::new(spec.clone());
        // Strided accesses that always miss the row buffer: jump a full
        // row-cycling stride each access within one bank.
        let row_stride = (spec.access_bytes()
            * spec.channels
            * spec.bank_groups
            * spec.banks_per_group
            * (spec.row_bytes / spec.access_bytes())
            * spec.ranks) as u64;
        let mut end = 0;
        let n = 2000u64;
        for i in 0..n {
            end = end.max(mem.access(AccessKind::Read, i * row_stride, 0));
        }
        let random_bw = (n * spec.access_bytes() as u64) as f64 / (end as f64 * spec.clock_ns());
        let mut mem2 = MemorySystem::new(spec.clone());
        let stream_bw = mem2
            .stream_read(0, n * spec.access_bytes() as u64)
            .bandwidth_gbps();
        assert!(
            stream_bw > 4.0 * random_bw,
            "stream {stream_bw} vs random {random_bw}"
        );
        assert_eq!(mem.stats().row_hits, 0);
    }

    #[test]
    fn steady_state_fast_path_is_bit_exact() {
        // The windowed extrapolation in `transfer` must be observably
        // identical to the burst-by-burst walk: same completion time,
        // same statistics, same horizon, and the same internal state as
        // witnessed by follow-up transfers that re-read the streamed
        // region (row-buffer state) and then write elsewhere.
        for spec in [DramSpec::hbm2e_16gb(), DramSpec::ddr4_apu()] {
            let g = spec.access_bytes() as u64;
            let mut fast = MemorySystem::new(spec.clone());
            let mut slow = MemorySystem::new(spec.clone());
            // Misaligned start and odd length, long enough for many
            // rotation windows.
            let start = 12_345 * g + 7;
            let bytes = (24 << 20) + 133;
            let arrival = 1_000;
            let end_fast = fast.transfer(AccessKind::Read, start, bytes, arrival);
            let first = start / g;
            let last = (start + bytes - 1) / g;
            let mut end_slow = arrival;
            for b in first..=last {
                end_slow = end_slow.max(slow.access(AccessKind::Read, b * g, arrival));
            }
            assert_eq!(end_fast, end_slow, "stream end diverged for {spec:?}");
            assert_eq!(fast.stats(), slow.stats());
            assert_eq!(fast.horizon(), slow.horizon());
            // Follow-ups exercise the post-stream bank state.
            let f2 = fast.transfer(AccessKind::Read, start, 1 << 16, end_fast + 10);
            let s2 = slow.transfer(AccessKind::Read, start, 1 << 16, end_slow + 10);
            assert_eq!(f2, s2, "post-stream re-read diverged for {spec:?}");
            let f3 = fast.transfer(AccessKind::Write, 999, 4_096, f2 + 5);
            let s3 = slow.transfer(AccessKind::Write, 999, 4_096, s2 + 5);
            assert_eq!(f3, s3, "post-stream write diverged for {spec:?}");
            assert_eq!(fast.stats(), slow.stats());
        }
    }

    #[test]
    fn fast_path_extrapolates_through_address_wraparound() {
        // A stream longer than the device wraps the row index back to
        // zero mid-stream. The extrapolation advances rows modulo the
        // row count, so the wrap must not perturb the timeline; a tiny
        // spec keeps the burst-by-burst oracle affordable while the
        // stream wraps the full address space several times.
        let mut spec = DramSpec::hbm2e_16gb();
        spec.channels = 1;
        spec.ranks = 1;
        spec.bank_groups = 2;
        spec.banks_per_group = 2;
        spec.rows = 16;
        spec.row_bytes = 256;
        // Capacity: 1 ch x 1 rank x 4 banks x 16 rows x 256 B = 16 KB.
        let g = spec.access_bytes() as u64;
        let mut fast = MemorySystem::new(spec.clone());
        let mut slow = MemorySystem::new(spec);
        let start = 3 * g + 1;
        let bytes = (128 << 10) + 57; // wraps the 16 KB device ~8 times
        let arrival = 2_500;
        let end_fast = fast.transfer(AccessKind::Read, start, bytes, arrival);
        let first = start / g;
        let last = (start + bytes - 1) / g;
        let mut end_slow = arrival;
        for b in first..=last {
            end_slow = end_slow.max(slow.access(AccessKind::Read, b * g, arrival));
        }
        assert_eq!(end_fast, end_slow, "stream end diverged across the wrap");
        assert_eq!(fast.stats(), slow.stats());
        assert_eq!(fast.horizon(), slow.horizon());
        // Post-stream witnesses: the surviving row-buffer state must
        // carry the wrapped (modular) row values.
        let f2 = fast.transfer(AccessKind::Read, 0, 8 << 10, end_fast + 10);
        let s2 = slow.transfer(AccessKind::Read, 0, 8 << 10, end_slow + 10);
        assert_eq!(f2, s2, "post-wrap re-read diverged");
        assert_eq!(fast.stats(), slow.stats());
    }

    #[test]
    fn back_to_back_fast_path_streams_match_the_slow_walk() {
        // Repeated full-corpus streams are the serving hot path; each
        // must replay the exact slow-walk timeline even though the
        // refresh phase differs from stream to stream.
        let spec = DramSpec::hbm2e_16gb();
        let g = spec.access_bytes() as u64;
        let mut fast = MemorySystem::new(spec.clone());
        let mut slow = MemorySystem::new(spec);
        let bytes = 8 << 20;
        for _ in 0..3 {
            let rf = fast.stream_read(0, bytes);
            let begin = slow.horizon();
            let mut end = begin;
            for b in 0..bytes.div_ceil(g) {
                end = end.max(slow.access(AccessKind::Read, b * g, begin));
            }
            assert_eq!(rf.cycles, end - begin);
            assert_eq!(fast.stats(), slow.stats());
            assert_eq!(fast.horizon(), slow.horizon());
        }
    }

    #[test]
    fn refresh_happens_on_long_streams() {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        mem.stream_read(0, 256 << 20);
        assert!(mem.stats().refreshes > 0);
    }

    #[test]
    fn writes_are_tracked_separately() {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        let r = mem.stream_write(0, 1 << 20);
        assert!(r.bandwidth_gbps() > 100.0);
        assert!(mem.stats().writes > 0);
        assert_eq!(mem.stats().reads, 0);
    }

    #[test]
    fn back_to_back_streams_advance_the_horizon() {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        let a = mem.stream_read(0, 1 << 20);
        let h1 = mem.horizon();
        let b = mem.stream_read(0, 1 << 20);
        assert!(mem.horizon() > h1);
        // Second pass re-reads the same rows: at least as fast.
        assert!(b.cycles <= a.cycles + 100);
    }

    #[test]
    fn tiny_transfer_is_latency_bound() {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        let r = mem.stream_read(0, 64);
        // One burst: ACT + tRCD + tCL + burst ≈ 50 cycles, far below peak BW.
        assert!(r.cycles >= 40);
        assert!(r.bandwidth_gbps() < 10.0);
    }
}
