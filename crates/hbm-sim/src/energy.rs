//! DRAMPower-style energy accounting.
//!
//! Energy is the sum of per-command contributions (ACT/PRE pairs, read
//! and write bursts, refreshes) plus background power integrated over the
//! elapsed time. The constants are typical published figures for HBM2e
//! (~3.9 pJ/bit end-to-end when streaming) and DDR4 (~13 pJ/bit), in the
//! same spirit as DRAMPower's IDD-derived parameters.

use serde::{Deserialize, Serialize};

use crate::spec::DramSpec;
use crate::system::SystemStats;

/// Per-command and background energy constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one ACT+PRE pair, in nanojoules.
    pub act_pre_nj: f64,
    /// Read data movement energy, pJ per byte.
    pub rd_pj_per_byte: f64,
    /// Write data movement energy, pJ per byte.
    pub wr_pj_per_byte: f64,
    /// One refresh operation, in nanojoules.
    pub refresh_nj: f64,
    /// Background (standby) power per channel, in watts.
    pub background_w_per_channel: f64,
}

impl EnergyParams {
    /// HBM2e constants.
    pub fn hbm2e() -> Self {
        EnergyParams {
            act_pre_nj: 1.6,
            rd_pj_per_byte: 16.0,
            wr_pj_per_byte: 18.0,
            refresh_nj: 12.0,
            background_w_per_channel: 0.25,
        }
    }

    /// DDR4 constants.
    pub fn ddr4() -> Self {
        EnergyParams {
            act_pre_nj: 2.2,
            rd_pj_per_byte: 104.0,
            wr_pj_per_byte: 110.0,
            refresh_nj: 30.0,
            background_w_per_channel: 0.9,
        }
    }

    /// Default constants for a spec by name.
    pub fn for_spec(spec: &DramSpec) -> Self {
        if spec.name.starts_with("HBM") {
            EnergyParams::hbm2e()
        } else {
            EnergyParams::ddr4()
        }
    }
}

/// An energy breakdown in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramEnergy {
    /// Row activation/precharge energy.
    pub activate_j: f64,
    /// Read burst energy.
    pub read_j: f64,
    /// Write burst energy.
    pub write_j: f64,
    /// Refresh energy.
    pub refresh_j: f64,
    /// Background/standby energy.
    pub background_j: f64,
}

impl DramEnergy {
    /// Computes the breakdown from command statistics and elapsed time.
    pub fn from_stats(
        spec: &DramSpec,
        params: &EnergyParams,
        stats: &SystemStats,
        elapsed_cycles: u64,
    ) -> DramEnergy {
        let g = spec.access_bytes() as f64;
        let secs = elapsed_cycles as f64 * spec.clock_ns() / 1e9;
        DramEnergy {
            activate_j: stats.activates as f64 * params.act_pre_nj * 1e-9,
            read_j: stats.reads as f64 * g * params.rd_pj_per_byte * 1e-12,
            write_j: stats.writes as f64 * g * params.wr_pj_per_byte * 1e-12,
            refresh_j: stats.refreshes as f64 * params.refresh_nj * 1e-9,
            background_j: secs * params.background_w_per_channel * spec.channels as f64,
        }
    }

    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.activate_j + self.read_j + self.write_j + self.refresh_j + self.background_j
    }

    /// Energy per bit moved, in pJ/bit (meaningful for streaming).
    pub fn pj_per_bit(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.total_j() * 1e12 / (bytes as f64 * 8.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{AccessKind, MemorySystem};

    #[test]
    fn streaming_hbm_lands_near_published_pj_per_bit() {
        let mut mem = MemorySystem::new(DramSpec::hbm2e_16gb());
        let bytes = 64u64 << 20;
        mem.stream_read(0, bytes);
        let e = DramEnergy::from_stats(
            mem.spec(),
            &EnergyParams::hbm2e(),
            &mem.stats(),
            mem.horizon(),
        );
        let pjb = e.pj_per_bit(bytes);
        assert!(
            (2.0..=8.0).contains(&pjb),
            "HBM2e streaming at {pjb} pJ/bit"
        );
    }

    #[test]
    fn ddr4_costs_more_energy_per_bit() {
        let bytes = 16u64 << 20;
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        hbm.stream_read(0, bytes);
        let eh = DramEnergy::from_stats(
            hbm.spec(),
            &EnergyParams::hbm2e(),
            &hbm.stats(),
            hbm.horizon(),
        );
        let mut ddr = MemorySystem::new(DramSpec::ddr4_apu());
        ddr.stream_read(0, bytes);
        let ed = DramEnergy::from_stats(
            ddr.spec(),
            &EnergyParams::ddr4(),
            &ddr.stats(),
            ddr.horizon(),
        );
        assert!(ed.pj_per_bit(bytes) > 2.0 * eh.pj_per_bit(bytes));
    }

    #[test]
    fn random_access_pays_more_activate_energy() {
        let spec = DramSpec::hbm2e_16gb();
        let row_stride = (spec.access_bytes()
            * spec.channels
            * spec.bank_groups
            * spec.banks_per_group
            * (spec.row_bytes / spec.access_bytes())
            * spec.ranks) as u64;
        let mut mem = MemorySystem::new(spec.clone());
        for i in 0..1000u64 {
            mem.access(AccessKind::Read, i * row_stride, 0);
        }
        let e = DramEnergy::from_stats(
            mem.spec(),
            &EnergyParams::hbm2e(),
            &mem.stats(),
            mem.horizon(),
        );
        assert!(e.activate_j > e.read_j);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let e = DramEnergy {
            activate_j: 1.0,
            read_j: 2.0,
            write_j: 3.0,
            refresh_j: 4.0,
            background_j: 5.0,
        };
        assert_eq!(e.total_j(), 15.0);
        assert_eq!(e.pj_per_bit(0), 0.0);
    }
}
