//! DRAM device specifications and timing parameters.

use serde::{Deserialize, Serialize};

/// A DRAM configuration: topology plus timing in memory-clock cycles.
///
/// Presets: [`DramSpec::hbm2e_16gb`] (the paper's simulated RAG memory)
/// and [`DramSpec::ddr4_apu`] (the APU's native device DRAM).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramSpec {
    /// Human-readable name.
    pub name: String,
    /// Independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank.
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Row (page) size in bytes.
    pub row_bytes: usize,
    /// Data bus width per channel in bits.
    pub bus_bits: usize,
    /// Burst length in beats.
    pub burst_len: usize,
    /// Memory clock in MHz (command clock; data rate is 2× for DDR).
    pub clock_mhz: f64,

    // ---- timing constraints, in memory-clock cycles ----
    /// ACT → RD/WR to the same bank.
    pub t_rcd: u64,
    /// PRE → ACT to the same bank.
    pub t_rp: u64,
    /// ACT → PRE minimum (row must stay open this long).
    pub t_ras: u64,
    /// RD command → first data beat.
    pub t_cl: u64,
    /// WR command → first data beat.
    pub t_cwl: u64,
    /// Same-bank-group RD→RD spacing.
    pub t_ccd_l: u64,
    /// Cross-bank-group RD→RD spacing.
    pub t_ccd_s: u64,
    /// ACT→ACT to different banks, same rank.
    pub t_rrd: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// Average refresh interval.
    pub t_refi: u64,
    /// Refresh cycle time (rank blocked).
    pub t_rfc: u64,
}

impl DramSpec {
    /// The paper's simulated HBM2e: 16 GB, 8 channels, 2 ranks
    /// (pseudo-channels folded in), 1.6 GHz command clock (3.2 Gbps/pin),
    /// 128-bit channels. Peak bandwidth 8 × 16 B × 3.2 G = 409.6 GB/s,
    /// inside the paper's 380–420 GB/s band.
    pub fn hbm2e_16gb() -> Self {
        DramSpec {
            name: "HBM2e-16GB".into(),
            channels: 8,
            ranks: 2,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 32768,
            row_bytes: 1024,
            bus_bits: 128,
            burst_len: 4,
            clock_mhz: 1600.0,
            t_rcd: 23,
            t_rp: 23,
            t_ras: 52,
            t_cl: 23,
            t_cwl: 12,
            t_ccd_l: 4,
            t_ccd_s: 2,
            t_rrd: 6,
            t_faw: 24,
            t_refi: 6240,
            t_rfc: 560,
        }
    }

    /// The APU's native device DRAM: single-channel 64-bit DDR4-2933-ish,
    /// ~23.4 GB/s peak (the paper reports 23.8 GB/s).
    pub fn ddr4_apu() -> Self {
        DramSpec {
            name: "DDR4-APU".into(),
            channels: 1,
            ranks: 2,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 65536,
            row_bytes: 8192,
            bus_bits: 64,
            burst_len: 8,
            clock_mhz: 1466.0,
            t_rcd: 21,
            t_rp: 21,
            t_ras: 47,
            t_cl: 21,
            t_cwl: 16,
            t_ccd_l: 8,
            t_ccd_s: 4,
            t_rrd: 8,
            t_faw: 34,
            t_refi: 11437,
            t_rfc: 512,
        }
    }

    /// Total banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Bytes transferred by one burst on one channel
    /// (DDR: `bus_bits/8 × burst_len × 2` beats per clock... burst_len is
    /// counted in beats, so bytes = `bus_bits/8 × burst_len`).
    pub fn access_bytes(&self) -> usize {
        (self.bus_bits / 8) * self.burst_len
    }

    /// Channel-clock period in nanoseconds.
    pub fn clock_ns(&self) -> f64 {
        1e3 / self.clock_mhz
    }

    /// Cycles the data bus is occupied per burst (DDR moves two beats per
    /// clock).
    pub fn burst_cycles(&self) -> u64 {
        (self.burst_len as u64).div_ceil(2)
    }

    /// Theoretical peak bandwidth in GB/s across all channels.
    pub fn peak_gbps(&self) -> f64 {
        let bytes_per_cycle_per_chan = self.access_bytes() as f64 / self.burst_cycles() as f64;
        bytes_per_cycle_per_chan * self.channels as f64 * self.clock_mhz * 1e6 / 1e9
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized topology fields (presets are always valid).
    pub fn assert_valid(&self) {
        assert!(self.channels > 0 && self.ranks > 0);
        assert!(self.bank_groups > 0 && self.banks_per_group > 0);
        assert!(self.rows > 0 && self.row_bytes > 0);
        assert!(self.bus_bits >= 8 && self.burst_len > 0);
        assert!(self.clock_mhz > 0.0);
        assert!(self.access_bytes() <= self.row_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm2e_peak_matches_paper_band() {
        let s = DramSpec::hbm2e_16gb();
        s.assert_valid();
        let peak = s.peak_gbps();
        assert!((380.0..=420.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn ddr4_peak_matches_device() {
        let s = DramSpec::ddr4_apu();
        s.assert_valid();
        let peak = s.peak_gbps();
        assert!((22.0..=25.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn access_granularity() {
        assert_eq!(DramSpec::hbm2e_16gb().access_bytes(), 64);
        assert_eq!(DramSpec::ddr4_apu().access_bytes(), 64);
        assert_eq!(DramSpec::hbm2e_16gb().burst_cycles(), 2);
        assert_eq!(DramSpec::ddr4_apu().burst_cycles(), 4);
    }

    #[test]
    fn clock_period() {
        assert!((DramSpec::hbm2e_16gb().clock_ns() - 0.625).abs() < 1e-9);
    }
}
