#![warn(missing_docs)]

//! Binary matrix multiplication on the simulated compute-in-SRAM device
//! — the paper's motivating example (§4.1) and §5.1 microbenchmark.
//!
//! Binary matrices hold ±1 values bit-packed along the reduction axis
//! (bit 1 ⇔ +1). The dot product of two packed rows is
//! `K − 2·popcount(a XOR b)`, so the kernel reduces to XOR + population
//! count + accumulation — a natural fit for bit-line compute.
//!
//! Five device kernels mirror the Fig. 12 variants (selected through
//! [`ApuMatmul::run`] with a `cis_core::MatmulVariant`): the
//! inner-product baseline, each optimization standalone (opt1
//! communication-aware reduction mapping, opt2 coalesced DMA, opt3
//! broadcast-friendly layout), and all three combined. Every kernel
//! computes real results (validated against the CPU reference in
//! functional mode) and reports a per-stage latency breakdown
//! (LD LHS / LD RHS / VR ops / ST).

pub mod apu;
pub mod cpu;
pub mod pack;

pub use apu::{ApuMatmul, MatmulRun, StageBreakdown};
pub use cpu::cpu_matmul;
pub use pack::BinMatrix;

/// Crate-wide result alias (errors are [`apu_sim::Error`]).
pub type Result<T> = apu_sim::Result<T>;
