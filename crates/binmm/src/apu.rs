//! Device kernels for binary matmul: baseline inner product and the
//! Fig. 12 optimization variants.
//!
//! All kernels compute `C = A × B` over ±1 matrices with `A (M × K)` and
//! `B` supplied transposed (`N × K`), and validate bit-exactly against
//! [`crate::cpu_matmul`] in functional mode. Device-friendly shape
//! constraints (checked, not assumed):
//!
//! * the packed reduction width `K_w` is a power of two with
//!   `4 ≤ K_w ≤ l`;
//! * for the temporal variants (`opt1`, `all_opts`): `N` divides the VR
//!   length `l` and `M` is a multiple of `⌊l/N⌋`;
//! * the RHS column tiles (baseline) / LHS vectors (`opt2`) / RHS reuse
//!   vectors (`all_opts`) must fit the 48-register L1 file.

use apu_sim::dma::ChunkCopy;
use apu_sim::{ApuContext, ApuDevice, Cycles, Error, MemHandle, TaskReport, Vmr, Vr};
use cis_core::MatmulVariant;
use gvml::prelude::*;
use serde::{Deserialize, Serialize};

use crate::pack::BinMatrix;
use crate::Result;

const VR_A: Vr = Vr::new(0);
const VR_B: Vr = Vr::new(1);
const VR_T: Vr = Vr::new(2);
const VR_T2: Vr = Vr::new(3);
const VR_ACC: Vr = Vr::new(4);
const VR_IDX: Vr = Vr::new(5);
const VR_STAGE: Vr = Vr::new(6);

/// L1 register used for DMA staging.
const VMR_STAGE: Vmr = Vmr::new(47);
/// L1 register holding the duplicated RHS row (temporal variants).
const VMR_B: Vmr = Vmr::new(46);
/// First L1 register for resident tiles / reuse vectors.
const VMR_POOL: u8 = 40;

/// Per-stage latency split, matching the Fig. 12 legend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// Loading the LHS matrix (DMA/PIO/lookup + duplication).
    pub ld_lhs: Cycles,
    /// Loading the RHS matrix.
    pub ld_rhs: Cycles,
    /// On-register compute (XOR/popcount/reductions/accumulation).
    pub vr_ops: Cycles,
    /// Storing results (PIO or DMA).
    pub st: Cycles,
}

impl StageBreakdown {
    /// Sum of all stages.
    pub fn total(&self) -> Cycles {
        self.ld_lhs + self.ld_rhs + self.vr_ops + self.st
    }
}

/// Result of one device matmul run.
#[derive(Debug, Clone)]
pub struct MatmulRun {
    /// The output matrix (`M × N`, row-major). Empty in timing-only mode.
    pub c: Vec<i16>,
    /// Latency and command statistics.
    pub report: TaskReport,
    /// Per-stage latency split.
    pub breakdown: StageBreakdown,
}

/// Cycle stopwatch for attributing interleaved work to stages.
struct Laps {
    last: Cycles,
}

impl Laps {
    fn new(ctx: &ApuContext<'_>) -> Self {
        Laps {
            last: ctx.core().cycles(),
        }
    }

    fn lap(&mut self, ctx: &ApuContext<'_>, bucket: &mut Cycles) {
        let now = ctx.core().cycles();
        *bucket += now - self.last;
        self.last = now;
    }
}

/// A binary matmul problem prepared for the device.
#[derive(Debug, Clone)]
pub struct ApuMatmul {
    a: BinMatrix,
    b_t: BinMatrix,
}

impl ApuMatmul {
    /// Prepares a problem. `b_t` is B transposed (`N × K`), the same
    /// convention as [`crate::cpu_matmul`].
    ///
    /// # Errors
    ///
    /// Fails if the reduction widths differ or `K_w` is not a power of
    /// two ≥ 4.
    pub fn new(a: BinMatrix, b_t: BinMatrix) -> Result<Self> {
        if a.cols_bits() != b_t.cols_bits() {
            return Err(Error::InvalidArg(format!(
                "reduction width mismatch: {} vs {}",
                a.cols_bits(),
                b_t.cols_bits()
            )));
        }
        let kw = a.words_per_row();
        if !kw.is_power_of_two() || kw < 4 {
            return Err(Error::InvalidArg(format!(
                "packed width {kw} must be a power of two >= 4"
            )));
        }
        Ok(ApuMatmul { a, b_t })
    }

    /// Rows of C.
    pub fn m(&self) -> usize {
        self.a.rows()
    }

    /// Columns of C.
    pub fn n(&self) -> usize {
        self.b_t.rows()
    }

    /// Packed reduction width.
    pub fn k_words(&self) -> usize {
        self.a.words_per_row()
    }

    /// Runs one variant on the device.
    ///
    /// # Errors
    ///
    /// Fails on shape constraints (documented at module level) or device
    /// memory exhaustion.
    pub fn run(&self, dev: &mut ApuDevice, variant: MatmulVariant) -> Result<MatmulRun> {
        match variant {
            MatmulVariant::Baseline => self.run_inner_product(dev, InnerLhs::PerRowDma),
            MatmulVariant::Opt1 => self.run_temporal(dev, TemporalLhs::PioBroadcast, false),
            MatmulVariant::Opt2 => self.run_inner_product(dev, InnerLhs::CoalescedReuse),
            MatmulVariant::Opt3 => self.run_inner_product(dev, InnerLhs::PairedRowDma),
            MatmulVariant::AllOpts => self.run_temporal(dev, TemporalLhs::Lookup, true),
        }
    }

    // ---------------- inner-product family (baseline / opt2 / opt3) ----

    fn run_inner_product(&self, dev: &mut ApuDevice, lhs: InnerLhs) -> Result<MatmulRun> {
        let l = dev.config().vr_len;
        let (m, n, kw) = (self.m(), self.n(), self.k_words());
        let kbits = self.a.cols_bits() as u16;
        let cols_per_tile = l / kw;
        let n_tiles = n.div_ceil(cols_per_tile);
        let n_avecs = (m * kw).div_ceil(l);
        if n_tiles > VMR_POOL as usize {
            return Err(Error::InvalidArg(format!(
                "{n_tiles} RHS tiles exceed the {VMR_POOL}-register resident pool"
            )));
        }
        if lhs == InnerLhs::CoalescedReuse && n_avecs > 6 {
            return Err(Error::InvalidArg(format!(
                "LHS reuse needs {n_avecs} resident vectors; at most 6 supported"
            )));
        }
        // Resident tiles start at VMR 0; the opt2 LHS reuse vectors at
        // VMR_POOL.
        let ha = dev.alloc_u16(m * kw)?;
        dev.copy_to_device(ha, self.a.words())?;
        let mut bcols = self.b_t.words().to_vec();
        bcols.resize(n_tiles * l, 0);
        let hb = dev.alloc_u16(bcols.len())?;
        dev.copy_to_device(hb, &bcols)?;
        let hc = dev.alloc_u16(m * n)?;

        let mut breakdown = StageBreakdown::default();
        let report = dev.run_task(|ctx| {
            let mut laps = Laps::new(ctx);
            // LD RHS: all column tiles resident in L1.
            for t in 0..n_tiles {
                ctx.dma_l4_to_l1(Vmr::new(t as u8), hb.offset_by(t * l * 2)?)?;
            }
            laps.lap(ctx, &mut breakdown.ld_rhs);

            // Opt2: the whole LHS staged by a few coalesced full-vector
            // loads into the reuse pool.
            if lhs == InnerLhs::CoalescedReuse {
                for v in 0..n_avecs {
                    let take = ((m * kw) - v * l).min(l);
                    // Stage through L2 so partial final vectors work.
                    ctx.dma_l4_to_l2(0, ha.offset_by(v * l * 2)?, take * 2)?;
                    ctx.dma_l2_to_l1(Vmr::new(VMR_POOL + v as u8))?;
                }
                laps.lap(ctx, &mut breakdown.ld_lhs);
            }

            // Incremental staging state for the reuse path: rows are
            // visited in order, so each one is a cheap kw-element shift
            // away from the last.
            let mut stage_vec: Option<usize> = None;
            let mut stage_off = 0usize;
            let mut i = 0usize;
            while i < m {
                // How many rows this staging step covers.
                let rows_here = match lhs {
                    InnerLhs::PairedRowDma => 2.min(m - i),
                    _ => 1,
                };
                // ---- LD LHS ----
                match lhs {
                    InnerLhs::PerRowDma => {
                        ctx.dma_l4_to_l2(0, ha.offset_by(i * kw * 2)?, kw * 2)?;
                        ctx.dma_l2_to_l1(VMR_STAGE)?;
                    }
                    InnerLhs::PairedRowDma => {
                        let chunks: Vec<ChunkCopy> = (0..rows_here)
                            .map(|r| ChunkCopy::new(r * kw * 2, r * kw * 2, kw * 2))
                            .collect();
                        ctx.dma_l4_to_l2_chunks(ha.offset_by(i * kw * 2)?, &chunks)?;
                        ctx.dma_l2_to_l1(VMR_STAGE)?;
                    }
                    InnerLhs::CoalescedReuse => {}
                }
                laps.lap(ctx, &mut breakdown.ld_lhs);

                for r in 0..rows_here {
                    let row = i + r;
                    // Duplicate the row across the VR.
                    match lhs {
                        InnerLhs::PerRowDma | InnerLhs::PairedRowDma => {
                            ctx.load(VR_STAGE, VMR_STAGE)?;
                            if r > 0 {
                                ctx.core_mut().shift_elements(
                                    VR_STAGE,
                                    r * kw,
                                    gvml::shift::ShiftDir::TowardHead,
                                )?;
                            }
                        }
                        InnerLhs::CoalescedReuse => {
                            let v = (row * kw) / l;
                            let off = (row * kw) % l;
                            if stage_vec != Some(v) {
                                ctx.load(VR_STAGE, Vmr::new(VMR_POOL + v as u8))?;
                                stage_vec = Some(v);
                                stage_off = 0;
                            }
                            if off < stage_off {
                                // out-of-order row (not reached in-order
                                // traversal, kept for correctness)
                                ctx.load(VR_STAGE, Vmr::new(VMR_POOL + v as u8))?;
                                stage_off = 0;
                            }
                            if off > stage_off {
                                ctx.core_mut().shift_elements(
                                    VR_STAGE,
                                    off - stage_off,
                                    gvml::shift::ShiftDir::TowardHead,
                                )?;
                                stage_off = off;
                            }
                        }
                    }
                    ctx.core_mut().cpy_subgrp_16(VR_A, VR_STAGE, kw, l)?;
                    laps.lap(ctx, &mut breakdown.ld_lhs);

                    for t in 0..n_tiles {
                        let cols_here = (n - t * cols_per_tile).min(cols_per_tile);
                        // ---- VR ops ----
                        ctx.load(VR_B, Vmr::new(t as u8))?;
                        {
                            let core = ctx.core_mut();
                            core.xor_16(VR_T, VR_A, VR_B)?;
                            core.popcnt_16(VR_T, VR_T)?;
                            core.add_subgrp_s16(VR_T, VR_T, kw, kw)?;
                            core.sl_imm_16(VR_T, VR_T, 1)?;
                            core.cpy_imm_16(VR_T2, kbits)?;
                            core.sub_s16(VR_T, VR_T2, VR_T)?;
                        }
                        laps.lap(ctx, &mut breakdown.vr_ops);

                        // ---- ST: scattered results leave via PIO ----
                        let pairs: Vec<(usize, usize)> = (0..cols_here)
                            .map(|c| (row * n + t * cols_per_tile + c, c * kw))
                            .collect();
                        ctx.pio_store(hc, VR_T, &pairs)?;
                        laps.lap(ctx, &mut breakdown.st);
                    }
                }
                i += rows_here;
            }
            Ok(())
        })?;

        let c = self.read_back(dev, hc, m * n)?;
        for h in [ha, hb, hc] {
            dev.free(h)?;
        }
        Ok(MatmulRun {
            c,
            report,
            breakdown,
        })
    }

    // ---------------- temporal family (opt1 / all_opts) ----------------

    fn run_temporal(
        &self,
        dev: &mut ApuDevice,
        lhs: TemporalLhs,
        coalesce_rhs: bool,
    ) -> Result<MatmulRun> {
        let l = dev.config().vr_len;
        let (m, n, kw) = (self.m(), self.n(), self.k_words());
        let kbits = self.a.cols_bits() as u16;
        if n == 0 || !l.is_multiple_of(n) {
            return Err(Error::InvalidArg(format!(
                "temporal mapping requires N ({n}) to divide the VR length ({l})"
            )));
        }
        let dup = l / n;
        if m % dup != 0 {
            return Err(Error::InvalidArg(format!(
                "temporal mapping requires M ({m}) to be a multiple of l/N ({dup})"
            )));
        }
        let passes = m / dup;
        if passes > 44 {
            return Err(Error::InvalidArg(format!(
                "{passes} accumulator passes exceed the L1 register budget"
            )));
        }
        // With coalescing, B streams through one reuse register: vector v
        // is loaded once, when the k cursor first enters it (⌈K·N/l⌉
        // loads total, as in Eq. 12).
        let n_bvecs = (kw * n).div_ceil(l);

        // Host-side layout prep.
        let ha = dev.alloc_u16(m * kw)?;
        dev.copy_to_device(ha, self.a.words())?;
        // B in row-of-words layout: (kw × n).
        let mut brows = vec![0u16; (kw * n).max(n_bvecs * l)];
        for j in 0..n {
            for k in 0..kw {
                brows[k * n + j] = self.b_t.row(j)[k];
            }
        }
        brows.resize(n_bvecs.max(1) * l, 0);
        let hb = dev.alloc_u16(brows.len())?;
        dev.copy_to_device(hb, &brows)?;
        // A transposed for the lookup path.
        let hat = if lhs == TemporalLhs::Lookup {
            let at = self.a.transposed_words();
            let h = dev.alloc_u16(at.len())?;
            dev.copy_to_device(h, &at)?;
            Some(h)
        } else {
            None
        };
        let hc = dev.alloc_u16(passes * l)?;

        let mut breakdown = StageBreakdown::default();
        let l3_bytes = dev.config().l3_bytes;
        let report = dev.run_task(|ctx| {
            let mut laps = Laps::new(ctx);

            // One-time staging.
            if let Some(hat) = hat {
                let bytes = m * kw * 2;
                if bytes > l3_bytes {
                    return Err(Error::InvalidArg(format!(
                        "transposed LHS ({bytes} B) exceeds the {l3_bytes} B L3 cache"
                    )));
                }
                ctx.dma_l4_to_l3(0, hat, bytes)?;
                ctx.core_mut().create_grp_num_u16(VR_IDX, n)?;
            }
            laps.lap(ctx, &mut breakdown.ld_lhs);
            let mut b_vec_loaded: Option<usize> = None;
            let mut b_stage_off = 0usize;
            laps.lap(ctx, &mut breakdown.ld_rhs);

            // Zero the accumulators.
            ctx.core_mut().cpy_imm_16(VR_ACC, 0)?;
            for p in 0..passes {
                ctx.store(Vmr::new(p as u8), VR_ACC)?;
            }
            laps.lap(ctx, &mut breakdown.vr_ops);

            for k in 0..kw {
                // ---- LD RHS: row k duplicated across the VR ----
                if coalesce_rhs {
                    let v = (k * n) / l;
                    let off = (k * n) % l;
                    if b_vec_loaded != Some(v) || off < b_stage_off {
                        ctx.dma_l4_to_l1(Vmr::new(VMR_POOL), hb.offset_by(v * l * 2)?)?;
                        ctx.load(VR_STAGE, Vmr::new(VMR_POOL))?;
                        b_vec_loaded = Some(v);
                        b_stage_off = 0;
                    }
                    // consecutive k: one cheap incremental n-element shift
                    if off > b_stage_off {
                        ctx.core_mut().shift_elements(
                            VR_STAGE,
                            off - b_stage_off,
                            gvml::shift::ShiftDir::TowardHead,
                        )?;
                        b_stage_off = off;
                    }
                    ctx.core_mut().cpy_subgrp_16(VR_B, VR_STAGE, n, l)?;
                } else {
                    // One duplicating chunked DMA transaction per k.
                    let chunks: Vec<ChunkCopy> = (0..dup)
                        .map(|r| ChunkCopy::new(0, r * n * 2, n * 2))
                        .collect();
                    ctx.dma_l4_to_l2_chunks(hb.offset_by(k * n * 2)?, &chunks)?;
                    ctx.dma_l2_to_l1(VMR_B)?;
                    ctx.load(VR_B, VMR_B)?;
                }
                laps.lap(ctx, &mut breakdown.ld_rhs);

                for p in 0..passes {
                    ctx.load(VR_ACC, Vmr::new(p as u8))?;
                    laps.lap(ctx, &mut breakdown.vr_ops);

                    // ---- LD LHS: broadcast the pass's scalars ----
                    match lhs {
                        TemporalLhs::PioBroadcast => {
                            for r in 0..dup {
                                let row = p * dup + r;
                                broadcast_span(ctx, VR_A, ha, row * kw + k, r * n, n)?;
                            }
                        }
                        TemporalLhs::Lookup => {
                            let off = (k * m + p * dup) * 2;
                            ctx.lookup(VR_A, VR_IDX, off, dup)?;
                        }
                    }
                    laps.lap(ctx, &mut breakdown.ld_lhs);

                    // ---- VR ops: MAC ----
                    {
                        let core = ctx.core_mut();
                        core.xor_16(VR_T, VR_A, VR_B)?;
                        core.popcnt_16(VR_T, VR_T)?;
                        core.add_s16(VR_ACC, VR_ACC, VR_T)?;
                    }
                    ctx.store(Vmr::new(p as u8), VR_ACC)?;
                    laps.lap(ctx, &mut breakdown.vr_ops);
                }
            }

            // Finalize and store contiguously by DMA.
            for p in 0..passes {
                ctx.load(VR_ACC, Vmr::new(p as u8))?;
                {
                    let core = ctx.core_mut();
                    core.sl_imm_16(VR_ACC, VR_ACC, 1)?;
                    core.cpy_imm_16(VR_T2, kbits)?;
                    core.sub_s16(VR_ACC, VR_T2, VR_ACC)?;
                }
                ctx.store(Vmr::new(p as u8), VR_ACC)?;
                laps.lap(ctx, &mut breakdown.vr_ops);
                ctx.dma_l1_to_l4(hc.offset_by(p * l * 2)?, Vmr::new(p as u8))?;
                laps.lap(ctx, &mut breakdown.st);
            }
            Ok(())
        })?;

        let c = self.read_back(dev, hc, m * n)?;
        dev.free(ha)?;
        dev.free(hb)?;
        dev.free(hc)?;
        if let Some(h) = hat {
            dev.free(h)?;
        }
        Ok(MatmulRun {
            c,
            report,
            breakdown,
        })
    }

    fn read_back(&self, dev: &ApuDevice, hc: MemHandle, len: usize) -> Result<Vec<i16>> {
        if !dev.config().exec_mode.is_functional() {
            return Ok(Vec::new());
        }
        let mut raw = vec![0u16; len];
        dev.copy_from_device(hc.truncated(len * 2)?, &mut raw)?;
        Ok(raw.into_iter().map(|v| v as i16).collect())
    }
}

/// LHS staging strategy for the inner-product family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InnerLhs {
    /// One DMA transaction per row (baseline).
    PerRowDma,
    /// All rows pre-staged with coalesced full-vector loads (opt2).
    CoalescedReuse,
    /// Broadcast-friendly layout: two rows share one transaction (opt3).
    PairedRowDma,
}

/// LHS scalar-broadcast strategy for the temporal family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TemporalLhs {
    /// CP fetches each scalar over PIO and issues a masked immediate
    /// copy (opt1 standalone).
    PioBroadcast,
    /// Indexed lookup from the L3-resident transposed LHS with a
    /// broadcast-friendly window (all-opts).
    Lookup,
}

/// Broadcasts one LHS scalar to a span of the VR: a PIO fetch by the
/// control processor followed by a masked immediate copy.
fn broadcast_span(
    ctx: &mut ApuContext<'_>,
    vr: Vr,
    src: MemHandle,
    elem_idx: usize,
    start: usize,
    len: usize,
) -> Result<()> {
    let t = ctx.timing();
    let cost = t.pio_ld(1);
    ctx.core_mut()
        .charge_cycles(apu_sim::core::CycleClass::Pio, cost);
    ctx.core_mut().charge(apu_sim::VecOp::CpyImm);
    if ctx.core().is_functional() {
        let mut b = [0u8; 2];
        ctx.l4()
            .read(src.offset_by(elem_idx * 2)?.truncated(2)?, &mut b)?;
        let val = u16::from_le_bytes(b);
        let reg = ctx.core_mut().vr_mut(vr)?;
        reg[start..start + len].fill(val);
    } else {
        ctx.core().vr(vr)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::{ExecMode, SimConfig};
    use cis_core::MatmulVariant;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(64 << 20))
    }

    fn problem(m: usize, n: usize, kbits: usize) -> ApuMatmul {
        ApuMatmul::new(
            BinMatrix::random(m, kbits, 42),
            BinMatrix::random(n, kbits, 43),
        )
        .unwrap()
    }

    fn check_against_cpu(variant: MatmulVariant) {
        let p = problem(32, 2048, 128);
        let expected = crate::cpu_matmul(
            &BinMatrix::random(32, 128, 42),
            &BinMatrix::random(2048, 128, 43),
        );
        let mut dev = device();
        let run = p.run(&mut dev, variant).unwrap();
        assert_eq!(run.c, expected, "{} mismatch", variant.label());
        assert!(run.report.cycles.get() > 0);
    }

    #[test]
    fn baseline_matches_cpu() {
        check_against_cpu(MatmulVariant::Baseline);
    }

    #[test]
    fn opt1_matches_cpu() {
        check_against_cpu(MatmulVariant::Opt1);
    }

    #[test]
    fn opt2_matches_cpu() {
        check_against_cpu(MatmulVariant::Opt2);
    }

    #[test]
    fn opt3_matches_cpu() {
        check_against_cpu(MatmulVariant::Opt3);
    }

    #[test]
    fn all_opts_matches_cpu() {
        check_against_cpu(MatmulVariant::AllOpts);
    }

    #[test]
    fn all_opts_is_fastest_and_baseline_slowest() {
        let p = problem(64, 2048, 128);
        let mut dev = device();
        let mut cycles = std::collections::BTreeMap::new();
        for v in MatmulVariant::ALL {
            let run = p.run(&mut dev, v).unwrap();
            cycles.insert(v.label(), run.report.cycles.get());
        }
        let base = cycles["baseline"];
        let all = cycles["all opts"];
        for (label, c) in &cycles {
            assert!(*c <= base, "{label} slower than baseline");
            assert!(*c >= all, "{label} faster than all-opts");
        }
        // Communication-aware mapping is the big standalone win.
        assert!(cycles["opt1"] < base / 2);
    }

    #[test]
    fn baseline_breakdown_dominated_by_store() {
        let p = problem(32, 2048, 128);
        let mut dev = device();
        let run = p.run(&mut dev, MatmulVariant::Baseline).unwrap();
        let b = run.breakdown;
        assert!(b.st > b.ld_lhs && b.st > b.ld_rhs && b.st > b.vr_ops);
        // breakdown covers the whole run
        let covered = b.total().get() as f64 / run.report.cycles.get() as f64;
        assert!(covered > 0.99, "breakdown covers {covered}");
    }

    #[test]
    fn all_opts_store_is_dma_not_pio() {
        let p = problem(32, 2048, 128);
        let mut dev = device();
        let base = p.run(&mut dev, MatmulVariant::Baseline).unwrap();
        let all = p.run(&mut dev, MatmulVariant::AllOpts).unwrap();
        assert!(all.breakdown.st.get() * 10 < base.breakdown.st.get());
        // PIO element count collapses.
        assert!(all.report.stats.pio_elems * 10 < base.report.stats.pio_elems);
    }

    #[test]
    fn timing_only_mode_charges_identical_cycles() {
        let p = problem(32, 2048, 128);
        let mut f_dev = device();
        let functional = p.run(&mut f_dev, MatmulVariant::AllOpts).unwrap();
        let mut t_dev = ApuDevice::new(
            SimConfig::default()
                .with_l4_bytes(64 << 20)
                .with_exec_mode(ExecMode::TimingOnly),
        );
        let timing = p.run(&mut t_dev, MatmulVariant::AllOpts).unwrap();
        assert_eq!(functional.report.cycles, timing.report.cycles);
        assert!(timing.c.is_empty());
    }

    #[test]
    fn shape_constraints_are_validated() {
        // N not dividing l.
        let p = problem(32, 1000, 128);
        assert!(p.run(&mut device(), MatmulVariant::Opt1).is_err());
        // kw too small.
        assert!(ApuMatmul::new(BinMatrix::random(4, 32, 0), BinMatrix::random(4, 32, 1)).is_err());
        // M not a multiple of l/N.
        let p = problem(33, 2048, 128);
        assert!(p.run(&mut device(), MatmulVariant::AllOpts).is_err());
    }

    #[test]
    fn odd_m_works_for_inner_product_variants() {
        let m = 5;
        let p = problem(m, 2048, 128);
        let expected = crate::cpu_matmul(
            &BinMatrix::random(m, 128, 42),
            &BinMatrix::random(2048, 128, 43),
        );
        let mut dev = device();
        for v in [
            MatmulVariant::Baseline,
            MatmulVariant::Opt2,
            MatmulVariant::Opt3,
        ] {
            let run = p.run(&mut dev, v).unwrap();
            assert_eq!(run.c, expected, "{}", v.label());
        }
    }
}
