//! Bit-packed binary matrices.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Bits packed per word.
pub const WORD_BITS: usize = 16;

/// A binary matrix of ±1 values, bit-packed along the column (reduction)
/// axis: bit 1 encodes +1, bit 0 encodes −1. Row `i` occupies
/// `words_per_row()` consecutive `u16` words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinMatrix {
    rows: usize,
    cols_bits: usize,
    data: Vec<u16>,
}

impl BinMatrix {
    /// Creates a matrix from raw ±1 values (`true` ⇔ +1).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != rows * cols_bits` or `cols_bits` is not a
    /// multiple of 16 (the packing granularity).
    pub fn from_bits(rows: usize, cols_bits: usize, bits: &[bool]) -> Self {
        assert_eq!(bits.len(), rows * cols_bits, "bit count mismatch");
        assert!(
            cols_bits.is_multiple_of(WORD_BITS),
            "cols_bits {cols_bits} must be a multiple of {WORD_BITS}"
        );
        let wpr = cols_bits / WORD_BITS;
        let mut data = vec![0u16; rows * wpr];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                let row = i / cols_bits;
                let col = i % cols_bits;
                data[row * wpr + col / WORD_BITS] |= 1 << (col % WORD_BITS);
            }
        }
        BinMatrix {
            rows,
            cols_bits,
            data,
        }
    }

    /// Deterministic pseudo-random matrix.
    ///
    /// # Panics
    ///
    /// Panics if `cols_bits` is not a multiple of 16.
    pub fn random(rows: usize, cols_bits: usize, seed: u64) -> Self {
        assert!(cols_bits.is_multiple_of(WORD_BITS));
        let mut rng = StdRng::seed_from_u64(seed);
        let wpr = cols_bits / WORD_BITS;
        let data = (0..rows * wpr).map(|_| rng.gen::<u16>()).collect();
        BinMatrix {
            rows,
            cols_bits,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical width in bits (the reduction length `K`).
    pub fn cols_bits(&self) -> usize {
        self.cols_bits
    }

    /// Packed words per row (`K_w`).
    pub fn words_per_row(&self) -> usize {
        self.cols_bits / WORD_BITS
    }

    /// The packed words, row-major.
    pub fn words(&self) -> &[u16] {
        &self.data
    }

    /// One packed row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    pub fn row(&self, row: usize) -> &[u16] {
        let wpr = self.words_per_row();
        &self.data[row * wpr..(row + 1) * wpr]
    }

    /// The ±1 value at `(row, col_bit)` as +1 / −1.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn value(&self, row: usize, col_bit: usize) -> i32 {
        assert!(row < self.rows && col_bit < self.cols_bits);
        let wpr = self.words_per_row();
        let w = self.data[row * wpr + col_bit / WORD_BITS];
        if w >> (col_bit % WORD_BITS) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Packed transpose: returns the words in column-major order
    /// (word (k, i) of the result = word k of row i), used to stage the
    /// LHS for lookup-based broadcasting.
    pub fn transposed_words(&self) -> Vec<u16> {
        let wpr = self.words_per_row();
        let mut out = vec![0u16; self.data.len()];
        for i in 0..self.rows {
            for k in 0..wpr {
                out[k * self.rows + i] = self.data[i * wpr + k];
            }
        }
        out
    }

    /// Dot product of row `i` with another matrix's row `j` under the ±1
    /// encoding: `K − 2·popcount(xor)`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or indices are out of range.
    pub fn dot_rows(&self, i: usize, other: &BinMatrix, j: usize) -> i32 {
        assert_eq!(self.cols_bits, other.cols_bits, "width mismatch");
        let mut diff = 0u32;
        for (a, b) in self.row(i).iter().zip(other.row(j)) {
            diff += (a ^ b).count_ones();
        }
        self.cols_bits as i32 - 2 * diff as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_through_value() {
        let bits: Vec<bool> = (0..2 * 32).map(|i| i % 3 == 0).collect();
        let m = BinMatrix::from_bits(2, 32, &bits);
        for (i, &b) in bits.iter().enumerate() {
            let expect = if b { 1 } else { -1 };
            assert_eq!(m.value(i / 32, i % 32), expect, "bit {i}");
        }
        assert_eq!(m.words_per_row(), 2);
    }

    #[test]
    fn dot_rows_matches_naive() {
        let a = BinMatrix::random(4, 64, 1);
        let b = BinMatrix::random(4, 64, 2);
        for i in 0..4 {
            for j in 0..4 {
                let naive: i32 = (0..64).map(|k| a.value(i, k) * b.value(j, k)).sum();
                assert_eq!(a.dot_rows(i, &b, j), naive, "({i},{j})");
            }
        }
    }

    #[test]
    fn self_dot_is_k() {
        let a = BinMatrix::random(2, 128, 7);
        assert_eq!(a.dot_rows(0, &a, 0), 128);
    }

    #[test]
    fn transpose_reindexes_words() {
        let m = BinMatrix::random(3, 32, 9);
        let t = m.transposed_words();
        let wpr = m.words_per_row();
        for i in 0..3 {
            for k in 0..wpr {
                assert_eq!(t[k * 3 + i], m.row(i)[k]);
            }
        }
    }

    #[test]
    fn random_is_deterministic() {
        assert_eq!(BinMatrix::random(4, 64, 5), BinMatrix::random(4, 64, 5));
        assert_ne!(BinMatrix::random(4, 64, 5), BinMatrix::random(4, 64, 6));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn odd_width_rejected() {
        let _ = BinMatrix::from_bits(1, 17, &[false; 17]);
    }
}
