//! CPU reference implementation of binary matrix multiplication.
//!
//! `C[i][j] = Σ_k A[i,k]·B[k,j]` under the ±1 encoding, computed as
//! `K − 2·popcount(rowA XOR colB)` on the packed words. This is both the
//! correctness oracle for the device kernels and the CPU comparison point
//! for the matmul benchmarks.

use crate::pack::BinMatrix;

/// Multiplies `a (M × K)` by `b_t` given as **B transposed** (`N × K`,
/// i.e. row `j` of `b_t` is column `j` of B), producing `C (M × N)` as
/// `i16` row-major.
///
/// # Panics
///
/// Panics if the reduction widths differ.
pub fn cpu_matmul(a: &BinMatrix, b_t: &BinMatrix) -> Vec<i16> {
    assert_eq!(
        a.cols_bits(),
        b_t.cols_bits(),
        "reduction width mismatch: {} vs {}",
        a.cols_bits(),
        b_t.cols_bits()
    );
    let m = a.rows();
    let n = b_t.rows();
    let mut c = vec![0i16; m * n];
    for i in 0..m {
        let row = a.row(i);
        for j in 0..n {
            let col = b_t.row(j);
            let mut diff = 0u32;
            for (x, y) in row.iter().zip(col) {
                diff += (x ^ y).count_ones();
            }
            c[i * n + j] = (a.cols_bits() as i32 - 2 * diff as i32) as i16;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_like_case() {
        // A row dotted with itself gives +K; with its complement, -K.
        let bits: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        let inv: Vec<bool> = bits.iter().map(|b| !b).collect();
        let a = BinMatrix::from_bits(1, 32, &bits);
        let bt_bits: Vec<bool> = bits.iter().chain(inv.iter()).copied().collect();
        let b_t = BinMatrix::from_bits(2, 32, &bt_bits);
        let c = cpu_matmul(&a, &b_t);
        assert_eq!(c, vec![32, -32]);
    }

    #[test]
    fn matches_naive_on_random_input() {
        let a = BinMatrix::random(5, 64, 11);
        let b_t = BinMatrix::random(7, 64, 12);
        let c = cpu_matmul(&a, &b_t);
        for i in 0..5 {
            for j in 0..7 {
                let naive: i32 = (0..64).map(|k| a.value(i, k) * b_t.value(j, k)).sum();
                assert_eq!(c[i * 7 + j] as i32, naive);
            }
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_rejected() {
        let a = BinMatrix::random(1, 32, 0);
        let b = BinMatrix::random(1, 64, 0);
        let _ = cpu_matmul(&a, &b);
    }
}
