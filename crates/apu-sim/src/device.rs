//! The APU device and its host–accelerator programming model.
//!
//! Mirrors the paper's Fig. 5 workflow: the host allocates device DRAM
//! (L4), copies inputs in, invokes a device task, and copies outputs out.
//! Device tasks receive an [`ApuContext`] granting access to one core and
//! the shared memories, like a `GAL_TASK_ENTRY_POINT` kernel.

use std::any::Any;
use std::collections::HashMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::clock::Cycles;
use crate::config::SimConfig;
use crate::core::ApuCore;
use crate::error::Error;
use crate::fault::{FaultCounts, FaultPlan, FaultState};
use crate::mem::{bytes_to_pods, pods_to_bytes, u16s_to_bytes, Dram, MemHandle, Pod};
use crate::queue::BatchKey;
use crate::stats::VcuStats;
use crate::timing::DeviceTiming;
use crate::trace::SharedSink;
use crate::Result;

/// Outcome of one device task (kernel invocation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskReport {
    /// Cycles elapsed on the (slowest) participating core.
    pub cycles: Cycles,
    /// `cycles` converted with the device clock.
    pub duration: Duration,
    /// Command statistics delta for the task (merged across cores for
    /// parallel runs).
    pub stats: VcuStats,
    /// Number of cores that participated.
    pub cores_used: usize,
}

impl TaskReport {
    /// Task latency in milliseconds.
    pub fn millis(&self) -> f64 {
        self.duration.as_secs_f64() * 1e3
    }

    /// Task latency in microseconds.
    pub fn micros(&self) -> f64 {
        self.duration.as_secs_f64() * 1e6
    }

    /// Combines two sequential task reports.
    pub fn chain(mut self, other: &TaskReport) -> TaskReport {
        self.cycles += other.cycles;
        self.duration += other.duration;
        self.stats.merge(&other.stats);
        self.cores_used = self.cores_used.max(other.cores_used);
        self
    }

    /// Combines two reports for tasks that ran *concurrently* (e.g. on
    /// disjoint cores): elapsed time is the maximum of the two, not the
    /// sum, while work (statistics) and core counts accumulate.
    ///
    /// Use [`TaskReport::chain`] only for back-to-back phases; chaining
    /// concurrent reports double-counts elapsed time.
    pub fn join_concurrent(mut self, other: &TaskReport) -> TaskReport {
        self.cycles = self.cycles.max(other.cycles);
        self.duration = self.duration.max(other.duration);
        self.stats.merge(&other.stats);
        self.cores_used += other.cores_used;
        self
    }
}

/// A boxed per-core kernel, as submitted to [`ApuDevice::run_parallel`].
pub type CoreTask<'t> = Box<dyn FnOnce(&mut ApuContext<'_>) -> Result<()> + 't>;

/// One memoized kernel invocation: the timing report to replay plus the
/// host-visible payload the kernel returned. Only recorded in timing-only
/// mode, where both are fully determined by the caller's signature key.
struct MemoEntry {
    report: TaskReport,
    payload: Box<dyn Any>,
}

impl std::fmt::Debug for MemoEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoEntry")
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

/// Replay-cache hit/miss counters (see
/// [`ApuDevice::run_task_memoized`]). Misses count only recordable runs;
/// executions that bypassed the cache (functional mode, faults armed,
/// trace sink installed, DMA in flight) are counted separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoCounters {
    /// Dispatches served by replaying a memoized charge.
    pub hits: u64,
    /// Dispatches executed and recorded for future replay.
    pub misses: u64,
    /// Dispatches that had to execute outside the cache entirely.
    pub bypassed: u64,
}

/// A simulated APU platform: host-visible device DRAM, shared L3, and the
/// APU cores.
#[derive(Debug)]
pub struct ApuDevice {
    cfg: SimConfig,
    l4: Dram,
    l3: Vec<u8>,
    cores: Vec<ApuCore>,
    faults: Option<FaultState>,
    trace: Option<SharedSink>,
    fast_forward: bool,
    memo: HashMap<u64, MemoEntry>,
    memo_counters: MemoCounters,
}

impl ApuDevice {
    /// Creates a device.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]); the default configurations are always
    /// valid.
    pub fn new(cfg: SimConfig) -> Self {
        ApuDevice::try_new(cfg).expect("invalid simulator configuration")
    }

    /// Creates a device, reporting configuration errors instead of
    /// panicking — the entry point for serving setups where the
    /// configuration comes from user input.
    ///
    /// # Errors
    ///
    /// Returns the [`SimConfig::validate`] error for an inconsistent
    /// configuration.
    pub fn try_new(cfg: SimConfig) -> Result<Self> {
        cfg.validate()?;
        let cores = (0..cfg.cores)
            .map(|i| ApuCore::new(i, cfg.clone()))
            .collect();
        let l4 = if cfg.exec_mode.is_functional() {
            Dram::new(cfg.l4_bytes)
        } else {
            // Timing-only devices never consume data: skip the backing
            // store so paper-scale (multi-GB) configurations stay cheap.
            Dram::new_virtual(cfg.l4_bytes)
        };
        let fast_forward = cfg.fast_forward;
        Ok(ApuDevice {
            l4,
            l3: vec![0; cfg.l3_bytes],
            cores,
            cfg,
            faults: None,
            trace: None,
            fast_forward,
            memo: HashMap::new(),
            memo_counters: MemoCounters::default(),
        })
    }

    // ---------------- timing fast-forward ----------------

    /// Enables or disables timing fast-forward at runtime (see
    /// [`ApuDevice::run_task_memoized`]). Disabling does not drop
    /// already-recorded entries; they simply stop being replayed.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Whether timing fast-forward is currently enabled.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Replay-cache activity so far.
    pub fn memo_counters(&self) -> MemoCounters {
        self.memo_counters
    }

    // ---------------- tracing ----------------

    /// Installs a trace sink (see [`crate::trace`]): subsequent queue
    /// dispatches and DMA transfers emit [`crate::TraceEvent`]s into it,
    /// replacing any previously installed sink. Tracing is an observer —
    /// it never changes simulated time.
    pub fn install_trace_sink(&mut self, sink: SharedSink) {
        self.trace = Some(sink);
    }

    /// Removes the installed trace sink; instrumentation reverts to a
    /// no-op.
    pub fn clear_trace_sink(&mut self) {
        self.trace = None;
    }

    /// The installed sink, for instrumentation sites.
    pub(crate) fn trace(&self) -> Option<&SharedSink> {
        self.trace.as_ref()
    }

    /// Emits one custom instrumentation event into the installed sink —
    /// e.g. the `rag` crate's IVF probe events — stamped at core 0's
    /// current cycle count. A no-op without a sink; like all tracing it
    /// never charges virtual time.
    pub fn emit_trace(&self, kind: crate::trace::TraceEventKind) {
        if let Some(t) = &self.trace {
            t.record(crate::trace::TraceEvent {
                ts: self.cores[0].cycles(),
                kind,
            });
        }
    }

    // ---------------- fault injection ----------------

    /// Arms deterministic fault injection (see [`FaultPlan`]), replacing
    /// any previously armed plan and resetting its counters. Armed faults
    /// surface as [`Error::FaultInjected`] from the [`crate::DeviceQueue`]
    /// dispatch gate and from DMA transfer issue.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultState::new(plan));
    }

    /// Disarms fault injection.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Fault-injection activity so far; all zeroes when disarmed.
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults
            .as_ref()
            .map(FaultState::counts)
            .unwrap_or_default()
    }

    /// One task-level fault check, consumed by the queue at dispatch time.
    pub(crate) fn fault_check_task(&mut self, key: Option<BatchKey>) -> Option<Error> {
        self.faults.as_mut().and_then(|f| f.check_task(key))
    }

    /// The device configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The latency calibration in use.
    pub fn timing(&self) -> &DeviceTiming {
        &self.cfg.timing
    }

    /// Read access to a core (e.g. to inspect registers in tests).
    ///
    /// # Errors
    ///
    /// Fails if `id` is out of range.
    pub fn core(&self, id: usize) -> Result<&ApuCore> {
        self.cores.get(id).ok_or(Error::BadVr {
            index: id,
            count: self.cores.len(),
            kind: "core",
        })
    }

    // ---------------- host memory API (GDL equivalent) ----------------

    /// Allocates `bytes` of device DRAM (512-byte aligned, like
    /// `gdl_mem_alloc_aligned`).
    ///
    /// # Errors
    ///
    /// Fails when device memory is exhausted.
    pub fn alloc(&mut self, bytes: usize) -> Result<MemHandle> {
        self.l4.alloc(bytes)
    }

    /// Allocates space for `n` u16 elements.
    ///
    /// # Errors
    ///
    /// Fails when device memory is exhausted.
    pub fn alloc_u16(&mut self, n: usize) -> Result<MemHandle> {
        self.l4.alloc(n * 2)
    }

    /// Frees an allocation.
    ///
    /// # Errors
    ///
    /// Fails on stale handles.
    pub fn free(&mut self, handle: MemHandle) -> Result<()> {
        self.l4.free(handle)
    }

    /// Copies elements of any [`Pod`] type host → device
    /// (`gdl_mem_cpy_to_dev`). Elements are stored little-endian, so
    /// `copy_to_device::<u8>` writes raw bytes and `copy_to_device::<u16>`
    /// matches the device's native 16-bit element layout.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or size overruns.
    pub fn copy_to_device<T: Pod>(&mut self, handle: MemHandle, data: &[T]) -> Result<()> {
        let byte_len = data.len() * T::SIZE;
        if !self.l4.is_backed() {
            // Virtual DRAM: validate without materializing a byte copy
            // (paper-scale uploads would otherwise allocate gigabytes).
            return self.l4.validate(handle.truncated(byte_len)?, byte_len);
        }
        self.l4.write(handle, &pods_to_bytes(data))
    }

    /// Copies elements of any [`Pod`] type device → host
    /// (`gdl_mem_cpy_from_dev`).
    ///
    /// # Errors
    ///
    /// Fails on stale handles or size overruns.
    pub fn copy_from_device<T: Pod>(&self, handle: MemHandle, out: &mut [T]) -> Result<()> {
        let mut bytes = vec![0u8; out.len() * T::SIZE];
        self.l4.read(handle, &mut bytes)?;
        bytes_to_pods(&bytes, out);
        Ok(())
    }

    /// Copies bytes host → device.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or size overruns.
    #[deprecated(since = "0.2.0", note = "use `copy_to_device::<u8>` instead")]
    pub fn write_bytes(&mut self, handle: MemHandle, data: &[u8]) -> Result<()> {
        self.copy_to_device(handle, data)
    }

    /// Copies bytes device → host.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or size overruns.
    #[deprecated(since = "0.2.0", note = "use `copy_from_device::<u8>` instead")]
    pub fn read_bytes(&self, handle: MemHandle, out: &mut [u8]) -> Result<()> {
        self.copy_from_device(handle, out)
    }

    /// Copies u16 elements host → device.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or size overruns.
    #[deprecated(since = "0.2.0", note = "use `copy_to_device::<u16>` instead")]
    pub fn write_u16s(&mut self, handle: MemHandle, data: &[u16]) -> Result<()> {
        self.copy_to_device(handle, data)
    }

    /// Copies u16 elements device → host.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or size overruns.
    #[deprecated(since = "0.2.0", note = "use `copy_from_device::<u16>` instead")]
    pub fn read_u16s(&self, handle: MemHandle, out: &mut [u16]) -> Result<()> {
        self.copy_from_device(handle, out)
    }

    /// Device DRAM capacity and live bytes, for capacity planning.
    pub fn l4_usage(&self) -> (usize, usize) {
        (self.l4.live_bytes(), self.l4.capacity())
    }

    // ---------------- task execution ----------------

    /// Runs a device kernel on core 0 and reports its latency and
    /// statistics (the `gdl_run_task_timeout` analogue).
    ///
    /// # Errors
    ///
    /// Propagates errors returned by the kernel.
    pub fn run_task<F>(&mut self, task: F) -> Result<TaskReport>
    where
        F: FnOnce(&mut ApuContext<'_>) -> Result<()>,
    {
        self.run_task_on(0, task)
    }

    /// Runs a device kernel on a specific core.
    ///
    /// # Errors
    ///
    /// Fails if `core_id` is out of range, or propagates kernel errors.
    pub fn run_task_on<F>(&mut self, core_id: usize, task: F) -> Result<TaskReport>
    where
        F: FnOnce(&mut ApuContext<'_>) -> Result<()>,
    {
        if core_id >= self.cores.len() {
            return Err(Error::BadVr {
                index: core_id,
                count: self.cores.len(),
                kind: "core",
            });
        }
        let clock = self.cfg.clock;
        let core = &mut self.cores[core_id];
        core.set_l4_contention(1.0);
        let start_cycles = core.cycles();
        let start_stats = core.stats().clone();
        let mut ctx = ApuContext {
            l4: &mut self.l4,
            l3: &mut self.l3,
            core,
            faults: self.faults.as_mut(),
            trace: self.trace.clone(),
        };
        task(&mut ctx)?;
        // A task boundary is a full barrier: any async DMA the kernel
        // never waited on completes (data-wise) before the host observes
        // the result. Data only — the un-waited transfer's cycles overlap
        // the task end, so no latency is charged here.
        crate::dma_async::flush_pending(&mut self.cores[core_id], &mut self.l4);
        let core = &self.cores[core_id];
        let cycles = core.cycles() - start_cycles;
        Ok(TaskReport {
            cycles,
            duration: clock.cycles_to_duration(cycles),
            stats: &core.stats().clone() - &start_stats,
            cores_used: 1,
        })
    }

    /// Runs a device kernel on core 0 with memoized timing replay.
    ///
    /// `key` is the kernel's *signature*: a hash that must capture every
    /// input the kernel's cycle charge (and, in timing-only mode, its
    /// returned payload) depends on — shapes, counts, configuration knobs.
    /// On the first invocation of a signature the kernel executes
    /// normally and its [`TaskReport`] plus payload are recorded; later
    /// invocations *replay* the recorded charge — advancing the core
    /// clock and merging the recorded statistics delta — without
    /// re-walking the kernel, which is observably identical because
    /// timing-only charges are data-independent.
    ///
    /// Replay is gated so it can never change an observable output. The
    /// cache is consulted only when ALL of the following hold; otherwise
    /// the kernel executes exactly like [`ApuDevice::run_task`]:
    ///
    /// - fast-forward is enabled ([`SimConfig::fast_forward`] /
    ///   [`ApuDevice::set_fast_forward`]),
    /// - the device is in timing-only mode (functional payloads may be
    ///   data-dependent, so they are never replayed),
    /// - no fault plan is armed (fault schedules count dispatches),
    /// - no trace sink is installed (a replay emits no events),
    /// - the core's async DMA engines are idle at task start (and entries
    ///   are only recorded when also idle at task end), so overlap with
    ///   in-flight transfers never folds into a recorded charge.
    ///
    /// # Errors
    ///
    /// Propagates errors returned by the kernel.
    pub fn run_task_memoized<T, F>(&mut self, key: u64, task: F) -> Result<(TaskReport, T)>
    where
        T: Clone + 'static,
        F: FnOnce(&mut ApuContext<'_>) -> Result<T>,
    {
        let replay_ok = self.fast_forward
            && !self.cfg.exec_mode.is_functional()
            && self.faults.is_none()
            && self.trace.is_none();
        let dma_idle_at = |core: &ApuCore| {
            let now = core.cycles();
            core.dma_engines_busy_until().iter().all(|&b| b <= now)
        };
        let idle_at_start = replay_ok && dma_idle_at(&self.cores[0]);
        if idle_at_start {
            if let Some(entry) = self.memo.get(&key) {
                if let Some(payload) = entry.payload.downcast_ref::<T>() {
                    let report = entry.report.clone();
                    let payload = payload.clone();
                    self.memo_counters.hits += 1;
                    let core = &mut self.cores[0];
                    let target = core.cycles() + report.cycles;
                    core.sync_to(target);
                    core.stats_mut().merge(&report.stats);
                    return Ok((report, payload));
                }
            }
        }
        let mut out = None;
        let report = self.run_task(|ctx| {
            out = Some(task(ctx)?);
            Ok(())
        })?;
        let out = out.expect("kernel returned Ok without a payload");
        if idle_at_start && dma_idle_at(&self.cores[0]) {
            self.memo_counters.misses += 1;
            self.memo.insert(
                key,
                MemoEntry {
                    report: report.clone(),
                    payload: Box::new(out.clone()),
                },
            );
        } else {
            self.memo_counters.bypassed += 1;
        }
        Ok((report, out))
    }

    /// Runs one kernel per core *logically in parallel*: each kernel is
    /// simulated in turn on its own core with an L4 contention factor
    /// equal to the number of participants (the shared device DRAM
    /// bandwidth is divided), and the reported latency is the maximum
    /// across cores. Afterwards all participating cores are synchronized
    /// to the join point.
    ///
    /// # Errors
    ///
    /// Fails if more tasks than cores are supplied, or propagates the
    /// first kernel error.
    pub fn run_parallel<'t>(&mut self, tasks: Vec<CoreTask<'t>>) -> Result<TaskReport> {
        if tasks.is_empty() {
            return Err(Error::InvalidArg("no tasks supplied".into()));
        }
        if tasks.len() > self.cores.len() {
            return Err(Error::InvalidArg(format!(
                "{} tasks exceed {} cores",
                tasks.len(),
                self.cores.len()
            )));
        }
        let clock = self.cfg.clock;
        let contention = tasks.len() as f64;
        let mut max_delta = Cycles::ZERO;
        let mut stats = VcuStats::default();
        let n_tasks = tasks.len();
        let mut starts = Vec::with_capacity(n_tasks);
        for (core_id, task) in tasks.into_iter().enumerate() {
            let core = &mut self.cores[core_id];
            core.set_l4_contention(contention);
            let start_cycles = core.cycles();
            let start_stats = core.stats().clone();
            starts.push(start_cycles);
            let mut ctx = ApuContext {
                l4: &mut self.l4,
                l3: &mut self.l3,
                core,
                faults: self.faults.as_mut(),
                trace: self.trace.clone(),
            };
            task(&mut ctx)?;
            crate::dma_async::flush_pending(&mut self.cores[core_id], &mut self.l4);
            let core = &mut self.cores[core_id];
            core.set_l4_contention(1.0);
            let delta = core.cycles() - start_cycles;
            max_delta = max_delta.max(delta);
            stats.merge(&(&core.stats().clone() - &start_stats));
        }
        // Join: every participant waits for the slowest.
        for (core_id, start) in starts.iter().enumerate() {
            self.cores[core_id].sync_to(*start + max_delta);
        }
        Ok(TaskReport {
            cycles: max_delta,
            duration: clock.cycles_to_duration(max_delta),
            stats,
            cores_used: n_tasks,
        })
    }

    /// Merged statistics across all cores since device creation.
    pub fn stats_total(&self) -> VcuStats {
        let mut total = VcuStats::default();
        for c in &self.cores {
            total.merge(c.stats());
        }
        total
    }
}

/// Execution context handed to device kernels: one core plus the shared
/// L3 and device DRAM.
///
/// Data-movement methods (DMA, PIO, lookup) are implemented in
/// [`crate::dma`]; compute operations live in the `gvml` crate.
#[derive(Debug)]
pub struct ApuContext<'a> {
    pub(crate) l4: &'a mut Dram,
    pub(crate) l3: &'a mut Vec<u8>,
    pub(crate) core: &'a mut ApuCore,
    pub(crate) faults: Option<&'a mut FaultState>,
    pub(crate) trace: Option<SharedSink>,
}

impl ApuContext<'_> {
    /// The core this kernel runs on.
    pub fn core(&self) -> &ApuCore {
        self.core
    }

    /// Mutable access to the core.
    pub fn core_mut(&mut self) -> &mut ApuCore {
        self.core
    }

    /// The device DRAM.
    pub fn l4(&self) -> &Dram {
        self.l4
    }

    /// Mutable access to the device DRAM.
    pub fn l4_mut(&mut self) -> &mut Dram {
        self.l4
    }

    /// The L3 control-processor cache contents.
    pub fn l3(&self) -> &[u8] {
        self.l3
    }

    /// Mutable access to the L3 cache.
    pub fn l3_mut(&mut self) -> &mut [u8] {
        self.l3
    }

    /// The latency calibration in use.
    pub fn timing(&self) -> &DeviceTiming {
        &self.core.config().timing
    }

    /// Writes u16 values directly into L3 at a byte offset (control
    /// processor store; used to stage lookup tables in tests).
    ///
    /// # Errors
    ///
    /// Fails if the range exceeds L3.
    pub fn l3_write_u16s(&mut self, l3_off: usize, values: &[u16]) -> Result<()> {
        self.check_l3(l3_off, values.len() * 2)?;
        let bytes = u16s_to_bytes(values);
        self.l3[l3_off..l3_off + bytes.len()].copy_from_slice(&bytes);
        Ok(())
    }

    /// One DMA-level fault check, consumed at transfer issue.
    pub(crate) fn dma_fault_check(&mut self) -> Result<()> {
        let hit = match self.faults.as_mut() {
            Some(f) => f.check_dma().map(|e| (e, f.counts().dmas_injected)),
            None => None,
        };
        if let Some((e, seq)) = hit {
            if let Some(t) = self.trace.as_ref() {
                t.record(crate::trace::TraceEvent {
                    ts: self.core.cycles(),
                    kind: crate::trace::TraceEventKind::FaultInjected {
                        scope: crate::trace::FaultScope::Dma,
                        seq,
                    },
                });
            }
            return Err(e);
        }
        Ok(())
    }

    pub(crate) fn stats_dma_transaction(&mut self, bytes: u64) {
        self.core.stats_mut().record_dma_transaction(bytes);
    }

    pub(crate) fn stats_pio(&mut self, elems: u64) {
        self.core.stats_mut().record_pio_elems(elems, 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Vmr;

    #[test]
    fn host_roundtrip_u16() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
        let h = dev.alloc_u16(10).unwrap();
        dev.copy_to_device(h, &[1u16, 2, 3, 4, 5, 6, 7, 8, 9, 10])
            .unwrap();
        let mut out = vec![0u16; 10];
        dev.copy_from_device(h, &mut out).unwrap();
        assert_eq!(out[9], 10);
        let (live, cap) = dev.l4_usage();
        assert_eq!(live, 512);
        assert_eq!(cap, 1 << 20);
    }

    #[test]
    fn host_roundtrip_generic_pod() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
        let h = dev.alloc(6 * 8).unwrap();
        let vals = [-1i64, 0, 1, i64::MAX, i64::MIN, 42];
        dev.copy_to_device(h, &vals).unwrap();
        let mut out = [0i64; 6];
        dev.copy_from_device(h, &mut out).unwrap();
        assert_eq!(out, vals);
        // Oversized transfers are still rejected.
        assert!(dev.copy_to_device(h, &[0i64; 7]).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_copy_wrappers_still_work() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
        let h = dev.alloc_u16(4).unwrap();
        dev.write_u16s(h, &[10, 20, 30, 40]).unwrap();
        let mut out = vec![0u16; 4];
        dev.read_u16s(h, &mut out).unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);

        let hb = dev.alloc(4).unwrap();
        dev.write_bytes(hb, &[1, 2, 3, 4]).unwrap();
        let mut bytes = [0u8; 4];
        dev.read_bytes(hb, &mut bytes).unwrap();
        assert_eq!(bytes, [1, 2, 3, 4]);
    }

    #[test]
    fn virtual_dram_validates_without_copying() {
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_exec_mode(crate::config::ExecMode::TimingOnly)
                .with_l4_bytes(1 << 20),
        );
        let h = dev.alloc_u16(8).unwrap();
        dev.copy_to_device(h, &[7u16; 8]).unwrap();
        assert!(dev.copy_to_device(h, &[7u16; 9]).is_err());
        // Reads come back zeroed on the unbacked store.
        let mut out = [1u16; 8];
        dev.copy_from_device(h, &mut out).unwrap();
        assert_eq!(out, [0u16; 8]);
    }

    #[test]
    fn try_new_reports_invalid_configs() {
        let cfg = SimConfig {
            cores: 0,
            ..SimConfig::default()
        };
        assert!(matches!(ApuDevice::try_new(cfg), Err(Error::InvalidArg(_))));
        assert!(ApuDevice::try_new(SimConfig::default().with_l4_bytes(1 << 20)).is_ok());
    }

    #[test]
    fn task_report_chains() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
        let a = dev
            .run_task(|ctx| {
                ctx.core_mut().charge(crate::timing::VecOp::AddU16);
                Ok(())
            })
            .unwrap();
        let b = dev
            .run_task(|ctx| {
                ctx.core_mut().charge(crate::timing::VecOp::Or16);
                Ok(())
            })
            .unwrap();
        let c = a.clone().chain(&b);
        assert_eq!(c.cycles, a.cycles + b.cycles);
        assert_eq!(c.stats.commands, 2);
    }

    #[test]
    fn task_report_join_concurrent_takes_max_time() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
        let a = dev
            .run_task(|ctx| {
                ctx.core_mut().charge(crate::timing::VecOp::DivS16); // long
                Ok(())
            })
            .unwrap();
        let b = dev
            .run_task_on(1, |ctx| {
                ctx.core_mut().charge(crate::timing::VecOp::Or16); // short
                Ok(())
            })
            .unwrap();
        let j = a.clone().join_concurrent(&b);
        assert_eq!(j.cycles, a.cycles.max(b.cycles));
        assert_eq!(j.duration, a.duration.max(b.duration));
        assert_eq!(j.cores_used, 2);
        assert_eq!(j.stats.commands, 2);
        // Chaining the same two reports double-counts elapsed time.
        assert!(a.clone().chain(&b).cycles > j.cycles);
    }

    #[test]
    fn task_errors_propagate() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
        let r = dev.run_task(|_| Err(Error::TaskFailed("boom".into())));
        assert!(matches!(r, Err(Error::TaskFailed(_))));
    }

    #[test]
    fn bad_core_id_is_rejected() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
        assert!(dev.run_task_on(99, |_| Ok(())).is_err());
        assert!(dev.core(99).is_err());
        assert!(dev.core(3).is_ok());
    }

    #[test]
    fn parallel_tasks_take_max_and_contend() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20));
        let n = dev.config().vr_len;
        let a = dev.alloc_u16(n).unwrap();
        let b = dev.alloc_u16(n).unwrap();

        // Serial reference: one core, contention 1.
        let serial = dev
            .run_task(|ctx| ctx.dma_l4_to_l1(Vmr::new(0), a))
            .unwrap();

        // Two cores each doing the same DMA: contention 2 doubles the DMA
        // portion; latency = max = one contended DMA.
        let par = dev
            .run_parallel(vec![
                Box::new(move |ctx: &mut ApuContext<'_>| ctx.dma_l4_to_l1(Vmr::new(0), a)),
                Box::new(move |ctx: &mut ApuContext<'_>| ctx.dma_l4_to_l1(Vmr::new(0), b)),
            ])
            .unwrap();
        assert_eq!(par.cores_used, 2);
        assert!(par.cycles > serial.cycles);
        assert!(par.cycles.get() < serial.cycles.get() * 2 + 100);
        assert_eq!(par.stats.dma_transactions, 2);
    }

    #[test]
    fn parallel_rejects_too_many_tasks() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
        let tasks: Vec<CoreTask<'_>> = (0..5)
            .map(|_| Box::new(|_: &mut ApuContext<'_>| Ok(())) as _)
            .collect();
        assert!(dev.run_parallel(tasks).is_err());
        assert!(dev.run_parallel(vec![]).is_err());
    }

    #[test]
    fn parallel_cores_synchronize_at_join() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
        dev.run_parallel(vec![
            Box::new(|ctx: &mut ApuContext<'_>| {
                ctx.core_mut().charge(crate::timing::VecOp::DivS16); // long
                Ok(())
            }),
            Box::new(|ctx: &mut ApuContext<'_>| {
                ctx.core_mut().charge(crate::timing::VecOp::Or16); // short
                Ok(())
            }),
        ])
        .unwrap();
        assert_eq!(dev.core(0).unwrap().cycles(), dev.core(1).unwrap().cycles());
    }

    fn charge_task(ctx: &mut ApuContext<'_>) -> Result<u64> {
        ctx.core_mut().charge(crate::timing::VecOp::AddU16);
        ctx.core_mut().charge(crate::timing::VecOp::MulS16);
        Ok(42)
    }

    #[test]
    fn memoized_replay_books_identical_cycles_and_stats() {
        let cfg = SimConfig::default()
            .with_exec_mode(crate::ExecMode::TimingOnly)
            .with_l4_bytes(1 << 20)
            .with_fast_forward(true);
        let mut dev = ApuDevice::new(cfg.clone());
        let (r1, p1) = dev.run_task_memoized(7, charge_task).unwrap();
        let (r2, p2) = dev.run_task_memoized(7, charge_task).unwrap();
        assert_eq!(r1, r2);
        assert_eq!((p1, p2), (42, 42));
        assert_eq!(
            dev.memo_counters(),
            MemoCounters {
                hits: 1,
                misses: 1,
                bypassed: 0
            }
        );
        // The replayed run advances the core clock and merges stats
        // exactly like a reference device that executed both times.
        let mut reference = ApuDevice::new(cfg.with_fast_forward(false));
        reference.run_task_memoized(7, charge_task).unwrap();
        reference.run_task_memoized(7, charge_task).unwrap();
        assert_eq!(reference.memo_counters().hits, 0);
        assert_eq!(reference.memo_counters().bypassed, 2);
        assert_eq!(
            dev.core(0).unwrap().cycles(),
            reference.core(0).unwrap().cycles()
        );
        assert_eq!(dev.stats_total(), reference.stats_total());
    }

    #[test]
    fn memoized_replay_never_triggers_in_functional_mode() {
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_l4_bytes(1 << 20)
                .with_fast_forward(true),
        );
        assert!(dev.config().exec_mode.is_functional());
        dev.run_task_memoized(1, charge_task).unwrap();
        dev.run_task_memoized(1, charge_task).unwrap();
        assert_eq!(dev.memo_counters().hits, 0);
        assert_eq!(dev.memo_counters().bypassed, 2);
    }

    #[test]
    fn memoized_replay_respects_trace_and_fault_guards() {
        let cfg = SimConfig::default()
            .with_exec_mode(crate::ExecMode::TimingOnly)
            .with_l4_bytes(1 << 20)
            .with_fast_forward(true);
        // Trace sink installed: every run executes normally.
        let mut dev = ApuDevice::new(cfg.clone());
        let sink = SharedSink::new(crate::trace::TraceRecorder::new());
        dev.install_trace_sink(sink);
        dev.run_task_memoized(1, charge_task).unwrap();
        dev.run_task_memoized(1, charge_task).unwrap();
        assert_eq!(dev.memo_counters().hits, 0);
        // Fault plan armed: same.
        let mut dev = ApuDevice::new(cfg);
        dev.inject_faults(crate::fault::FaultPlan::default());
        dev.run_task_memoized(1, charge_task).unwrap();
        dev.run_task_memoized(1, charge_task).unwrap();
        assert_eq!(dev.memo_counters().hits, 0);
        assert_eq!(dev.memo_counters().bypassed, 2);
    }

    #[test]
    fn memoized_replay_stays_off_until_enabled() {
        // Explicit opt-out rather than `SimConfig::default()`: the
        // default follows APU_SIM_FAST_FORWARD, which the CI matrix
        // sets, so the off-path must be pinned independently of the
        // ambient environment.
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_exec_mode(crate::ExecMode::TimingOnly)
                .with_l4_bytes(1 << 20)
                .with_fast_forward(false),
        );
        dev.run_task_memoized(1, charge_task).unwrap();
        dev.run_task_memoized(1, charge_task).unwrap();
        assert_eq!(dev.memo_counters().hits, 0);
        // ... until enabled at runtime.
        dev.set_fast_forward(true);
        dev.run_task_memoized(1, charge_task).unwrap();
        dev.run_task_memoized(1, charge_task).unwrap();
        assert_eq!(dev.memo_counters().hits, 1);
    }
}
