//! Unified task-submission specification for the serving engine.
//!
//! [`TaskSpec`] collapses the historical `submit_*` method family of
//! [`crate::DeviceQueue`] / [`crate::DeviceCluster`] into one builder:
//! every submission option — [`Priority`] class, tenant, arrival time,
//! TTL/deadline, logical weight, [`BatchKey`], shard pinning — composes
//! freely instead of being locked to the method-name combinations that
//! happened to exist (`submit_weighted` could not carry a TTL,
//! `submit_batchable` could not carry a weight, and so on).
//!
//! ```
//! use apu_sim::{ApuDevice, DeviceQueue, Priority, QueueConfig, SimConfig, TaskSpec, TenantId};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), apu_sim::Error> {
//! let mut dev = ApuDevice::try_new(SimConfig::default())?;
//! let mut queue = DeviceQueue::new(&mut dev, QueueConfig::default());
//! let h = queue.submit(
//!     TaskSpec::kernel(|ctx| {
//!         ctx.core_mut().charge(apu_sim::VecOp::AddU16);
//!         Ok(())
//!     })
//!     .priority(Priority::High)
//!     .tenant(TenantId::new(7))
//!     .at(Duration::from_micros(50))
//!     .ttl(Duration::from_millis(2)),
//! )?;
//! let done = queue.wait(h)?;
//! assert!(done.report.cycles.get() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! The module also hosts the SLO-aware scheduling knobs that ride on the
//! spec: [`SchedPolicy`] selects between the historical FIFO dispatcher
//! and the weighted-fair-share / earliest-deadline-first scheduler, and
//! [`AdmissionControl`] bounds the backlog low-priority work may build
//! before it is shed to protect high-priority tail latency.

use std::any::Any;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::device::{ApuContext, ApuDevice, TaskReport};
use crate::queue::{BatchKey, BatchRunner, Job, Priority, Work};
use crate::Result;

/// Identity of the tenant (client, customer, traffic class) a task is
/// submitted on behalf of. Tenants are the unit of weighted fair-share
/// scheduling and of the per-tenant counters in
/// [`crate::QueueStats::per_tenant`]. The default tenant is `0`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TenantId(u64);

impl TenantId {
    /// Wraps a caller-chosen tenant discriminant.
    pub const fn new(v: u64) -> Self {
        TenantId(v)
    }

    /// The raw tenant discriminant.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Dispatch-ordering policy of a [`crate::DeviceQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// The historical scheduler: among eligible tasks the highest
    /// [`Priority`] wins, FIFO within a class. The default; byte-exact
    /// with the pre-`TaskSpec` behaviour.
    #[default]
    Fifo,
    /// SLO-aware dispatch: priority classes still dominate, but within a
    /// class tenants are served in weighted fair-share order (start-time
    /// fair queueing over per-tenant virtual time; see
    /// [`crate::QueueConfig::with_tenant_weight`]), deadlines break ties
    /// (earliest first), and continuous batches gather members in
    /// earliest-deadline-first order instead of FIFO.
    SloAware,
}

/// Backlog watermarks for cluster-level admission shedding.
///
/// When the pending backlog exceeds `shed_low_above`, Low-priority tasks
/// are shed (latest arrival first) until the backlog returns to the
/// watermark; past `shed_normal_above`, Normal-priority tasks are shed
/// too. High-priority work is never admission-shed. Shed tasks retire as
/// `Failed(`[`crate::Error::AdmissionShed`]`)` without dispatching and
/// are counted in [`crate::QueueStats::shed_admission`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionControl {
    /// Backlog size above which Low-priority pending work is shed.
    pub shed_low_above: usize,
    /// Backlog size above which Normal-priority pending work is shed.
    pub shed_normal_above: usize,
}

impl AdmissionControl {
    /// Watermarks shedding Low work above `low` pending tasks and
    /// Normal work above `normal` (clamped so `normal ≥ low`).
    pub fn new(low: usize, normal: usize) -> Self {
        AdmissionControl {
            shed_low_above: low,
            shed_normal_above: normal.max(low),
        }
    }
}

/// A fully described submission for [`crate::DeviceQueue::submit`] /
/// [`crate::DeviceCluster::submit`]: the work itself plus every
/// scheduling attribute, with builder-style setters. See the
/// [module documentation](self) for an example.
pub struct TaskSpec<'t> {
    pub(crate) priority: Priority,
    pub(crate) arrival: Duration,
    pub(crate) tenant: TenantId,
    pub(crate) deadline: Option<Duration>,
    pub(crate) weight: u64,
    pub(crate) shard: Option<usize>,
    pub(crate) work: Work<'t>,
}

impl std::fmt::Debug for TaskSpec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("priority", &self.priority)
            .field("arrival", &self.arrival)
            .field("tenant", &self.tenant)
            .field("deadline", &self.deadline)
            .field("weight", &self.weight)
            .field("shard", &self.shard)
            .field("batch_key", &self.batch_key())
            .finish_non_exhaustive()
    }
}

impl<'t> TaskSpec<'t> {
    fn with_work(work: Work<'t>) -> Self {
        TaskSpec {
            priority: Priority::Normal,
            arrival: Duration::ZERO,
            tenant: TenantId::default(),
            deadline: None,
            weight: 1,
            shard: None,
            work,
        }
    }

    /// A spec around a boxed raw [`Job`] (defaults: `Normal` priority,
    /// arrival now, tenant 0, no deadline, weight 1, unpinned).
    pub fn job(job: Job<'t>) -> Self {
        Self::with_work(Work::Single(job))
    }

    /// A spec around a job with a typed output, boxing it for the
    /// [`crate::Completion`] (replaces `submit_job`).
    pub fn typed<T, F>(job: F) -> Self
    where
        T: Any,
        F: FnOnce(&mut ApuDevice) -> Result<(TaskReport, T)> + 't,
    {
        Self::job(Box::new(move |dev| {
            let (report, value) = job(dev)?;
            Ok((report, Box::new(value) as Box<dyn Any>))
        }))
    }

    /// A spec around a single-core kernel (the
    /// [`ApuDevice::run_task`] shape) with unit output (replaces
    /// `submit_kernel`).
    pub fn kernel<F>(kernel: F) -> Self
    where
        F: FnOnce(&mut ApuContext<'_>) -> Result<()> + 't,
    {
        Self::job(Box::new(move |dev| {
            let report = dev.run_task(kernel)?;
            Ok((report, Box::new(()) as Box<dyn Any>))
        }))
    }

    /// A spec for **continuous batching**: the dispatcher may coalesce
    /// this submission with others sharing its `key` (and [`Priority`]);
    /// `payload` is the member's contribution and `run` executes the
    /// whole batch (replaces `submit_batchable`).
    pub fn batch(key: BatchKey, payload: Box<dyn Any>, run: BatchRunner<'t>) -> Self {
        Self::with_work(Work::Batchable { key, payload, run })
    }

    /// Sets the [`Priority`] class (default `Normal`).
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the arrival time on the virtual timeline (default now).
    #[must_use]
    pub fn at(mut self, arrival: Duration) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the submitting tenant (default [`TenantId`] 0).
    #[must_use]
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Attaches a time-to-live: the task is shed without dispatching if
    /// it cannot *start* by `arrival + ttl` (load shedding; the deadline
    /// is evaluated against the arrival set at submission).
    #[must_use]
    pub fn ttl(mut self, ttl: Duration) -> Self {
        self.deadline = Some(self.arrival + ttl);
        self
    }

    /// Attaches an absolute start deadline on the virtual timeline
    /// (the TTL form [`TaskSpec::ttl`] is usually more convenient).
    #[must_use]
    pub fn deadline_at(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Declares the number of logical tasks this submission folds (e.g.
    /// a pre-batched multi-query job; default 1). Counted in
    /// [`crate::QueueStats::batches`] / `batched_tasks` when > 1.
    #[must_use]
    pub fn weight(mut self, weight: u64) -> Self {
        self.weight = weight;
        self
    }

    /// Pins the task to a cluster shard. [`crate::DeviceCluster::submit`]
    /// bypasses its routing policy for pinned specs;
    /// [`crate::DeviceQueue::submit`] ignores the pin (a single queue
    /// has no placement choice).
    #[must_use]
    pub fn on_shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// The batch-compatibility key, for batchable specs.
    pub fn batch_key(&self) -> Option<BatchKey> {
        match &self.work {
            Work::Batchable { key, .. } => Some(*key),
            Work::Single(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_setters() {
        let spec = TaskSpec::kernel(|_| Ok(()));
        assert_eq!(spec.priority, Priority::Normal);
        assert_eq!(spec.arrival, Duration::ZERO);
        assert_eq!(spec.tenant, TenantId::default());
        assert_eq!(spec.deadline, None);
        assert_eq!(spec.weight, 1);
        assert_eq!(spec.shard, None);
        assert!(spec.batch_key().is_none());

        let spec = spec
            .priority(Priority::High)
            .at(Duration::from_micros(10))
            .tenant(TenantId::new(3))
            .ttl(Duration::from_micros(5))
            .weight(4)
            .on_shard(2);
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.tenant.get(), 3);
        assert_eq!(spec.deadline, Some(Duration::from_micros(15)));
        assert_eq!(spec.weight, 4);
        assert_eq!(spec.shard, Some(2));
    }

    #[test]
    fn ttl_is_relative_to_the_arrival_set_before_it() {
        let spec = TaskSpec::kernel(|_| Ok(()))
            .at(Duration::from_millis(1))
            .ttl(Duration::from_millis(2));
        assert_eq!(spec.deadline, Some(Duration::from_millis(3)));
        let spec = TaskSpec::kernel(|_| Ok(())).deadline_at(Duration::from_millis(9));
        assert_eq!(spec.deadline, Some(Duration::from_millis(9)));
    }

    #[test]
    fn admission_watermarks_are_ordered() {
        let adm = AdmissionControl::new(8, 2);
        assert_eq!(adm.shed_low_above, 8);
        assert_eq!(adm.shed_normal_above, 8);
    }
}
