//! Multi-device scale-out: a cluster of independent simulated APUs.
//!
//! The paper serves every workload from **one** device and §5.3 shows
//! the corpus-scaling wall that follows (10 → 200 GB corpora stream
//! ever-longer embedding scans through one HBM interface). This module
//! is the scale-out answer sketched in the roadmap: [`DeviceCluster`]
//! owns N fully independent [`DeviceQueue`]s — each over its own
//! [`ApuDevice`] with its own virtual clock, fault plan, and trace sink
//! — and routes submissions across them with a pluggable
//! [`RoutePolicy`]:
//!
//! * [`RoutePolicy::RoundRobin`] — rotate through shards in submission
//!   order (stateless load spreading),
//! * [`RoutePolicy::LeastOutstanding`] — pick the shard with the
//!   smallest not-yet-dispatched backlog (join-the-shortest-queue),
//! * [`RoutePolicy::ConsistentHash`] — map each [`BatchKey`] to a stable
//!   shard with a jump consistent hash, so same-key work always lands
//!   where its batch mates are and continuous batching keeps coalescing
//!   across the cluster.
//!
//! Explicit placement (`*_to` submission variants) bypasses the router:
//! scatter-gather callers — e.g. `rag`'s sharded server, which fans each
//! query to **every** shard and merges per-shard top-k — address shards
//! directly and use [`DeviceCluster::scatter`] / [`DeviceCluster::drain`]
//! for the fan-out/fan-in.
//!
//! Shards never share state: a fault plan armed on one device, a retry
//! storm, or a TTL shed on one shard cannot perturb another shard's
//! virtual timeline. Cluster-level reporting is therefore pure
//! aggregation — [`ClusterReport`] keeps the per-shard
//! [`QueueStats`] and [`QueueStats::merge`] folds them into one block
//! for fleet-level metrics.

use std::any::Any;
use std::time::Duration;

use crate::device::ApuDevice;
use crate::error::Error;
use crate::queue::{
    BatchKey, BatchRunner, Completion, DeviceQueue, Job, Priority, QueueConfig, TaskHandle,
};
use crate::stats::QueueStats;
use crate::Result;

/// How a [`DeviceCluster`] places router-submitted work onto shards.
///
/// Explicit `*_to` submissions always bypass the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Rotate through shards in submission order.
    #[default]
    RoundRobin,
    /// Pick the shard with the smallest pending backlog (ties go to the
    /// lowest shard index).
    LeastOutstanding,
    /// Map each [`BatchKey`] to a stable shard (jump consistent hash),
    /// so same-key submissions coalesce on one device. Non-batchable
    /// submissions carry no key and fall back to round-robin.
    ConsistentHash,
}

/// Identifier of a task submitted through a [`DeviceCluster`]: the shard
/// it was placed on plus the shard-local [`TaskHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterHandle {
    shard: usize,
    task: TaskHandle,
}

impl ClusterHandle {
    /// The shard the task was placed on.
    pub fn shard(self) -> usize {
        self.shard
    }

    /// The shard-local queue handle.
    pub fn task(self) -> TaskHandle {
        self.task
    }
}

/// One shard's drained output: its retired completions (in retire order)
/// and its queue counters.
#[derive(Debug)]
pub struct ShardDrain {
    /// The shard index within the cluster.
    pub shard: usize,
    /// Every completion the shard's queue retired during the drain.
    pub completions: Vec<Completion>,
    /// The shard queue's cumulative counters.
    pub stats: QueueStats,
}

/// Fan-in result of [`DeviceCluster::drain`]: per-shard completions and
/// stats, in shard order.
#[derive(Debug)]
pub struct ClusterReport {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardDrain>,
}

impl ClusterReport {
    /// Total completions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.completions.len()).sum()
    }

    /// Whether no shard retired anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates `(shard, completion)` pairs in shard order.
    pub fn completions(&self) -> impl Iterator<Item = (usize, &Completion)> {
        self.shards
            .iter()
            .flat_map(|s| s.completions.iter().map(move |c| (s.shard, c)))
    }

    /// Removes and returns the completion of one cluster handle, or
    /// `None` if it already retired elsewhere (or never existed).
    pub fn take(&mut self, handle: ClusterHandle) -> Option<Completion> {
        let shard = self.shards.get_mut(handle.shard)?;
        let at = shard
            .completions
            .iter()
            .position(|c| c.handle == handle.task)?;
        Some(shard.completions.remove(at))
    }

    /// Folds the per-shard counters into one cluster-wide block (see
    /// [`QueueStats::merge`] for the aggregation semantics).
    pub fn merged_stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for s in &self.shards {
            total.merge(&s.stats);
        }
        total
    }
}

/// SplitMix64 finalizer: decorrelates adjacent key values before they
/// reach the consistent-hash bucketing.
fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Jump consistent hash (Lamping & Veach): maps `key` to a bucket in
/// `[0, buckets)` such that growing the bucket count relocates only
/// `1/buckets` of the keys. Deterministic, stateless, O(ln buckets).
fn jump_hash(mut key: u64, buckets: usize) -> usize {
    debug_assert!(buckets > 0);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = ((b.wrapping_add(1) as f64)
            * ((1u64 << 31) as f64 / ((key >> 33).wrapping_add(1) as f64))) as i64;
    }
    b as usize
}

/// A cluster of independent simulated APU devices behind one router.
///
/// See the [module documentation](self) for the scale-out model. Every
/// shard is a full [`DeviceQueue`] — priorities, admission control,
/// continuous batching, TTL shedding, bounded retry, fault containment,
/// and tracing all work per shard exactly as on a single device.
///
/// ```
/// use apu_sim::{ApuDevice, DeviceCluster, Priority, QueueConfig, RoutePolicy, SimConfig, VecOp};
///
/// # fn main() -> Result<(), apu_sim::Error> {
/// let mut devs: Vec<ApuDevice> = (0..2)
///     .map(|_| ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20)))
///     .collect();
/// let mut cluster = DeviceCluster::new(
///     devs.iter_mut().collect(),
///     QueueConfig::default(),
///     RoutePolicy::RoundRobin,
/// )?;
/// for _ in 0..4 {
///     cluster.submit_job(Priority::Normal, std::time::Duration::ZERO, |dev| {
///         let r = dev.run_task(|ctx| {
///             ctx.core_mut().charge(VecOp::AddU16);
///             Ok(())
///         })?;
///         Ok((r, ()))
///     })?;
/// }
/// let report = cluster.drain()?;
/// assert_eq!(report.len(), 4);
/// # Ok(())
/// # }
/// ```
pub struct DeviceCluster<'d, 't> {
    nodes: Vec<DeviceQueue<'d, 't>>,
    policy: RoutePolicy,
    rr_next: usize,
}

impl<'d, 't> DeviceCluster<'d, 't> {
    /// Opens a cluster over the given devices, one [`DeviceQueue`] per
    /// device, each configured with a clone of `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for an empty device set.
    pub fn new(
        devices: Vec<&'d mut ApuDevice>,
        cfg: QueueConfig,
        policy: RoutePolicy,
    ) -> Result<Self> {
        if devices.is_empty() {
            return Err(Error::InvalidArg(
                "a device cluster needs at least one device".into(),
            ));
        }
        let nodes = devices
            .into_iter()
            .map(|dev| DeviceQueue::new(dev, cfg.clone()))
            .collect();
        Ok(DeviceCluster {
            nodes,
            policy,
            rr_next: 0,
        })
    }

    /// Number of shards (devices) in the cluster.
    pub fn shard_count(&self) -> usize {
        self.nodes.len()
    }

    /// The routing policy in force.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Replaces the routing policy (placement of *future* submissions).
    pub fn set_policy(&mut self, policy: RoutePolicy) {
        self.policy = policy;
    }

    /// One shard's queue.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn node(&self, shard: usize) -> &DeviceQueue<'d, 't> {
        &self.nodes[shard]
    }

    /// One shard's queue, mutably (e.g. to submit through shard-local
    /// APIs not mirrored here).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn node_mut(&mut self, shard: usize) -> &mut DeviceQueue<'d, 't> {
        &mut self.nodes[shard]
    }

    /// One shard's device (e.g. to arm a per-shard [`crate::FaultPlan`]
    /// or allocate buffers between dispatches).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn device_mut(&mut self, shard: usize) -> &mut ApuDevice {
        self.nodes[shard].device_mut()
    }

    /// Total not-yet-dispatched backlog across all shards.
    pub fn pending(&self) -> usize {
        self.nodes.iter().map(DeviceQueue::pending).sum()
    }

    /// One shard's queue counters.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn stats(&self, shard: usize) -> &QueueStats {
        self.nodes[shard].stats()
    }

    /// Cluster-wide counters: every shard's [`QueueStats`] folded with
    /// [`QueueStats::merge`].
    pub fn merged_stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for n in &self.nodes {
            total.merge(n.stats());
        }
        total
    }

    /// Picks the shard for a router-placed submission.
    fn route(&mut self, key: Option<BatchKey>) -> usize {
        match self.policy {
            RoutePolicy::RoundRobin => self.round_robin(),
            RoutePolicy::LeastOutstanding => self
                .nodes
                .iter()
                .enumerate()
                .min_by_key(|(i, n)| (n.pending(), *i))
                .map(|(i, _)| i)
                .expect("cluster is never empty"),
            RoutePolicy::ConsistentHash => match key {
                Some(k) => jump_hash(mix64(k.get()), self.nodes.len()),
                None => self.round_robin(),
            },
        }
    }

    fn round_robin(&mut self) -> usize {
        let s = self.rr_next;
        self.rr_next = (self.rr_next + 1) % self.nodes.len();
        s
    }

    fn check_shard(&self, shard: usize) -> Result<()> {
        if shard >= self.nodes.len() {
            return Err(Error::InvalidArg(format!(
                "shard {shard} out of range (cluster has {})",
                self.nodes.len()
            )));
        }
        Ok(())
    }

    /// Router-placed [`DeviceQueue::submit_at`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the chosen shard's backlog
    /// bound is hit.
    pub fn submit_at(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: Job<'t>,
    ) -> Result<ClusterHandle> {
        let shard = self.route(None);
        self.submit_to(shard, priority, arrival, job)
    }

    /// [`DeviceQueue::submit_at`] on an explicit shard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for a bad shard index or
    /// [`Error::QueueFull`] when that shard's backlog bound is hit.
    pub fn submit_to(
        &mut self,
        shard: usize,
        priority: Priority,
        arrival: Duration,
        job: Job<'t>,
    ) -> Result<ClusterHandle> {
        self.check_shard(shard)?;
        let task = self.nodes[shard].submit_at(priority, arrival, job)?;
        Ok(ClusterHandle { shard, task })
    }

    /// Router-placed typed-output job (see [`DeviceQueue::submit_job`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the chosen shard's backlog
    /// bound is hit.
    pub fn submit_job<T, F>(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: F,
    ) -> Result<ClusterHandle>
    where
        T: Any,
        F: FnOnce(&mut ApuDevice) -> Result<(crate::TaskReport, T)> + 't,
    {
        self.submit_at(
            priority,
            arrival,
            Box::new(move |dev| {
                let (report, value) = job(dev)?;
                Ok((report, Box::new(value) as Box<dyn Any>))
            }),
        )
    }

    /// [`DeviceQueue::submit_with_ttl`] on an explicit shard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for a bad shard index or
    /// [`Error::QueueFull`] when that shard's backlog bound is hit.
    pub fn submit_with_ttl_to(
        &mut self,
        shard: usize,
        priority: Priority,
        arrival: Duration,
        ttl: Duration,
        job: Job<'t>,
    ) -> Result<ClusterHandle> {
        self.check_shard(shard)?;
        let task = self.nodes[shard].submit_with_ttl(priority, arrival, ttl, job)?;
        Ok(ClusterHandle { shard, task })
    }

    /// Router-placed [`DeviceQueue::submit_batchable`]: under
    /// [`RoutePolicy::ConsistentHash`] the key pins the shard, so
    /// same-key submissions keep coalescing into shared dispatches.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the chosen shard's backlog
    /// bound is hit.
    pub fn submit_batchable(
        &mut self,
        priority: Priority,
        arrival: Duration,
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    ) -> Result<ClusterHandle> {
        let shard = self.route(Some(key));
        self.submit_batchable_to(shard, priority, arrival, key, payload, run)
    }

    /// [`DeviceQueue::submit_batchable`] on an explicit shard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for a bad shard index or
    /// [`Error::QueueFull`] when that shard's backlog bound is hit.
    pub fn submit_batchable_to(
        &mut self,
        shard: usize,
        priority: Priority,
        arrival: Duration,
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    ) -> Result<ClusterHandle> {
        self.check_shard(shard)?;
        let task = self.nodes[shard].submit_batchable(priority, arrival, key, payload, run)?;
        Ok(ClusterHandle { shard, task })
    }

    /// [`DeviceQueue::submit_batchable_with_ttl`] on an explicit shard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for a bad shard index or
    /// [`Error::QueueFull`] when that shard's backlog bound is hit.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_batchable_with_ttl_to(
        &mut self,
        shard: usize,
        priority: Priority,
        arrival: Duration,
        ttl: Duration,
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    ) -> Result<ClusterHandle> {
        self.check_shard(shard)?;
        let task = self.nodes[shard]
            .submit_batchable_with_ttl(priority, arrival, ttl, key, payload, run)?;
        Ok(ClusterHandle { shard, task })
    }

    /// Scatter: submits one job per shard (built by `make`, which
    /// receives the shard index), all arriving at the same instant —
    /// the fan-out half of scatter-gather execution. Returns one handle
    /// per shard, in shard order; gather with [`DeviceCluster::drain`]
    /// and [`ClusterReport::take`], or [`DeviceCluster::wait`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] if any shard rejects its piece;
    /// pieces admitted before the rejection stay queued.
    pub fn scatter<F>(
        &mut self,
        priority: Priority,
        arrival: Duration,
        mut make: F,
    ) -> Result<Vec<ClusterHandle>>
    where
        F: FnMut(usize) -> Job<'t>,
    {
        (0..self.nodes.len())
            .map(|shard| self.submit_to(shard, priority, arrival, make(shard)))
            .collect()
    }

    /// Runs one shard's queue until the given task retires and returns
    /// its completion (other shards are untouched).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for a bad shard index or an unknown
    /// handle on that shard.
    pub fn wait(&mut self, handle: ClusterHandle) -> Result<&Completion> {
        self.check_shard(handle.shard)?;
        self.nodes[handle.shard].wait(handle.task)
    }

    /// Gather: drains every shard's queue to completion (each on its own
    /// virtual timeline) and returns the per-shard completions and
    /// counters. Shards drain independently — one shard's faults, sheds,
    /// or retries never block another's progress.
    ///
    /// # Errors
    ///
    /// Propagates queue-level invariant violations; per-task failures
    /// retire as error completions instead.
    pub fn drain(&mut self) -> Result<ClusterReport> {
        let mut shards = Vec::with_capacity(self.nodes.len());
        for (shard, node) in self.nodes.iter_mut().enumerate() {
            let completions = node.drain()?;
            shards.push(ShardDrain {
                shard,
                completions,
                stats: node.stats().clone(),
            });
        }
        Ok(ClusterReport { shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::timing::VecOp;

    fn devices(n: usize) -> Vec<ApuDevice> {
        (0..n)
            .map(|_| ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20)))
            .collect()
    }

    fn charge_job<'t>(tag: u32) -> Job<'t> {
        Box::new(move |dev: &mut ApuDevice| {
            let r = dev.run_task(|ctx| {
                ctx.core_mut().charge(VecOp::AddU16);
                Ok(())
            })?;
            Ok((r, Box::new(tag) as Box<dyn Any>))
        })
    }

    #[test]
    fn empty_cluster_is_rejected() {
        assert!(matches!(
            DeviceCluster::new(Vec::new(), QueueConfig::default(), RoutePolicy::RoundRobin),
            Err(Error::InvalidArg(_))
        ));
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let mut devs = devices(3);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
        let handles: Vec<ClusterHandle> = (0..9)
            .map(|i| {
                cluster
                    .submit_at(Priority::Normal, Duration::ZERO, charge_job(i))
                    .unwrap()
            })
            .collect();
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(h.shard(), i % 3);
        }
        let report = cluster.drain().unwrap();
        assert_eq!(report.len(), 9);
        for s in &report.shards {
            assert_eq!(s.completions.len(), 3);
            assert_eq!(s.stats.completed, 3);
        }
    }

    #[test]
    fn least_outstanding_prefers_the_shortest_backlog() {
        let mut devs = devices(2);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::LeastOutstanding,
        )
        .unwrap();
        // Pre-load shard 0 with explicit placements; the router must
        // then prefer shard 1 until the backlogs level out.
        for i in 0..4 {
            cluster
                .submit_to(0, Priority::Normal, Duration::ZERO, charge_job(i))
                .unwrap();
        }
        for i in 0..4 {
            let h = cluster
                .submit_at(Priority::Normal, Duration::ZERO, charge_job(100 + i))
                .unwrap();
            assert_eq!(h.shard(), 1, "submission {i} must go to the idle shard");
        }
        // Backlogs now equal: ties go to the lowest index.
        let h = cluster
            .submit_at(Priority::Normal, Duration::ZERO, charge_job(200))
            .unwrap();
        assert_eq!(h.shard(), 0);
    }

    #[test]
    fn consistent_hash_is_stable_and_covers_shards() {
        let mut devs = devices(4);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default().with_max_batch(8),
            RoutePolicy::ConsistentHash,
        )
        .unwrap();
        let noop_runner = || -> BatchRunner<'static> {
            Box::new(|dev: &mut ApuDevice, payloads: Vec<Box<dyn Any>>| {
                let report = dev.run_task(|ctx| {
                    ctx.core_mut().charge(VecOp::AddU16);
                    Ok(())
                })?;
                Ok((report, payloads.into_iter().map(Ok).collect()))
            })
        };
        let mut seen = std::collections::HashSet::new();
        for key in 0..64u64 {
            let a = cluster
                .submit_batchable(
                    Priority::Normal,
                    Duration::ZERO,
                    BatchKey::new(key),
                    Box::new(()),
                    noop_runner(),
                )
                .unwrap();
            let b = cluster
                .submit_batchable(
                    Priority::Normal,
                    Duration::ZERO,
                    BatchKey::new(key),
                    Box::new(()),
                    noop_runner(),
                )
                .unwrap();
            assert_eq!(a.shard(), b.shard(), "key {key} must pin one shard");
            seen.insert(a.shard());
        }
        assert_eq!(seen.len(), 4, "64 keys must cover all 4 shards");
        // Same-key members coalesce on their shard.
        let report = cluster.drain().unwrap();
        let merged = report.merged_stats();
        assert_eq!(merged.submitted, 128);
        assert_eq!(merged.completed, 128);
        assert!(merged.max_batch_size >= 2, "pinned keys must batch");
    }

    #[test]
    fn scatter_places_one_piece_per_shard() {
        let mut devs = devices(3);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
        let handles = cluster
            .scatter(Priority::Normal, Duration::ZERO, |shard| {
                charge_job(shard as u32)
            })
            .unwrap();
        assert_eq!(handles.len(), 3);
        let mut report = cluster.drain().unwrap();
        for (shard, h) in handles.into_iter().enumerate() {
            assert_eq!(h.shard(), shard);
            let c = report.take(h).expect("scattered piece retired");
            assert_eq!(c.output::<u32>(), Some(&(shard as u32)));
            assert!(report.take(h).is_none(), "take is consuming");
        }
    }

    #[test]
    fn shards_have_independent_timelines_and_faults() {
        let mut devs = devices(2);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
        cluster
            .device_mut(1)
            .inject_faults(crate::FaultPlan::new(3).fail_every_kth_task(1));
        for i in 0..4 {
            cluster
                .submit_to(
                    i % 2,
                    Priority::Normal,
                    Duration::ZERO,
                    charge_job(i as u32),
                )
                .unwrap();
        }
        let report = cluster.drain().unwrap();
        assert_eq!(report.shards[0].stats.completed, 2);
        assert_eq!(report.shards[0].stats.failed, 0);
        assert_eq!(report.shards[1].stats.completed, 0);
        assert_eq!(report.shards[1].stats.failed, 2);
        // The faulted shard books no device time; the clean one does.
        assert!(report.shards[0].stats.busy > Duration::ZERO);
        assert_eq!(report.shards[1].stats.busy, Duration::ZERO);
        let merged = report.merged_stats();
        assert_eq!(merged.completed, 2);
        assert_eq!(merged.failed, 2);
        assert_eq!(merged.cores, report.shards[0].stats.cores * 2);
    }

    #[test]
    fn wait_retires_one_shard_without_draining_others() {
        let mut devs = devices(2);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
        let a = cluster
            .submit_to(0, Priority::Normal, Duration::ZERO, charge_job(7))
            .unwrap();
        cluster
            .submit_to(1, Priority::Normal, Duration::ZERO, charge_job(8))
            .unwrap();
        let done = cluster.wait(a).unwrap();
        assert_eq!(done.output::<u32>(), Some(&7));
        assert_eq!(cluster.node(1).pending(), 1, "shard 1 still holds its job");
        let bad = ClusterHandle {
            shard: 9,
            task: a.task(),
        };
        assert!(cluster.wait(bad).is_err());
    }

    #[test]
    fn jump_hash_is_consistent_under_growth() {
        // Growing the cluster must relocate only a fraction of keys.
        let keys: Vec<u64> = (0..512).map(mix64).collect();
        let moved = keys
            .iter()
            .filter(|&&k| jump_hash(k, 4) != jump_hash(k, 5))
            .count();
        assert!(moved > 0, "some keys must move");
        assert!(
            moved < 512 / 3,
            "jump hash must relocate ~1/5 of keys, moved {moved}"
        );
        for &k in &keys {
            assert_eq!(jump_hash(k, 1), 0);
            assert!(jump_hash(k, 7) < 7);
        }
    }
}
