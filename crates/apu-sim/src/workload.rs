//! Seed-deterministic, replayable multi-tenant workload traces.
//!
//! A [`TrafficSpec`] describes one arrival process per tenant —
//! open-loop Poisson, periodic bursts, a linear ramp, or heavy-tailed
//! (Pareto) inter-arrivals — and [`TrafficSpec::generate`] expands it
//! into a [`WorkloadTrace`]: a time-sorted list of [`ArrivalEvent`]s.
//! Generation is a pure function of `(spec, seed, horizon)`: every
//! tenant draws from its own splitmix64 substream, so adding or
//! reordering tenants never perturbs another tenant's arrivals and the
//! same seed always replays the same trace (the determinism the serving
//! benchmarks rely on to compare schedulers on identical offered load).
//!
//! ```
//! use apu_sim::{ArrivalProcess, Priority, TenantId, TenantTraffic, TrafficSpec};
//! use std::time::Duration;
//!
//! let spec = TrafficSpec::new(vec![
//!     TenantTraffic::new(TenantId::new(0), ArrivalProcess::Poisson { rate_qps: 500.0 })
//!         .priority(Priority::High)
//!         .slo(Duration::from_millis(2)),
//!     TenantTraffic::new(
//!         TenantId::new(1),
//!         ArrivalProcess::Burst {
//!             base_qps: 100.0,
//!             burst_qps: 4_000.0,
//!             period: Duration::from_millis(50),
//!             burst_len: Duration::from_millis(5),
//!         },
//!     ),
//! ]);
//! let trace = spec.generate(42, Duration::from_millis(100));
//! let replay = spec.generate(42, Duration::from_millis(100));
//! assert_eq!(trace, replay);
//! assert!(!trace.events.is_empty());
//! ```

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::queue::Priority;
use crate::spec::TenantId;

/// The arrival process of one tenant's open-loop request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate (exponential
    /// inter-arrival gaps).
    Poisson {
        /// Mean arrival rate in queries per second.
        rate_qps: f64,
    },
    /// Periodic square-wave bursts: `burst_qps` for the first
    /// `burst_len` of every `period`, `base_qps` for the remainder
    /// (diurnal spikes, retry storms). Gaps stay exponential at the
    /// instantaneous rate.
    Burst {
        /// Off-burst arrival rate in queries per second.
        base_qps: f64,
        /// In-burst arrival rate in queries per second.
        burst_qps: f64,
        /// Burst repetition period.
        period: Duration,
        /// Burst duration at the start of each period.
        burst_len: Duration,
    },
    /// Rate climbing linearly from `start_qps` at time zero to
    /// `end_qps` at the generation horizon (load tests, launch ramps).
    Ramp {
        /// Arrival rate at time zero, queries per second.
        start_qps: f64,
        /// Arrival rate at the horizon, queries per second.
        end_qps: f64,
    },
    /// Pareto inter-arrival gaps with tail index `alpha` and the given
    /// mean rate: most gaps are short, a heavy tail of long silences
    /// separates clumps of closely spaced requests.
    HeavyTailed {
        /// Mean arrival rate in queries per second.
        rate_qps: f64,
        /// Pareto tail index; must exceed 1 for the mean to exist
        /// (values are clamped to 1.05). Smaller = burstier.
        alpha: f64,
    },
}

/// One tenant's contribution to a [`TrafficSpec`]: an arrival process
/// plus the scheduling attributes every generated arrival carries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantTraffic {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Priority class of this tenant's arrivals.
    pub priority: Priority,
    /// Logical weight per arrival (see [`crate::TaskSpec::weight`]).
    pub weight: u64,
    /// Per-request latency SLO; generated arrivals carry
    /// `deadline = at + slo` when set.
    pub slo: Option<Duration>,
    /// The arrival process.
    pub process: ArrivalProcess,
}

impl TenantTraffic {
    /// A tenant stream with `Normal` priority, weight 1, and no SLO.
    pub fn new(tenant: TenantId, process: ArrivalProcess) -> Self {
        TenantTraffic {
            tenant,
            priority: Priority::Normal,
            weight: 1,
            slo: None,
            process,
        }
    }

    /// Sets the priority class.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the per-arrival logical weight.
    #[must_use]
    pub fn weight(mut self, weight: u64) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Sets the per-request latency SLO.
    #[must_use]
    pub fn slo(mut self, slo: Duration) -> Self {
        self.slo = Some(slo);
        self
    }
}

/// A multi-tenant traffic description; see the
/// [module documentation](self).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// One arrival stream per tenant.
    pub tenants: Vec<TenantTraffic>,
}

impl TrafficSpec {
    /// Wraps a set of tenant streams.
    pub fn new(tenants: Vec<TenantTraffic>) -> Self {
        TrafficSpec { tenants }
    }

    /// Expands the spec into the time-sorted arrival trace over
    /// `[0, horizon)`. Pure in `(self, seed, horizon)`.
    pub fn generate(&self, seed: u64, horizon: Duration) -> WorkloadTrace {
        let mut events: Vec<ArrivalEvent> = Vec::new();
        for t in &self.tenants {
            // Independent substream per tenant: perturbing one tenant's
            // spec never shifts another's draws.
            let mut rng = Splitmix64::new(seed ^ mix64(t.tenant.get().wrapping_add(1)));
            let mut now = Duration::ZERO;
            while let Some(gap) = t.process.next_gap(now, horizon, &mut rng) {
                now += gap;
                if now >= horizon {
                    break;
                }
                events.push(ArrivalEvent {
                    at: now,
                    tenant: t.tenant,
                    priority: t.priority,
                    weight: t.weight,
                    deadline: t.slo.map(|s| now + s),
                });
            }
        }
        events.sort_by_key(|e| (e.at, e.tenant));
        WorkloadTrace { events }
    }
}

impl ArrivalProcess {
    /// Draws the gap to the next arrival after virtual time `now`, or
    /// `None` when the stream is exhausted (zero-rate tail).
    fn next_gap(&self, now: Duration, horizon: Duration, rng: &mut Splitmix64) -> Option<Duration> {
        match *self {
            ArrivalProcess::Poisson { rate_qps } => exp_gap(rate_qps, rng),
            ArrivalProcess::Burst {
                base_qps,
                burst_qps,
                period,
                burst_len,
            } => {
                let rate = if period.is_zero() {
                    base_qps
                } else {
                    let phase_ns = now.as_nanos() % period.as_nanos();
                    if phase_ns < burst_len.as_nanos() {
                        burst_qps
                    } else {
                        base_qps
                    }
                };
                exp_gap(rate, rng)
            }
            ArrivalProcess::Ramp { start_qps, end_qps } => {
                let frac = if horizon.is_zero() {
                    0.0
                } else {
                    now.as_secs_f64() / horizon.as_secs_f64()
                };
                exp_gap(start_qps + (end_qps - start_qps) * frac, rng)
            }
            ArrivalProcess::HeavyTailed { rate_qps, alpha } => {
                if rate_qps <= 0.0 {
                    return None;
                }
                let a = alpha.max(1.05);
                // Pareto(xm, a) with mean 1/rate: xm = (a-1)/(a*rate).
                let xm = (a - 1.0) / (a * rate_qps);
                let u = rng.next_unit();
                let gap = xm / (1.0 - u).powf(1.0 / a);
                duration_from_secs(gap)
            }
        }
    }
}

/// One generated arrival: when it lands, who sent it, and how it should
/// be scheduled. Feed into [`crate::TaskSpec`] via
/// [`crate::TaskSpec::at`] / [`crate::TaskSpec::tenant`] /
/// [`crate::TaskSpec::deadline_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalEvent {
    /// Arrival time on the virtual timeline.
    pub at: Duration,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Priority class.
    pub priority: Priority,
    /// Logical weight.
    pub weight: u64,
    /// Absolute start deadline (`at + slo`), when the tenant has one.
    pub deadline: Option<Duration>,
}

/// A generated, replayable arrival trace, sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WorkloadTrace {
    /// The arrivals, sorted by `(at, tenant)`.
    pub events: Vec<ArrivalEvent>,
}

impl WorkloadTrace {
    /// Total logical tasks in the trace.
    pub fn total_weight(&self) -> u64 {
        self.events.iter().map(|e| e.weight).sum()
    }

    /// The arrivals of one tenant, in time order.
    pub fn for_tenant(&self, tenant: TenantId) -> impl Iterator<Item = &ArrivalEvent> {
        self.events.iter().filter(move |e| e.tenant == tenant)
    }
}

/// An exponential inter-arrival gap at `rate_qps`, or `None` for a
/// non-positive rate (the stream goes quiet).
fn exp_gap(rate_qps: f64, rng: &mut Splitmix64) -> Option<Duration> {
    if rate_qps <= 0.0 {
        return None;
    }
    let u = rng.next_unit();
    duration_from_secs(-(1.0 - u).ln() / rate_qps)
}

/// Saturating `Duration::from_secs_f64` that tolerates huge gaps from
/// deep tail draws.
fn duration_from_secs(secs: f64) -> Option<Duration> {
    if !secs.is_finite() {
        return None;
    }
    Some(Duration::from_nanos(
        (secs * 1e9).min(u64::MAX as f64).max(0.0) as u64,
    ))
}

/// SplitMix64 bit mixer (Steele et al.), the same finalizer the
/// latency-reservoir RNG uses.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Minimal deterministic PRNG: a splitmix64 counter stream.
struct Splitmix64 {
    state: u64,
}

impl Splitmix64 {
    fn new(seed: u64) -> Self {
        Splitmix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst_spec() -> TrafficSpec {
        TrafficSpec::new(vec![
            TenantTraffic::new(
                TenantId::new(0),
                ArrivalProcess::Poisson { rate_qps: 2_000.0 },
            )
            .priority(Priority::High)
            .slo(Duration::from_millis(1)),
            TenantTraffic::new(
                TenantId::new(1),
                ArrivalProcess::Burst {
                    base_qps: 200.0,
                    burst_qps: 20_000.0,
                    period: Duration::from_millis(20),
                    burst_len: Duration::from_millis(2),
                },
            )
            .weight(2),
        ])
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let spec = burst_spec();
        let horizon = Duration::from_millis(50);
        let a = spec.generate(7, horizon);
        let b = spec.generate(7, horizon);
        assert_eq!(a, b);
        let c = spec.generate(8, horizon);
        assert_ne!(a, c, "different seeds should draw different traces");
    }

    #[test]
    fn tenant_substreams_are_independent() {
        let spec = burst_spec();
        let horizon = Duration::from_millis(50);
        let both = spec.generate(7, horizon);
        let solo = TrafficSpec::new(vec![spec.tenants[1]]).generate(7, horizon);
        let from_both: Vec<_> = both.for_tenant(TenantId::new(1)).copied().collect();
        assert_eq!(from_both, solo.events);
    }

    #[test]
    fn events_are_sorted_and_deadlines_follow_slo() {
        let spec = burst_spec();
        let trace = spec.generate(3, Duration::from_millis(50));
        assert!(trace.events.windows(2).all(|w| w[0].at <= w[1].at));
        for e in trace.for_tenant(TenantId::new(0)) {
            assert_eq!(e.deadline, Some(e.at + Duration::from_millis(1)));
            assert_eq!(e.priority, Priority::High);
        }
        assert!(trace.total_weight() > trace.events.len() as u64);
    }

    #[test]
    fn burst_windows_cluster_arrivals() {
        let spec = TrafficSpec::new(vec![TenantTraffic::new(
            TenantId::new(0),
            ArrivalProcess::Burst {
                base_qps: 100.0,
                burst_qps: 50_000.0,
                period: Duration::from_millis(10),
                burst_len: Duration::from_millis(1),
            },
        )]);
        let trace = spec.generate(11, Duration::from_millis(100));
        let in_burst = trace
            .events
            .iter()
            .filter(|e| e.at.as_nanos() % 10_000_000 < 1_000_000)
            .count();
        // 10% of the timeline carries the overwhelming majority of load.
        assert!(in_burst * 2 > trace.events.len());
    }

    #[test]
    fn ramp_rate_increases_over_the_horizon() {
        let spec = TrafficSpec::new(vec![TenantTraffic::new(
            TenantId::new(0),
            ArrivalProcess::Ramp {
                start_qps: 100.0,
                end_qps: 10_000.0,
            },
        )]);
        let horizon = Duration::from_millis(200);
        let trace = spec.generate(5, horizon);
        let half = horizon / 2;
        let first = trace.events.iter().filter(|e| e.at < half).count();
        let second = trace.events.len() - first;
        assert!(
            second > first * 2,
            "ramp back half ({second}) should out-arrive front half ({first})"
        );
    }

    #[test]
    fn zero_rate_streams_terminate() {
        let spec = TrafficSpec::new(vec![TenantTraffic::new(
            TenantId::new(0),
            ArrivalProcess::Poisson { rate_qps: 0.0 },
        )]);
        let trace = spec.generate(1, Duration::from_secs(1));
        assert!(trace.events.is_empty());
    }

    #[test]
    fn specs_and_traces_are_serde() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<TrafficSpec>();
        assert_serde::<WorkloadTrace>();
        assert_serde::<ArrivalProcess>();
    }
}
