//! Vector Command Unit and serving-queue statistics.
//!
//! The paper's Table 6 reports the number of APU µCode instructions per
//! workload "as reported by the Vector Command Unit"; [`VcuStats`] is the
//! simulator's equivalent counter, plus the per-class cycle attribution
//! consumed by the energy model (`cis-energy`). [`QueueStats`] carries
//! the serving-side counters of the [`crate::DeviceQueue`] dispatcher —
//! wait/service/latency accumulation, occupancy, and continuous-batching
//! batch-size accounting.

use std::collections::BTreeMap;
use std::ops::Sub;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::core::CycleClass;
use crate::timing::VecOp;

/// Cumulative command/cycle statistics for one core.
///
/// Obtained from [`crate::ApuCore::stats`]; task-scoped deltas are
/// reported in [`crate::TaskReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcuStats {
    /// Vector commands issued (GVML-level calls).
    pub commands: u64,
    /// µCode micro-operations executed. Fixed-latency vector commands
    /// decode to approximately one micro-op per busy cycle.
    pub micro_ops: u64,
    /// Cycles spent in bit-processor computation.
    pub compute_cycles: u64,
    /// Cycles the DMA engines were busy.
    pub dma_cycles: u64,
    /// Cycles spent on programmed I/O.
    pub pio_cycles: u64,
    /// Cycles spent on L3 indexed lookups.
    pub lookup_cycles: u64,
    /// Control-processor command issue overhead cycles.
    pub issue_cycles: u64,
    /// Bytes moved over the L4 (device DRAM) interface.
    pub l4_bytes: u64,
    /// Individual PIO element transfers.
    pub pio_elems: u64,
    /// DMA transactions initiated.
    pub dma_transactions: u64,
    /// Per-mnemonic command counts.
    pub per_op: BTreeMap<String, u64>,
}

impl VcuStats {
    /// Records one fixed-latency vector command.
    pub(crate) fn record_op(&mut self, op: VecOp, cost: u64, issue: u64) {
        self.commands += 1;
        self.micro_ops += cost;
        self.compute_cycles += cost;
        self.issue_cycles += issue;
        *self.per_op.entry(op.mnemonic().to_string()).or_insert(0) += 1;
    }

    /// Records a variable-latency operation by class.
    pub(crate) fn record_class(&mut self, class: CycleClass, cycles: u64) {
        match class {
            CycleClass::Compute => {
                self.compute_cycles += cycles;
                self.micro_ops += cycles;
            }
            CycleClass::Dma => self.dma_cycles += cycles,
            CycleClass::Pio => self.pio_cycles += cycles,
            CycleClass::Lookup => self.lookup_cycles += cycles,
            CycleClass::Issue => self.issue_cycles += cycles,
        }
    }

    /// Records one raw micro-op issue.
    pub(crate) fn record_micro(&mut self) {
        self.micro_ops += 1;
        self.compute_cycles += 1;
    }

    /// Records an L4 transfer of `bytes` within one DMA transaction.
    pub(crate) fn record_dma_transaction(&mut self, bytes: u64) {
        self.dma_transactions += 1;
        self.l4_bytes += bytes;
    }

    /// Records `n` PIO element transfers of `bytes_each` bytes.
    pub(crate) fn record_pio_elems(&mut self, n: u64, bytes_each: u64) {
        self.pio_elems += n;
        self.l4_bytes += n * bytes_each;
    }

    /// Total busy cycles across all classes.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles
            + self.dma_cycles
            + self.pio_cycles
            + self.lookup_cycles
            + self.issue_cycles
    }

    /// Merges another statistics block into this one (used when joining
    /// parallel cores).
    pub fn merge(&mut self, other: &VcuStats) {
        self.commands += other.commands;
        self.micro_ops += other.micro_ops;
        self.compute_cycles += other.compute_cycles;
        self.dma_cycles += other.dma_cycles;
        self.pio_cycles += other.pio_cycles;
        self.lookup_cycles += other.lookup_cycles;
        self.issue_cycles += other.issue_cycles;
        self.l4_bytes += other.l4_bytes;
        self.pio_elems += other.pio_elems;
        self.dma_transactions += other.dma_transactions;
        for (k, v) in &other.per_op {
            *self.per_op.entry(k.clone()).or_insert(0) += v;
        }
    }
}

impl Sub for &VcuStats {
    type Output = VcuStats;

    /// Delta between two snapshots (`end - start`). Per-op counts below
    /// the start snapshot are clamped to zero.
    fn sub(self, start: &VcuStats) -> VcuStats {
        let mut per_op = BTreeMap::new();
        for (k, v) in &self.per_op {
            let before = start.per_op.get(k).copied().unwrap_or(0);
            if *v > before {
                per_op.insert(k.clone(), v - before);
            }
        }
        VcuStats {
            commands: self.commands - start.commands,
            micro_ops: self.micro_ops - start.micro_ops,
            compute_cycles: self.compute_cycles - start.compute_cycles,
            dma_cycles: self.dma_cycles - start.dma_cycles,
            pio_cycles: self.pio_cycles - start.pio_cycles,
            lookup_cycles: self.lookup_cycles - start.lookup_cycles,
            issue_cycles: self.issue_cycles - start.issue_cycles,
            l4_bytes: self.l4_bytes - start.l4_bytes,
            pio_elems: self.pio_elems - start.pio_elems,
            dma_transactions: self.dma_transactions - start.dma_transactions,
            per_op,
        }
    }
}

/// Default sample bound of a [`LatencyReservoir`].
pub const DEFAULT_RESERVOIR_CAP: usize = 4096;

/// Bounded, deterministic reservoir of latency samples (Algorithm R).
///
/// The first `cap` samples are kept verbatim, so [`percentile`] over the
/// reservoir is *exact* below the cap; past it, each new sample replaces
/// a uniformly chosen slot with probability `cap / seen`, driven by a
/// fixed-seed SplitMix64 stream so runs are reproducible. Memory stays
/// `O(cap)` no matter how many completions a serving run retires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyReservoir {
    cap: usize,
    seen: u64,
    rng: u64,
    samples: Vec<Duration>,
}

impl Default for LatencyReservoir {
    fn default() -> Self {
        LatencyReservoir::with_capacity(DEFAULT_RESERVOIR_CAP)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl LatencyReservoir {
    /// Creates a reservoir bounded to `cap` samples (clamped to ≥ 1).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        LatencyReservoir {
            cap,
            seen: 0,
            rng: 0x005e_ed1a_7e9c_0ffe,
            samples: Vec::new(),
        }
    }

    /// Offers one sample to the reservoir.
    pub fn push(&mut self, sample: Duration) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(sample);
        } else {
            // Algorithm R: replace a uniform slot in [0, seen) — the
            // sample survives with probability cap / seen.
            let j = (splitmix64(&mut self.rng) % self.seen) as usize;
            if j < self.cap {
                self.samples[j] = sample;
            }
        }
    }

    /// Samples currently held (≤ the cap).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample was ever offered.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples offered, including evicted ones.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The reservoir bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The retained samples, unordered.
    pub fn as_slice(&self) -> &[Duration] {
        &self.samples
    }
}

/// Per-task latency decomposed into serving stages, in the spirit of the
/// paper's §4–§5 time attribution (DMA vs compute vs queueing).
///
/// The four components always sum *exactly* to the task's end-to-end
/// latency — no lost or double-booked time:
///
/// * `queue_wait` — arrival to dispatch (scheduling delay, batch-window
///   waits, retry backoff),
/// * `dispatch` — the control-processor command-issue share of service,
/// * `dma` — the DMA-engine share of service (stall cycles the CP spent
///   waiting on transfers),
/// * `device` — everything else on the device: compute, PIO, and lookup
///   cycles, plus attribution rounding.
///
/// The service-time split is proportional to the task's [`VcuStats`]
/// cycle classes, computed in integer nanoseconds with the `device`
/// component defined as the remainder, so
/// `queue_wait + dispatch + dma + device == latency` holds bit-exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Arrival → dispatch: scheduling delay on the virtual timeline.
    pub queue_wait: Duration,
    /// Command-issue overhead share of service time.
    pub dispatch: Duration,
    /// DMA share of service time.
    pub dma: Duration,
    /// Remaining device time: compute, PIO, lookup, rounding.
    pub device: Duration,
}

impl StageBreakdown {
    /// Builds a breakdown from a queueing delay, a service time, and the
    /// task's device-cycle attribution.
    pub fn from_parts(queue_wait: Duration, service: Duration, stats: &VcuStats) -> Self {
        let (dispatch, dma, device) = stage_split(service, stats);
        StageBreakdown {
            queue_wait,
            dispatch,
            dma,
            device,
        }
    }

    /// The service-time share (`dispatch + dma + device`), equal to the
    /// task's `finished_at - started_at`.
    pub fn service(&self) -> Duration {
        self.dispatch + self.dma + self.device
    }

    /// Total accounted time, equal to the task's end-to-end latency.
    pub fn total(&self) -> Duration {
        self.queue_wait + self.service()
    }

    /// Accumulates another breakdown (for per-queue stage totals).
    pub fn accumulate(&mut self, other: &StageBreakdown) {
        self.queue_wait += other.queue_wait;
        self.dispatch += other.dispatch;
        self.dma += other.dma;
        self.device += other.device;
    }
}

/// Splits a service time into `(dispatch, dma, device)` proportionally
/// to the cycle classes in `stats`, in integer nanoseconds. `device` is
/// the exact remainder, so the three parts always sum to `service`.
pub fn stage_split(service: Duration, stats: &VcuStats) -> (Duration, Duration, Duration) {
    let total = stats.total_cycles();
    if total == 0 || service.is_zero() {
        return (Duration::ZERO, Duration::ZERO, service);
    }
    let nanos = service.as_nanos();
    let share = |cycles: u64| -> Duration {
        Duration::from_nanos((nanos * cycles as u128 / total as u128) as u64)
    };
    let dispatch = share(stats.issue_cycles);
    let dma = share(stats.dma_cycles);
    // Floor division guarantees dispatch + dma ≤ service; the remainder
    // (compute, PIO, lookup, rounding) is charged to the device stage.
    let device = service - dispatch - dma;
    (dispatch, dma, device)
}

/// Monotone per-queue counters, in the style of [`VcuStats`].
///
/// Tracked by [`crate::DeviceQueue`]: admission and completion counts,
/// accumulated wait/service/latency with a latency reservoir for
/// percentile reporting, core occupancy, failure-containment counters
/// (failed / expired / retried work), and — for the continuous batching
/// dispatcher — per-dispatch batch-size and backlog counters.
///
/// Wait/service/latency accumulators and the latency reservoir cover
/// **successful** completions only; failed and shed tasks are counted in
/// [`QueueStats::failed`] / [`QueueStats::expired`], and the device time
/// a failed job consumed is still booked on the virtual timeline (it
/// shows up in [`QueueStats::busy`], `makespan`, and later tasks' waits).
/// Per-tenant slice of the queue counters, keyed by the raw
/// [`crate::TenantId`] in [`QueueStats::per_tenant`]. Follows the same
/// conventions as the queue-wide block: the wait/latency/stage
/// accumulators cover **successful** completions only, while shed and
/// failed work is visible through its own counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Tasks this tenant submitted (accepted by admission).
    pub submitted: u64,
    /// Tasks that ran to completion.
    pub completed: u64,
    /// Tasks retired with an error completion (excludes deadline and
    /// admission shedding).
    pub failed: u64,
    /// Tasks shed because their deadline passed before dispatch.
    pub expired: u64,
    /// Tasks shed by cluster-level admission control (backlog over the
    /// watermark; see [`crate::AdmissionControl`]).
    pub shed: u64,
    /// Accumulated queueing delay over successful completions.
    pub total_wait: Duration,
    /// Accumulated end-to-end latency over successful completions.
    pub total_latency: Duration,
    /// Accumulated command-issue stage over successful completions.
    pub stage_dispatch: Duration,
    /// Accumulated DMA stage over successful completions.
    pub stage_dma: Duration,
    /// Accumulated device (compute/PIO/lookup) stage over successful
    /// completions.
    pub stage_device: Duration,
}

impl TenantStats {
    /// Mean end-to-end latency over this tenant's completions.
    ///
    /// Computed in 128-bit nanoseconds: a `u32` divisor cast would wrap
    /// for counts ≥ 2³² (and panic on a wrap to exactly zero).
    pub fn mean_latency(&self) -> Duration {
        duration_mean(self.total_latency, self.completed)
    }

    /// Per-stage latency totals for this tenant (queue wait plus the
    /// three service stages), mirroring [`QueueStats::stage_totals`].
    pub fn stage_totals(&self) -> StageBreakdown {
        StageBreakdown {
            queue_wait: self.total_wait,
            dispatch: self.stage_dispatch,
            dma: self.stage_dma,
            device: self.stage_device,
        }
    }

    /// Folds another tenant block into this one (cluster roll-up).
    pub fn merge(&mut self, other: &TenantStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.failed += other.failed;
        self.expired += other.expired;
        self.shed += other.shed;
        self.total_wait += other.total_wait;
        self.total_latency += other.total_latency;
        self.stage_dispatch += other.stage_dispatch;
        self.stage_dma += other.stage_dma;
        self.stage_device += other.stage_device;
    }
}

/// Aggregate serving statistics of a [`crate::DeviceQueue`]: admission,
/// dispatch, batching, shedding, and latency counters, plus per-tenant
/// slices. Comparable with `==` (the reservoir compares its retained
/// samples), which the API-compat tests use to prove the deprecated
/// `submit_*` shims and the [`crate::TaskSpec`] path book identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueStats {
    /// Tasks accepted by `submit`.
    pub submitted: u64,
    /// Tasks rejected by admission control.
    pub rejected: u64,
    /// Tasks that ran to completion.
    pub completed: u64,
    /// Tasks retired with an error completion (failed jobs, failed batch
    /// members, exhausted retries). Excludes deadline-shed tasks.
    pub failed: u64,
    /// Tasks shed because their deadline passed before dispatch.
    pub expired: u64,
    /// Tasks shed by cluster-level admission control (backlog over the
    /// configured watermark; see [`crate::AdmissionControl`]).
    pub shed_admission: u64,
    /// Re-dispatch attempts made by the bounded retry policy.
    pub retries: u64,
    /// Multi-query batch jobs dispatched (see `submit_weighted`).
    pub batches: u64,
    /// Logical tasks folded into those batch jobs.
    pub batched_tasks: u64,
    /// Device dispatches issued; a coalesced batch counts once.
    pub dispatches: u64,
    /// Logical tasks carried by those dispatches (batch members, plus
    /// the declared weight of `submit_weighted` jobs).
    pub dispatched_tasks: u64,
    /// Largest batch the continuous-batching dispatcher coalesced.
    pub max_batch_size: u64,
    /// Largest backlog observed at submission time.
    pub peak_pending: usize,
    /// Accumulated queueing delay (start − arrival) over completions.
    pub total_wait: Duration,
    /// Accumulated service time (finish − start) over completions.
    pub total_service: Duration,
    /// Accumulated end-to-end latency (finish − arrival).
    pub total_latency: Duration,
    /// Accumulated command-issue stage over completions (see
    /// [`StageBreakdown::dispatch`]).
    pub stage_dispatch: Duration,
    /// Accumulated DMA stage over completions.
    pub stage_dma: Duration,
    /// Accumulated device (compute/PIO/lookup) stage over completions.
    pub stage_device: Duration,
    /// Bounded reservoir of per-completion end-to-end latencies, for
    /// percentile reporting (exact below the cap).
    pub latency_samples: LatencyReservoir,
    /// Core-seconds of busy time (`cores_used × service`).
    pub busy: Duration,
    /// Virtual time of the latest finish.
    pub makespan: Duration,
    /// Number of device cores the queue schedules over.
    pub cores: usize,
    /// Per-tenant counter slices, keyed by raw [`crate::TenantId`].
    /// Tasks submitted without an explicit tenant land under tenant 0.
    pub per_tenant: BTreeMap<u64, TenantStats>,
    /// Display names for tenants (from `QueueConfig::with_tenant_label`),
    /// rendered — escaped — as the `tenant` label value in Prometheus
    /// exposition. Tenants without a name render as their numeric id.
    pub tenant_names: BTreeMap<u64, String>,
}

impl QueueStats {
    /// Mean end-to-end latency over completions, or zero when idle.
    ///
    /// Computed in 128-bit nanoseconds: a `u32` divisor cast would wrap
    /// for counts ≥ 2³² (and panic on a wrap to exactly zero).
    pub fn mean_latency(&self) -> Duration {
        duration_mean(self.total_latency, self.completed)
    }

    /// Latency percentile `q` in `[0, 1]` over completed tasks (nearest
    /// rank), or zero when no task completed. Exact while completions
    /// fit the reservoir cap, a uniform-sample estimate past it.
    pub fn latency_percentile(&self, q: f64) -> Duration {
        percentile(self.latency_samples.as_slice(), q)
    }

    /// Fraction of core-time spent busy over the queue's makespan.
    pub fn occupancy(&self) -> f64 {
        let wall = self.makespan.as_secs_f64() * self.cores as f64;
        if wall <= 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / wall
        }
    }

    /// Sustained completions per second over the makespan.
    pub fn throughput(&self) -> f64 {
        let wall = self.makespan.as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            self.completed as f64 / wall
        }
    }

    /// Accumulated per-stage latency totals over successful completions:
    /// `queue_wait` mirrors [`QueueStats::total_wait`] and the three
    /// service stages sum to [`QueueStats::total_service`], so the
    /// breakdown's total equals [`QueueStats::total_latency`].
    pub fn stage_totals(&self) -> StageBreakdown {
        StageBreakdown {
            queue_wait: self.total_wait,
            dispatch: self.stage_dispatch,
            dma: self.stage_dma,
            device: self.stage_device,
        }
    }

    /// Mean logical tasks per device dispatch (1.0 = no coalescing), or
    /// zero before the first dispatch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.dispatched_tasks as f64 / self.dispatches as f64
        }
    }

    /// Folds another queue's counters into this block — the cluster-level
    /// aggregation used by [`crate::DeviceCluster`] and the sharded
    /// serving report.
    ///
    /// Aggregation semantics per field class:
    ///
    /// * event counters (`submitted`, `completed`, `failed`, …) and the
    ///   wait/service/latency/stage accumulators **sum**;
    /// * `max_batch_size` takes the max; `peak_pending` sums — the
    ///   per-shard peaks need not be simultaneous, so the result is an
    ///   upper bound on the cluster-wide instantaneous backlog;
    /// * `busy` sums and `cores` sums, while `makespan` takes the max
    ///   (shards run concurrently on independent virtual timelines), so
    ///   [`QueueStats::occupancy`] stays a cluster-wide busy fraction;
    /// * the other queue's retained latency samples are re-offered to
    ///   this reservoir — exact while the combined totals fit the cap,
    ///   a deterministic subsample past it.
    pub fn merge(&mut self, other: &QueueStats) {
        self.submitted += other.submitted;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.failed += other.failed;
        self.expired += other.expired;
        self.shed_admission += other.shed_admission;
        self.retries += other.retries;
        self.batches += other.batches;
        self.batched_tasks += other.batched_tasks;
        self.dispatches += other.dispatches;
        self.dispatched_tasks += other.dispatched_tasks;
        self.max_batch_size = self.max_batch_size.max(other.max_batch_size);
        self.peak_pending += other.peak_pending;
        self.total_wait += other.total_wait;
        self.total_service += other.total_service;
        self.total_latency += other.total_latency;
        self.stage_dispatch += other.stage_dispatch;
        self.stage_dma += other.stage_dma;
        self.stage_device += other.stage_device;
        for &sample in other.latency_samples.as_slice() {
            self.latency_samples.push(sample);
        }
        self.busy += other.busy;
        self.makespan = self.makespan.max(other.makespan);
        self.cores += other.cores;
        for (tenant, stats) in &other.per_tenant {
            self.per_tenant.entry(*tenant).or_default().merge(stats);
        }
        for (tenant, name) in &other.tenant_names {
            self.tenant_names
                .entry(*tenant)
                .or_insert_with(|| name.clone());
        }
    }
}

/// Mean of an accumulated [`Duration`] over `count` events, safe for any
/// `u64` count. `Duration / u32` is unusable here: truncating a `u64`
/// count to `u32` wraps for counts ≥ 2³² and panics when the wrap lands
/// on zero.
fn duration_mean(total: Duration, count: u64) -> Duration {
    if count == 0 {
        return Duration::ZERO;
    }
    let nanos = total.as_nanos() / count as u128;
    Duration::new(
        (nanos / 1_000_000_000) as u64,
        (nanos % 1_000_000_000) as u32,
    )
}

/// Nearest-rank percentile of a (not necessarily sorted) sample set:
/// the `ceil(q·n)`-th smallest sample (1-indexed), with `q = 0` mapping
/// to the minimum. Always returns an actual sample.
pub fn percentile(samples: &[Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_survives_counts_past_u32() {
        // Regression: the old `total / completed as u32` wrapped for
        // counts ≥ 2³²; this count truncates to exactly 1 (not 0, which
        // would have panicked — also covered below via + 0 wrap check).
        let completed = u32::MAX as u64 + 1; // truncates to 0 as u32
        let mut t = TenantStats {
            completed,
            total_latency: Duration::from_secs(completed),
            ..TenantStats::default()
        };
        assert_eq!(t.mean_latency(), Duration::from_secs(1));
        // And the wrap-to-nonzero case: 2³² + 2 would have divided by 2.
        t.completed = u32::MAX as u64 + 2;
        t.total_latency = Duration::from_secs(t.completed);
        assert_eq!(t.mean_latency(), Duration::from_secs(1));

        let q = QueueStats {
            completed,
            total_latency: Duration::from_secs(completed * 3),
            ..QueueStats::default()
        };
        assert_eq!(q.mean_latency(), Duration::from_secs(3));
        assert_eq!(QueueStats::default().mean_latency(), Duration::ZERO);
    }

    #[test]
    fn record_and_total() {
        let mut s = VcuStats::default();
        s.record_op(VecOp::AddU16, 12, 2);
        s.record_class(CycleClass::Dma, 100);
        s.record_micro();
        assert_eq!(s.commands, 1);
        assert_eq!(s.micro_ops, 13);
        assert_eq!(s.total_cycles(), 12 + 2 + 100 + 1);
        assert_eq!(s.per_op["add_u16"], 1);
    }

    #[test]
    fn delta_subtraction() {
        let mut start = VcuStats::default();
        start.record_op(VecOp::Or16, 8, 2);
        let mut end = start.clone();
        end.record_op(VecOp::Or16, 8, 2);
        end.record_op(VecOp::AddU16, 12, 2);
        let d = &end - &start;
        assert_eq!(d.commands, 2);
        assert_eq!(d.per_op["or_16"], 1);
        assert_eq!(d.per_op["add_u16"], 1);
        assert_eq!(d.compute_cycles, 20);
    }

    #[test]
    fn merge_combines() {
        let mut a = VcuStats::default();
        a.record_op(VecOp::AddU16, 12, 2);
        let mut b = VcuStats::default();
        b.record_op(VecOp::AddU16, 12, 2);
        b.record_dma_transaction(512);
        a.merge(&b);
        assert_eq!(a.commands, 2);
        assert_eq!(a.per_op["add_u16"], 2);
        assert_eq!(a.l4_bytes, 512);
        assert_eq!(a.dma_transactions, 1);
    }

    #[test]
    fn pio_accounting() {
        let mut s = VcuStats::default();
        s.record_pio_elems(10, 2);
        assert_eq!(s.pio_elems, 10);
        assert_eq!(s.l4_bytes, 20);
    }

    #[test]
    fn reservoir_is_exact_below_cap_and_bounded_above() {
        let ms = |n: u64| Duration::from_millis(n);
        let mut r = LatencyReservoir::with_capacity(64);
        for i in 1..=64 {
            r.push(ms(i));
        }
        assert_eq!(r.len(), 64);
        assert_eq!(r.seen(), 64);
        // Exact below the cap: every sample retained in order.
        assert_eq!(percentile(r.as_slice(), 1.0), ms(64));
        assert_eq!(percentile(r.as_slice(), 0.0), ms(1));
        for i in 65..=100_000 {
            r.push(ms(i));
        }
        assert_eq!(r.len(), 64, "reservoir must stay bounded");
        assert_eq!(r.seen(), 100_000);
        // Retained samples all come from the offered stream.
        assert!(r.as_slice().iter().all(|&d| d >= ms(1) && d <= ms(100_000)));
    }

    #[test]
    fn reservoir_is_deterministic() {
        let mut a = LatencyReservoir::with_capacity(8);
        let mut b = LatencyReservoir::with_capacity(8);
        for i in 0..1000u64 {
            a.push(Duration::from_micros(i * 7 % 311));
            b.push(Duration::from_micros(i * 7 % 311));
        }
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn reservoir_percentile_matches_brute_force_sort_under_capacity() {
        // Regression (ISSUE 4): on the unsampled path — fewer samples
        // offered than the reservoir cap — `percentile` over the
        // reservoir must agree exactly with a brute-force sort of every
        // offered sample, for every quantile.
        let us = |n: u64| Duration::from_micros(n);
        // An adversarial, unsorted, duplicate-heavy stream.
        let offered: Vec<Duration> = (0..1000u64).map(|i| us(i * 7919 % 131)).collect();
        let mut r = LatencyReservoir::with_capacity(4096);
        for &s in &offered {
            r.push(s);
        }
        assert_eq!(r.len(), offered.len(), "under capacity: nothing evicted");
        let mut sorted = offered.clone();
        sorted.sort_unstable();
        for i in 0..=1000 {
            let q = i as f64 / 1000.0;
            let brute = {
                let rank = (q * sorted.len() as f64).ceil() as usize;
                sorted[rank.clamp(1, sorted.len()) - 1]
            };
            assert_eq!(percentile(r.as_slice(), q), brute, "q = {q}");
        }
    }

    #[test]
    fn stage_split_is_exact_and_proportional() {
        let mut s = VcuStats::default();
        s.record_class(CycleClass::Compute, 600);
        s.record_class(CycleClass::Dma, 300);
        s.record_class(CycleClass::Issue, 100);
        let service = Duration::from_nanos(10_007);
        let (dispatch, dma, device) = stage_split(service, &s);
        assert_eq!(dispatch + dma + device, service, "no lost time");
        assert_eq!(dispatch, Duration::from_nanos(10_007 * 100 / 1000));
        assert_eq!(dma, Duration::from_nanos(10_007 * 300 / 1000));
        // Zero-cycle and zero-service corner cases.
        let (d0, m0, v0) = stage_split(service, &VcuStats::default());
        assert_eq!((d0, m0, v0), (Duration::ZERO, Duration::ZERO, service));
        let (d1, m1, v1) = stage_split(Duration::ZERO, &s);
        assert_eq!(
            (d1, m1, v1),
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        );
        let b = StageBreakdown::from_parts(Duration::from_nanos(13), service, &s);
        assert_eq!(b.total(), Duration::from_nanos(13) + service);
        assert_eq!(b.service(), service);
    }

    #[test]
    fn queue_stats_merge_aggregates_per_field_class() {
        let ms = |n: u64| Duration::from_millis(n);
        let mut a = QueueStats {
            submitted: 3,
            completed: 3,
            dispatches: 2,
            dispatched_tasks: 3,
            max_batch_size: 2,
            peak_pending: 4,
            total_latency: ms(30),
            busy: ms(20),
            makespan: ms(25),
            cores: 4,
            ..QueueStats::default()
        };
        for i in 1..=3 {
            a.latency_samples.push(ms(10 * i));
        }
        let mut b = QueueStats {
            submitted: 2,
            completed: 1,
            failed: 1,
            dispatches: 1,
            dispatched_tasks: 1,
            max_batch_size: 5,
            peak_pending: 1,
            total_latency: ms(40),
            busy: ms(10),
            makespan: ms(60),
            cores: 4,
            ..QueueStats::default()
        };
        b.latency_samples.push(ms(40));
        a.merge(&b);
        assert_eq!(a.submitted, 5);
        assert_eq!(a.completed, 4);
        assert_eq!(a.failed, 1);
        assert_eq!(a.max_batch_size, 5, "max, not sum");
        assert_eq!(a.peak_pending, 5, "summed upper bound");
        assert_eq!(a.total_latency, ms(70));
        assert_eq!(a.busy, ms(30));
        assert_eq!(a.makespan, ms(60), "concurrent shards: max");
        assert_eq!(a.cores, 8);
        assert_eq!(a.latency_samples.len(), 4, "samples re-offered");
        assert_eq!(a.latency_percentile(1.0), ms(40));
        // Occupancy stays a fraction of summed core-time over the
        // cluster makespan.
        assert!(a.occupancy() > 0.0 && a.occupancy() <= 1.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        // Nearest rank: ceil(q·n)-th smallest, 1-indexed.
        assert_eq!(percentile(&samples, 0.5), ms(50));
        assert_eq!(percentile(&samples, 0.501), ms(51));
        assert_eq!(percentile(&samples, 0.99), ms(99));
        let five: Vec<Duration> = (1..=5).map(ms).collect();
        assert_eq!(percentile(&five, 0.5), ms(3));
        assert_eq!(percentile(&five, 0.25), ms(2));
        assert_eq!(percentile(&five, 0.75), ms(4));
    }
}
