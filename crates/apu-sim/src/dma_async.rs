//! Asynchronous DMA: overlapping data movement with computation.
//!
//! Each APU core has **two parallel DMA engines** (paper §2.1.2,
//! Fig. 3b). The blocking transfers in [`crate::dma`] model the simple
//! `direct_dma_*` calls of the vendor API; this module adds the
//! double-buffering pattern real device code uses to hide transfer
//! latency: issue a transfer on a free engine, compute on the previous
//! buffer, then wait.
//!
//! Semantics: issuing charges only the descriptor-setup overhead on the
//! control processor and books the transfer on the earliest-free engine;
//! [`ApuContext::dma_wait`] advances the CP clock to the transfer's
//! completion (a no-op if compute already covered it). In functional
//! mode the source data is *captured* at issue but the destination is
//! only written when the transfer is waited on (or displaced by a later
//! transfer on the same engine, or at the task-end barrier) — so a
//! kernel that reads the destination before waiting sees **stale data**,
//! matching the read-before-wait hazard of the real device. Every issue
//! returns a [`DmaTicket`] the caller must consume.

use serde::{Deserialize, Serialize};

use crate::clock::Cycles;
use crate::core::CycleClass;
use crate::core::{ApuCore, Vmr};
use crate::device::ApuContext;
use crate::mem::{Dram, MemHandle};
use crate::trace::{TraceEvent, TraceEventKind};
use crate::Result;

/// A functional-mode copy whose destination write is deferred until the
/// transfer is waited on.
#[derive(Debug)]
pub(crate) enum PendingDmaCopy {
    /// L4 → L1: bytes captured from L4 at issue, landing in a VMR.
    L4ToL1 {
        /// Destination vector-memory register (validated at issue).
        dst: Vmr,
        /// Element values captured from the source at issue time.
        data: Vec<u16>,
    },
    /// L1 → L4: bytes captured from the VMR at issue, landing in L4.
    L1ToL4 {
        /// Destination handle, already truncated to the transfer size and
        /// validated at issue.
        dst: MemHandle,
        /// Byte image captured from the source at issue time.
        data: Vec<u8>,
    },
}

/// A deferred copy plus the cycle its transfer completes, stashed on the
/// engine slot that carries it.
#[derive(Debug)]
pub(crate) struct PendingDma {
    pub(crate) completes_at: Cycles,
    pub(crate) copy: PendingDmaCopy,
}

fn apply_copy(core: &mut ApuCore, l4: &mut Dram, copy: PendingDmaCopy) {
    match copy {
        PendingDmaCopy::L4ToL1 { dst, data } => core
            .vmr_mut(dst)
            .expect("destination VMR validated at issue")
            .copy_from_slice(&data),
        PendingDmaCopy::L1ToL4 { dst, data } => l4
            .write(dst, &data)
            .expect("destination handle validated at issue"),
    }
}

/// Applies any still-pending functional copies on both engines. The task
/// boundary is a full barrier, so [`crate::ApuDevice`] calls this when a
/// kernel returns. Data only — no cycles are charged.
pub(crate) fn flush_pending(core: &mut ApuCore, l4: &mut Dram) {
    for engine in 0..2 {
        if let Some(p) = core.take_pending_dma_any(engine) {
            apply_copy(core, l4, p.copy);
        }
    }
}

/// Handle to an in-flight asynchronous DMA transfer.
///
/// Returned by the `*_async` transfer methods; consume it with
/// [`ApuContext::dma_wait`] before using the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[must_use = "wait on the ticket before using the transfer's destination"]
pub struct DmaTicket {
    /// Engine the transfer was booked on (0 or 1).
    pub engine: usize,
    /// Absolute core cycle at which the data is complete.
    pub completes_at: Cycles,
}

impl ApuContext<'_> {
    /// Books `cost` cycles of transfer time on the earliest-free DMA
    /// engine, charging only the setup overhead on the CP.
    fn schedule_dma(&mut self, cost: Cycles, bytes: u64) -> DmaTicket {
        let setup = Cycles::new(self.timing().dma_setup_extra);
        self.core_mut().charge_cycles(CycleClass::Issue, setup);
        let now = self.core().cycles();
        let (engine, free_at) = self.core().earliest_dma_engine();
        let start = now.max(free_at);
        let completes_at = start + cost;
        self.core_mut().book_dma_engine(engine, completes_at);
        // Engine busy time is DMA time even though the CP keeps running.
        self.core_mut().note_dma_busy(cost);
        if let Some(t) = self.trace.as_ref() {
            t.record(TraceEvent {
                ts: now,
                kind: TraceEventKind::DmaIssued {
                    core: self.core.id(),
                    engine,
                    start,
                    completes_at,
                    bytes,
                },
            });
        }
        DmaTicket {
            engine,
            completes_at,
        }
    }

    /// Emits a [`TraceEventKind::DmaWaited`] marker for a wait that
    /// stalled the CP by `stall` cycles (after the stall was charged).
    fn trace_dma_wait(&self, engine: usize, stall: Cycles) {
        if let Some(t) = self.trace.as_ref() {
            t.record(TraceEvent {
                ts: self.core.cycles(),
                kind: TraceEventKind::DmaWaited {
                    core: self.core.id(),
                    engine,
                    stall,
                },
            });
        }
    }

    /// Asynchronous full-vector L4→L1 DMA (see
    /// [`ApuContext::dma_l4_to_l1`] for the blocking semantics).
    ///
    /// # Errors
    ///
    /// Fails like the blocking variant (bad handle / VMR).
    pub fn dma_l4_to_l1_async(&mut self, dst: Vmr, src: MemHandle) -> Result<DmaTicket> {
        let bytes = self.core().config().vr_bytes();
        let cost = Cycles::from_f64(self.timing().dma_l4_l1 as f64 * self.core().l4_contention());
        self.dma_fault_check()?;
        // Capture the source now; the destination write is deferred to the
        // wait so read-before-wait races surface as stale data.
        let copy = if self.core().is_functional() {
            let data = self.l4().slice(src, bytes)?.to_vec();
            let vals: Vec<u16> = data
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect();
            self.core().vmr(dst)?;
            Some(PendingDmaCopy::L4ToL1 { dst, data: vals })
        } else {
            self.core().vmr(dst)?;
            if src.len() < bytes {
                return Err(crate::Error::SizeMismatch {
                    got: src.len(),
                    expected: bytes,
                });
            }
            None
        };
        self.stats_dma_transaction(bytes as u64);
        let ticket = self.schedule_dma(cost, bytes as u64);
        if let Some(copy) = copy {
            self.stash_pending(ticket, copy);
        }
        Ok(ticket)
    }

    /// Asynchronous full-vector L1→L4 DMA.
    ///
    /// # Errors
    ///
    /// Fails like the blocking variant.
    pub fn dma_l1_to_l4_async(&mut self, dst: MemHandle, src: Vmr) -> Result<DmaTicket> {
        let bytes = self.core().config().vr_bytes();
        let cost = Cycles::from_f64(self.timing().dma_l1_l4 as f64 * self.core().l4_contention());
        self.dma_fault_check()?;
        let copy = if self.core().is_functional() {
            let data: Vec<u8> = self
                .core()
                .vmr(src)?
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            let dst = dst.truncated(bytes)?;
            // Validate the destination range now; the write happens at
            // wait time.
            self.l4().slice(dst, bytes)?;
            Some(PendingDmaCopy::L1ToL4 { dst, data })
        } else {
            self.core().vmr(src)?;
            if dst.len() < bytes {
                return Err(crate::Error::SizeMismatch {
                    got: dst.len(),
                    expected: bytes,
                });
            }
            None
        };
        self.stats_dma_transaction(bytes as u64);
        let ticket = self.schedule_dma(cost, bytes as u64);
        if let Some(copy) = copy {
            self.stash_pending(ticket, copy);
        }
        Ok(ticket)
    }

    /// Stashes a deferred copy on its engine slot. A displaced copy
    /// belongs to an earlier transfer on the same (serializing) engine,
    /// so its data has already landed by the time the new transfer runs —
    /// apply it immediately.
    fn stash_pending(&mut self, ticket: DmaTicket, copy: PendingDmaCopy) {
        let pending = PendingDma {
            completes_at: ticket.completes_at,
            copy,
        };
        if let Some(prev) = self.core_mut().stash_pending_dma(ticket.engine, pending) {
            self.apply_pending(prev);
        }
    }

    fn apply_pending(&mut self, pending: PendingDma) {
        apply_copy(self.core, self.l4, pending.copy);
    }

    /// Blocks the control processor until the transfer completes.
    /// Returns the stall cycles actually spent waiting (zero when the
    /// compute stream already covered the transfer).
    pub fn dma_wait(&mut self, ticket: DmaTicket) -> Cycles {
        // The engine serializes, so waiting on this ticket also completes
        // any copy still pending from it or an earlier transfer on the
        // same engine (a *newer* transfer's copy stays pending).
        if let Some(p) = self
            .core_mut()
            .take_pending_dma(ticket.engine, ticket.completes_at)
        {
            self.apply_pending(p);
        }
        let now = self.core().cycles();
        let stall = ticket.completes_at.saturating_sub(now);
        if stall > Cycles::ZERO {
            self.core_mut().charge_cycles(CycleClass::Dma, stall);
        }
        self.trace_dma_wait(ticket.engine, stall);
        stall
    }

    /// Blocks until both DMA engines are idle.
    pub fn dma_wait_all(&mut self) -> Cycles {
        for engine in 0..2 {
            if let Some(p) = self.core_mut().take_pending_dma_any(engine) {
                self.apply_pending(p);
            }
        }
        let busy = self.core().dma_engines_busy_until();
        let latest = busy[0].max(busy[1]);
        let now = self.core().cycles();
        let stall = latest.saturating_sub(now);
        if stall > Cycles::ZERO {
            self.core_mut().charge_cycles(CycleClass::Dma, stall);
        }
        for (engine, &engine_busy) in busy.iter().enumerate() {
            self.trace_dma_wait(engine, engine_busy.saturating_sub(now));
        }
        stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::device::ApuDevice;
    use crate::timing::VecOp;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(16 << 20))
    }

    #[test]
    fn overlap_hides_transfer_behind_compute() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(4 * n).unwrap();

        // Blocking: DMA then compute, serialized.
        let blocking = dev
            .run_task(|ctx| {
                for i in 0..4 {
                    ctx.dma_l4_to_l1(Vmr::new(0), h.offset_by(i * n * 2)?)?;
                    for _ in 0..30 {
                        ctx.core_mut().charge(VecOp::MulS16); // ~6k cycles of compute
                    }
                }
                Ok(())
            })
            .unwrap();

        // Double-buffered: next tile's DMA overlaps this tile's compute.
        let mut dev2 = device();
        let h2 = dev2.alloc_u16(4 * n).unwrap();
        let overlapped = dev2
            .run_task(|ctx| {
                let mut pending = ctx.dma_l4_to_l1_async(Vmr::new(0), h2)?;
                for i in 0..4 {
                    ctx.dma_wait(pending);
                    if i + 1 < 4 {
                        pending = ctx.dma_l4_to_l1_async(
                            Vmr::new((i as u8 + 1) % 2),
                            h2.offset_by((i + 1) * n * 2)?,
                        )?;
                    }
                    for _ in 0..30 {
                        ctx.core_mut().charge(VecOp::MulS16);
                    }
                }
                ctx.dma_wait_all();
                Ok(())
            })
            .unwrap();
        assert!(
            overlapped.cycles.get() < blocking.cycles.get(),
            "overlap {} !< blocking {}",
            overlapped.cycles,
            blocking.cycles
        );
        // Compute (4 × ~6k) partially hides the four 22k-cycle transfers:
        // the saving should be most of the compute time.
        let saved = blocking.cycles.get() - overlapped.cycles.get();
        assert!(saved > 3 * 6000, "saved only {saved}");
    }

    #[test]
    fn wait_is_free_when_compute_covers_the_transfer() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(n).unwrap();
        dev.run_task(|ctx| {
            let t = ctx.dma_l4_to_l1_async(Vmr::new(0), h)?;
            // 23k+ cycles of compute, longer than the 22.3k transfer
            for _ in 0..120 {
                ctx.core_mut().charge(VecOp::MulS16);
            }
            let stall = ctx.dma_wait(t);
            assert_eq!(stall, crate::Cycles::ZERO);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn two_engines_three_transfers_serialize_the_third() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(3 * n).unwrap();
        dev.run_task(|ctx| {
            let a = ctx.dma_l4_to_l1_async(Vmr::new(0), h)?;
            let b = ctx.dma_l4_to_l1_async(Vmr::new(1), h.offset_by(n * 2)?)?;
            let c = ctx.dma_l4_to_l1_async(Vmr::new(2), h.offset_by(2 * n * 2)?)?;
            assert_ne!(a.engine, b.engine);
            // third transfer queues behind the first
            assert_eq!(c.engine, a.engine);
            assert!(c.completes_at > b.completes_at);
            ctx.dma_wait_all();
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn read_before_wait_sees_stale_data() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(n).unwrap();
        dev.copy_to_device(h, &vec![0x1234u16; n]).unwrap();
        dev.run_task(|ctx| {
            let t = ctx.dma_l4_to_l1_async(Vmr::new(3), h)?;
            // Reading the destination before the wait is a hazard on the
            // real device; the simulator surfaces it as stale data.
            assert_eq!(ctx.core().vmr(Vmr::new(3))?[0], 0);
            ctx.dma_wait(t);
            assert_eq!(ctx.core().vmr(Vmr::new(3))?[0], 0x1234);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn unwaited_transfer_lands_at_task_end() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(n).unwrap();
        dev.run_task(|ctx| {
            ctx.core_mut().vmr_mut(Vmr::new(0))?.fill(7);
            let _unwaited = ctx.dma_l1_to_l4_async(h, Vmr::new(0))?;
            Ok(())
        })
        .unwrap();
        // The kernel never waited, but the task boundary is a barrier:
        // the host still observes the transferred data.
        let mut out = vec![0u16; n];
        dev.copy_from_device(h, &mut out).unwrap();
        assert!(out.iter().all(|&v| v == 7));
    }

    #[test]
    fn displaced_engine_slot_applies_the_older_copy() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(3 * n).unwrap();
        let mut img = vec![1u16; n];
        img.extend(vec![2u16; n]);
        img.extend(vec![3u16; n]);
        dev.copy_to_device(h, &img).unwrap();
        dev.run_task(|ctx| {
            let a = ctx.dma_l4_to_l1_async(Vmr::new(0), h)?;
            let b = ctx.dma_l4_to_l1_async(Vmr::new(1), h.offset_by(n * 2)?)?;
            // Third transfer reuses engine 0: transfer `a`'s copy is
            // displaced from the slot and must land despite never being
            // waited on directly.
            let c = ctx.dma_l4_to_l1_async(Vmr::new(2), h.offset_by(2 * n * 2)?)?;
            assert_eq!(c.engine, a.engine);
            assert_eq!(ctx.core().vmr(Vmr::new(0))?[0], 1);
            // `b` and `c` are still in flight.
            assert_eq!(ctx.core().vmr(Vmr::new(1))?[0], 0);
            assert_eq!(ctx.core().vmr(Vmr::new(2))?[0], 0);
            // Waiting on `b` must not apply `c`'s (newer) copy on engine 0.
            ctx.dma_wait(b);
            assert_eq!(ctx.core().vmr(Vmr::new(1))?[0], 2);
            assert_eq!(ctx.core().vmr(Vmr::new(2))?[0], 0);
            ctx.dma_wait_all();
            assert_eq!(ctx.core().vmr(Vmr::new(2))?[0], 3);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn async_moves_real_data() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(n).unwrap();
        dev.copy_to_device(h, &vec![0xABCDu16; n]).unwrap();
        dev.run_task(|ctx| {
            let t = ctx.dma_l4_to_l1_async(Vmr::new(5), h)?;
            ctx.dma_wait(t);
            assert_eq!(ctx.core().vmr(Vmr::new(5))?[123], 0xABCD);
            // and back out
            let t = ctx.dma_l1_to_l4_async(h, Vmr::new(5))?;
            ctx.dma_wait(t);
            Ok(())
        })
        .unwrap();
    }
}
