//! Asynchronous DMA: overlapping data movement with computation.
//!
//! Each APU core has **two parallel DMA engines** (paper §2.1.2,
//! Fig. 3b). The blocking transfers in [`crate::dma`] model the simple
//! `direct_dma_*` calls of the vendor API; this module adds the
//! double-buffering pattern real device code uses to hide transfer
//! latency: issue a transfer on a free engine, compute on the previous
//! buffer, then wait.
//!
//! Semantics: issuing charges only the descriptor-setup overhead on the
//! control processor and books the transfer on the earliest-free engine;
//! [`ApuContext::dma_wait`] advances the CP clock to the transfer's
//! completion (a no-op if compute already covered it). In functional
//! mode the data is moved at issue time, so a kernel that reads the
//! destination *before* waiting would see data early — the simulator
//! cannot catch that race, which is why every issue returns a
//! [`DmaTicket`] the caller must consume.

use serde::{Deserialize, Serialize};

use crate::clock::Cycles;
use crate::core::CycleClass;
use crate::core::Vmr;
use crate::device::ApuContext;
use crate::mem::MemHandle;
use crate::Result;

/// Handle to an in-flight asynchronous DMA transfer.
///
/// Returned by the `*_async` transfer methods; consume it with
/// [`ApuContext::dma_wait`] before using the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[must_use = "wait on the ticket before using the transfer's destination"]
pub struct DmaTicket {
    /// Engine the transfer was booked on (0 or 1).
    pub engine: usize,
    /// Absolute core cycle at which the data is complete.
    pub completes_at: Cycles,
}

impl ApuContext<'_> {
    /// Books `cost` cycles of transfer time on the earliest-free DMA
    /// engine, charging only the setup overhead on the CP.
    fn schedule_dma(&mut self, cost: Cycles) -> DmaTicket {
        let setup = Cycles::new(self.timing().dma_setup_extra);
        self.core_mut().charge_cycles(CycleClass::Issue, setup);
        let now = self.core().cycles();
        let (engine, free_at) = self.core().earliest_dma_engine();
        let start = now.max(free_at);
        let completes_at = start + cost;
        self.core_mut().book_dma_engine(engine, completes_at);
        // Engine busy time is DMA time even though the CP keeps running.
        self.core_mut().note_dma_busy(cost);
        DmaTicket {
            engine,
            completes_at,
        }
    }

    /// Asynchronous full-vector L4→L1 DMA (see
    /// [`ApuContext::dma_l4_to_l1`] for the blocking semantics).
    ///
    /// # Errors
    ///
    /// Fails like the blocking variant (bad handle / VMR).
    pub fn dma_l4_to_l1_async(&mut self, dst: Vmr, src: MemHandle) -> Result<DmaTicket> {
        let bytes = self.core().config().vr_bytes();
        let cost = Cycles::from_f64(self.timing().dma_l4_l1 as f64 * self.core().l4_contention());
        // Functional data movement at issue time.
        if self.core().is_functional() {
            let data = self.l4().slice(src, bytes)?.to_vec();
            let vals: Vec<u16> = data
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect();
            self.core_mut().vmr_mut(dst)?.copy_from_slice(&vals);
        } else {
            self.core().vmr(dst)?;
            if src.len() < bytes {
                return Err(crate::Error::SizeMismatch {
                    got: src.len(),
                    expected: bytes,
                });
            }
        }
        self.stats_dma_transaction(bytes as u64);
        Ok(self.schedule_dma(cost))
    }

    /// Asynchronous full-vector L1→L4 DMA.
    ///
    /// # Errors
    ///
    /// Fails like the blocking variant.
    pub fn dma_l1_to_l4_async(&mut self, dst: MemHandle, src: Vmr) -> Result<DmaTicket> {
        let bytes = self.core().config().vr_bytes();
        let cost = Cycles::from_f64(self.timing().dma_l1_l4 as f64 * self.core().l4_contention());
        if self.core().is_functional() {
            let data: Vec<u8> = self
                .core()
                .vmr(src)?
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            self.l4_mut().write(dst.truncated(bytes)?, &data)?;
        } else {
            self.core().vmr(src)?;
            if dst.len() < bytes {
                return Err(crate::Error::SizeMismatch {
                    got: dst.len(),
                    expected: bytes,
                });
            }
        }
        self.stats_dma_transaction(bytes as u64);
        Ok(self.schedule_dma(cost))
    }

    /// Blocks the control processor until the transfer completes.
    /// Returns the stall cycles actually spent waiting (zero when the
    /// compute stream already covered the transfer).
    pub fn dma_wait(&mut self, ticket: DmaTicket) -> Cycles {
        let now = self.core().cycles();
        let stall = ticket.completes_at.saturating_sub(now);
        if stall > Cycles::ZERO {
            self.core_mut().charge_cycles(CycleClass::Dma, stall);
        }
        stall
    }

    /// Blocks until both DMA engines are idle.
    pub fn dma_wait_all(&mut self) -> Cycles {
        let busy = self.core().dma_engines_busy_until();
        let latest = busy[0].max(busy[1]);
        let now = self.core().cycles();
        let stall = latest.saturating_sub(now);
        if stall > Cycles::ZERO {
            self.core_mut().charge_cycles(CycleClass::Dma, stall);
        }
        stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::device::ApuDevice;
    use crate::timing::VecOp;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(16 << 20))
    }

    #[test]
    fn overlap_hides_transfer_behind_compute() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(4 * n).unwrap();

        // Blocking: DMA then compute, serialized.
        let blocking = dev
            .run_task(|ctx| {
                for i in 0..4 {
                    ctx.dma_l4_to_l1(Vmr::new(0), h.offset_by(i * n * 2)?)?;
                    for _ in 0..30 {
                        ctx.core_mut().charge(VecOp::MulS16); // ~6k cycles of compute
                    }
                }
                Ok(())
            })
            .unwrap();

        // Double-buffered: next tile's DMA overlaps this tile's compute.
        let mut dev2 = device();
        let h2 = dev2.alloc_u16(4 * n).unwrap();
        let overlapped = dev2
            .run_task(|ctx| {
                let mut pending = ctx.dma_l4_to_l1_async(Vmr::new(0), h2)?;
                for i in 0..4 {
                    ctx.dma_wait(pending);
                    if i + 1 < 4 {
                        pending = ctx.dma_l4_to_l1_async(
                            Vmr::new((i as u8 + 1) % 2),
                            h2.offset_by((i + 1) * n * 2)?,
                        )?;
                    }
                    for _ in 0..30 {
                        ctx.core_mut().charge(VecOp::MulS16);
                    }
                }
                ctx.dma_wait_all();
                Ok(())
            })
            .unwrap();
        assert!(
            overlapped.cycles.get() < blocking.cycles.get(),
            "overlap {} !< blocking {}",
            overlapped.cycles,
            blocking.cycles
        );
        // Compute (4 × ~6k) partially hides the four 22k-cycle transfers:
        // the saving should be most of the compute time.
        let saved = blocking.cycles.get() - overlapped.cycles.get();
        assert!(saved > 3 * 6000, "saved only {saved}");
    }

    #[test]
    fn wait_is_free_when_compute_covers_the_transfer() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(n).unwrap();
        dev.run_task(|ctx| {
            let t = ctx.dma_l4_to_l1_async(Vmr::new(0), h)?;
            // 23k+ cycles of compute, longer than the 22.3k transfer
            for _ in 0..120 {
                ctx.core_mut().charge(VecOp::MulS16);
            }
            let stall = ctx.dma_wait(t);
            assert_eq!(stall, crate::Cycles::ZERO);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn two_engines_three_transfers_serialize_the_third() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(3 * n).unwrap();
        dev.run_task(|ctx| {
            let a = ctx.dma_l4_to_l1_async(Vmr::new(0), h)?;
            let b = ctx.dma_l4_to_l1_async(Vmr::new(1), h.offset_by(n * 2)?)?;
            let c = ctx.dma_l4_to_l1_async(Vmr::new(2), h.offset_by(2 * n * 2)?)?;
            assert_ne!(a.engine, b.engine);
            // third transfer queues behind the first
            assert_eq!(c.engine, a.engine);
            assert!(c.completes_at > b.completes_at);
            ctx.dma_wait_all();
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn async_moves_real_data() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(n).unwrap();
        dev.copy_to_device(h, &vec![0xABCDu16; n]).unwrap();
        dev.run_task(|ctx| {
            let t = ctx.dma_l4_to_l1_async(Vmr::new(5), h)?;
            ctx.dma_wait(t);
            assert_eq!(ctx.core().vmr(Vmr::new(5))?[123], 0xABCD);
            // and back out
            let t = ctx.dma_l1_to_l4_async(h, Vmr::new(5))?;
            ctx.dma_wait(t);
            Ok(())
        })
        .unwrap();
    }
}
