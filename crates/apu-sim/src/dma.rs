//! Data movement: DMA engines, programmed I/O (PIO), and indexed lookup.
//!
//! Latency models follow the paper's Table 4; see
//! [`crate::timing::DeviceTiming`] for the constants. All L4-touching
//! transfers are additionally scaled by the core's current contention
//! factor (the device DRAM is shared by the four cores).
//!
//! The DMA engines transfer data in 512-byte chunks whose source and
//! target addresses can be programmed, enabling contiguous, strided, and
//! duplicated layout transformations (paper §2.1.2). The chunked API
//! ([`ApuContext::dma_l4_to_l2_chunks`]) models a *single* programmed
//! transaction: it pays the initialization cost once, which is exactly the
//! mechanism the paper's *DMA coalescing* optimization exploits.

use crate::clock::Cycles;
use crate::core::CycleClass;
use crate::core::{Vmr, Vr};
use crate::device::ApuContext;
use crate::error::Error;
use crate::mem::{bounds_check, MemHandle};
use crate::Result;

/// DMA chunk granularity in bytes.
pub const DMA_CHUNK: usize = 512;

/// One programmed chunk copy within a DMA transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkCopy {
    /// Byte offset within the source region.
    pub src_off: usize,
    /// Byte offset within the destination region.
    pub dst_off: usize,
    /// Bytes to copy. Charged in 512-byte granules.
    pub bytes: usize,
}

impl ChunkCopy {
    /// Creates a chunk descriptor.
    pub fn new(src_off: usize, dst_off: usize, bytes: usize) -> Self {
        ChunkCopy {
            src_off,
            dst_off,
            bytes,
        }
    }
}

fn granules(bytes: usize) -> usize {
    bytes.div_ceil(DMA_CHUNK) * DMA_CHUNK
}

impl ApuContext<'_> {
    fn contended(&self, c: Cycles) -> Cycles {
        Cycles::from_f64(c.as_f64() * self.core().l4_contention())
    }

    fn dma_extra(&self) -> Cycles {
        Cycles::new(self.timing().dma_setup_extra)
    }

    // ---------------- L4 <-> L3 ----------------

    /// DMA `len` bytes from device DRAM into the L3 cache at `l3_off`.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or out-of-range destinations.
    pub fn dma_l4_to_l3(&mut self, l3_off: usize, src: MemHandle, len: usize) -> Result<()> {
        self.dma_fault_check()?;
        let cost = self.contended(self.timing().dma_l4_l3(len)) + self.dma_extra();
        self.check_l3(l3_off, len)?;
        if self.core().is_functional() {
            let data = self.l4().slice(src, len)?.to_vec();
            self.l3_mut()[l3_off..l3_off + len].copy_from_slice(&data);
        } else {
            // Validate the handle even when data movement is elided.
            self.l4().validate(src, len.min(src.len()))?;
        }
        self.core_mut().charge_cycles(CycleClass::Dma, cost);
        self.stats_dma_transaction(len as u64);
        Ok(())
    }

    /// DMA `len` bytes from the L3 cache back to device DRAM.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or out-of-range sources.
    pub fn dma_l3_to_l4(&mut self, dst: MemHandle, l3_off: usize, len: usize) -> Result<()> {
        self.dma_fault_check()?;
        let cost = self.contended(self.timing().dma_l4_l3(len)) + self.dma_extra();
        self.check_l3(l3_off, len)?;
        if self.core().is_functional() {
            let data = self.l3()[l3_off..l3_off + len].to_vec();
            self.l4_mut().write(dst.truncated(len)?, &data)?;
        }
        self.core_mut().charge_cycles(CycleClass::Dma, cost);
        self.stats_dma_transaction(len as u64);
        Ok(())
    }

    // ---------------- L4 <-> L2 ----------------

    /// DMA `len` contiguous bytes from device DRAM into the L2 scratchpad.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or out-of-range destinations.
    pub fn dma_l4_to_l2(&mut self, l2_off: usize, src: MemHandle, len: usize) -> Result<()> {
        self.dma_l4_to_l2_chunks(src, &[ChunkCopy::new(0, l2_off, len)])
    }

    /// One programmed DMA transaction copying several 512-byte-granular
    /// chunks from device DRAM into L2, paying the initialization cost
    /// once (the paper's *coalesced DMA*).
    ///
    /// # Errors
    ///
    /// Fails if `chunks` is empty, any chunk has zero length, or any range
    /// is out of bounds.
    pub fn dma_l4_to_l2_chunks(&mut self, src: MemHandle, chunks: &[ChunkCopy]) -> Result<()> {
        self.dma_fault_check()?;
        if chunks.is_empty() {
            return Err(Error::InvalidArg("empty DMA chunk list".into()));
        }
        let mut billed = 0usize;
        for c in chunks {
            if c.bytes == 0 {
                return Err(Error::InvalidArg("zero-length DMA chunk".into()));
            }
            billed += granules(c.bytes);
        }
        let cost = self.contended(self.timing().dma_l4_l2(billed)) + self.dma_extra();
        for c in chunks {
            self.check_l2(c.dst_off, c.bytes)?;
            if self.core().is_functional() {
                let sub = src.offset_by(c.src_off)?;
                let data = self.l4().slice(sub, c.bytes)?.to_vec();
                self.core_mut().l2_mut()[c.dst_off..c.dst_off + c.bytes].copy_from_slice(&data);
            }
        }
        self.core_mut().charge_cycles(CycleClass::Dma, cost);
        self.stats_dma_transaction(billed as u64);
        Ok(())
    }

    /// DMA `len` bytes from the L2 scratchpad back to device DRAM.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or out-of-range sources.
    pub fn dma_l2_to_l4(&mut self, dst: MemHandle, l2_off: usize, len: usize) -> Result<()> {
        self.dma_fault_check()?;
        let billed = granules(len);
        let cost = self.contended(self.timing().dma_l4_l2(billed)) + self.dma_extra();
        self.check_l2(l2_off, len)?;
        if self.core().is_functional() {
            let data = self.core().l2()[l2_off..l2_off + len].to_vec();
            self.l4_mut().write(dst.truncated(len)?, &data)?;
        }
        self.core_mut().charge_cycles(CycleClass::Dma, cost);
        self.stats_dma_transaction(billed as u64);
        Ok(())
    }

    // ---------------- L2 <-> L1 (full vector only) ----------------

    /// DMA the entire L2 scratchpad (one full vector) into a VMR.
    ///
    /// Per the paper, L2↔L1 transfers support no layout transformation and
    /// move a full 32 K × 16-bit vector.
    ///
    /// # Errors
    ///
    /// Fails if the VMR index is out of range.
    pub fn dma_l2_to_l1(&mut self, dst: Vmr) -> Result<()> {
        let cost = Cycles::new(self.timing().dma_l2_l1) + self.dma_extra();
        if self.core().is_functional() {
            let n = self.core().vr_len();
            let data: Vec<u16> = self.core().l2()[..n * 2]
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect();
            self.core_mut().vmr_mut(dst)?.copy_from_slice(&data);
        } else {
            self.core().vmr(dst)?;
        }
        self.core_mut().charge_cycles(CycleClass::Dma, cost);
        Ok(())
    }

    /// DMA a VMR (one full vector) into the L2 scratchpad.
    ///
    /// # Errors
    ///
    /// Fails if the VMR index is out of range.
    pub fn dma_l1_to_l2(&mut self, src: Vmr) -> Result<()> {
        let cost = Cycles::new(self.timing().dma_l2_l1) + self.dma_extra();
        if self.core().is_functional() {
            let data: Vec<u8> = self
                .core()
                .vmr(src)?
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            self.core_mut().l2_mut()[..data.len()].copy_from_slice(&data);
        } else {
            self.core().vmr(src)?;
        }
        self.core_mut().charge_cycles(CycleClass::Dma, cost);
        Ok(())
    }

    // ---------------- L4 <-> L1 (full vector) ----------------

    /// Direct DMA of one full vector from device DRAM into a VMR
    /// (`direct_dma_l4_to_l1_32k` in the paper's device code).
    ///
    /// # Errors
    ///
    /// Fails if `src` cannot supply a full vector or the VMR is invalid.
    pub fn dma_l4_to_l1(&mut self, dst: Vmr, src: MemHandle) -> Result<()> {
        self.dma_fault_check()?;
        let bytes = self.core().config().vr_bytes();
        let cost = self.contended(Cycles::new(self.timing().dma_l4_l1)) + self.dma_extra();
        if self.core().is_functional() {
            let data = self.l4().slice(src, bytes)?.to_vec();
            let vals: Vec<u16> = data
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect();
            self.core_mut().vmr_mut(dst)?.copy_from_slice(&vals);
        } else {
            self.core().vmr(dst)?;
            if src.len() < bytes {
                return Err(Error::SizeMismatch {
                    got: src.len(),
                    expected: bytes,
                });
            }
        }
        self.core_mut().charge_cycles(CycleClass::Dma, cost);
        self.stats_dma_transaction(bytes as u64);
        Ok(())
    }

    /// Direct DMA of one full vector from a VMR back to device DRAM
    /// (`direct_dma_l1_to_l4_32k`).
    ///
    /// # Errors
    ///
    /// Fails if `dst` cannot hold a full vector or the VMR is invalid.
    pub fn dma_l1_to_l4(&mut self, dst: MemHandle, src: Vmr) -> Result<()> {
        self.dma_fault_check()?;
        let bytes = self.core().config().vr_bytes();
        let cost = self.contended(Cycles::new(self.timing().dma_l1_l4)) + self.dma_extra();
        if self.core().is_functional() {
            let data: Vec<u8> = self
                .core()
                .vmr(src)?
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect();
            self.l4_mut().write(dst.truncated(bytes)?, &data)?;
        } else {
            self.core().vmr(src)?;
            if dst.len() < bytes {
                return Err(Error::SizeMismatch {
                    got: dst.len(),
                    expected: bytes,
                });
            }
        }
        self.core_mut().charge_cycles(CycleClass::Dma, cost);
        self.stats_dma_transaction(bytes as u64);
        Ok(())
    }

    /// Gathers programmed chunks from device DRAM into a VMR by staging
    /// them through L2 (chunked L4→L2 transaction, then a full-vector
    /// L2→L1 DMA). Chunk destination offsets are in bytes within the
    /// staged vector.
    ///
    /// # Errors
    ///
    /// Propagates errors from the two underlying transfers.
    pub fn gather_l4_to_l1(
        &mut self,
        dst: Vmr,
        src: MemHandle,
        chunks: &[ChunkCopy],
    ) -> Result<()> {
        self.dma_l4_to_l2_chunks(src, chunks)?;
        self.dma_l2_to_l1(dst)
    }

    // ---------------- PIO ----------------

    /// PIO-loads elements from device DRAM into a VR:
    /// `vr[dst_idx] = src[src_idx]` for each pair, at 57 cycles/element.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range element indices.
    pub fn pio_load(&mut self, vr: Vr, src: MemHandle, pairs: &[(usize, usize)]) -> Result<()> {
        let n = pairs.len();
        let cost = self.contended(self.timing().pio_ld(n));
        if self.core().is_functional() {
            let vr_len = self.core().vr_len();
            let mut vals = Vec::with_capacity(n);
            for &(dst_idx, src_idx) in pairs {
                if dst_idx >= vr_len {
                    return Err(Error::InvalidArg(format!(
                        "PIO destination index {dst_idx} exceeds VR length {vr_len}"
                    )));
                }
                let sub = src.offset_by(src_idx * 2)?;
                let mut b = [0u8; 2];
                self.l4().read(sub.truncated(2)?, &mut b)?;
                vals.push((dst_idx, u16::from_le_bytes(b)));
            }
            let reg = self.core_mut().vr_mut(vr)?;
            for (i, v) in vals {
                reg[i] = v;
            }
        } else {
            self.core().vr(vr)?;
        }
        self.core_mut().charge_cycles(CycleClass::Pio, cost);
        self.stats_pio(n as u64);
        Ok(())
    }

    /// PIO-stores elements from a VR to device DRAM:
    /// `dst[dst_idx] = vr[src_idx]` for each pair, at 61 cycles/element.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range element indices.
    pub fn pio_store(&mut self, dst: MemHandle, vr: Vr, pairs: &[(usize, usize)]) -> Result<()> {
        let n = pairs.len();
        let cost = self.contended(self.timing().pio_st(n));
        if self.core().is_functional() {
            let vr_len = self.core().vr_len();
            let mut writes = Vec::with_capacity(n);
            for &(dst_idx, src_idx) in pairs {
                if src_idx >= vr_len {
                    return Err(Error::InvalidArg(format!(
                        "PIO source index {src_idx} exceeds VR length {vr_len}"
                    )));
                }
                let v = self.core().vr(vr)?[src_idx];
                writes.push((dst_idx, v));
            }
            for (dst_idx, v) in writes {
                let sub = dst.offset_by(dst_idx * 2)?;
                self.l4_mut().write(sub.truncated(2)?, &v.to_le_bytes())?;
            }
        } else {
            self.core().vr(vr)?;
        }
        self.core_mut().charge_cycles(CycleClass::Pio, cost);
        self.stats_pio(n as u64);
        Ok(())
    }

    /// Serially retrieves one VR element through the RSP FIFO.
    ///
    /// The paper: "retrieval from VR is limited to one element at a time".
    /// Returns 0 in timing-only mode.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range index.
    pub fn pio_get(&mut self, vr: Vr, index: usize) -> Result<u16> {
        if index >= self.core().vr_len() {
            return Err(Error::InvalidArg(format!(
                "PIO get index {index} exceeds VR length {}",
                self.core().vr_len()
            )));
        }
        let cost = self.timing().pio_st(1);
        self.core_mut().charge_cycles(CycleClass::Pio, cost);
        if self.core().is_functional() {
            Ok(self.core().vr(vr)?[index])
        } else {
            self.core().vr(vr)?;
            Ok(0)
        }
    }

    /// Inserts one element into a VR through the RSP FIFO.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range index.
    pub fn pio_set(&mut self, vr: Vr, index: usize, value: u16) -> Result<()> {
        if index >= self.core().vr_len() {
            return Err(Error::InvalidArg(format!(
                "PIO set index {index} exceeds VR length {}",
                self.core().vr_len()
            )));
        }
        let cost = self.timing().pio_ld(1);
        if self.core().is_functional() {
            self.core_mut().vr_mut(vr)?[index] = value;
        } else {
            self.core().vr(vr)?;
        }
        self.core_mut().charge_cycles(CycleClass::Pio, cost);
        Ok(())
    }

    // ---------------- Indexed lookup ----------------

    /// Indexed lookup from an L3-resident table of `sigma` u16 entries:
    /// `dst[i] = table[idx[i]]` for every element, at `7.15 σ + 629`
    /// cycles (paper Table 4).
    ///
    /// # Errors
    ///
    /// Fails if the table exceeds L3, or (in functional mode) if an index
    /// is ≥ `sigma`.
    pub fn lookup(&mut self, dst: Vr, idx: Vr, l3_off: usize, sigma: usize) -> Result<()> {
        self.check_l3(l3_off, sigma * 2)?;
        let cost = Cycles::new(self.timing().lookup(sigma).get() + self.timing().cmd_issue);
        if self.core().is_functional() {
            let table: Vec<u16> = self.l3()[l3_off..l3_off + sigma * 2]
                .chunks_exact(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]]))
                .collect();
            let indices = self.core().vr(idx)?.to_vec();
            let out = self.core_mut().vr_mut(dst)?;
            for (o, &ix) in out.iter_mut().zip(indices.iter()) {
                let ix = ix as usize;
                if ix >= sigma {
                    return Err(Error::InvalidArg(format!(
                        "lookup index {ix} exceeds table size {sigma}"
                    )));
                }
                *o = table[ix];
            }
        } else {
            self.core().vr(dst)?;
            self.core().vr(idx)?;
        }
        self.core_mut().charge_cycles(CycleClass::Lookup, cost);
        Ok(())
    }

    // ---------------- VR <-> L1 ----------------

    /// Loads a VR from an L1 vector-memory register (29 cycles).
    ///
    /// # Errors
    ///
    /// Fails on bad indices.
    pub fn load(&mut self, dst: Vr, src: Vmr) -> Result<()> {
        if self.core().is_functional() {
            let data = self.core().vmr(src)?.to_vec();
            self.core_mut().vr_mut(dst)?.copy_from_slice(&data);
        } else {
            self.core().vmr(src)?;
            self.core().vr(dst)?;
        }
        self.core_mut().charge(crate::timing::VecOp::LdSt);
        Ok(())
    }

    /// Stores a VR to an L1 vector-memory register (29 cycles).
    ///
    /// # Errors
    ///
    /// Fails on bad indices.
    pub fn store(&mut self, dst: Vmr, src: Vr) -> Result<()> {
        if self.core().is_functional() {
            let data = self.core().vr(src)?.to_vec();
            self.core_mut().vmr_mut(dst)?.copy_from_slice(&data);
        } else {
            self.core().vr(src)?;
            self.core().vmr(dst)?;
        }
        self.core_mut().charge(crate::timing::VecOp::LdSt);
        Ok(())
    }

    // ---------------- helpers ----------------

    fn check_l2(&self, off: usize, len: usize) -> Result<()> {
        let cap = self.core().l2().len();
        bounds_check(cap, off, len).map_err(|_| Error::ScratchOutOfBounds {
            level: "L2",
            offset: off,
            len,
            capacity: cap,
        })
    }

    pub(crate) fn check_l3(&self, off: usize, len: usize) -> Result<()> {
        let cap = self.l3().len();
        bounds_check(cap, off, len).map_err(|_| Error::ScratchOutOfBounds {
            level: "L3",
            offset: off,
            len,
            capacity: cap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::device::ApuDevice;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20))
    }

    #[test]
    fn full_vector_l4_l1_roundtrip() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let src = dev.alloc_u16(n).unwrap();
        let dst = dev.alloc_u16(n).unwrap();
        let data: Vec<u16> = (0..n as u32).map(|i| (i % 65536) as u16).collect();
        dev.copy_to_device(src, &data).unwrap();
        dev.run_task(|ctx| {
            ctx.dma_l4_to_l1(Vmr::new(0), src)?;
            ctx.dma_l1_to_l4(dst, Vmr::new(0))
        })
        .unwrap();
        let mut out = vec![0u16; n];
        dev.copy_from_device(dst, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn l4_l1_charges_calibrated_cycles() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let src = dev.alloc_u16(n).unwrap();
        let report = dev
            .run_task(|ctx| ctx.dma_l4_to_l1(Vmr::new(0), src))
            .unwrap();
        // 22272 (table) + 11 (setup extra)
        assert_eq!(report.cycles.get(), 22272 + 11);
        assert_eq!(report.stats.dma_transactions, 1);
        assert_eq!(report.stats.l4_bytes, 65536);
    }

    #[test]
    fn chunked_dma_pays_init_once() {
        let mut dev = device();
        let src = dev.alloc(1 << 20).unwrap();
        // Two separate transactions vs one coalesced with same total bytes.
        let two = dev
            .run_task(|ctx| {
                ctx.dma_l4_to_l2(0, src, 512)?;
                ctx.dma_l4_to_l2(512, src.offset_by(512)?, 512)
            })
            .unwrap();
        let one = dev
            .run_task(|ctx| {
                ctx.dma_l4_to_l2_chunks(
                    src,
                    &[ChunkCopy::new(0, 0, 512), ChunkCopy::new(512, 512, 512)],
                )
            })
            .unwrap();
        assert!(one.cycles < two.cycles);
        // One init (548) + one setup-extra (11) saved, ± rounding.
        let saved = two.cycles.get() - one.cycles.get();
        assert!((548..=548 + 11 + 2).contains(&saved), "saved {saved}");
    }

    #[test]
    fn small_chunks_billed_at_512_granularity() {
        let mut dev = device();
        let src = dev.alloc(4096).unwrap();
        let a = dev.run_task(|ctx| ctx.dma_l4_to_l2(0, src, 10)).unwrap();
        let b = dev.run_task(|ctx| ctx.dma_l4_to_l2(0, src, 512)).unwrap();
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn duplicating_gather_broadcasts_a_row() {
        let mut dev = device();
        let n = dev.config().vr_len;
        let src = dev.alloc_u16(256).unwrap();
        let row: Vec<u16> = (0..256).map(|i| i as u16).collect();
        dev.copy_to_device(src, &row).unwrap();
        // Duplicate the 512-byte row across the whole staged vector.
        let chunks: Vec<ChunkCopy> = (0..n * 2 / 512)
            .map(|i| ChunkCopy::new(0, i * 512, 512))
            .collect();
        dev.run_task(|ctx| ctx.gather_l4_to_l1(Vmr::new(3), src, &chunks))
            .unwrap();
        let core = dev.core(0).unwrap();
        let vmr = core.vmr(Vmr::new(3)).unwrap();
        for (i, &v) in vmr.iter().enumerate() {
            assert_eq!(v, (i % 256) as u16);
        }
    }

    #[test]
    fn pio_scatter_gather() {
        let mut dev = device();
        let src = dev.alloc_u16(16).unwrap();
        let dst = dev.alloc_u16(16).unwrap();
        dev.copy_to_device(src, &(0..16).map(|i| 100 + i as u16).collect::<Vec<_>>())
            .unwrap();
        let report = dev
            .run_task(|ctx| {
                ctx.pio_load(Vr::new(0), src, &[(5, 2), (6, 3)])?;
                ctx.pio_store(dst, Vr::new(0), &[(0, 5), (1, 6)])
            })
            .unwrap();
        let mut out = vec![0u16; 16];
        dev.copy_from_device(dst, &mut out).unwrap();
        assert_eq!(&out[..2], &[102, 103]);
        // 2×57 + 2×61
        assert_eq!(report.cycles.get(), 2 * 57 + 2 * 61);
        assert_eq!(report.stats.pio_elems, 4);
    }

    #[test]
    fn pio_get_set_roundtrip() {
        let mut dev = device();
        dev.run_task(|ctx| {
            ctx.pio_set(Vr::new(2), 100, 0xABCD)?;
            assert_eq!(ctx.pio_get(Vr::new(2), 100)?, 0xABCD);
            assert!(ctx.pio_get(Vr::new(2), usize::MAX).is_err());
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn lookup_gathers_from_l3_with_table_cost() {
        let mut dev = device();
        let table: Vec<u16> = (0..100).map(|i| 1000 + i as u16).collect();
        let src = dev.alloc_u16(100).unwrap();
        dev.copy_to_device(src, &table).unwrap();
        let report = dev
            .run_task(|ctx| {
                ctx.dma_l4_to_l3(0, src, 200)?;
                let n = ctx.core().vr_len();
                let idx = ctx.core_mut().vr_mut(Vr::new(1))?;
                for (i, v) in idx.iter_mut().enumerate() {
                    *v = (i % 100) as u16;
                }
                ctx.lookup(Vr::new(0), Vr::new(1), 0, 100)?;
                assert_eq!(ctx.core().vr(Vr::new(0))?[42], 1042);
                assert_eq!(
                    ctx.core().vr(Vr::new(0))?[n - 1],
                    1000 + ((n - 1) % 100) as u16
                );
                Ok(())
            })
            .unwrap();
        // lookup portion: 7.15*100 + 629 = 1344 (+2 issue)
        assert_eq!(report.stats.lookup_cycles, 1344 + 2);
    }

    #[test]
    fn lookup_rejects_out_of_table_index() {
        let mut dev = device();
        let r = dev.run_task(|ctx| {
            ctx.core_mut().vr_mut(Vr::new(1))?.fill(50);
            ctx.lookup(Vr::new(0), Vr::new(1), 0, 10)
        });
        assert!(r.is_err());
    }

    #[test]
    fn l2_bounds_are_enforced() {
        let mut dev = device();
        let src = dev.alloc(1 << 20).unwrap();
        let r = dev.run_task(|ctx| ctx.dma_l4_to_l2(65536 - 10, src, 100));
        assert!(matches!(
            r,
            Err(Error::ScratchOutOfBounds { level: "L2", .. })
        ));
    }

    #[test]
    fn load_store_cycle_cost() {
        let mut dev = device();
        let report = dev
            .run_task(|ctx| {
                ctx.load(Vr::new(0), Vmr::new(0))?;
                ctx.store(Vmr::new(1), Vr::new(0))
            })
            .unwrap();
        assert_eq!(report.cycles.get(), 2 * (29 + 2));
    }
}
