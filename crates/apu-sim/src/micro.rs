//! Bit-processor micro-operations (the paper's Table 2).
//!
//! Each column of each bit-slice integrates a bit processor with a 1-bit
//! **read latch** (RL). Bit processors in the same row share a **global
//! horizontal line** (wired-OR into the GHL latch); processors in the same
//! column share a **global vertical line** (wired-AND into the GVL latch).
//! The read logic can combine the read bit-line of one or more VRs, a
//! latch, and a neighbour's RL with AND/OR/XOR; the write logic drives the
//! SRAM cells from the write bit-line (RL) or its negation.
//!
//! The simulator stores a VR element-major (`Vec<u16>`): element `i`'s 16
//! bit processors hold the 16 RL bits packed into `rl[i]`. A
//! [`SliceMask`] selects which of the 16 bit-slices participate in a
//! micro-operation, exactly like the device's 16-mask.
//!
//! One simplification is documented here: the hardware has one GHL per
//! physical row segment; we model a single 16-bit GHL per core (one bit
//! per slice, OR-reduced across all columns). Workload kernels in this
//! repository only use the GHL for "any column set?" style queries, for
//! which the granularities coincide.

use serde::{Deserialize, Serialize};

/// Selects which of the 16 bit-slices a micro-operation applies to.
///
/// Bit `b` set means slice `b` (the `b`-th bit of every element)
/// participates.
///
/// ```
/// use apu_sim::SliceMask;
/// assert_eq!(SliceMask::FULL.bits(), 0xFFFF);
/// assert_eq!(SliceMask::single(3).bits(), 0b1000);
/// assert!(SliceMask::single(3).contains(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SliceMask(u16);

impl SliceMask {
    /// All 16 slices.
    pub const FULL: SliceMask = SliceMask(0xFFFF);

    /// No slices (a no-op mask; permitted, occasionally useful in codegen).
    pub const EMPTY: SliceMask = SliceMask(0);

    /// Creates a mask from raw bits.
    pub const fn new(bits: u16) -> Self {
        SliceMask(bits)
    }

    /// A mask with only slice `bit` set.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 16`.
    pub fn single(bit: usize) -> Self {
        assert!(bit < 16, "slice index {bit} out of range");
        SliceMask(1 << bit)
    }

    /// A mask of the low `n` slices.
    ///
    /// # Panics
    ///
    /// Panics if `n > 16`.
    pub fn low(n: usize) -> Self {
        assert!(n <= 16, "slice count {n} out of range");
        if n == 16 {
            SliceMask::FULL
        } else {
            SliceMask(((1u32 << n) - 1) as u16)
        }
    }

    /// The raw bits.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Whether slice `bit` participates.
    pub const fn contains(self, bit: usize) -> bool {
        self.0 & (1 << bit) != 0
    }
}

impl Default for SliceMask {
    fn default() -> Self {
        SliceMask::FULL
    }
}

/// Boolean operations supported by the bit-processor read logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitOp {
    /// Wired-AND.
    And,
    /// Wired-OR.
    Or,
    /// XOR.
    Xor,
}

impl BitOp {
    /// Applies the operation to two packed 16-bit slices.
    pub fn apply(self, a: u16, b: u16) -> u16 {
        match self {
            BitOp::And => a & b,
            BitOp::Or => a | b,
            BitOp::Xor => a ^ b,
        }
    }
}

/// Latch sources readable by a bit processor (the `L` of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatchSrc {
    /// Global horizontal latch (one bit per slice, OR-combined on load).
    Ghl,
    /// Global vertical latch (one bit per column, AND-combined on load).
    Gvl,
    /// RL of the processor to the north: slice `b` reads slice `b + 1`.
    RlNorth,
    /// RL of the processor to the south: slice `b` reads slice `b - 1`.
    RlSouth,
    /// RL of the processor to the east: column `i` reads column `i + 1`.
    RlEast,
    /// RL of the processor to the west: column `i` reads column `i - 1`.
    RlWest,
}

/// Sources the write logic can drive into the SRAM cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteSrc {
    /// Write bit-line driven from RL (WBL).
    Rl,
    /// Negated write bit-line (WBLB): writes `!RL`.
    RlNeg,
    /// Broadcast the GHL bit of each slice to every column.
    Ghl,
    /// Broadcast each column's GVL bit to every masked slice.
    Gvl,
}

/// One micro-operation on the microarchitectural state of Table 2.
///
/// `vrs` lists source VR indices; a multi-operand read wired-ANDs the
/// bit-lines, exactly as on the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MicroOp {
    /// `RL = VR[vrs0]` / `RL = VR[vrs0, vrs1]` (multi-read is an AND).
    ReadVr {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Source VRs; their bit-lines are wired-AND combined.
        vrs: Vec<usize>,
    },
    /// `RL = L`.
    ReadLatch {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Latch source.
        src: LatchSrc,
    },
    /// `RL = VR[vrs0] op L`.
    ReadVrOpLatch {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Source VR.
        vr: usize,
        /// Combining operation.
        op: BitOp,
        /// Latch source.
        src: LatchSrc,
    },
    /// `RL op= VR[vrs0]`.
    OpVr {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Combining operation.
        op: BitOp,
        /// Source VR.
        vr: usize,
    },
    /// `RL op= L`.
    OpLatch {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Combining operation.
        op: BitOp,
        /// Latch source.
        src: LatchSrc,
    },
    /// `RL op= VR[vrs0] op L` (one op symbol, applied to both combines,
    /// as written in Table 2).
    OpVrOpLatch {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Combining operation.
        op: BitOp,
        /// Source VR.
        vr: usize,
        /// Latch source.
        src: LatchSrc,
    },
    /// `VR[vrs0] = I`: write to a VR from a source latch.
    WriteVr {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Destination VR.
        vr: usize,
        /// Write source (WBL / WBLB / global latches).
        src: WriteSrc,
    },
    /// Load the GHL: per masked slice, OR of RL across all columns.
    LoadGhl {
        /// Participating bit-slices.
        mask: SliceMask,
    },
    /// Load the GVL: per column, AND of RL across masked slices.
    LoadGvl {
        /// Participating bit-slices.
        mask: SliceMask,
    },
}

/// The microarchitectural state manipulated by micro-operations.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroState {
    /// Read latches, element-major: `rl[i]` packs the 16 RL bits of
    /// column `i`.
    pub rl: Vec<u16>,
    /// Global horizontal latch: bit `b` belongs to slice `b`.
    pub ghl: u16,
    /// Global vertical latch: one bit per column.
    pub gvl: Vec<bool>,
}

impl MicroState {
    /// Creates zeroed state for `columns` element columns.
    pub fn new(columns: usize) -> Self {
        MicroState {
            rl: vec![0; columns],
            ghl: 0,
            gvl: vec![false; columns],
        }
    }

    /// Number of element columns.
    pub fn columns(&self) -> usize {
        self.rl.len()
    }

    /// The value a bit processor at column `i` observes when reading
    /// latch source `src`, as a packed 16-bit slice word. Retained as
    /// the scalar reference for the differential tests pinning the
    /// vectorized [`MicroState::execute`] arms.
    #[cfg(test)]
    fn latch_view(&self, src: LatchSrc, i: usize) -> u16 {
        match src {
            LatchSrc::Ghl => self.ghl,
            LatchSrc::Gvl => {
                if self.gvl[i] {
                    0xFFFF
                } else {
                    0
                }
            }
            // Slice b reads slice b+1: shift the packed word right.
            LatchSrc::RlNorth => self.rl[i] >> 1,
            // Slice b reads slice b-1: shift left.
            LatchSrc::RlSouth => self.rl[i] << 1,
            LatchSrc::RlEast => {
                if i + 1 < self.rl.len() {
                    self.rl[i + 1]
                } else {
                    0
                }
            }
            LatchSrc::RlWest => {
                if i > 0 {
                    self.rl[i - 1]
                } else {
                    0
                }
            }
        }
    }

    /// Executes one micro-operation against the VR file `vrs`.
    ///
    /// # Panics
    ///
    /// Panics if a referenced VR index is out of range or a VR length does
    /// not match the column count; the callers in [`crate::core`] validate
    /// indices before issue.
    ///
    /// Every arm runs over slices/zips the compiler can autovectorize.
    /// The one true loop-carried case is a `RlWest` latch read: column
    /// `i` observes its west neighbour's *already updated* RL, so a
    /// value propagates eastward across the whole register within one
    /// micro-op. That arm keeps a documented sequential loop
    /// ([`Self::latch_west`]); `RlEast` reads the *old* neighbour value
    /// (the sweep has not reached it yet), which an in-place forward
    /// pass preserves.
    pub fn execute(&mut self, vrs: &mut [Vec<u16>], op: &MicroOp) {
        match op {
            MicroOp::ReadVr { mask, vrs: srcs } => {
                let m = mask.bits();
                match srcs.as_slice() {
                    // An empty multi-read drives 0 onto the read latch.
                    [] => {
                        for r in &mut self.rl {
                            *r &= !m;
                        }
                    }
                    [s] => {
                        for (r, &v) in self.rl.iter_mut().zip(&vrs[*s]) {
                            *r = (*r & !m) | (v & m);
                        }
                    }
                    [a, b] => {
                        let (x, y) = (&vrs[*a], &vrs[*b]);
                        for ((r, &xv), &yv) in self.rl.iter_mut().zip(x).zip(y) {
                            *r = (*r & !m) | (xv & yv & m);
                        }
                    }
                    srcs => {
                        for (i, r) in self.rl.iter_mut().enumerate() {
                            let mut v: u16 = 0xFFFF;
                            for &s in srcs {
                                v &= vrs[s][i];
                            }
                            *r = (*r & !m) | (v & m);
                        }
                    }
                }
            }
            MicroOp::ReadLatch { mask, src } => {
                self.combine_latch(mask.bits(), *src, |_cur, l| l);
            }
            MicroOp::ReadVrOpLatch { mask, vr, op, src } => {
                let op = *op;
                self.combine_vr_latch(mask.bits(), &vrs[*vr], *src, move |_cur, x, l| {
                    op.apply(x, l)
                });
            }
            MicroOp::OpVr { mask, op, vr } => {
                let m = mask.bits();
                let op = *op;
                for (r, &v) in self.rl.iter_mut().zip(&vrs[*vr]) {
                    *r = (*r & !m) | (op.apply(*r, v) & m);
                }
            }
            MicroOp::OpLatch { mask, op, src } => {
                let op = *op;
                self.combine_latch(mask.bits(), *src, move |cur, l| op.apply(cur, l));
            }
            MicroOp::OpVrOpLatch { mask, op, vr, src } => {
                let op = *op;
                self.combine_vr_latch(mask.bits(), &vrs[*vr], *src, move |cur, x, l| {
                    op.apply(cur, op.apply(x, l))
                });
            }
            MicroOp::WriteVr { mask, vr, src } => {
                let m = mask.bits();
                let dst = &mut vrs[*vr];
                match src {
                    WriteSrc::Rl => {
                        for (cell, &r) in dst.iter_mut().zip(&self.rl) {
                            *cell = (*cell & !m) | (r & m);
                        }
                    }
                    WriteSrc::RlNeg => {
                        for (cell, &r) in dst.iter_mut().zip(&self.rl) {
                            *cell = (*cell & !m) | (!r & m);
                        }
                    }
                    WriteSrc::Ghl => {
                        let set = self.ghl & m;
                        for cell in dst.iter_mut() {
                            *cell = (*cell & !m) | set;
                        }
                    }
                    WriteSrc::Gvl => {
                        for (cell, &g) in dst.iter_mut().zip(&self.gvl) {
                            let v = if g { m } else { 0 };
                            *cell = (*cell & !m) | v;
                        }
                    }
                }
            }
            MicroOp::LoadGhl { mask } => {
                // The wired-OR spans every column regardless of the mask;
                // the mask only gates which GHL slices latch the result.
                let m = mask.bits();
                let acc = self.rl.iter().fold(0u16, |a, &r| a | r);
                self.ghl = (self.ghl & !m) | (acc & m);
            }
            MicroOp::LoadGvl { mask } => {
                let m = mask.bits();
                for (g, &r) in self.gvl.iter_mut().zip(&self.rl) {
                    // AND across the masked slices of the column.
                    *g = (r & m) == m;
                }
            }
        }
    }

    /// Applies `f(current_rl, latch_view)` under slice mask `m` across
    /// all columns, preserving the per-source neighbour semantics of the
    /// scalar interpreter (see [`Self::latch_view`]).
    fn combine_latch<F: Fn(u16, u16) -> u16>(&mut self, m: u16, src: LatchSrc, f: F) {
        match src {
            LatchSrc::Ghl => {
                let g = self.ghl;
                for r in &mut self.rl {
                    *r = (*r & !m) | (f(*r, g) & m);
                }
            }
            LatchSrc::Gvl => {
                for (r, &g) in self.rl.iter_mut().zip(&self.gvl) {
                    let l = if g { 0xFFFF } else { 0 };
                    *r = (*r & !m) | (f(*r, l) & m);
                }
            }
            LatchSrc::RlNorth => {
                for r in &mut self.rl {
                    *r = (*r & !m) | (f(*r, *r >> 1) & m);
                }
            }
            LatchSrc::RlSouth => {
                for r in &mut self.rl {
                    *r = (*r & !m) | (f(*r, *r << 1) & m);
                }
            }
            LatchSrc::RlEast => {
                // Column i reads its east neighbour's OLD value: the
                // forward pass writes rl[i] strictly before reading
                // rl[i+1], so in-place iteration preserves it (only
                // anti-dependences remain — autovectorizable).
                let n = self.rl.len();
                for i in 0..n.saturating_sub(1) {
                    let l = self.rl[i + 1];
                    self.rl[i] = (self.rl[i] & !m) | (f(self.rl[i], l) & m);
                }
                if let Some(last) = self.rl.last_mut() {
                    *last = (*last & !m) | (f(*last, 0) & m);
                }
            }
            LatchSrc::RlWest => self.latch_west(m, f),
        }
    }

    /// [`Self::combine_latch`] with a VR operand:
    /// `f(current_rl, vr_value, latch_view)` under slice mask `m`.
    fn combine_vr_latch<F: Fn(u16, u16, u16) -> u16>(
        &mut self,
        m: u16,
        vr: &[u16],
        src: LatchSrc,
        f: F,
    ) {
        match src {
            LatchSrc::Ghl => {
                let g = self.ghl;
                for (r, &x) in self.rl.iter_mut().zip(vr) {
                    *r = (*r & !m) | (f(*r, x, g) & m);
                }
            }
            LatchSrc::Gvl => {
                for ((r, &x), &g) in self.rl.iter_mut().zip(vr).zip(&self.gvl) {
                    let l = if g { 0xFFFF } else { 0 };
                    *r = (*r & !m) | (f(*r, x, l) & m);
                }
            }
            LatchSrc::RlNorth => {
                for (r, &x) in self.rl.iter_mut().zip(vr) {
                    *r = (*r & !m) | (f(*r, x, *r >> 1) & m);
                }
            }
            LatchSrc::RlSouth => {
                for (r, &x) in self.rl.iter_mut().zip(vr) {
                    *r = (*r & !m) | (f(*r, x, *r << 1) & m);
                }
            }
            LatchSrc::RlEast => {
                let n = self.rl.len();
                // Neighbour access (`rl[i + 1]`) keeps this loop
                // index-based.
                #[allow(clippy::needless_range_loop)]
                for i in 0..n.saturating_sub(1) {
                    let l = self.rl[i + 1];
                    self.rl[i] = (self.rl[i] & !m) | (f(self.rl[i], vr[i], l) & m);
                }
                if let Some(i) = n.checked_sub(1) {
                    self.rl[i] = (self.rl[i] & !m) | (f(self.rl[i], vr[i], 0) & m);
                }
            }
            LatchSrc::RlWest => {
                // Loop-carried like `latch_west`, but the combine also
                // needs the VR operand for the same column.
                let mut west: u16 = 0;
                for (r, &x) in self.rl.iter_mut().zip(vr) {
                    let v = f(*r, x, west);
                    *r = (*r & !m) | (v & m);
                    west = *r;
                }
            }
        }
    }

    /// The genuinely loop-carried case: each column reads the *already
    /// updated* RL of its west neighbour, so a full-mask read sweeps the
    /// boundary value across the whole register within one micro-op.
    /// This must stay a sequential scalar loop.
    fn latch_west<F: Fn(u16, u16) -> u16>(&mut self, m: u16, f: F) {
        let mut west: u16 = 0;
        for r in &mut self.rl {
            let v = f(*r, west);
            *r = (*r & !m) | (v & m);
            west = *r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_and_vrs(n: usize, k: usize) -> (MicroState, Vec<Vec<u16>>) {
        (MicroState::new(n), vec![vec![0u16; n]; k])
    }

    #[test]
    fn slice_mask_constructors() {
        assert_eq!(SliceMask::low(0), SliceMask::EMPTY);
        assert_eq!(SliceMask::low(16), SliceMask::FULL);
        assert_eq!(SliceMask::low(4).bits(), 0x000F);
        assert!(!SliceMask::low(4).contains(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_mask_single_rejects_16() {
        let _ = SliceMask::single(16);
    }

    #[test]
    fn read_vr_is_multi_operand_and() {
        let (mut st, mut vrs) = state_and_vrs(4, 2);
        vrs[0] = vec![0b1100; 4];
        vrs[1] = vec![0b1010; 4];
        st.execute(
            &mut vrs,
            &MicroOp::ReadVr {
                mask: SliceMask::FULL,
                vrs: vec![0, 1],
            },
        );
        assert!(st.rl.iter().all(|&r| r == 0b1000));
    }

    #[test]
    fn masked_read_preserves_other_slices() {
        let (mut st, mut vrs) = state_and_vrs(2, 1);
        st.rl = vec![0xFFFF; 2];
        vrs[0] = vec![0x0000; 2];
        st.execute(
            &mut vrs,
            &MicroOp::ReadVr {
                mask: SliceMask::single(0),
                vrs: vec![0],
            },
        );
        // Only bit 0 was overwritten with 0.
        assert_eq!(st.rl[0], 0xFFFE);
    }

    #[test]
    fn xor_through_op_vr() {
        let (mut st, mut vrs) = state_and_vrs(3, 2);
        vrs[0] = vec![0b0110; 3];
        vrs[1] = vec![0b0101; 3];
        st.execute(
            &mut vrs,
            &MicroOp::ReadVr {
                mask: SliceMask::FULL,
                vrs: vec![0],
            },
        );
        st.execute(
            &mut vrs,
            &MicroOp::OpVr {
                mask: SliceMask::FULL,
                op: BitOp::Xor,
                vr: 1,
            },
        );
        assert!(st.rl.iter().all(|&r| r == 0b0011));
    }

    #[test]
    fn write_vr_and_negated_write() {
        let (mut st, mut vrs) = state_and_vrs(2, 1);
        st.rl = vec![0x00F0; 2];
        st.execute(
            &mut vrs,
            &MicroOp::WriteVr {
                mask: SliceMask::FULL,
                vr: 0,
                src: WriteSrc::Rl,
            },
        );
        assert_eq!(vrs[0][0], 0x00F0);
        st.execute(
            &mut vrs,
            &MicroOp::WriteVr {
                mask: SliceMask::FULL,
                vr: 0,
                src: WriteSrc::RlNeg,
            },
        );
        assert_eq!(vrs[0][0], 0xFF0F);
    }

    #[test]
    fn ghl_is_wired_or_across_columns() {
        let (mut st, mut vrs) = state_and_vrs(4, 1);
        st.rl = vec![0b0001, 0b0010, 0b0100, 0b0000];
        st.execute(
            &mut vrs,
            &MicroOp::LoadGhl {
                mask: SliceMask::FULL,
            },
        );
        assert_eq!(st.ghl, 0b0111);
        // Broadcast GHL back to a VR.
        st.execute(
            &mut vrs,
            &MicroOp::WriteVr {
                mask: SliceMask::FULL,
                vr: 0,
                src: WriteSrc::Ghl,
            },
        );
        assert!(vrs[0].iter().all(|&v| v == 0b0111));
    }

    #[test]
    fn gvl_is_wired_and_across_slices() {
        let (mut st, mut vrs) = state_and_vrs(2, 1);
        st.rl = vec![0b0011, 0b0001];
        st.execute(
            &mut vrs,
            &MicroOp::LoadGvl {
                mask: SliceMask::low(2),
            },
        );
        assert_eq!(st.gvl, vec![true, false]);
    }

    #[test]
    fn neighbour_views_shift_correctly() {
        let (mut st, mut vrs) = state_and_vrs(3, 1);
        st.rl = vec![0b0010, 0b1000, 0b0001];
        // North: slice b reads slice b+1 -> packed >> 1.
        st.execute(
            &mut vrs,
            &MicroOp::ReadLatch {
                mask: SliceMask::FULL,
                src: LatchSrc::RlNorth,
            },
        );
        assert_eq!(st.rl, vec![0b0001, 0b0100, 0b0000]);
        // East: column i reads column i+1; boundary reads 0.
        st.rl = vec![0b01, 0b10, 0b11];
        st.execute(
            &mut vrs,
            &MicroOp::ReadLatch {
                mask: SliceMask::FULL,
                src: LatchSrc::RlEast,
            },
        );
        assert_eq!(st.rl, vec![0b10, 0b11, 0b00]);
    }

    #[test]
    fn read_vr_op_latch_combines() {
        let (mut st, mut vrs) = state_and_vrs(2, 1);
        vrs[0] = vec![0b1100; 2];
        st.ghl = 0b1010;
        st.execute(
            &mut vrs,
            &MicroOp::ReadVrOpLatch {
                mask: SliceMask::FULL,
                vr: 0,
                op: BitOp::Or,
                src: LatchSrc::Ghl,
            },
        );
        assert!(st.rl.iter().all(|&r| r == 0b1110));
    }

    #[test]
    fn bitserial_full_adder_built_from_micro_ops() {
        // Build a 16-bit ripple-carry adder from Table 2 micro-ops alone,
        // demonstrating that the micro-op layer is computationally complete
        // for bit-serial arithmetic. VR2 holds the carry, VR3 scratch.
        let n = 8;
        let (mut st, mut vrs) = state_and_vrs(n, 4);
        let a: Vec<u16> = (0..n as u16).map(|i| i * 1000 + 17).collect();
        let b: Vec<u16> = (0..n as u16).map(|i| 40000 - i * 321).collect();
        vrs[0] = a.clone();
        vrs[1] = b.clone();

        for bit in 0..16 {
            let m = SliceMask::single(bit);
            // sum_b = a ^ b ^ c  (into VR3 slice b)
            st.execute(
                &mut vrs,
                &MicroOp::ReadVr {
                    mask: m,
                    vrs: vec![0],
                },
            );
            st.execute(
                &mut vrs,
                &MicroOp::OpVr {
                    mask: m,
                    op: BitOp::Xor,
                    vr: 1,
                },
            );
            st.execute(
                &mut vrs,
                &MicroOp::OpVr {
                    mask: m,
                    op: BitOp::Xor,
                    vr: 2,
                },
            );
            st.execute(
                &mut vrs,
                &MicroOp::WriteVr {
                    mask: m,
                    vr: 3,
                    src: WriteSrc::Rl,
                },
            );
            // carry' = (a & b) | (c & (a ^ b)), placed in slice b+1 of VR2.
            if bit < 15 {
                let m_next = SliceMask::single(bit + 1);
                // t = a ^ b
                st.execute(
                    &mut vrs,
                    &MicroOp::ReadVr {
                        mask: m,
                        vrs: vec![0],
                    },
                );
                st.execute(
                    &mut vrs,
                    &MicroOp::OpVr {
                        mask: m,
                        op: BitOp::Xor,
                        vr: 1,
                    },
                );
                // t &= c  -> c & (a^b)
                st.execute(
                    &mut vrs,
                    &MicroOp::OpVr {
                        mask: m,
                        op: BitOp::And,
                        vr: 2,
                    },
                );
                // t |= a & b (multi-operand read is an AND; OR-combine via OpVrOpLatch
                // is not needed — use scratch write + OpVr)
                st.execute(
                    &mut vrs,
                    &MicroOp::WriteVr {
                        mask: m,
                        vr: 2,
                        src: WriteSrc::Rl,
                    },
                );
                st.execute(
                    &mut vrs,
                    &MicroOp::ReadVr {
                        mask: m,
                        vrs: vec![0, 1],
                    },
                );
                st.execute(
                    &mut vrs,
                    &MicroOp::OpVr {
                        mask: m,
                        op: BitOp::Or,
                        vr: 2,
                    },
                );
                // move carry to slice b+1: write via south-neighbour view.
                st.execute(
                    &mut vrs,
                    &MicroOp::WriteVr {
                        mask: m,
                        vr: 2,
                        src: WriteSrc::Rl,
                    },
                );
                st.execute(
                    &mut vrs,
                    &MicroOp::ReadVrOpLatch {
                        mask: m_next,
                        vr: 2,
                        op: BitOp::Or,
                        src: LatchSrc::RlSouth,
                    },
                );
                // RL(slice b+1) now holds carry (VR2 slice b+1 is 0 | south RL).
                st.execute(
                    &mut vrs,
                    &MicroOp::WriteVr {
                        mask: m_next,
                        vr: 2,
                        src: WriteSrc::Rl,
                    },
                );
            }
        }
        for i in 0..n {
            assert_eq!(vrs[3][i], a[i].wrapping_add(b[i]), "column {i}");
        }
    }

    /// The pre-vectorization per-element interpreter, kept verbatim as
    /// the reference oracle: every arm indexes `latch_view` column by
    /// column, including the in-place neighbour semantics (`RlWest`
    /// observes updated state, `RlEast` pre-update state).
    // The oracle is deliberately scalar and index-based — it mirrors
    // the pre-vectorization per-column walk, not idiomatic iterators.
    #[allow(clippy::needless_range_loop)]
    fn execute_reference(st: &mut MicroState, vrs: &mut [Vec<u16>], op: &MicroOp) {
        let n = st.columns();
        match op {
            MicroOp::ReadVr { mask, vrs: srcs } => {
                let m = mask.bits();
                for i in 0..n {
                    let mut v: u16 = 0xFFFF;
                    for &s in srcs {
                        v &= vrs[s][i];
                    }
                    if srcs.is_empty() {
                        v = 0;
                    }
                    st.rl[i] = (st.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::ReadLatch { mask, src } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = st.latch_view(*src, i);
                    st.rl[i] = (st.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::ReadVrOpLatch { mask, vr, op, src } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = op.apply(vrs[*vr][i], st.latch_view(*src, i));
                    st.rl[i] = (st.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::OpVr { mask, op, vr } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = op.apply(st.rl[i], vrs[*vr][i]);
                    st.rl[i] = (st.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::OpLatch { mask, op, src } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = op.apply(st.rl[i], st.latch_view(*src, i));
                    st.rl[i] = (st.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::OpVrOpLatch { mask, op, vr, src } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = op.apply(st.rl[i], op.apply(vrs[*vr][i], st.latch_view(*src, i)));
                    st.rl[i] = (st.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::WriteVr { mask, vr, src } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = match src {
                        WriteSrc::Rl => st.rl[i],
                        WriteSrc::RlNeg => !st.rl[i],
                        WriteSrc::Ghl => st.ghl,
                        WriteSrc::Gvl => {
                            if st.gvl[i] {
                                0xFFFF
                            } else {
                                0
                            }
                        }
                    };
                    let cell = &mut vrs[*vr][i];
                    *cell = (*cell & !m) | (v & m);
                }
            }
            MicroOp::LoadGhl { mask } => {
                let m = mask.bits();
                let mut acc: u16 = 0;
                for i in 0..n {
                    acc |= st.rl[i];
                }
                st.ghl = (st.ghl & !m) | (acc & m);
            }
            MicroOp::LoadGvl { mask } => {
                let m = mask.bits();
                for i in 0..n {
                    st.gvl[i] = (st.rl[i] & m) == m;
                }
            }
        }
    }

    /// A cheap deterministic PRNG so the differential sweep needs no
    /// external crates.
    fn xorshift(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    #[test]
    fn vectorized_execute_matches_scalar_reference() {
        let n = 67; // odd, non-power-of-two: exercises boundary columns
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let latches = [
            LatchSrc::Ghl,
            LatchSrc::Gvl,
            LatchSrc::RlNorth,
            LatchSrc::RlSouth,
            LatchSrc::RlEast,
            LatchSrc::RlWest,
        ];
        let bitops = [BitOp::And, BitOp::Or, BitOp::Xor];
        let masks = [
            SliceMask::FULL,
            SliceMask::low(4),
            SliceMask::single(15),
            SliceMask::single(0),
        ];
        let mut ops: Vec<MicroOp> = Vec::new();
        for &mask in &masks {
            ops.push(MicroOp::ReadVr { mask, vrs: vec![] });
            ops.push(MicroOp::ReadVr { mask, vrs: vec![1] });
            ops.push(MicroOp::ReadVr {
                mask,
                vrs: vec![0, 2],
            });
            ops.push(MicroOp::ReadVr {
                mask,
                vrs: vec![0, 1, 2],
            });
            ops.push(MicroOp::LoadGhl { mask });
            ops.push(MicroOp::LoadGvl { mask });
            for src in [WriteSrc::Rl, WriteSrc::RlNeg, WriteSrc::Ghl, WriteSrc::Gvl] {
                ops.push(MicroOp::WriteVr { mask, vr: 3, src });
            }
            for &src in &latches {
                ops.push(MicroOp::ReadLatch { mask, src });
                for &op in &bitops {
                    ops.push(MicroOp::OpLatch { mask, op, src });
                    ops.push(MicroOp::ReadVrOpLatch {
                        mask,
                        vr: 1,
                        op,
                        src,
                    });
                    ops.push(MicroOp::OpVrOpLatch {
                        mask,
                        op,
                        vr: 2,
                        src,
                    });
                }
            }
            for &op in &bitops {
                ops.push(MicroOp::OpVr { mask, op, vr: 0 });
            }
        }
        // Run the same randomized op stream through both interpreters,
        // comparing complete machine state after every step.
        let mut st_v = MicroState::new(n);
        let mut st_r = MicroState::new(n);
        let mut vrs_v: Vec<Vec<u16>> = (0..4)
            .map(|_| (0..n).map(|_| xorshift(&mut seed) as u16).collect())
            .collect();
        let mut vrs_r = vrs_v.clone();
        st_v.rl = (0..n).map(|_| xorshift(&mut seed) as u16).collect();
        st_r.rl.copy_from_slice(&st_v.rl);
        st_v.ghl = xorshift(&mut seed) as u16;
        st_r.ghl = st_v.ghl;
        for i in 0..n {
            let b = xorshift(&mut seed) & 1 == 1;
            st_v.gvl[i] = b;
            st_r.gvl[i] = b;
        }
        for (step, op) in ops.iter().enumerate() {
            st_v.execute(&mut vrs_v, op);
            execute_reference(&mut st_r, &mut vrs_r, op);
            assert_eq!(st_v.rl, st_r.rl, "RL diverged at step {step}: {op:?}");
            assert_eq!(st_v.ghl, st_r.ghl, "GHL diverged at step {step}: {op:?}");
            assert_eq!(st_v.gvl, st_r.gvl, "GVL diverged at step {step}: {op:?}");
            assert_eq!(vrs_v, vrs_r, "VRs diverged at step {step}: {op:?}");
        }
    }

    #[test]
    fn west_read_propagates_sequentially_across_all_columns() {
        // Reading RlWest with OR over the full mask must sweep column
        // 0's value across the entire register in ONE micro-op: column i
        // sees its west neighbour's already-updated RL. A parallel
        // implementation would only shift by one column.
        let (mut st, mut vrs) = state_and_vrs(5, 1);
        st.rl = vec![0b1000, 0, 0, 0, 0];
        st.execute(
            &mut vrs,
            &MicroOp::OpLatch {
                mask: SliceMask::FULL,
                op: BitOp::Or,
                src: LatchSrc::RlWest,
            },
        );
        assert_eq!(st.rl, vec![0b1000; 5]);
    }
}
