//! Bit-processor micro-operations (the paper's Table 2).
//!
//! Each column of each bit-slice integrates a bit processor with a 1-bit
//! **read latch** (RL). Bit processors in the same row share a **global
//! horizontal line** (wired-OR into the GHL latch); processors in the same
//! column share a **global vertical line** (wired-AND into the GVL latch).
//! The read logic can combine the read bit-line of one or more VRs, a
//! latch, and a neighbour's RL with AND/OR/XOR; the write logic drives the
//! SRAM cells from the write bit-line (RL) or its negation.
//!
//! The simulator stores a VR element-major (`Vec<u16>`): element `i`'s 16
//! bit processors hold the 16 RL bits packed into `rl[i]`. A
//! [`SliceMask`] selects which of the 16 bit-slices participate in a
//! micro-operation, exactly like the device's 16-mask.
//!
//! One simplification is documented here: the hardware has one GHL per
//! physical row segment; we model a single 16-bit GHL per core (one bit
//! per slice, OR-reduced across all columns). Workload kernels in this
//! repository only use the GHL for "any column set?" style queries, for
//! which the granularities coincide.

use serde::{Deserialize, Serialize};

/// Selects which of the 16 bit-slices a micro-operation applies to.
///
/// Bit `b` set means slice `b` (the `b`-th bit of every element)
/// participates.
///
/// ```
/// use apu_sim::SliceMask;
/// assert_eq!(SliceMask::FULL.bits(), 0xFFFF);
/// assert_eq!(SliceMask::single(3).bits(), 0b1000);
/// assert!(SliceMask::single(3).contains(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SliceMask(u16);

impl SliceMask {
    /// All 16 slices.
    pub const FULL: SliceMask = SliceMask(0xFFFF);

    /// No slices (a no-op mask; permitted, occasionally useful in codegen).
    pub const EMPTY: SliceMask = SliceMask(0);

    /// Creates a mask from raw bits.
    pub const fn new(bits: u16) -> Self {
        SliceMask(bits)
    }

    /// A mask with only slice `bit` set.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 16`.
    pub fn single(bit: usize) -> Self {
        assert!(bit < 16, "slice index {bit} out of range");
        SliceMask(1 << bit)
    }

    /// A mask of the low `n` slices.
    ///
    /// # Panics
    ///
    /// Panics if `n > 16`.
    pub fn low(n: usize) -> Self {
        assert!(n <= 16, "slice count {n} out of range");
        if n == 16 {
            SliceMask::FULL
        } else {
            SliceMask(((1u32 << n) - 1) as u16)
        }
    }

    /// The raw bits.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Whether slice `bit` participates.
    pub const fn contains(self, bit: usize) -> bool {
        self.0 & (1 << bit) != 0
    }
}

impl Default for SliceMask {
    fn default() -> Self {
        SliceMask::FULL
    }
}

/// Boolean operations supported by the bit-processor read logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitOp {
    /// Wired-AND.
    And,
    /// Wired-OR.
    Or,
    /// XOR.
    Xor,
}

impl BitOp {
    /// Applies the operation to two packed 16-bit slices.
    pub fn apply(self, a: u16, b: u16) -> u16 {
        match self {
            BitOp::And => a & b,
            BitOp::Or => a | b,
            BitOp::Xor => a ^ b,
        }
    }
}

/// Latch sources readable by a bit processor (the `L` of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatchSrc {
    /// Global horizontal latch (one bit per slice, OR-combined on load).
    Ghl,
    /// Global vertical latch (one bit per column, AND-combined on load).
    Gvl,
    /// RL of the processor to the north: slice `b` reads slice `b + 1`.
    RlNorth,
    /// RL of the processor to the south: slice `b` reads slice `b - 1`.
    RlSouth,
    /// RL of the processor to the east: column `i` reads column `i + 1`.
    RlEast,
    /// RL of the processor to the west: column `i` reads column `i - 1`.
    RlWest,
}

/// Sources the write logic can drive into the SRAM cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteSrc {
    /// Write bit-line driven from RL (WBL).
    Rl,
    /// Negated write bit-line (WBLB): writes `!RL`.
    RlNeg,
    /// Broadcast the GHL bit of each slice to every column.
    Ghl,
    /// Broadcast each column's GVL bit to every masked slice.
    Gvl,
}

/// One micro-operation on the microarchitectural state of Table 2.
///
/// `vrs` lists source VR indices; a multi-operand read wired-ANDs the
/// bit-lines, exactly as on the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MicroOp {
    /// `RL = VR[vrs0]` / `RL = VR[vrs0, vrs1]` (multi-read is an AND).
    ReadVr {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Source VRs; their bit-lines are wired-AND combined.
        vrs: Vec<usize>,
    },
    /// `RL = L`.
    ReadLatch {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Latch source.
        src: LatchSrc,
    },
    /// `RL = VR[vrs0] op L`.
    ReadVrOpLatch {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Source VR.
        vr: usize,
        /// Combining operation.
        op: BitOp,
        /// Latch source.
        src: LatchSrc,
    },
    /// `RL op= VR[vrs0]`.
    OpVr {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Combining operation.
        op: BitOp,
        /// Source VR.
        vr: usize,
    },
    /// `RL op= L`.
    OpLatch {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Combining operation.
        op: BitOp,
        /// Latch source.
        src: LatchSrc,
    },
    /// `RL op= VR[vrs0] op L` (one op symbol, applied to both combines,
    /// as written in Table 2).
    OpVrOpLatch {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Combining operation.
        op: BitOp,
        /// Source VR.
        vr: usize,
        /// Latch source.
        src: LatchSrc,
    },
    /// `VR[vrs0] = I`: write to a VR from a source latch.
    WriteVr {
        /// Participating bit-slices.
        mask: SliceMask,
        /// Destination VR.
        vr: usize,
        /// Write source (WBL / WBLB / global latches).
        src: WriteSrc,
    },
    /// Load the GHL: per masked slice, OR of RL across all columns.
    LoadGhl {
        /// Participating bit-slices.
        mask: SliceMask,
    },
    /// Load the GVL: per column, AND of RL across masked slices.
    LoadGvl {
        /// Participating bit-slices.
        mask: SliceMask,
    },
}

/// The microarchitectural state manipulated by micro-operations.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroState {
    /// Read latches, element-major: `rl[i]` packs the 16 RL bits of
    /// column `i`.
    pub rl: Vec<u16>,
    /// Global horizontal latch: bit `b` belongs to slice `b`.
    pub ghl: u16,
    /// Global vertical latch: one bit per column.
    pub gvl: Vec<bool>,
}

impl MicroState {
    /// Creates zeroed state for `columns` element columns.
    pub fn new(columns: usize) -> Self {
        MicroState {
            rl: vec![0; columns],
            ghl: 0,
            gvl: vec![false; columns],
        }
    }

    /// Number of element columns.
    pub fn columns(&self) -> usize {
        self.rl.len()
    }

    /// The value a bit processor at column `i` observes when reading
    /// latch source `src`, as a packed 16-bit slice word.
    fn latch_view(&self, src: LatchSrc, i: usize) -> u16 {
        match src {
            LatchSrc::Ghl => self.ghl,
            LatchSrc::Gvl => {
                if self.gvl[i] {
                    0xFFFF
                } else {
                    0
                }
            }
            // Slice b reads slice b+1: shift the packed word right.
            LatchSrc::RlNorth => self.rl[i] >> 1,
            // Slice b reads slice b-1: shift left.
            LatchSrc::RlSouth => self.rl[i] << 1,
            LatchSrc::RlEast => {
                if i + 1 < self.rl.len() {
                    self.rl[i + 1]
                } else {
                    0
                }
            }
            LatchSrc::RlWest => {
                if i > 0 {
                    self.rl[i - 1]
                } else {
                    0
                }
            }
        }
    }

    /// Executes one micro-operation against the VR file `vrs`.
    ///
    /// # Panics
    ///
    /// Panics if a referenced VR index is out of range or a VR length does
    /// not match the column count; the callers in [`crate::core`] validate
    /// indices before issue.
    // Index loops stay: each arm writes `self.rl[i]` while reading
    // `self.latch_view(..)`, which a zipped iterator cannot borrow-split.
    #[allow(clippy::needless_range_loop)]
    pub fn execute(&mut self, vrs: &mut [Vec<u16>], op: &MicroOp) {
        let n = self.columns();
        match op {
            MicroOp::ReadVr { mask, vrs: srcs } => {
                let m = mask.bits();
                for i in 0..n {
                    let mut v: u16 = 0xFFFF;
                    for &s in srcs {
                        v &= vrs[s][i];
                    }
                    if srcs.is_empty() {
                        v = 0;
                    }
                    self.rl[i] = (self.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::ReadLatch { mask, src } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = self.latch_view(*src, i);
                    self.rl[i] = (self.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::ReadVrOpLatch { mask, vr, op, src } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = op.apply(vrs[*vr][i], self.latch_view(*src, i));
                    self.rl[i] = (self.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::OpVr { mask, op, vr } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = op.apply(self.rl[i], vrs[*vr][i]);
                    self.rl[i] = (self.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::OpLatch { mask, op, src } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = op.apply(self.rl[i], self.latch_view(*src, i));
                    self.rl[i] = (self.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::OpVrOpLatch { mask, op, vr, src } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = op.apply(self.rl[i], op.apply(vrs[*vr][i], self.latch_view(*src, i)));
                    self.rl[i] = (self.rl[i] & !m) | (v & m);
                }
            }
            MicroOp::WriteVr { mask, vr, src } => {
                let m = mask.bits();
                for i in 0..n {
                    let v = match src {
                        WriteSrc::Rl => self.rl[i],
                        WriteSrc::RlNeg => !self.rl[i],
                        WriteSrc::Ghl => self.ghl,
                        WriteSrc::Gvl => {
                            if self.gvl[i] {
                                0xFFFF
                            } else {
                                0
                            }
                        }
                    };
                    let cell = &mut vrs[*vr][i];
                    *cell = (*cell & !m) | (v & m);
                }
            }
            MicroOp::LoadGhl { mask } => {
                let m = mask.bits();
                let mut acc: u16 = 0;
                for i in 0..n {
                    acc |= self.rl[i];
                }
                self.ghl = (self.ghl & !m) | (acc & m);
            }
            MicroOp::LoadGvl { mask } => {
                let m = mask.bits();
                for i in 0..n {
                    // AND across the masked slices of column i.
                    self.gvl[i] = (self.rl[i] & m) == m;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_and_vrs(n: usize, k: usize) -> (MicroState, Vec<Vec<u16>>) {
        (MicroState::new(n), vec![vec![0u16; n]; k])
    }

    #[test]
    fn slice_mask_constructors() {
        assert_eq!(SliceMask::low(0), SliceMask::EMPTY);
        assert_eq!(SliceMask::low(16), SliceMask::FULL);
        assert_eq!(SliceMask::low(4).bits(), 0x000F);
        assert!(!SliceMask::low(4).contains(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_mask_single_rejects_16() {
        let _ = SliceMask::single(16);
    }

    #[test]
    fn read_vr_is_multi_operand_and() {
        let (mut st, mut vrs) = state_and_vrs(4, 2);
        vrs[0] = vec![0b1100; 4];
        vrs[1] = vec![0b1010; 4];
        st.execute(
            &mut vrs,
            &MicroOp::ReadVr {
                mask: SliceMask::FULL,
                vrs: vec![0, 1],
            },
        );
        assert!(st.rl.iter().all(|&r| r == 0b1000));
    }

    #[test]
    fn masked_read_preserves_other_slices() {
        let (mut st, mut vrs) = state_and_vrs(2, 1);
        st.rl = vec![0xFFFF; 2];
        vrs[0] = vec![0x0000; 2];
        st.execute(
            &mut vrs,
            &MicroOp::ReadVr {
                mask: SliceMask::single(0),
                vrs: vec![0],
            },
        );
        // Only bit 0 was overwritten with 0.
        assert_eq!(st.rl[0], 0xFFFE);
    }

    #[test]
    fn xor_through_op_vr() {
        let (mut st, mut vrs) = state_and_vrs(3, 2);
        vrs[0] = vec![0b0110; 3];
        vrs[1] = vec![0b0101; 3];
        st.execute(
            &mut vrs,
            &MicroOp::ReadVr {
                mask: SliceMask::FULL,
                vrs: vec![0],
            },
        );
        st.execute(
            &mut vrs,
            &MicroOp::OpVr {
                mask: SliceMask::FULL,
                op: BitOp::Xor,
                vr: 1,
            },
        );
        assert!(st.rl.iter().all(|&r| r == 0b0011));
    }

    #[test]
    fn write_vr_and_negated_write() {
        let (mut st, mut vrs) = state_and_vrs(2, 1);
        st.rl = vec![0x00F0; 2];
        st.execute(
            &mut vrs,
            &MicroOp::WriteVr {
                mask: SliceMask::FULL,
                vr: 0,
                src: WriteSrc::Rl,
            },
        );
        assert_eq!(vrs[0][0], 0x00F0);
        st.execute(
            &mut vrs,
            &MicroOp::WriteVr {
                mask: SliceMask::FULL,
                vr: 0,
                src: WriteSrc::RlNeg,
            },
        );
        assert_eq!(vrs[0][0], 0xFF0F);
    }

    #[test]
    fn ghl_is_wired_or_across_columns() {
        let (mut st, mut vrs) = state_and_vrs(4, 1);
        st.rl = vec![0b0001, 0b0010, 0b0100, 0b0000];
        st.execute(
            &mut vrs,
            &MicroOp::LoadGhl {
                mask: SliceMask::FULL,
            },
        );
        assert_eq!(st.ghl, 0b0111);
        // Broadcast GHL back to a VR.
        st.execute(
            &mut vrs,
            &MicroOp::WriteVr {
                mask: SliceMask::FULL,
                vr: 0,
                src: WriteSrc::Ghl,
            },
        );
        assert!(vrs[0].iter().all(|&v| v == 0b0111));
    }

    #[test]
    fn gvl_is_wired_and_across_slices() {
        let (mut st, mut vrs) = state_and_vrs(2, 1);
        st.rl = vec![0b0011, 0b0001];
        st.execute(
            &mut vrs,
            &MicroOp::LoadGvl {
                mask: SliceMask::low(2),
            },
        );
        assert_eq!(st.gvl, vec![true, false]);
    }

    #[test]
    fn neighbour_views_shift_correctly() {
        let (mut st, mut vrs) = state_and_vrs(3, 1);
        st.rl = vec![0b0010, 0b1000, 0b0001];
        // North: slice b reads slice b+1 -> packed >> 1.
        st.execute(
            &mut vrs,
            &MicroOp::ReadLatch {
                mask: SliceMask::FULL,
                src: LatchSrc::RlNorth,
            },
        );
        assert_eq!(st.rl, vec![0b0001, 0b0100, 0b0000]);
        // East: column i reads column i+1; boundary reads 0.
        st.rl = vec![0b01, 0b10, 0b11];
        st.execute(
            &mut vrs,
            &MicroOp::ReadLatch {
                mask: SliceMask::FULL,
                src: LatchSrc::RlEast,
            },
        );
        assert_eq!(st.rl, vec![0b10, 0b11, 0b00]);
    }

    #[test]
    fn read_vr_op_latch_combines() {
        let (mut st, mut vrs) = state_and_vrs(2, 1);
        vrs[0] = vec![0b1100; 2];
        st.ghl = 0b1010;
        st.execute(
            &mut vrs,
            &MicroOp::ReadVrOpLatch {
                mask: SliceMask::FULL,
                vr: 0,
                op: BitOp::Or,
                src: LatchSrc::Ghl,
            },
        );
        assert!(st.rl.iter().all(|&r| r == 0b1110));
    }

    #[test]
    fn bitserial_full_adder_built_from_micro_ops() {
        // Build a 16-bit ripple-carry adder from Table 2 micro-ops alone,
        // demonstrating that the micro-op layer is computationally complete
        // for bit-serial arithmetic. VR2 holds the carry, VR3 scratch.
        let n = 8;
        let (mut st, mut vrs) = state_and_vrs(n, 4);
        let a: Vec<u16> = (0..n as u16).map(|i| i * 1000 + 17).collect();
        let b: Vec<u16> = (0..n as u16).map(|i| 40000 - i * 321).collect();
        vrs[0] = a.clone();
        vrs[1] = b.clone();

        for bit in 0..16 {
            let m = SliceMask::single(bit);
            // sum_b = a ^ b ^ c  (into VR3 slice b)
            st.execute(
                &mut vrs,
                &MicroOp::ReadVr {
                    mask: m,
                    vrs: vec![0],
                },
            );
            st.execute(
                &mut vrs,
                &MicroOp::OpVr {
                    mask: m,
                    op: BitOp::Xor,
                    vr: 1,
                },
            );
            st.execute(
                &mut vrs,
                &MicroOp::OpVr {
                    mask: m,
                    op: BitOp::Xor,
                    vr: 2,
                },
            );
            st.execute(
                &mut vrs,
                &MicroOp::WriteVr {
                    mask: m,
                    vr: 3,
                    src: WriteSrc::Rl,
                },
            );
            // carry' = (a & b) | (c & (a ^ b)), placed in slice b+1 of VR2.
            if bit < 15 {
                let m_next = SliceMask::single(bit + 1);
                // t = a ^ b
                st.execute(
                    &mut vrs,
                    &MicroOp::ReadVr {
                        mask: m,
                        vrs: vec![0],
                    },
                );
                st.execute(
                    &mut vrs,
                    &MicroOp::OpVr {
                        mask: m,
                        op: BitOp::Xor,
                        vr: 1,
                    },
                );
                // t &= c  -> c & (a^b)
                st.execute(
                    &mut vrs,
                    &MicroOp::OpVr {
                        mask: m,
                        op: BitOp::And,
                        vr: 2,
                    },
                );
                // t |= a & b (multi-operand read is an AND; OR-combine via OpVrOpLatch
                // is not needed — use scratch write + OpVr)
                st.execute(
                    &mut vrs,
                    &MicroOp::WriteVr {
                        mask: m,
                        vr: 2,
                        src: WriteSrc::Rl,
                    },
                );
                st.execute(
                    &mut vrs,
                    &MicroOp::ReadVr {
                        mask: m,
                        vrs: vec![0, 1],
                    },
                );
                st.execute(
                    &mut vrs,
                    &MicroOp::OpVr {
                        mask: m,
                        op: BitOp::Or,
                        vr: 2,
                    },
                );
                // move carry to slice b+1: write via south-neighbour view.
                st.execute(
                    &mut vrs,
                    &MicroOp::WriteVr {
                        mask: m,
                        vr: 2,
                        src: WriteSrc::Rl,
                    },
                );
                st.execute(
                    &mut vrs,
                    &MicroOp::ReadVrOpLatch {
                        mask: m_next,
                        vr: 2,
                        op: BitOp::Or,
                        src: LatchSrc::RlSouth,
                    },
                );
                // RL(slice b+1) now holds carry (VR2 slice b+1 is 0 | south RL).
                st.execute(
                    &mut vrs,
                    &MicroOp::WriteVr {
                        mask: m_next,
                        vr: 2,
                        src: WriteSrc::Rl,
                    },
                );
            }
        }
        for i in 0..n {
            assert_eq!(vrs[3][i], a[i].wrapping_add(b[i]), "column {i}");
        }
    }
}
