#![warn(missing_docs)]

//! Cycle-approximate functional simulator of a general-purpose
//! compute-in-SRAM device, modeled after the GSI APU (Gemini / Leda-E).
//!
//! The simulator follows the system abstraction of the paper
//! *"Characterizing and Optimizing Realistic Workloads on a Commercial
//! Compute-in-SRAM Device"* (MICRO 2025):
//!
//! * a PCIe-attached accelerator sharing a device DRAM (**L4**) with an
//!   x86 host,
//! * a 1 MB control-processor cache (**L3**),
//! * per-core 64 KB DMA scratchpads (**L2**),
//! * per-core 3 MB vector-memory register files (**L1**, 48 "background"
//!   registers), and
//! * per-core computation-enabled SRAM arrays exposed as 24 **vector
//!   registers** (VRs) of 32,768 × 16-bit elements each.
//!
//! Each VR column integrates a *bit processor* with a 1-bit read latch
//! (RL); bit processors share a global horizontal line/latch (GHL, wired-OR)
//! and a global vertical line/latch (GVL, wired-AND). The micro-operations
//! of the paper's Table 2 are implemented in [`micro`].
//!
//! Latency is charged from a calibration table ([`timing::DeviceTiming`])
//! whose constants are the *measured* columns of the paper's Tables 4 and 5,
//! plus second-order effects (per-command VCU issue overhead, DMA engine
//! queueing) that the paper's analytical framework deliberately omits.
//!
//! # Example
//!
//! ```rust
//! use apu_sim::{ApuDevice, SimConfig, Vr, Vmr};
//!
//! # fn main() -> Result<(), apu_sim::Error> {
//! let mut dev = ApuDevice::new(SimConfig::default());
//! let n = dev.config().vr_len;
//!
//! // Host side: allocate device DRAM and upload two operand vectors.
//! let a = dev.alloc_u16(n)?;
//! let b = dev.alloc_u16(n)?;
//! let out = dev.alloc_u16(n)?;
//! dev.copy_to_device(a, &vec![3u16; n])?;
//! dev.copy_to_device(b, &vec![4u16; n])?;
//!
//! // Device side: DMA both vectors to L1, load to VRs, add, store back.
//! let report = dev.run_task(|ctx| {
//!     ctx.dma_l4_to_l1(Vmr::new(0), a)?;
//!     ctx.dma_l4_to_l1(Vmr::new(1), b)?;
//!     ctx.load(Vr::new(0), Vmr::new(0))?;
//!     ctx.load(Vr::new(1), Vmr::new(1))?;
//!     let (x, y) = ctx.core_mut().vr_pair_mut(Vr::new(0), Vr::new(1))?;
//!     for (xe, ye) in x.iter_mut().zip(y.iter()) {
//!         *xe = xe.wrapping_add(*ye);
//!     }
//!     ctx.core_mut().charge(apu_sim::VecOp::AddU16);
//!     ctx.store(Vmr::new(2), Vr::new(0))?;
//!     ctx.dma_l1_to_l4(out, Vmr::new(2))?;
//!     Ok(())
//! })?;
//!
//! let mut result = vec![0u16; n];
//! dev.copy_from_device(out, &mut result)?;
//! assert!(result.iter().all(|&v| v == 7));
//! assert!(report.cycles.get() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! Higher-level vector operations (the GVML-equivalent layer) live in the
//! companion `gvml` crate.

pub mod clock;
pub mod cluster;
pub mod config;
pub mod core;
pub mod device;
pub mod dma;
pub mod dma_async;
pub mod error;
pub mod fault;
pub mod mem;
pub mod micro;
pub mod queue;
pub mod spec;
pub mod stats;
pub mod timing;
pub mod trace;
pub mod workload;

pub use clock::{Cycles, Frequency};
pub use cluster::{
    key_shard, ClusterHandle, ClusterReport, DeviceCluster, HealthTracker, Placement, RoutePolicy,
    ShardDrain,
};
pub use config::{fast_forward_from_env, ExecMode, SimConfig};
pub use core::{ApuCore, Marker, Vmr, Vr};
pub use device::{ApuContext, ApuDevice, CoreTask, MemoCounters, TaskReport};
pub use dma_async::DmaTicket;
pub use error::Error;
pub use fault::{FaultCounts, FaultPlan};
pub use mem::{MemHandle, Pod};
pub use micro::{BitOp, LatchSrc, MicroOp, SliceMask, WriteSrc};
pub use queue::{
    BatchKey, BatchOutput, Completion, DeviceQueue, Priority, QueueConfig, QueueStats, RetryPolicy,
    TaskHandle, TaskOutcome,
};
pub use spec::{AdmissionControl, SchedPolicy, TaskSpec, TenantId};
pub use stats::{LatencyReservoir, StageBreakdown, TenantStats, VcuStats};
pub use timing::{DeviceTiming, VecOp};
pub use trace::{
    chrome_trace_json_grouped, label_escape, ChromeTraceSink, FaultScope, SharedSink, TraceEvent,
    TraceEventKind, TraceRecorder, TraceSink,
};
pub use workload::{ArrivalEvent, ArrivalProcess, TenantTraffic, TrafficSpec, WorkloadTrace};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, Error>;
