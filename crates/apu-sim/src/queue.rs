//! Device command queue: a serving engine over the simulated APU.
//!
//! The paper's host runtime drives the APU through a GDL command queue —
//! tasks are enqueued, dispatched to cores, and retired asynchronously.
//! This module provides that layer for the simulator: clients open a
//! [`DeviceQueue`] over an [`ApuDevice`], submit boxed jobs with a
//! [`Priority`] and an arrival timestamp, and receive a [`TaskHandle`].
//! The scheduler replays jobs on the simulated device and places them on
//! a discrete-event *virtual timeline* with per-core availability, so a
//! stream of queries reports realistic queueing delay, service time, and
//! end-to-end latency without wall-clock sleeps.
//!
//! Scheduling model:
//!
//! * jobs become eligible at their arrival time (open-loop streams pass
//!   Poisson timestamps; closed-loop callers use [`DeviceQueue::submit`],
//!   which arrives "now"),
//! * among eligible jobs the highest [`Priority`] wins, FIFO within a
//!   priority class,
//! * a job that used `c` cores (see [`TaskReport::cores_used`]) occupies
//!   the `c` earliest-available cores from its start until its finish,
//! * admission control bounds the backlog: submissions beyond
//!   [`QueueConfig::max_pending`] are rejected with [`Error::QueueFull`].
//!
//! # Continuous batching
//!
//! Jobs submitted through [`DeviceQueue::submit_batchable`] declare a
//! [`BatchKey`]: when such a job reaches the head of the line, the
//! dispatcher coalesces it with every pending job of the *same priority
//! and key* — in submission order, up to [`QueueConfig::max_batch`]
//! members — whose arrival falls within [`QueueConfig::max_batch_wait`]
//! of the dispatch opportunity. The members run as **one** device
//! dispatch (the batch runner receives every member's payload), and the
//! completions fan back out individually: each member keeps its own
//! arrival, is charged the batch's start and finish (so early arrivals
//! pay the wait for stragglers), and reports the batch-wide
//! [`TaskReport`]. Batches never mix priority classes or keys, and
//! admission control is unaffected: capacity is consumed per submission,
//! not per dispatch.
//!
//! Per-queue counters ([`QueueStats`]) mirror the [`crate::VcuStats`]
//! style: monotone counts plus accumulated wait/service/latency, a
//! latency reservoir for percentile reporting, and batch-size /
//! occupancy accounting for the continuous-batching dispatcher.

use std::any::Any;
use std::collections::VecDeque;
use std::time::Duration;

use crate::device::{ApuContext, ApuDevice, TaskReport};
use crate::error::Error;
use crate::Result;

pub use crate::stats::{percentile, QueueStats};

/// Dispatch priority of a queued task. Lower discriminant = served first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive foreground work (interactive queries).
    High,
    /// Default class.
    Normal,
    /// Throughput-oriented background work (batch analytics).
    Low,
}

/// Identifier of a submitted task, returned by the `submit` family and
/// echoed in the matching [`Completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskHandle(u64);

impl TaskHandle {
    /// The raw submission sequence number.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// Batch-compatibility class of a [`DeviceQueue::submit_batchable`]
/// submission: jobs may be coalesced into one device dispatch only when
/// they share a key (and a [`Priority`]). Producers derive the key from
/// whatever makes dispatches fungible — e.g. the RAG layer keys on the
/// corpus and `k` so only same-corpus retrievals ever share a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey(u64);

impl BatchKey {
    /// Wraps a caller-chosen class discriminant.
    pub const fn new(v: u64) -> Self {
        BatchKey(v)
    }

    /// The raw class discriminant.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Configuration of a [`DeviceQueue`].
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Maximum number of not-yet-dispatched tasks; submissions beyond
    /// this are rejected with [`Error::QueueFull`] (admission control).
    pub max_pending: usize,
    /// Most batchable jobs coalesced into one device dispatch. The
    /// default of 1 disables coalescing.
    pub max_batch: usize,
    /// How long past a dispatch opportunity the head-of-line batchable
    /// job waits for same-class stragglers (bounds batching-induced
    /// latency). Zero — the default — coalesces only jobs that already
    /// arrived.
    pub max_batch_wait: Duration,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_pending: 1024,
            max_batch: 1,
            max_batch_wait: Duration::ZERO,
        }
    }
}

impl QueueConfig {
    /// Sets the admission-control backlog bound.
    #[must_use]
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }

    /// Sets the continuous-batching coalescing bound (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets how long a head-of-line batchable job waits for stragglers.
    #[must_use]
    pub fn with_max_batch_wait(mut self, max_batch_wait: Duration) -> Self {
        self.max_batch_wait = max_batch_wait;
        self
    }
}

/// A retired task: scheduling timestamps, the device-side [`TaskReport`],
/// and the job's output value.
#[derive(Debug)]
pub struct Completion {
    /// Handle returned at submission.
    pub handle: TaskHandle,
    /// Priority the task ran at.
    pub priority: Priority,
    /// Arrival time on the virtual timeline.
    pub submitted_at: Duration,
    /// Dispatch time (arrival + queueing delay).
    pub started_at: Duration,
    /// Retire time (`started_at` + service).
    pub finished_at: Duration,
    /// Logical tasks the carrying dispatch coalesced (1 when unbatched;
    /// the declared weight for `submit_weighted` jobs).
    pub batch_size: usize,
    /// Sequence number of the device dispatch that carried this task —
    /// batch members share it, so it identifies who rode together.
    pub dispatch: u64,
    /// Batch-compatibility key, for tasks submitted via
    /// [`DeviceQueue::submit_batchable`].
    pub batch_key: Option<BatchKey>,
    /// Device-side execution report. For a coalesced batch this is the
    /// **batch-wide** report, replicated to every member: device cycles
    /// and stats cover the whole dispatch, not one member's share.
    pub report: TaskReport,
    /// Output produced by the job; downcast with [`Completion::output`].
    pub value: Box<dyn Any>,
}

impl Completion {
    /// Queueing delay before dispatch.
    pub fn wait(&self) -> Duration {
        self.started_at - self.submitted_at
    }

    /// End-to-end latency (arrival to retire).
    pub fn latency(&self) -> Duration {
        self.finished_at - self.submitted_at
    }

    /// Downcasts the job output to `T`, or `None` on type mismatch.
    pub fn output<T: Any>(&self) -> Option<&T> {
        self.value.downcast_ref::<T>()
    }

    /// Consumes the completion, returning the job output as `T`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] when the output has a different type.
    pub fn into_output<T: Any>(self) -> Result<T> {
        self.value
            .downcast::<T>()
            .map(|b| *b)
            .map_err(|_| Error::InvalidArg("completion output has a different type".into()))
    }
}

/// A queued device job: runs kernels on the device and returns the
/// task report plus an arbitrary output value.
pub type Job<'t> = Box<dyn FnOnce(&mut ApuDevice) -> Result<(TaskReport, Box<dyn Any>)> + 't>;

/// A batched device job: receives the payloads of every coalesced
/// member (in submission order) and must return exactly one output per
/// payload, in the same order, plus the batch-wide [`TaskReport`].
pub type BatchRunner<'t> = Box<
    dyn FnOnce(&mut ApuDevice, Vec<Box<dyn Any>>) -> Result<(TaskReport, Vec<Box<dyn Any>>)> + 't,
>;

enum Work<'t> {
    /// Dispatches alone.
    Single(Job<'t>),
    /// May be coalesced with same-priority, same-key neighbours. Every
    /// member carries an equivalent `run` closure; the dispatcher uses
    /// the first member's and drops the rest.
    Batchable {
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    },
}

struct Pending<'t> {
    handle: TaskHandle,
    priority: Priority,
    arrival: Duration,
    weight: u64,
    work: Work<'t>,
}

/// A serving queue over a borrowed [`ApuDevice`].
///
/// See the [module documentation](self) for the scheduling model.
///
/// ```
/// use apu_sim::{DeviceQueue, Priority, QueueConfig, ApuDevice, SimConfig, VecOp};
///
/// # fn main() -> Result<(), apu_sim::Error> {
/// let mut dev = ApuDevice::try_new(SimConfig::default())?;
/// let mut queue = DeviceQueue::new(&mut dev, QueueConfig::default());
/// let h = queue.submit_kernel(Priority::High, |ctx| {
///     ctx.core_mut().charge(VecOp::AddU16);
///     Ok(())
/// })?;
/// let done = queue.wait(h)?;
/// assert!(done.report.cycles.get() > 0);
/// # Ok(())
/// # }
/// ```
pub struct DeviceQueue<'d, 't> {
    dev: &'d mut ApuDevice,
    cfg: QueueConfig,
    /// Submission order preserved for FIFO-within-priority.
    pending: VecDeque<Pending<'t>>,
    completions: Vec<Completion>,
    /// Virtual time each core becomes free.
    core_free_at: Vec<Duration>,
    next_id: u64,
    next_dispatch: u64,
    stats: QueueStats,
}

impl<'d, 't> DeviceQueue<'d, 't> {
    /// Opens a queue over a device.
    pub fn new(dev: &'d mut ApuDevice, cfg: QueueConfig) -> Self {
        let cores = dev.config().cores;
        DeviceQueue {
            dev,
            cfg,
            pending: VecDeque::new(),
            completions: Vec::new(),
            core_free_at: vec![Duration::ZERO; cores],
            next_id: 0,
            next_dispatch: 0,
            stats: QueueStats {
                cores,
                ..QueueStats::default()
            },
        }
    }

    /// The underlying device (e.g. to allocate task buffers between
    /// dispatches).
    pub fn device_mut(&mut self) -> &mut ApuDevice {
        self.dev
    }

    /// Tasks submitted but not yet dispatched.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Per-queue counters so far.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Submits a job arriving "now" (at the queue's current virtual
    /// time, so it is immediately eligible).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit(&mut self, priority: Priority, job: Job<'t>) -> Result<TaskHandle> {
        self.submit_at(priority, Duration::ZERO, job)
    }

    /// Submits a job with an explicit arrival time on the virtual
    /// timeline (open-loop request streams).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_at(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: Job<'t>,
    ) -> Result<TaskHandle> {
        self.submit_weighted(priority, arrival, 1, job)
    }

    /// Submits a *batch* job folding `weight` logical tasks (e.g. a
    /// VR-limited RAG retrieval batch) into one dispatch. `weight > 1`
    /// is counted in [`QueueStats::batches`] / `batched_tasks`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit, or
    /// [`Error::InvalidArg`] for a zero weight.
    pub fn submit_weighted(
        &mut self,
        priority: Priority,
        arrival: Duration,
        weight: u64,
        job: Job<'t>,
    ) -> Result<TaskHandle> {
        if weight == 0 {
            return Err(Error::InvalidArg("batch weight must be non-zero".into()));
        }
        let handle = self.admit(priority, arrival, weight, Work::Single(job))?;
        if weight > 1 {
            self.stats.batches += 1;
            self.stats.batched_tasks += weight;
        }
        Ok(handle)
    }

    /// Submits a job eligible for **continuous batching**: when it
    /// reaches the head of the line, the dispatcher may coalesce it with
    /// other pending submissions sharing its `priority` and `key` (see
    /// the [module documentation](self)). The `payload` is the member's
    /// contribution to the batch; `run` executes the whole batch and
    /// returns one output per payload, in order. Every member submits an
    /// equivalent runner — only the first member's is invoked.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_batchable(
        &mut self,
        priority: Priority,
        arrival: Duration,
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    ) -> Result<TaskHandle> {
        self.admit(priority, arrival, 1, Work::Batchable { key, payload, run })
    }

    /// Shared admission control: rejects past `max_pending`, assigns a
    /// handle, and records backlog high-water marks.
    fn admit(
        &mut self,
        priority: Priority,
        arrival: Duration,
        weight: u64,
        work: Work<'t>,
    ) -> Result<TaskHandle> {
        if self.pending.len() >= self.cfg.max_pending {
            self.stats.rejected += 1;
            return Err(Error::QueueFull {
                pending: self.pending.len(),
                capacity: self.cfg.max_pending,
            });
        }
        let handle = TaskHandle(self.next_id);
        self.next_id += 1;
        self.stats.submitted += 1;
        self.pending.push_back(Pending {
            handle,
            priority,
            arrival,
            weight,
            work,
        });
        self.stats.peak_pending = self.stats.peak_pending.max(self.pending.len());
        Ok(handle)
    }

    /// Convenience: submits a single-core kernel (the
    /// [`ApuDevice::run_task`] shape) arriving now, with unit output.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_kernel<F>(&mut self, priority: Priority, kernel: F) -> Result<TaskHandle>
    where
        F: FnOnce(&mut ApuContext<'_>) -> Result<()> + 't,
    {
        self.submit(
            priority,
            Box::new(move |dev| {
                let report = dev.run_task(kernel)?;
                Ok((report, Box::new(()) as Box<dyn Any>))
            }),
        )
    }

    /// Convenience: submits a job with a typed output, boxing it for the
    /// [`Completion`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_job<T, F>(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: F,
    ) -> Result<TaskHandle>
    where
        T: Any,
        F: FnOnce(&mut ApuDevice) -> Result<(TaskReport, T)> + 't,
    {
        self.submit_at(
            priority,
            arrival,
            Box::new(move |dev| {
                let (report, value) = job(dev)?;
                Ok((report, Box::new(value) as Box<dyn Any>))
            }),
        )
    }

    /// Index (into `pending`) of the next task to dispatch: among tasks
    /// that have arrived by the time a core frees up, the highest
    /// priority wins, FIFO within a class; if none has arrived yet, the
    /// earliest arrival (then priority, then FIFO) is chosen and the
    /// timeline advances to it.
    fn select(&self) -> Option<usize> {
        if self.pending.is_empty() {
            return None;
        }
        let horizon = self
            .core_free_at
            .iter()
            .copied()
            .min()
            .unwrap_or(Duration::ZERO);
        let arrived = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.arrival <= horizon)
            .min_by_key(|(i, p)| (p.priority, *i))
            .map(|(i, _)| i);
        arrived.or_else(|| {
            self.pending
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (p.arrival, p.priority, *i))
                .map(|(i, _)| i)
        })
    }

    /// Dispatches one device job — a single task, or a coalesced batch
    /// of compatible batchable tasks — and places it on the virtual
    /// timeline. A batch retires one [`Completion`] per member; the last
    /// is returned. Returns `Ok(None)` when the queue is empty.
    ///
    /// # Errors
    ///
    /// Propagates the job's error; every task of the dispatch is
    /// consumed and counted in [`QueueStats::failed`].
    pub fn step(&mut self) -> Result<Option<&Completion>> {
        let Some(idx) = self.select() else {
            return Ok(None);
        };
        match self.pending[idx].work {
            Work::Single(_) => self.dispatch_single(idx).map(Some),
            Work::Batchable { .. } => self.dispatch_batch(idx).map(Some),
        }
    }

    /// Occupies the `cores_used` earliest-available cores for
    /// `duration`, starting no earlier than `not_before`. Returns the
    /// dispatch's `(start, finish, cores_occupied)`.
    fn occupy(
        &mut self,
        cores_used: usize,
        not_before: Duration,
        duration: Duration,
    ) -> (Duration, Duration, usize) {
        let c = cores_used.clamp(1, self.core_free_at.len());
        let mut order: Vec<usize> = (0..self.core_free_at.len()).collect();
        order.sort_by_key(|&i| self.core_free_at[i]);
        let ready = self.core_free_at[order[c - 1]];
        let start = not_before.max(ready);
        let finish = start + duration;
        for &i in &order[..c] {
            self.core_free_at[i] = finish;
        }
        (start, finish, c)
    }

    fn dispatch_single(&mut self, idx: usize) -> Result<&Completion> {
        let task = self.pending.remove(idx).expect("selected index is valid");
        let Work::Single(job) = task.work else {
            unreachable!("dispatch_single is only called on single work");
        };
        let (report, value) = match job(self.dev) {
            Ok(out) => out,
            Err(e) => {
                self.stats.failed += 1;
                return Err(e);
            }
        };

        let (start, finish, c) = self.occupy(report.cores_used, task.arrival, report.duration);
        let dispatch = self.next_dispatch;
        self.next_dispatch += 1;
        self.stats.dispatches += 1;
        self.stats.dispatched_tasks += task.weight;
        self.stats.completed += task.weight;
        self.stats.total_wait += (start - task.arrival) * task.weight as u32;
        self.stats.total_service += report.duration * task.weight as u32;
        let latency = finish - task.arrival;
        self.stats.total_latency += latency * task.weight as u32;
        for _ in 0..task.weight {
            self.stats.latency_samples.push(latency);
        }
        self.stats.busy += report.duration * c as u32;
        self.stats.makespan = self.stats.makespan.max(finish);

        self.completions.push(Completion {
            handle: task.handle,
            priority: task.priority,
            submitted_at: task.arrival,
            started_at: start,
            finished_at: finish,
            batch_size: task.weight as usize,
            dispatch,
            batch_key: None,
            report,
            value,
        });
        Ok(self.completions.last().expect("completion just pushed"))
    }

    fn dispatch_batch(&mut self, idx: usize) -> Result<&Completion> {
        let (head_priority, head_key, head_arrival) = {
            let head = &self.pending[idx];
            let Work::Batchable { key, .. } = &head.work else {
                unreachable!("dispatch_batch is only called on batchable work");
            };
            (head.priority, *key, head.arrival)
        };
        let horizon = self
            .core_free_at
            .iter()
            .copied()
            .min()
            .unwrap_or(Duration::ZERO);
        let window_close = head_arrival.max(horizon) + self.cfg.max_batch_wait;

        // Batch membership is FIFO in submission order over the whole
        // backlog: the first `max_batch` jobs of the head's (priority,
        // key) class arriving inside the window ride together.
        let mut member_idx: Vec<usize> = Vec::new();
        for (i, p) in self.pending.iter().enumerate() {
            if member_idx.len() >= self.cfg.max_batch.max(1) {
                break;
            }
            let compatible = p.priority == head_priority
                && matches!(&p.work, Work::Batchable { key, .. } if *key == head_key)
                && p.arrival <= window_close;
            if compatible {
                member_idx.push(i);
            }
        }

        // Remove back-to-front so earlier indices stay valid, then
        // restore submission order.
        let mut members: Vec<Pending<'t>> = Vec::with_capacity(member_idx.len());
        for &i in member_idx.iter().rev() {
            members.push(self.pending.remove(i).expect("member index is valid"));
        }
        members.reverse();

        let mut payloads = Vec::with_capacity(members.len());
        let mut runner: Option<BatchRunner<'t>> = None;
        let mut meta: Vec<(TaskHandle, Priority, Duration)> = Vec::with_capacity(members.len());
        let mut latest_arrival = Duration::ZERO;
        for m in members {
            let Work::Batchable { payload, run, .. } = m.work else {
                unreachable!("members are filtered to batchable work");
            };
            payloads.push(payload);
            if runner.is_none() {
                runner = Some(run);
            }
            latest_arrival = latest_arrival.max(m.arrival);
            meta.push((m.handle, m.priority, m.arrival));
        }
        let n = meta.len();
        let run = runner.expect("batch has at least its head member");
        let (report, outputs) = match run(self.dev, payloads) {
            Ok(out) => out,
            Err(e) => {
                self.stats.failed += n as u64;
                return Err(e);
            }
        };
        if outputs.len() != n {
            self.stats.failed += n as u64;
            return Err(Error::TaskFailed(format!(
                "batch runner returned {} outputs for {n} members",
                outputs.len()
            )));
        }

        // One device dispatch for the whole batch; it cannot start
        // before its last member arrived.
        let (start, finish, c) = self.occupy(report.cores_used, latest_arrival, report.duration);
        let dispatch = self.next_dispatch;
        self.next_dispatch += 1;
        self.stats.dispatches += 1;
        self.stats.dispatched_tasks += n as u64;
        self.stats.max_batch_size = self.stats.max_batch_size.max(n as u64);
        self.stats.busy += report.duration * c as u32;
        self.stats.makespan = self.stats.makespan.max(finish);

        // Fan the completions back out: each member keeps its own
        // arrival and is charged the shared start/finish.
        for ((handle, priority, arrival), value) in meta.into_iter().zip(outputs) {
            self.stats.completed += 1;
            self.stats.total_wait += start - arrival;
            self.stats.total_service += report.duration;
            let latency = finish - arrival;
            self.stats.total_latency += latency;
            self.stats.latency_samples.push(latency);
            self.completions.push(Completion {
                handle,
                priority,
                submitted_at: arrival,
                started_at: start,
                finished_at: finish,
                batch_size: n,
                dispatch,
                batch_key: Some(head_key),
                report: report.clone(),
                value,
            });
        }
        Ok(self.completions.last().expect("batch pushed completions"))
    }

    /// Dispatches until the given task retires and returns its
    /// completion. Returns immediately if it already retired.
    ///
    /// # Errors
    ///
    /// Fails if the handle is unknown or a dispatched job fails first.
    pub fn wait(&mut self, handle: TaskHandle) -> Result<&Completion> {
        // Completions are append-only, so scan by position to keep the
        // borrow checker happy across `step` calls.
        loop {
            if let Some(pos) = self.completions.iter().position(|c| c.handle == handle) {
                return Ok(&self.completions[pos]);
            }
            if self.pending.iter().any(|p| p.handle == handle) {
                self.step()?;
            } else {
                return Err(Error::InvalidArg(format!(
                    "unknown task handle {}",
                    handle.id()
                )));
            }
        }
    }

    /// Dispatches every pending task and returns all completions so far,
    /// ordered by finish time (FIFO for ties), consuming them from the
    /// queue.
    ///
    /// # Errors
    ///
    /// Propagates the first job error; earlier completions stay queued
    /// for a later `drain`.
    pub fn drain(&mut self) -> Result<Vec<Completion>> {
        while !self.pending.is_empty() {
            self.step()?;
        }
        let mut done = std::mem::take(&mut self.completions);
        done.sort_by_key(|c| (c.finished_at, c.handle.id()));
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::timing::VecOp;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20))
    }

    fn charge_kernel(op: VecOp) -> impl FnOnce(&mut ApuContext<'_>) -> Result<()> {
        move |ctx| {
            ctx.core_mut().charge(op);
            Ok(())
        }
    }

    #[test]
    fn kernel_roundtrip_reports_cycles() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        let done = q.wait(h).unwrap();
        assert!(done.report.cycles.get() > 0);
        assert_eq!(done.submitted_at, Duration::ZERO);
        assert_eq!(done.started_at, Duration::ZERO);
        assert_eq!(done.finished_at, done.report.duration);
        assert!(done.output::<()>().is_some());
        assert_eq!(q.stats().completed, 1);
    }

    #[test]
    fn priorities_jump_the_line() {
        // One core: dispatch order is observable through start times.
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let lo = q
            .submit_kernel(Priority::Low, charge_kernel(VecOp::AddU16))
            .unwrap();
        let hi = q
            .submit_kernel(Priority::High, charge_kernel(VecOp::AddU16))
            .unwrap();
        let done = q.drain().unwrap();
        let pos = |h: TaskHandle| done.iter().position(|c| c.handle == h).unwrap();
        assert!(
            pos(hi) < pos(lo),
            "high-priority task must dispatch before the earlier low-priority one"
        );
        assert!(done[pos(hi)].started_at < done[pos(lo)].started_at);
    }

    #[test]
    fn fifo_within_a_priority_class() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let handles: Vec<TaskHandle> = (0..4)
            .map(|_| {
                q.submit_kernel(Priority::Normal, charge_kernel(VecOp::Or16))
                    .unwrap()
            })
            .collect();
        let done = q.drain().unwrap();
        let starts: Vec<Duration> = handles
            .iter()
            .map(|&h| done.iter().find(|c| c.handle == h).unwrap().started_at)
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn arrivals_gate_dispatch_and_waits_accumulate() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        // Second task arrives late; the queue idles until its arrival.
        let late = Duration::from_millis(10);
        let a = q
            .submit_at(
                Priority::Normal,
                Duration::ZERO,
                Box::new(|dev: &mut ApuDevice| {
                    let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                    Ok((r, Box::new(()) as Box<dyn Any>))
                }),
            )
            .unwrap();
        let b = q
            .submit_at(
                Priority::Normal,
                late,
                Box::new(|dev: &mut ApuDevice| {
                    let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                    Ok((r, Box::new(()) as Box<dyn Any>))
                }),
            )
            .unwrap();
        let done = q.drain().unwrap();
        let first = done.iter().find(|c| c.handle == a).unwrap();
        let second = done.iter().find(|c| c.handle == b).unwrap();
        assert!(first.finished_at < late, "first task fits before arrival");
        assert_eq!(second.started_at, late, "idle queue waits for arrival");
        assert_eq!(second.wait(), Duration::ZERO);
    }

    #[test]
    fn queue_full_rejects_and_counts() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_pending(2));
        q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        let r = q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16));
        assert!(matches!(
            r,
            Err(Error::QueueFull {
                pending: 2,
                capacity: 2
            })
        ));
        assert_eq!(q.stats().rejected, 1);
        // Draining frees capacity.
        q.drain().unwrap();
        assert!(q
            .submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .is_ok());
    }

    #[test]
    fn failed_jobs_propagate_and_count() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit(
            Priority::Normal,
            Box::new(|_dev| Err(Error::TaskFailed("boom".into()))),
        )
        .unwrap();
        assert!(q.step().is_err());
        assert_eq!(q.stats().failed, 1);
        assert_eq!(q.stats().completed, 0);
    }

    #[test]
    fn multi_core_jobs_occupy_multiple_cores() {
        let mut dev = device();
        let cores = dev.config().cores;
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit_job(Priority::Normal, Duration::ZERO, move |dev| {
            let tasks: Vec<crate::CoreTask<'_>> = (0..cores)
                .map(|_| {
                    Box::new(|ctx: &mut ApuContext<'_>| {
                        ctx.core_mut().charge(VecOp::AddU16);
                        Ok(())
                    }) as _
                })
                .collect();
            let r = dev.run_parallel(tasks)?;
            Ok((r, ()))
        })
        .unwrap();
        let done = q.drain().unwrap();
        assert_eq!(done[0].report.cores_used, cores);
        // All cores are busy until the parallel job's finish.
        assert!((q.stats().occupancy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_submission_counts_batches() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit_weighted(
            Priority::Normal,
            Duration::ZERO,
            8,
            Box::new(|dev: &mut ApuDevice| {
                let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                Ok((r, Box::new(()) as Box<dyn Any>))
            }),
        )
        .unwrap();
        q.drain().unwrap();
        let s = q.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_tasks, 8);
        assert_eq!(s.completed, 8);
        assert_eq!(s.latency_samples.len(), 8);
        assert!(q
            .submit_weighted(
                Priority::Normal,
                Duration::ZERO,
                0,
                Box::new(|_: &mut ApuDevice| unreachable!()),
            )
            .is_err());
    }

    #[test]
    fn typed_outputs_downcast() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit_job(Priority::Normal, Duration::ZERO, |dev| {
                let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                Ok((r, vec![1u32, 2, 3]))
            })
            .unwrap();
        q.wait(h).unwrap();
        let done = q.drain().unwrap();
        let v: Vec<u32> = done.into_iter().next().unwrap().into_output().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn unknown_handle_is_an_error() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        q.drain().unwrap();
        // Handle retired and drained away: no longer known.
        assert!(q.wait(h).is_err());
    }

    /// A batch runner that charges one op for the whole dispatch and
    /// echoes every member's payload back as its output.
    fn echo_runner<'t>(op: VecOp) -> BatchRunner<'t> {
        Box::new(move |dev: &mut ApuDevice, payloads: Vec<Box<dyn Any>>| {
            let report = dev.run_task(charge_kernel(op))?;
            Ok((report, payloads))
        })
    }

    fn submit_echo(
        q: &mut DeviceQueue<'_, '_>,
        priority: Priority,
        arrival: Duration,
        key: BatchKey,
        tag: u32,
    ) -> TaskHandle {
        q.submit_batchable(
            priority,
            arrival,
            key,
            Box::new(tag),
            echo_runner(VecOp::AddU16),
        )
        .unwrap()
    }

    #[test]
    fn batchable_jobs_coalesce_up_to_max_batch() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(3));
        let key = BatchKey::new(7);
        let handles: Vec<TaskHandle> = (0..5)
            .map(|i| submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, i))
            .collect();
        let done = q.drain().unwrap();
        assert_eq!(done.len(), 5);
        // First dispatch carries three members, the second the rest.
        let by_handle = |h: TaskHandle| done.iter().find(|c| c.handle == h).unwrap();
        for (i, &h) in handles.iter().enumerate() {
            let c = by_handle(h);
            assert_eq!(c.batch_key, Some(key));
            // Payloads fan back out to their own submitters.
            assert_eq!(c.output::<u32>(), Some(&(i as u32)));
            assert_eq!(c.batch_size, if i < 3 { 3 } else { 2 });
            assert_eq!(c.dispatch, if i < 3 { 0 } else { 1 });
        }
        let s = q.stats();
        assert_eq!(s.dispatches, 2);
        assert_eq!(s.dispatched_tasks, 5);
        assert_eq!(s.max_batch_size, 3);
        assert_eq!(s.completed, 5);
        assert_eq!(s.peak_pending, 5);
        assert!((s.mean_batch_size() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn batches_never_mix_keys_or_priorities() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(8));
        let (ka, kb) = (BatchKey::new(1), BatchKey::new(2));
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, ka, 0);
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, kb, 1);
        submit_echo(&mut q, Priority::High, Duration::ZERO, ka, 2);
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, ka, 3);
        let done = q.drain().unwrap();
        for c in &done {
            let peers: Vec<_> = done.iter().filter(|o| o.dispatch == c.dispatch).collect();
            assert!(peers.iter().all(|o| o.batch_key == c.batch_key));
            assert!(peers.iter().all(|o| o.priority == c.priority));
        }
        // Only the two (Normal, ka) jobs could coalesce.
        assert_eq!(q.stats().dispatches, 3);
        assert_eq!(q.stats().max_batch_size, 2);
    }

    #[test]
    fn max_batch_wait_pulls_in_stragglers() {
        let late = Duration::from_millis(1);
        let key = BatchKey::new(3);

        // Without a wait window, the head dispatches alone.
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(4));
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, 0);
        submit_echo(&mut q, Priority::Normal, late, key, 1);
        let done = q.drain().unwrap();
        assert!(done.iter().all(|c| c.batch_size == 1));

        // With the window open past the straggler's arrival, one batch
        // forms and the early member is charged the wait.
        let mut dev = device();
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default()
                .with_max_batch(4)
                .with_max_batch_wait(late),
        );
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, 0);
        submit_echo(&mut q, Priority::Normal, late, key, 1);
        let done = q.drain().unwrap();
        assert!(done.iter().all(|c| c.batch_size == 2));
        let early = done
            .iter()
            .find(|c| c.submitted_at == Duration::ZERO)
            .unwrap();
        assert_eq!(early.started_at, late, "batch waits for its last member");
        assert!(early.wait() >= late);
    }

    #[test]
    fn fifo_within_class_is_preserved_under_batching() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(2));
        let key = BatchKey::new(9);
        let handles: Vec<TaskHandle> = (0..6)
            .map(|i| submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, i))
            .collect();
        let done = q.drain().unwrap();
        let starts: Vec<Duration> = handles
            .iter()
            .map(|&h| done.iter().find(|c| c.handle == h).unwrap().started_at)
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        // Members ride with their submission neighbours: {0,1} {2,3} {4,5}.
        let dispatch_of = |h: TaskHandle| done.iter().find(|c| c.handle == h).unwrap().dispatch;
        for pair in handles.chunks(2) {
            assert_eq!(dispatch_of(pair[0]), dispatch_of(pair[1]));
        }
    }

    #[test]
    fn queue_full_fires_at_exactly_max_pending_with_batching() {
        let mut dev = device();
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default()
                .with_max_pending(3)
                .with_max_batch(12),
        );
        let key = BatchKey::new(4);
        for i in 0..3 {
            submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, i);
        }
        let r = q.submit_batchable(
            Priority::Normal,
            Duration::ZERO,
            key,
            Box::new(3u32),
            echo_runner(VecOp::AddU16),
        );
        assert!(matches!(
            r,
            Err(Error::QueueFull {
                pending: 3,
                capacity: 3
            })
        ));
        assert_eq!(q.stats().rejected, 1);
        // Draining coalesces the backlog into one dispatch and frees
        // all three admission slots at once.
        q.drain().unwrap();
        assert_eq!(q.stats().dispatches, 1);
        assert_eq!(q.stats().max_batch_size, 3);
        assert!(q
            .submit_batchable(
                Priority::Normal,
                Duration::ZERO,
                key,
                Box::new(4u32),
                echo_runner(VecOp::AddU16),
            )
            .is_ok());
    }

    #[test]
    fn batch_runner_output_arity_is_validated() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(4));
        let key = BatchKey::new(5);
        let bad: BatchRunner<'_> = Box::new(|dev: &mut ApuDevice, _payloads| {
            let report = dev.run_task(charge_kernel(VecOp::AddU16))?;
            Ok((report, Vec::new())) // wrong: drops every output
        });
        q.submit_batchable(Priority::Normal, Duration::ZERO, key, Box::new(0u32), bad)
            .unwrap();
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, 1);
        assert!(matches!(q.drain(), Err(Error::TaskFailed(_))));
        assert_eq!(q.stats().failed, 2);
    }

    #[test]
    fn percentile_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&samples, 0.0), ms(1));
        assert_eq!(percentile(&samples, 0.5), ms(51));
        assert_eq!(percentile(&samples, 0.99), ms(99));
        assert_eq!(percentile(&samples, 1.0), ms(100));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn stats_track_throughput_and_occupancy() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        for _ in 0..4 {
            q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
                .unwrap();
        }
        q.drain().unwrap();
        let s = q.stats();
        assert_eq!(s.completed, 4);
        assert!(s.throughput() > 0.0);
        assert!(s.occupancy() > 0.0 && s.occupancy() <= 1.0);
        assert!(s.mean_latency() > Duration::ZERO);
        assert!(s.latency_percentile(0.5) <= s.latency_percentile(0.99));
    }
}
