//! Device command queue: a serving engine over the simulated APU.
//!
//! The paper's host runtime drives the APU through a GDL command queue —
//! tasks are enqueued, dispatched to cores, and retired asynchronously.
//! This module provides that layer for the simulator: clients open a
//! [`DeviceQueue`] over an [`ApuDevice`], submit boxed jobs with a
//! [`Priority`] and an arrival timestamp, and receive a [`TaskHandle`].
//! The scheduler replays jobs on the simulated device and places them on
//! a discrete-event *virtual timeline* with per-core availability, so a
//! stream of queries reports realistic queueing delay, service time, and
//! end-to-end latency without wall-clock sleeps.
//!
//! Scheduling model:
//!
//! * jobs become eligible at their arrival time (open-loop streams pass
//!   Poisson timestamps; closed-loop callers use [`DeviceQueue::submit`],
//!   which arrives "now"),
//! * among eligible jobs the highest [`Priority`] wins, FIFO within a
//!   priority class,
//! * a job that used `c` cores (see [`TaskReport::cores_used`]) occupies
//!   the `c` earliest-available cores from its start until its finish,
//! * admission control bounds the backlog: submissions beyond
//!   [`QueueConfig::max_pending`] are rejected with [`Error::QueueFull`].
//!
//! Per-queue counters ([`QueueStats`]) mirror the [`crate::VcuStats`]
//! style: monotone counts plus accumulated wait/service/latency and a
//! latency reservoir for percentile reporting.

use std::any::Any;
use std::collections::VecDeque;
use std::time::Duration;

use crate::device::{ApuContext, ApuDevice, TaskReport};
use crate::error::Error;
use crate::Result;

/// Dispatch priority of a queued task. Lower discriminant = served first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive foreground work (interactive queries).
    High,
    /// Default class.
    Normal,
    /// Throughput-oriented background work (batch analytics).
    Low,
}

/// Identifier of a submitted task, returned by the `submit` family and
/// echoed in the matching [`Completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskHandle(u64);

impl TaskHandle {
    /// The raw submission sequence number.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// Configuration of a [`DeviceQueue`].
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Maximum number of not-yet-dispatched tasks; submissions beyond
    /// this are rejected with [`Error::QueueFull`] (admission control).
    pub max_pending: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig { max_pending: 1024 }
    }
}

impl QueueConfig {
    /// Sets the admission-control backlog bound.
    #[must_use]
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }
}

/// Monotone per-queue counters, in the style of [`crate::VcuStats`].
#[derive(Debug, Clone, Default)]
pub struct QueueStats {
    /// Tasks accepted by `submit`.
    pub submitted: u64,
    /// Tasks rejected by admission control.
    pub rejected: u64,
    /// Tasks that ran to completion.
    pub completed: u64,
    /// Tasks whose job returned an error.
    pub failed: u64,
    /// Multi-query batch jobs dispatched (see `submit_weighted`).
    pub batches: u64,
    /// Logical tasks folded into those batch jobs.
    pub batched_tasks: u64,
    /// Accumulated queueing delay (start − arrival) over completions.
    pub total_wait: Duration,
    /// Accumulated service time (finish − start) over completions.
    pub total_service: Duration,
    /// Accumulated end-to-end latency (finish − arrival).
    pub total_latency: Duration,
    /// Per-completion end-to-end latencies, for percentile reporting.
    pub latency_samples: Vec<Duration>,
    /// Core-seconds of busy time (`cores_used × service`).
    pub busy: Duration,
    /// Virtual time of the latest finish.
    pub makespan: Duration,
    /// Number of device cores the queue schedules over.
    pub cores: usize,
}

impl QueueStats {
    /// Mean end-to-end latency over completions, or zero when idle.
    pub fn mean_latency(&self) -> Duration {
        if self.completed == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.completed as u32
        }
    }

    /// Latency percentile `q` in `[0, 1]` over completed tasks (nearest
    /// rank), or zero when no task completed.
    pub fn latency_percentile(&self, q: f64) -> Duration {
        percentile(&self.latency_samples, q)
    }

    /// Fraction of core-time spent busy over the queue's makespan.
    pub fn occupancy(&self) -> f64 {
        let wall = self.makespan.as_secs_f64() * self.cores as f64;
        if wall <= 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / wall
        }
    }

    /// Sustained completions per second over the makespan.
    pub fn throughput(&self) -> f64 {
        let wall = self.makespan.as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            self.completed as f64 / wall
        }
    }
}

/// Nearest-rank percentile of a (not necessarily sorted) sample set.
pub fn percentile(samples: &[Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// A retired task: scheduling timestamps, the device-side [`TaskReport`],
/// and the job's output value.
#[derive(Debug)]
pub struct Completion {
    /// Handle returned at submission.
    pub handle: TaskHandle,
    /// Priority the task ran at.
    pub priority: Priority,
    /// Arrival time on the virtual timeline.
    pub submitted_at: Duration,
    /// Dispatch time (arrival + queueing delay).
    pub started_at: Duration,
    /// Retire time (`started_at` + service).
    pub finished_at: Duration,
    /// Device-side execution report.
    pub report: TaskReport,
    /// Output produced by the job; downcast with [`Completion::output`].
    pub value: Box<dyn Any>,
}

impl Completion {
    /// Queueing delay before dispatch.
    pub fn wait(&self) -> Duration {
        self.started_at - self.submitted_at
    }

    /// End-to-end latency (arrival to retire).
    pub fn latency(&self) -> Duration {
        self.finished_at - self.submitted_at
    }

    /// Downcasts the job output to `T`, or `None` on type mismatch.
    pub fn output<T: Any>(&self) -> Option<&T> {
        self.value.downcast_ref::<T>()
    }

    /// Consumes the completion, returning the job output as `T`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] when the output has a different type.
    pub fn into_output<T: Any>(self) -> Result<T> {
        self.value
            .downcast::<T>()
            .map(|b| *b)
            .map_err(|_| Error::InvalidArg("completion output has a different type".into()))
    }
}

/// A queued device job: runs kernels on the device and returns the
/// task report plus an arbitrary output value.
pub type Job<'t> = Box<dyn FnOnce(&mut ApuDevice) -> Result<(TaskReport, Box<dyn Any>)> + 't>;

struct Pending<'t> {
    handle: TaskHandle,
    priority: Priority,
    arrival: Duration,
    weight: u64,
    job: Job<'t>,
}

/// A serving queue over a borrowed [`ApuDevice`].
///
/// See the [module documentation](self) for the scheduling model.
///
/// ```
/// use apu_sim::{DeviceQueue, Priority, QueueConfig, ApuDevice, SimConfig, VecOp};
///
/// # fn main() -> Result<(), apu_sim::Error> {
/// let mut dev = ApuDevice::try_new(SimConfig::default())?;
/// let mut queue = DeviceQueue::new(&mut dev, QueueConfig::default());
/// let h = queue.submit_kernel(Priority::High, |ctx| {
///     ctx.core_mut().charge(VecOp::AddU16);
///     Ok(())
/// })?;
/// let done = queue.wait(h)?;
/// assert!(done.report.cycles.get() > 0);
/// # Ok(())
/// # }
/// ```
pub struct DeviceQueue<'d, 't> {
    dev: &'d mut ApuDevice,
    cfg: QueueConfig,
    /// Submission order preserved for FIFO-within-priority.
    pending: VecDeque<Pending<'t>>,
    completions: Vec<Completion>,
    /// Virtual time each core becomes free.
    core_free_at: Vec<Duration>,
    next_id: u64,
    stats: QueueStats,
}

impl<'d, 't> DeviceQueue<'d, 't> {
    /// Opens a queue over a device.
    pub fn new(dev: &'d mut ApuDevice, cfg: QueueConfig) -> Self {
        let cores = dev.config().cores;
        DeviceQueue {
            dev,
            cfg,
            pending: VecDeque::new(),
            completions: Vec::new(),
            core_free_at: vec![Duration::ZERO; cores],
            next_id: 0,
            stats: QueueStats {
                cores,
                ..QueueStats::default()
            },
        }
    }

    /// The underlying device (e.g. to allocate task buffers between
    /// dispatches).
    pub fn device_mut(&mut self) -> &mut ApuDevice {
        self.dev
    }

    /// Tasks submitted but not yet dispatched.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Per-queue counters so far.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Submits a job arriving "now" (at the queue's current virtual
    /// time, so it is immediately eligible).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit(&mut self, priority: Priority, job: Job<'t>) -> Result<TaskHandle> {
        self.submit_at(priority, Duration::ZERO, job)
    }

    /// Submits a job with an explicit arrival time on the virtual
    /// timeline (open-loop request streams).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_at(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: Job<'t>,
    ) -> Result<TaskHandle> {
        self.submit_weighted(priority, arrival, 1, job)
    }

    /// Submits a *batch* job folding `weight` logical tasks (e.g. a
    /// VR-limited RAG retrieval batch) into one dispatch. `weight > 1`
    /// is counted in [`QueueStats::batches`] / `batched_tasks`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit, or
    /// [`Error::InvalidArg`] for a zero weight.
    pub fn submit_weighted(
        &mut self,
        priority: Priority,
        arrival: Duration,
        weight: u64,
        job: Job<'t>,
    ) -> Result<TaskHandle> {
        if weight == 0 {
            return Err(Error::InvalidArg("batch weight must be non-zero".into()));
        }
        if self.pending.len() >= self.cfg.max_pending {
            self.stats.rejected += 1;
            return Err(Error::QueueFull {
                pending: self.pending.len(),
                capacity: self.cfg.max_pending,
            });
        }
        let handle = TaskHandle(self.next_id);
        self.next_id += 1;
        self.stats.submitted += 1;
        if weight > 1 {
            self.stats.batches += 1;
            self.stats.batched_tasks += weight;
        }
        self.pending.push_back(Pending {
            handle,
            priority,
            arrival,
            weight,
            job,
        });
        Ok(handle)
    }

    /// Convenience: submits a single-core kernel (the
    /// [`ApuDevice::run_task`] shape) arriving now, with unit output.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_kernel<F>(&mut self, priority: Priority, kernel: F) -> Result<TaskHandle>
    where
        F: FnOnce(&mut ApuContext<'_>) -> Result<()> + 't,
    {
        self.submit(
            priority,
            Box::new(move |dev| {
                let report = dev.run_task(kernel)?;
                Ok((report, Box::new(()) as Box<dyn Any>))
            }),
        )
    }

    /// Convenience: submits a job with a typed output, boxing it for the
    /// [`Completion`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_job<T, F>(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: F,
    ) -> Result<TaskHandle>
    where
        T: Any,
        F: FnOnce(&mut ApuDevice) -> Result<(TaskReport, T)> + 't,
    {
        self.submit_at(
            priority,
            arrival,
            Box::new(move |dev| {
                let (report, value) = job(dev)?;
                Ok((report, Box::new(value) as Box<dyn Any>))
            }),
        )
    }

    /// Index (into `pending`) of the next task to dispatch: among tasks
    /// that have arrived by the time a core frees up, the highest
    /// priority wins, FIFO within a class; if none has arrived yet, the
    /// earliest arrival (then priority, then FIFO) is chosen and the
    /// timeline advances to it.
    fn select(&self) -> Option<usize> {
        if self.pending.is_empty() {
            return None;
        }
        let horizon = self
            .core_free_at
            .iter()
            .copied()
            .min()
            .unwrap_or(Duration::ZERO);
        let arrived = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.arrival <= horizon)
            .min_by_key(|(i, p)| (p.priority, *i))
            .map(|(i, _)| i);
        arrived.or_else(|| {
            self.pending
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (p.arrival, p.priority, *i))
                .map(|(i, _)| i)
        })
    }

    /// Dispatches one task: runs its job on the device and places it on
    /// the virtual timeline. Returns `Ok(None)` when the queue is empty.
    ///
    /// # Errors
    ///
    /// Propagates the job's error; the task is consumed and counted in
    /// [`QueueStats::failed`].
    pub fn step(&mut self) -> Result<Option<&Completion>> {
        let Some(idx) = self.select() else {
            return Ok(None);
        };
        let task = self.pending.remove(idx).expect("selected index is valid");
        let (report, value) = match (task.job)(self.dev) {
            Ok(out) => out,
            Err(e) => {
                self.stats.failed += 1;
                return Err(e);
            }
        };

        // Occupy the `cores_used` earliest-available cores.
        let c = report.cores_used.clamp(1, self.core_free_at.len());
        let mut order: Vec<usize> = (0..self.core_free_at.len()).collect();
        order.sort_by_key(|&i| self.core_free_at[i]);
        let ready = self.core_free_at[order[c - 1]];
        let start = task.arrival.max(ready);
        let finish = start + report.duration;
        for &i in &order[..c] {
            self.core_free_at[i] = finish;
        }

        self.stats.completed += task.weight;
        self.stats.total_wait += (start - task.arrival) * task.weight as u32;
        self.stats.total_service += report.duration * task.weight as u32;
        let latency = finish - task.arrival;
        self.stats.total_latency += latency * task.weight as u32;
        for _ in 0..task.weight {
            self.stats.latency_samples.push(latency);
        }
        self.stats.busy += report.duration * c as u32;
        self.stats.makespan = self.stats.makespan.max(finish);

        self.completions.push(Completion {
            handle: task.handle,
            priority: task.priority,
            submitted_at: task.arrival,
            started_at: start,
            finished_at: finish,
            report,
            value,
        });
        Ok(self.completions.last())
    }

    /// Dispatches until the given task retires and returns its
    /// completion. Returns immediately if it already retired.
    ///
    /// # Errors
    ///
    /// Fails if the handle is unknown or a dispatched job fails first.
    pub fn wait(&mut self, handle: TaskHandle) -> Result<&Completion> {
        // Completions are append-only, so scan by position to keep the
        // borrow checker happy across `step` calls.
        loop {
            if let Some(pos) = self.completions.iter().position(|c| c.handle == handle) {
                return Ok(&self.completions[pos]);
            }
            if self.pending.iter().any(|p| p.handle == handle) {
                self.step()?;
            } else {
                return Err(Error::InvalidArg(format!(
                    "unknown task handle {}",
                    handle.id()
                )));
            }
        }
    }

    /// Dispatches every pending task and returns all completions so far,
    /// ordered by finish time (FIFO for ties), consuming them from the
    /// queue.
    ///
    /// # Errors
    ///
    /// Propagates the first job error; earlier completions stay queued
    /// for a later `drain`.
    pub fn drain(&mut self) -> Result<Vec<Completion>> {
        while !self.pending.is_empty() {
            self.step()?;
        }
        let mut done = std::mem::take(&mut self.completions);
        done.sort_by_key(|c| (c.finished_at, c.handle.id()));
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::timing::VecOp;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20))
    }

    fn charge_kernel(op: VecOp) -> impl FnOnce(&mut ApuContext<'_>) -> Result<()> {
        move |ctx| {
            ctx.core_mut().charge(op);
            Ok(())
        }
    }

    #[test]
    fn kernel_roundtrip_reports_cycles() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        let done = q.wait(h).unwrap();
        assert!(done.report.cycles.get() > 0);
        assert_eq!(done.submitted_at, Duration::ZERO);
        assert_eq!(done.started_at, Duration::ZERO);
        assert_eq!(done.finished_at, done.report.duration);
        assert!(done.output::<()>().is_some());
        assert_eq!(q.stats().completed, 1);
    }

    #[test]
    fn priorities_jump_the_line() {
        // One core: dispatch order is observable through start times.
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let lo = q
            .submit_kernel(Priority::Low, charge_kernel(VecOp::AddU16))
            .unwrap();
        let hi = q
            .submit_kernel(Priority::High, charge_kernel(VecOp::AddU16))
            .unwrap();
        let done = q.drain().unwrap();
        let pos = |h: TaskHandle| done.iter().position(|c| c.handle == h).unwrap();
        assert!(
            pos(hi) < pos(lo),
            "high-priority task must dispatch before the earlier low-priority one"
        );
        assert!(done[pos(hi)].started_at < done[pos(lo)].started_at);
    }

    #[test]
    fn fifo_within_a_priority_class() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let handles: Vec<TaskHandle> = (0..4)
            .map(|_| {
                q.submit_kernel(Priority::Normal, charge_kernel(VecOp::Or16))
                    .unwrap()
            })
            .collect();
        let done = q.drain().unwrap();
        let starts: Vec<Duration> = handles
            .iter()
            .map(|&h| done.iter().find(|c| c.handle == h).unwrap().started_at)
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn arrivals_gate_dispatch_and_waits_accumulate() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        // Second task arrives late; the queue idles until its arrival.
        let late = Duration::from_millis(10);
        let a = q
            .submit_at(
                Priority::Normal,
                Duration::ZERO,
                Box::new(|dev: &mut ApuDevice| {
                    let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                    Ok((r, Box::new(()) as Box<dyn Any>))
                }),
            )
            .unwrap();
        let b = q
            .submit_at(
                Priority::Normal,
                late,
                Box::new(|dev: &mut ApuDevice| {
                    let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                    Ok((r, Box::new(()) as Box<dyn Any>))
                }),
            )
            .unwrap();
        let done = q.drain().unwrap();
        let first = done.iter().find(|c| c.handle == a).unwrap();
        let second = done.iter().find(|c| c.handle == b).unwrap();
        assert!(first.finished_at < late, "first task fits before arrival");
        assert_eq!(second.started_at, late, "idle queue waits for arrival");
        assert_eq!(second.wait(), Duration::ZERO);
    }

    #[test]
    fn queue_full_rejects_and_counts() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_pending(2));
        q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        let r = q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16));
        assert!(matches!(
            r,
            Err(Error::QueueFull {
                pending: 2,
                capacity: 2
            })
        ));
        assert_eq!(q.stats().rejected, 1);
        // Draining frees capacity.
        q.drain().unwrap();
        assert!(q
            .submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .is_ok());
    }

    #[test]
    fn failed_jobs_propagate_and_count() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit(
            Priority::Normal,
            Box::new(|_dev| Err(Error::TaskFailed("boom".into()))),
        )
        .unwrap();
        assert!(q.step().is_err());
        assert_eq!(q.stats().failed, 1);
        assert_eq!(q.stats().completed, 0);
    }

    #[test]
    fn multi_core_jobs_occupy_multiple_cores() {
        let mut dev = device();
        let cores = dev.config().cores;
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit_job(Priority::Normal, Duration::ZERO, move |dev| {
            let tasks: Vec<Box<dyn FnOnce(&mut ApuContext<'_>) -> Result<()>>> = (0..cores)
                .map(|_| {
                    Box::new(|ctx: &mut ApuContext<'_>| {
                        ctx.core_mut().charge(VecOp::AddU16);
                        Ok(())
                    }) as _
                })
                .collect();
            let r = dev.run_parallel(tasks)?;
            Ok((r, ()))
        })
        .unwrap();
        let done = q.drain().unwrap();
        assert_eq!(done[0].report.cores_used, cores);
        // All cores are busy until the parallel job's finish.
        assert!((q.stats().occupancy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_submission_counts_batches() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit_weighted(
            Priority::Normal,
            Duration::ZERO,
            8,
            Box::new(|dev: &mut ApuDevice| {
                let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                Ok((r, Box::new(()) as Box<dyn Any>))
            }),
        )
        .unwrap();
        q.drain().unwrap();
        let s = q.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_tasks, 8);
        assert_eq!(s.completed, 8);
        assert_eq!(s.latency_samples.len(), 8);
        assert!(q
            .submit_weighted(
                Priority::Normal,
                Duration::ZERO,
                0,
                Box::new(|_: &mut ApuDevice| unreachable!()),
            )
            .is_err());
    }

    #[test]
    fn typed_outputs_downcast() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit_job(Priority::Normal, Duration::ZERO, |dev| {
                let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                Ok((r, vec![1u32, 2, 3]))
            })
            .unwrap();
        q.wait(h).unwrap();
        let done = q.drain().unwrap();
        let v: Vec<u32> = done.into_iter().next().unwrap().into_output().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn unknown_handle_is_an_error() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        q.drain().unwrap();
        // Handle retired and drained away: no longer known.
        assert!(q.wait(h).is_err());
    }

    #[test]
    fn percentile_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&samples, 0.0), ms(1));
        assert_eq!(percentile(&samples, 0.5), ms(51));
        assert_eq!(percentile(&samples, 0.99), ms(99));
        assert_eq!(percentile(&samples, 1.0), ms(100));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn stats_track_throughput_and_occupancy() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        for _ in 0..4 {
            q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
                .unwrap();
        }
        q.drain().unwrap();
        let s = q.stats();
        assert_eq!(s.completed, 4);
        assert!(s.throughput() > 0.0);
        assert!(s.occupancy() > 0.0 && s.occupancy() <= 1.0);
        assert!(s.mean_latency() > Duration::ZERO);
        assert!(s.latency_percentile(0.5) <= s.latency_percentile(0.99));
    }
}
