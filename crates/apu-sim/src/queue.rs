//! Device command queue: a serving engine over the simulated APU.
//!
//! The paper's host runtime drives the APU through a GDL command queue —
//! tasks are enqueued, dispatched to cores, and retired asynchronously.
//! This module provides that layer for the simulator: clients open a
//! [`DeviceQueue`] over an [`ApuDevice`], submit boxed jobs with a
//! [`Priority`] and an arrival timestamp, and receive a [`TaskHandle`].
//! The scheduler replays jobs on the simulated device and places them on
//! a discrete-event *virtual timeline* with per-core availability, so a
//! stream of queries reports realistic queueing delay, service time, and
//! end-to-end latency without wall-clock sleeps.
//!
//! Scheduling model:
//!
//! * jobs become eligible at their arrival time (open-loop streams pass
//!   Poisson timestamps; closed-loop callers use [`DeviceQueue::submit`],
//!   which arrives "now"),
//! * among eligible jobs the highest [`Priority`] wins, FIFO within a
//!   priority class,
//! * a job that used `c` cores (see [`TaskReport::cores_used`]) occupies
//!   the `c` earliest-available cores from its start until its finish,
//! * admission control bounds the backlog: submissions beyond
//!   [`QueueConfig::max_pending`] are rejected with [`Error::QueueFull`].
//!
//! # Continuous batching
//!
//! Jobs submitted through [`DeviceQueue::submit_batchable`] declare a
//! [`BatchKey`]: when such a job reaches the head of the line, the
//! dispatcher coalesces it with every pending job of the *same priority
//! and key* — in submission order, up to [`QueueConfig::max_batch`]
//! members — whose arrival falls within [`QueueConfig::max_batch_wait`]
//! of the dispatch opportunity. The members run as **one** device
//! dispatch (the batch runner receives every member's payload), and the
//! completions fan back out individually: each member keeps its own
//! arrival, is charged the batch's start and finish (so early arrivals
//! pay the wait for stragglers), and reports the batch-wide
//! [`TaskReport`]. Batches never mix priority classes or keys, and
//! admission control is unaffected: capacity is consumed per submission,
//! not per dispatch.
//!
//! # Failure containment
//!
//! A failing job must not poison the queue. Every submission retires
//! with a [`Completion`] whose [`TaskOutcome`] is either `Ok(value)` or
//! `Failed(error)`: job errors, poisoned batch members, injected faults
//! (see [`crate::FaultPlan`]), and deadline-shed tasks all surface as
//! error completions instead of aborting [`DeviceQueue::step`] /
//! [`DeviceQueue::wait`] / [`DeviceQueue::drain`]. A failed job still
//! consumed simulated device time, so its dispatch is booked on the
//! virtual timeline like any other. Tasks submitted with a TTL
//! ([`DeviceQueue::submit_with_ttl`]) are shed *without dispatching*
//! once their deadline passes (`Failed(DeadlineExceeded)`, load
//! shedding), and an optional [`RetryPolicy`] re-queues transient
//! **pre-dispatch** failures (the fault-injection gate) with bounded
//! exponential backoff. Post-dispatch failures are never retried — the
//! job closure is consumed by execution.
//!
//! Per-queue counters ([`QueueStats`]) mirror the [`crate::VcuStats`]
//! style: monotone counts plus accumulated wait/service/latency, a
//! bounded latency reservoir for percentile reporting, and batch-size /
//! occupancy accounting for the continuous-batching dispatcher. Wait,
//! service, and latency accumulators cover successful completions only;
//! failed work is visible through [`QueueStats::failed`],
//! [`QueueStats::expired`], and [`QueueStats::retries`], and its device
//! time through `busy` / `makespan`.

use std::any::Any;
use std::collections::VecDeque;
use std::time::Duration;

use crate::clock::Cycles;
use crate::device::{ApuContext, ApuDevice, TaskReport};
use crate::error::Error;
use crate::stats::{LatencyReservoir, StageBreakdown, VcuStats, DEFAULT_RESERVOIR_CAP};
use crate::trace::{FaultScope, TraceEvent, TraceEventKind};
use crate::Result;

pub use crate::stats::{percentile, QueueStats};

/// Dispatch priority of a queued task. Lower discriminant = served first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive foreground work (interactive queries).
    High,
    /// Default class.
    Normal,
    /// Throughput-oriented background work (batch analytics).
    Low,
}

/// Identifier of a submitted task, returned by the `submit` family and
/// echoed in the matching [`Completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskHandle(u64);

impl TaskHandle {
    /// The raw submission sequence number.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// Batch-compatibility class of a [`DeviceQueue::submit_batchable`]
/// submission: jobs may be coalesced into one device dispatch only when
/// they share a key (and a [`Priority`]). Producers derive the key from
/// whatever makes dispatches fungible — e.g. the RAG layer keys on the
/// corpus and `k` so only same-corpus retrievals ever share a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey(u64);

impl BatchKey {
    /// Wraps a caller-chosen class discriminant.
    pub const fn new(v: u64) -> Self {
        BatchKey(v)
    }

    /// The raw class discriminant.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Bounded retry-with-backoff for transient **pre-dispatch** failures
/// (the fault-injection gate). Post-dispatch failures are never retried:
/// the job closure is consumed by execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-dispatch attempts after the first (0 disables retry).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff: Duration,
    /// Multiplier applied to the backoff for each further retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(100),
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay before re-dispatching after failed attempt
    /// `attempt` (0-based): `backoff · multiplierᵃᵗᵗᵉᵐᵖᵗ`.
    pub fn delay(&self, attempt: u32) -> Duration {
        self.backoff.mul_f64(self.multiplier.powi(attempt as i32))
    }
}

/// Configuration of a [`DeviceQueue`].
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Maximum number of not-yet-dispatched tasks; submissions beyond
    /// this are rejected with [`Error::QueueFull`] (admission control).
    pub max_pending: usize,
    /// Most batchable jobs coalesced into one device dispatch. The
    /// default of 1 disables coalescing.
    pub max_batch: usize,
    /// How long past a dispatch opportunity the head-of-line batchable
    /// job waits for same-class stragglers (bounds batching-induced
    /// latency). Zero — the default — coalesces only jobs that already
    /// arrived.
    pub max_batch_wait: Duration,
    /// Retry policy for transient pre-dispatch failures; `None` — the
    /// default — retires them immediately as error completions.
    pub retry: Option<RetryPolicy>,
    /// Capacity of the latency reservoir backing percentile reporting
    /// (exact below the cap, deterministic subsample above it).
    pub latency_reservoir: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_pending: 1024,
            max_batch: 1,
            max_batch_wait: Duration::ZERO,
            retry: None,
            latency_reservoir: DEFAULT_RESERVOIR_CAP,
        }
    }
}

impl QueueConfig {
    /// Sets the admission-control backlog bound.
    #[must_use]
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }

    /// Sets the continuous-batching coalescing bound (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets how long a head-of-line batchable job waits for stragglers.
    #[must_use]
    pub fn with_max_batch_wait(mut self, max_batch_wait: Duration) -> Self {
        self.max_batch_wait = max_batch_wait;
        self
    }

    /// Enables bounded retry for transient pre-dispatch failures.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Sets the latency-reservoir capacity (clamped to ≥ 1).
    #[must_use]
    pub fn with_latency_reservoir(mut self, cap: usize) -> Self {
        self.latency_reservoir = cap.max(1);
        self
    }
}

/// Per-task outcome carried by a [`Completion`].
#[derive(Debug)]
pub enum TaskOutcome {
    /// The task ran; the boxed value is the job's output.
    Ok(Box<dyn Any>),
    /// The task retired with an error: its job failed, its batch member
    /// was poisoned, the fault gate killed it, or its deadline passed
    /// before dispatch.
    Failed(Error),
}

/// A retired task: scheduling timestamps, the device-side [`TaskReport`],
/// and the task's [`TaskOutcome`].
#[derive(Debug)]
pub struct Completion {
    /// Handle returned at submission.
    pub handle: TaskHandle,
    /// Priority the task ran at.
    pub priority: Priority,
    /// Arrival time on the virtual timeline.
    pub submitted_at: Duration,
    /// Dispatch time (arrival + queueing delay). For work that never
    /// reached the device (shed / fault-gated) this is the retire time.
    pub started_at: Duration,
    /// Retire time (`started_at` + service).
    pub finished_at: Duration,
    /// Logical tasks the carrying dispatch coalesced (1 when unbatched;
    /// the declared weight for `submit_weighted` jobs).
    pub batch_size: usize,
    /// Sequence number of the device dispatch that carried this task —
    /// batch members share it, so it identifies who rode together.
    /// `None` when the task never reached a device dispatch (deadline
    /// shed, or failed at the dispatch gate).
    pub dispatch: Option<u64>,
    /// Batch-compatibility key, for tasks submitted via
    /// [`DeviceQueue::submit_batchable`].
    pub batch_key: Option<BatchKey>,
    /// Dispatch attempts this task consumed (> 1 after retries; a shed
    /// task reports the attempts made before its deadline passed).
    pub attempts: u32,
    /// Device-side execution report. For a coalesced batch this is the
    /// **batch-wide** report, replicated to every member: device cycles
    /// and stats cover the whole dispatch, not one member's share. For a
    /// failed job it covers the device time consumed before the error;
    /// all-zero for work that never dispatched.
    pub report: TaskReport,
    /// The task's outcome; access through [`Completion::output`],
    /// [`Completion::into_output`], or [`Completion::error`].
    pub outcome: TaskOutcome,
}

impl Completion {
    /// Queueing delay before dispatch.
    pub fn wait(&self) -> Duration {
        self.started_at - self.submitted_at
    }

    /// End-to-end latency (arrival to retire).
    pub fn latency(&self) -> Duration {
        self.finished_at - self.submitted_at
    }

    /// Whether the task retired successfully.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, TaskOutcome::Ok(_))
    }

    /// Whether the task retired with an error completion.
    pub fn is_failed(&self) -> bool {
        !self.is_ok()
    }

    /// The error that failed the task, if any.
    pub fn error(&self) -> Option<&Error> {
        match &self.outcome {
            TaskOutcome::Failed(e) => Some(e),
            TaskOutcome::Ok(_) => None,
        }
    }

    /// Downcasts the job output to `T`; `None` on type mismatch or when
    /// the task failed.
    pub fn output<T: Any>(&self) -> Option<&T> {
        match &self.outcome {
            TaskOutcome::Ok(v) => v.downcast_ref::<T>(),
            TaskOutcome::Failed(_) => None,
        }
    }

    /// Per-stage breakdown of this completion's end-to-end latency (see
    /// [`StageBreakdown`]): the four components sum *exactly* to
    /// [`Completion::latency`]. Work that never reached the device (shed
    /// or gate-failed) has an all-zero service split.
    pub fn stage_breakdown(&self) -> StageBreakdown {
        StageBreakdown::from_parts(
            self.wait(),
            self.finished_at - self.started_at,
            &self.report.stats,
        )
    }

    /// Consumes the completion, returning the job output as `T`.
    ///
    /// # Errors
    ///
    /// Returns the task's own error for a failed completion, or
    /// [`Error::InvalidArg`] when the output has a different type.
    pub fn into_output<T: Any>(self) -> Result<T> {
        match self.outcome {
            TaskOutcome::Ok(v) => v
                .downcast::<T>()
                .map(|b| *b)
                .map_err(|_| Error::InvalidArg("completion output has a different type".into())),
            TaskOutcome::Failed(e) => Err(e),
        }
    }
}

/// A queued device job: runs kernels on the device and returns the
/// task report plus an arbitrary output value.
pub type Job<'t> = Box<dyn FnOnce(&mut ApuDevice) -> Result<(TaskReport, Box<dyn Any>)> + 't>;

/// One batch member's result: its output value, or the error that failed
/// it *individually* (siblings in the same dispatch are unaffected).
pub type BatchOutput = std::result::Result<Box<dyn Any>, Error>;

/// A batched device job: receives the payloads of every coalesced
/// member (in submission order) and must return exactly one
/// [`BatchOutput`] per payload, in the same order, plus the batch-wide
/// [`TaskReport`]. A top-level `Err` fails every member of the dispatch;
/// a per-member `Err` fails only that member.
pub type BatchRunner<'t> = Box<
    dyn FnOnce(&mut ApuDevice, Vec<Box<dyn Any>>) -> Result<(TaskReport, Vec<BatchOutput>)> + 't,
>;

enum Work<'t> {
    /// Dispatches alone.
    Single(Job<'t>),
    /// May be coalesced with same-priority, same-key neighbours. Every
    /// member carries an equivalent `run` closure; the dispatcher uses
    /// the first member's and drops the rest.
    Batchable {
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    },
}

struct Pending<'t> {
    handle: TaskHandle,
    priority: Priority,
    arrival: Duration,
    /// When the task becomes dispatchable — equals `arrival` until a
    /// retry backoff pushes it later.
    eligible: Duration,
    /// Absolute start deadline on the virtual timeline; the scheduler
    /// sheds the task if it cannot dispatch by this time.
    deadline: Option<Duration>,
    /// Dispatch attempts already consumed by fault-gate retries.
    attempt: u32,
    weight: u64,
    work: Work<'t>,
}

/// A serving queue over a borrowed [`ApuDevice`].
///
/// See the [module documentation](self) for the scheduling model.
///
/// ```
/// use apu_sim::{DeviceQueue, Priority, QueueConfig, ApuDevice, SimConfig, VecOp};
///
/// # fn main() -> Result<(), apu_sim::Error> {
/// let mut dev = ApuDevice::try_new(SimConfig::default())?;
/// let mut queue = DeviceQueue::new(&mut dev, QueueConfig::default());
/// let h = queue.submit_kernel(Priority::High, |ctx| {
///     ctx.core_mut().charge(VecOp::AddU16);
///     Ok(())
/// })?;
/// let done = queue.wait(h)?;
/// assert!(done.report.cycles.get() > 0);
/// # Ok(())
/// # }
/// ```
pub struct DeviceQueue<'d, 't> {
    dev: &'d mut ApuDevice,
    cfg: QueueConfig,
    /// Submission order preserved for FIFO-within-priority.
    pending: VecDeque<Pending<'t>>,
    completions: Vec<Completion>,
    /// Virtual time each core becomes free.
    core_free_at: Vec<Duration>,
    next_id: u64,
    next_dispatch: u64,
    stats: QueueStats,
}

impl<'d, 't> DeviceQueue<'d, 't> {
    /// Opens a queue over a device.
    pub fn new(dev: &'d mut ApuDevice, cfg: QueueConfig) -> Self {
        let cores = dev.config().cores;
        let reservoir = cfg.latency_reservoir;
        DeviceQueue {
            dev,
            cfg,
            pending: VecDeque::new(),
            completions: Vec::new(),
            core_free_at: vec![Duration::ZERO; cores],
            next_id: 0,
            next_dispatch: 0,
            stats: QueueStats {
                cores,
                latency_samples: LatencyReservoir::with_capacity(reservoir),
                ..QueueStats::default()
            },
        }
    }

    /// The underlying device (e.g. to allocate task buffers between
    /// dispatches).
    pub fn device_mut(&mut self) -> &mut ApuDevice {
        self.dev
    }

    /// Converts a virtual-timeline instant to device cycles, the trace
    /// clock domain.
    fn trace_ts(&self, at: Duration) -> Cycles {
        self.dev.config().clock.secs_to_cycles(at.as_secs_f64())
    }

    /// Emits one queue-domain trace event stamped at virtual time `at`.
    /// The payload is built lazily so an untraced queue never even
    /// constructs it — with no sink installed this is a branch and
    /// nothing else, and in all cases no virtual time is charged.
    fn emit_with(&self, at: Duration, kind: impl FnOnce() -> TraceEventKind) {
        if let Some(t) = self.dev.trace() {
            t.record(TraceEvent {
                ts: self.trace_ts(at),
                kind: kind(),
            });
        }
    }

    /// Tasks submitted but not yet dispatched.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Per-queue counters so far.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Submits a job arriving "now" (at the queue's current virtual
    /// time, so it is immediately eligible).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit(&mut self, priority: Priority, job: Job<'t>) -> Result<TaskHandle> {
        self.submit_at(priority, Duration::ZERO, job)
    }

    /// Submits a job with an explicit arrival time on the virtual
    /// timeline (open-loop request streams).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_at(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: Job<'t>,
    ) -> Result<TaskHandle> {
        self.submit_weighted(priority, arrival, 1, job)
    }

    /// Submits a *batch* job folding `weight` logical tasks (e.g. a
    /// VR-limited RAG retrieval batch) into one dispatch. `weight > 1`
    /// is counted in [`QueueStats::batches`] / `batched_tasks`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit, or
    /// [`Error::InvalidArg`] for a zero weight.
    pub fn submit_weighted(
        &mut self,
        priority: Priority,
        arrival: Duration,
        weight: u64,
        job: Job<'t>,
    ) -> Result<TaskHandle> {
        if weight == 0 {
            return Err(Error::InvalidArg("batch weight must be non-zero".into()));
        }
        let handle = self.admit(priority, arrival, None, weight, Work::Single(job))?;
        if weight > 1 {
            self.stats.batches += 1;
            self.stats.batched_tasks += weight;
        }
        Ok(handle)
    }

    /// Submits a job with a time-to-live: if the task cannot *start* by
    /// `arrival + ttl` it is shed without dispatching, retiring as
    /// `Failed(`[`Error::DeadlineExceeded`]`)` (load shedding under
    /// overload). A task that starts before its deadline runs to
    /// completion even if it finishes past the deadline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_with_ttl(
        &mut self,
        priority: Priority,
        arrival: Duration,
        ttl: Duration,
        job: Job<'t>,
    ) -> Result<TaskHandle> {
        self.admit(priority, arrival, Some(arrival + ttl), 1, Work::Single(job))
    }

    /// Submits a job eligible for **continuous batching**: when it
    /// reaches the head of the line, the dispatcher may coalesce it with
    /// other pending submissions sharing its `priority` and `key` (see
    /// the [module documentation](self)). The `payload` is the member's
    /// contribution to the batch; `run` executes the whole batch and
    /// returns one output per payload, in order. Every member submits an
    /// equivalent runner — only the first member's is invoked.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_batchable(
        &mut self,
        priority: Priority,
        arrival: Duration,
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    ) -> Result<TaskHandle> {
        self.admit(
            priority,
            arrival,
            None,
            1,
            Work::Batchable { key, payload, run },
        )
    }

    /// [`DeviceQueue::submit_batchable`] with a time-to-live (see
    /// [`DeviceQueue::submit_with_ttl`] for the shedding semantics).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_batchable_with_ttl(
        &mut self,
        priority: Priority,
        arrival: Duration,
        ttl: Duration,
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    ) -> Result<TaskHandle> {
        self.admit(
            priority,
            arrival,
            Some(arrival + ttl),
            1,
            Work::Batchable { key, payload, run },
        )
    }

    /// Shared admission control: rejects past `max_pending`, assigns a
    /// handle, and records backlog high-water marks.
    fn admit(
        &mut self,
        priority: Priority,
        arrival: Duration,
        deadline: Option<Duration>,
        weight: u64,
        work: Work<'t>,
    ) -> Result<TaskHandle> {
        if self.pending.len() >= self.cfg.max_pending {
            self.stats.rejected += 1;
            return Err(Error::QueueFull {
                pending: self.pending.len(),
                capacity: self.cfg.max_pending,
            });
        }
        let handle = TaskHandle(self.next_id);
        self.next_id += 1;
        self.stats.submitted += 1;
        let batch_key = match &work {
            Work::Batchable { key, .. } => Some(key.get()),
            Work::Single(_) => None,
        };
        self.pending.push_back(Pending {
            handle,
            priority,
            arrival,
            eligible: arrival,
            deadline,
            attempt: 0,
            weight,
            work,
        });
        self.stats.peak_pending = self.stats.peak_pending.max(self.pending.len());
        let deadline_cycles = deadline.map(|d| self.trace_ts(d));
        self.emit_with(arrival, || TraceEventKind::TaskSubmitted {
            handle: handle.0,
            priority,
            batch_key,
            weight,
            deadline: deadline_cycles,
        });
        Ok(handle)
    }

    /// Convenience: submits a single-core kernel (the
    /// [`ApuDevice::run_task`] shape) arriving now, with unit output.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_kernel<F>(&mut self, priority: Priority, kernel: F) -> Result<TaskHandle>
    where
        F: FnOnce(&mut ApuContext<'_>) -> Result<()> + 't,
    {
        self.submit(
            priority,
            Box::new(move |dev| {
                let report = dev.run_task(kernel)?;
                Ok((report, Box::new(()) as Box<dyn Any>))
            }),
        )
    }

    /// Convenience: submits a job with a typed output, boxing it for the
    /// [`Completion`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    pub fn submit_job<T, F>(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: F,
    ) -> Result<TaskHandle>
    where
        T: Any,
        F: FnOnce(&mut ApuDevice) -> Result<(TaskReport, T)> + 't,
    {
        self.submit_at(
            priority,
            arrival,
            Box::new(move |dev| {
                let (report, value) = job(dev)?;
                Ok((report, Box::new(value) as Box<dyn Any>))
            }),
        )
    }

    /// Index (into `pending`) of the next task to dispatch: among tasks
    /// that have arrived by the time a core frees up, the highest
    /// priority wins, FIFO within a class; if none has arrived yet, the
    /// earliest arrival (then priority, then FIFO) is chosen and the
    /// timeline advances to it.
    fn select(&self) -> Option<usize> {
        if self.pending.is_empty() {
            return None;
        }
        let horizon = self.horizon();
        let arrived = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.eligible <= horizon)
            .min_by_key(|(i, p)| (p.priority, *i))
            .map(|(i, _)| i);
        arrived.or_else(|| {
            self.pending
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (p.eligible, p.priority, *i))
                .map(|(i, _)| i)
        })
    }

    /// The virtual time the next core frees up — the earliest moment any
    /// pending task could start.
    fn horizon(&self) -> Duration {
        self.core_free_at
            .iter()
            .copied()
            .min()
            .unwrap_or(Duration::ZERO)
    }

    /// An all-zero report for work that never reached the device.
    fn empty_report() -> TaskReport {
        TaskReport {
            cycles: Cycles::ZERO,
            duration: Duration::ZERO,
            stats: VcuStats::default(),
            cores_used: 0,
        }
    }

    /// Per-core cycle counters plus merged device stats, captured before
    /// running a job so a *failed* job's consumed device time can still
    /// be booked on the virtual timeline.
    fn device_snapshot(&self) -> (Vec<Cycles>, VcuStats) {
        let cores = (0..self.core_free_at.len())
            .map(|i| self.dev.core(i).expect("core index in range").cycles())
            .collect();
        (cores, self.dev.stats_total())
    }

    /// Synthesizes the report of a failed job from the device time it
    /// consumed before erroring.
    fn failed_report(&self, snap: (Vec<Cycles>, VcuStats)) -> TaskReport {
        let (start_cycles, start_stats) = snap;
        let mut max_delta = Cycles::ZERO;
        let mut cores_used = 0usize;
        for (i, s) in start_cycles.iter().enumerate() {
            let delta = self.dev.core(i).expect("core index in range").cycles() - *s;
            if delta > Cycles::ZERO {
                cores_used += 1;
                max_delta = max_delta.max(delta);
            }
        }
        TaskReport {
            cycles: max_delta,
            duration: self.dev.config().clock.cycles_to_duration(max_delta),
            stats: &self.dev.stats_total() - &start_stats,
            cores_used,
        }
    }

    /// Sheds every pending task whose deadline passes before it could
    /// possibly start, retiring each as `Failed(DeadlineExceeded)`
    /// without dispatching. Returns whether anything was shed.
    fn shed_expired(&mut self) -> bool {
        let horizon = self.horizon();
        let mut shed_any = false;
        let mut i = 0;
        while i < self.pending.len() {
            let expired = {
                let p = &self.pending[i];
                p.deadline.is_some_and(|d| d < p.eligible.max(horizon))
            };
            if !expired {
                i += 1;
                continue;
            }
            let task = self.pending.remove(i).expect("index is valid");
            let deadline = task.deadline.expect("task was expired by deadline");
            let batch_key = match &task.work {
                Work::Batchable { key, .. } => Some(*key),
                Work::Single(_) => None,
            };
            self.stats.expired += task.weight;
            self.completions.push(Completion {
                handle: task.handle,
                priority: task.priority,
                submitted_at: task.arrival,
                started_at: deadline,
                finished_at: deadline,
                batch_size: task.weight as usize,
                dispatch: None,
                batch_key,
                attempts: task.attempt,
                report: Self::empty_report(),
                outcome: TaskOutcome::Failed(Error::DeadlineExceeded { deadline }),
            });
            let deadline_cycles = self.trace_ts(deadline);
            self.emit_with(deadline, || TraceEventKind::TaskExpired {
                handle: task.handle.0,
                deadline: deadline_cycles,
            });
            shed_any = true;
        }
        shed_any
    }

    /// Dispatches one device job — a single task, or a coalesced batch
    /// of compatible batchable tasks — and places it on the virtual
    /// timeline, after shedding any deadline-expired backlog. A batch
    /// retires one [`Completion`] per member; the last completion
    /// retired by this step is returned. Returns `Ok(None)` when the
    /// queue is empty or the only action was re-queueing work for retry.
    ///
    /// # Errors
    ///
    /// Job failures do **not** error: they retire as `Failed` completions
    /// (counted in [`QueueStats::failed`]). The `Result` is reserved for
    /// queue-level invariant violations.
    pub fn step(&mut self) -> Result<Option<&Completion>> {
        let shed = self.shed_expired();
        let retired = match self.select() {
            Some(idx) => match self.pending[idx].work {
                Work::Single(_) => self.dispatch_single(idx)?,
                Work::Batchable { .. } => self.dispatch_batch(idx)?,
            },
            None => false,
        };
        if retired || shed {
            Ok(self.completions.last())
        } else {
            Ok(None)
        }
    }

    /// Occupies the `cores_used` earliest-available cores for
    /// `duration`, starting no earlier than `not_before`. Returns the
    /// dispatch's `(start, finish, occupied_core_indices)`; the indices
    /// identify the dispatch's tracks in an exported trace.
    fn occupy(
        &mut self,
        cores_used: usize,
        not_before: Duration,
        duration: Duration,
    ) -> (Duration, Duration, Vec<usize>) {
        let c = cores_used.clamp(1, self.core_free_at.len());
        let mut order: Vec<usize> = (0..self.core_free_at.len()).collect();
        order.sort_by_key(|&i| self.core_free_at[i]);
        let ready = self.core_free_at[order[c - 1]];
        let start = not_before.max(ready);
        let finish = start + duration;
        order.truncate(c);
        for &i in &order {
            self.core_free_at[i] = finish;
        }
        (start, finish, order)
    }

    /// Emits the [`TraceEventKind::DispatchIssued`] span for a dispatch
    /// just booked via [`DeviceQueue::occupy`].
    #[allow(clippy::too_many_arguments)]
    fn emit_dispatch(
        &self,
        dispatch: u64,
        start: Duration,
        finish: Duration,
        cores: &[usize],
        members: &[TaskHandle],
        tasks: u64,
        batch_key: Option<BatchKey>,
    ) {
        let (start_cycles, finish_cycles) = (self.trace_ts(start), self.trace_ts(finish));
        self.emit_with(start, || TraceEventKind::DispatchIssued {
            dispatch,
            start: start_cycles,
            finish: finish_cycles,
            cores: cores.to_vec(),
            members: members.iter().map(|h| h.0).collect(),
            tasks,
            batch_key: batch_key.map(BatchKey::get),
        });
    }

    /// Emits the [`TraceEventKind::TaskRetired`] marker for one member of
    /// a dispatch, at the dispatch's finish time.
    fn emit_retire(&self, handle: TaskHandle, dispatch: u64, at: Duration, error: Option<String>) {
        self.emit_with(at, || TraceEventKind::TaskRetired {
            handle: handle.0,
            dispatch,
            ok: error.is_none(),
            error,
        });
    }

    /// Accumulates one successful completion's stage breakdown into the
    /// per-queue stage totals, `weight` times.
    fn book_stages(&mut self, wait: Duration, service: Duration, stats: &VcuStats, weight: u64) {
        let stages = StageBreakdown::from_parts(wait, service, stats);
        self.stats.stage_dispatch += stages.dispatch * weight as u32;
        self.stats.stage_dma += stages.dma * weight as u32;
        self.stats.stage_device += stages.device * weight as u32;
    }

    /// Contains a pre-dispatch failure (the fault gate fired before the
    /// job ran): re-queues the task with backoff when the configured
    /// retry policy still has budget, otherwise retires it as a `Failed`
    /// completion that never reached the device. Returns whether a
    /// completion was retired.
    fn contain_predispatch_failure(&mut self, idx: usize, e: Error) -> Result<bool> {
        let horizon = self.horizon();
        let retryable = self.cfg.retry.is_some_and(|policy| {
            e.is_transient() && self.pending[idx].attempt < policy.max_retries
        });
        if retryable {
            let policy = self.cfg.retry.expect("checked above");
            let p = &mut self.pending[idx];
            let decided_at = p.eligible.max(horizon);
            p.eligible = decided_at + policy.delay(p.attempt);
            p.attempt += 1;
            self.stats.retries += 1;
            let (handle, attempt, eligible) = (p.handle.0, p.attempt, p.eligible);
            let eligible_cycles = self.trace_ts(eligible);
            self.emit_with(decided_at, || TraceEventKind::TaskRetried {
                handle,
                attempt,
                eligible: eligible_cycles,
            });
            return Ok(false);
        }
        let task = self.pending.remove(idx).expect("index is valid");
        let at = task.eligible.max(horizon);
        let batch_key = match &task.work {
            Work::Batchable { key, .. } => Some(*key),
            Work::Single(_) => None,
        };
        self.stats.failed += task.weight;
        let error_text = e.to_string();
        self.completions.push(Completion {
            handle: task.handle,
            priority: task.priority,
            submitted_at: task.arrival,
            started_at: at,
            finished_at: at,
            batch_size: task.weight as usize,
            dispatch: None,
            batch_key,
            attempts: task.attempt + 1,
            report: Self::empty_report(),
            outcome: TaskOutcome::Failed(e),
        });
        self.emit_with(at, || TraceEventKind::TaskFailed {
            handle: task.handle.0,
            error: error_text,
        });
        Ok(true)
    }

    fn dispatch_single(&mut self, idx: usize) -> Result<bool> {
        if let Some(e) = self.dev.fault_check_task(None) {
            let at = self.pending[idx].eligible.max(self.horizon());
            let seq = self.dev.fault_counts().tasks_injected;
            self.emit_with(at, || TraceEventKind::FaultInjected {
                scope: FaultScope::Task,
                seq,
            });
            return self.contain_predispatch_failure(idx, e);
        }
        let task = self.pending.remove(idx).expect("selected index is valid");
        let Work::Single(job) = task.work else {
            unreachable!("dispatch_single is only called on single work");
        };
        let snap = self.device_snapshot();
        match job(self.dev) {
            Ok((report, value)) => {
                let (start, finish, cores) =
                    self.occupy(report.cores_used, task.eligible, report.duration);
                let dispatch = self.next_dispatch;
                self.next_dispatch += 1;
                self.stats.dispatches += 1;
                self.stats.dispatched_tasks += task.weight;
                self.stats.max_batch_size = self.stats.max_batch_size.max(task.weight);
                self.stats.completed += task.weight;
                self.stats.total_wait += (start - task.arrival) * task.weight as u32;
                self.stats.total_service += report.duration * task.weight as u32;
                let latency = finish - task.arrival;
                self.stats.total_latency += latency * task.weight as u32;
                for _ in 0..task.weight {
                    self.stats.latency_samples.push(latency);
                }
                self.stats.busy += report.duration * cores.len() as u32;
                self.stats.makespan = self.stats.makespan.max(finish);
                self.book_stages(
                    start - task.arrival,
                    report.duration,
                    &report.stats,
                    task.weight,
                );
                self.emit_dispatch(
                    dispatch,
                    start,
                    finish,
                    &cores,
                    &[task.handle],
                    task.weight,
                    None,
                );
                self.emit_retire(task.handle, dispatch, finish, None);

                self.completions.push(Completion {
                    handle: task.handle,
                    priority: task.priority,
                    submitted_at: task.arrival,
                    started_at: start,
                    finished_at: finish,
                    batch_size: task.weight as usize,
                    dispatch: Some(dispatch),
                    batch_key: None,
                    attempts: task.attempt + 1,
                    report,
                    outcome: TaskOutcome::Ok(value),
                });
            }
            Err(e) => {
                // The job consumed device time before failing; book that
                // time on the timeline so failures still cost throughput.
                let report = self.failed_report(snap);
                let (start, finish, cores) =
                    self.occupy(report.cores_used, task.eligible, report.duration);
                let dispatch = self.next_dispatch;
                self.next_dispatch += 1;
                self.stats.dispatches += 1;
                self.stats.dispatched_tasks += task.weight;
                self.stats.failed += task.weight;
                self.stats.busy += report.duration * cores.len() as u32;
                self.stats.makespan = self.stats.makespan.max(finish);
                self.emit_dispatch(
                    dispatch,
                    start,
                    finish,
                    &cores,
                    &[task.handle],
                    task.weight,
                    None,
                );
                self.emit_retire(task.handle, dispatch, finish, Some(e.to_string()));

                self.completions.push(Completion {
                    handle: task.handle,
                    priority: task.priority,
                    submitted_at: task.arrival,
                    started_at: start,
                    finished_at: finish,
                    batch_size: task.weight as usize,
                    dispatch: Some(dispatch),
                    batch_key: None,
                    attempts: task.attempt + 1,
                    report,
                    outcome: TaskOutcome::Failed(e),
                });
            }
        }
        Ok(true)
    }

    fn dispatch_batch(&mut self, idx: usize) -> Result<bool> {
        let (head_priority, head_key, head_arrival) = {
            let head = &self.pending[idx];
            let Work::Batchable { key, .. } = &head.work else {
                unreachable!("dispatch_batch is only called on batchable work");
            };
            (head.priority, *key, head.arrival)
        };
        let horizon = self.horizon();
        let window_close = head_arrival.max(horizon) + self.cfg.max_batch_wait;

        // Batch membership is FIFO in submission order over the whole
        // backlog: the first `max_batch` jobs of the head's (priority,
        // key) class arriving inside the window ride together.
        let mut member_idx: Vec<usize> = Vec::new();
        for (i, p) in self.pending.iter().enumerate() {
            if member_idx.len() >= self.cfg.max_batch.max(1) {
                break;
            }
            let compatible = p.priority == head_priority
                && matches!(&p.work, Work::Batchable { key, .. } if *key == head_key)
                && p.arrival <= window_close;
            if compatible {
                member_idx.push(i);
            }
        }
        let window_close_cycles = self.trace_ts(window_close);
        self.emit_with(head_arrival.max(horizon), || TraceEventKind::BatchFormed {
            key: head_key.get(),
            members: member_idx
                .iter()
                .map(|&i| self.pending[i].handle.0)
                .collect(),
            window_close: window_close_cycles,
        });

        // Remove back-to-front so earlier indices stay valid, then
        // restore submission order.
        let mut members: Vec<Pending<'t>> = Vec::with_capacity(member_idx.len());
        for &i in member_idx.iter().rev() {
            members.push(self.pending.remove(i).expect("member index is valid"));
        }
        members.reverse();

        // Fault-gate each member individually: a poisoned member fails
        // (or retries) alone while its healthy siblings still ride
        // together. A retried member rejoins at the back of the backlog,
        // giving up its FIFO spot for this batch.
        let mut retired_any = false;
        let mut payloads = Vec::with_capacity(members.len());
        let mut runner: Option<BatchRunner<'t>> = None;
        let mut meta: Vec<(TaskHandle, Priority, Duration, Duration, u32)> =
            Vec::with_capacity(members.len());
        let mut latest_eligible = Duration::ZERO;
        for mut m in members {
            if let Some(e) = self.dev.fault_check_task(Some(head_key)) {
                let gate_at = m.eligible.max(horizon);
                let seq = self.dev.fault_counts().tasks_injected;
                self.emit_with(gate_at, || TraceEventKind::FaultInjected {
                    scope: FaultScope::Task,
                    seq,
                });
                let retryable = self
                    .cfg
                    .retry
                    .is_some_and(|policy| e.is_transient() && m.attempt < policy.max_retries);
                if retryable {
                    let policy = self.cfg.retry.expect("checked above");
                    m.eligible = gate_at + policy.delay(m.attempt);
                    m.attempt += 1;
                    self.stats.retries += 1;
                    let (handle, attempt) = (m.handle.0, m.attempt);
                    let eligible_cycles = self.trace_ts(m.eligible);
                    self.emit_with(gate_at, || TraceEventKind::TaskRetried {
                        handle,
                        attempt,
                        eligible: eligible_cycles,
                    });
                    self.pending.push_back(m);
                } else {
                    let at = gate_at;
                    self.stats.failed += m.weight;
                    let error_text = e.to_string();
                    self.completions.push(Completion {
                        handle: m.handle,
                        priority: m.priority,
                        submitted_at: m.arrival,
                        started_at: at,
                        finished_at: at,
                        batch_size: m.weight as usize,
                        dispatch: None,
                        batch_key: Some(head_key),
                        attempts: m.attempt + 1,
                        report: Self::empty_report(),
                        outcome: TaskOutcome::Failed(e),
                    });
                    self.emit_with(at, || TraceEventKind::TaskFailed {
                        handle: m.handle.0,
                        error: error_text,
                    });
                    retired_any = true;
                }
                continue;
            }
            let Work::Batchable { payload, run, .. } = m.work else {
                unreachable!("members are filtered to batchable work");
            };
            payloads.push(payload);
            if runner.is_none() {
                runner = Some(run);
            }
            latest_eligible = latest_eligible.max(m.eligible);
            meta.push((m.handle, m.priority, m.arrival, m.eligible, m.attempt));
        }
        let n = meta.len();
        let Some(run) = runner else {
            // Every member was poisoned or re-queued for retry.
            return Ok(retired_any);
        };

        let snap = self.device_snapshot();
        let run_result = run(self.dev, payloads);

        // Runner-level failure (or a malformed output arity) fails every
        // member of this dispatch together, booking the device time the
        // batch actually consumed.
        let e = match run_result {
            Ok((report, outputs)) if outputs.len() == n => {
                self.book_batch(&meta, head_key, latest_eligible, report, outputs);
                return Ok(true);
            }
            Ok((_, outputs)) => Error::TaskFailed(format!(
                "batch runner returned {} outputs for {n} members",
                outputs.len()
            )),
            Err(e) => e,
        };
        let report = self.failed_report(snap);
        let (start, finish, cores) =
            self.occupy(report.cores_used, latest_eligible, report.duration);
        let dispatch = self.next_dispatch;
        self.next_dispatch += 1;
        self.stats.dispatches += 1;
        self.stats.dispatched_tasks += n as u64;
        self.stats.max_batch_size = self.stats.max_batch_size.max(n as u64);
        self.stats.busy += report.duration * cores.len() as u32;
        self.stats.makespan = self.stats.makespan.max(finish);
        let handles: Vec<TaskHandle> = meta.iter().map(|&(h, ..)| h).collect();
        self.emit_dispatch(
            dispatch,
            start,
            finish,
            &cores,
            &handles,
            n as u64,
            Some(head_key),
        );
        for (handle, priority, arrival, _eligible, attempt) in meta {
            self.stats.failed += 1;
            self.emit_retire(handle, dispatch, finish, Some(e.to_string()));
            self.completions.push(Completion {
                handle,
                priority,
                submitted_at: arrival,
                started_at: start,
                finished_at: finish,
                batch_size: n,
                dispatch: Some(dispatch),
                batch_key: Some(head_key),
                attempts: attempt + 1,
                report: report.clone(),
                outcome: TaskOutcome::Failed(e.clone()),
            });
        }
        Ok(true)
    }

    /// Books a successful batch dispatch on the timeline and fans its
    /// per-member outputs back out as completions. A member whose
    /// [`BatchOutput`] is `Err` retires as a `Failed` completion while
    /// its siblings succeed.
    fn book_batch(
        &mut self,
        meta: &[(TaskHandle, Priority, Duration, Duration, u32)],
        head_key: BatchKey,
        latest_eligible: Duration,
        report: TaskReport,
        outputs: Vec<BatchOutput>,
    ) {
        let n = meta.len();
        // One device dispatch for the whole batch; it cannot start
        // before its last member became eligible.
        let (start, finish, cores) =
            self.occupy(report.cores_used, latest_eligible, report.duration);
        let dispatch = self.next_dispatch;
        self.next_dispatch += 1;
        self.stats.dispatches += 1;
        self.stats.dispatched_tasks += n as u64;
        self.stats.max_batch_size = self.stats.max_batch_size.max(n as u64);
        self.stats.busy += report.duration * cores.len() as u32;
        self.stats.makespan = self.stats.makespan.max(finish);
        let handles: Vec<TaskHandle> = meta.iter().map(|&(h, ..)| h).collect();
        self.emit_dispatch(
            dispatch,
            start,
            finish,
            &cores,
            &handles,
            n as u64,
            Some(head_key),
        );

        // Fan the completions back out: each member keeps its own
        // arrival and is charged the shared start/finish.
        for (&(handle, priority, arrival, _eligible, attempt), output) in meta.iter().zip(outputs) {
            let outcome = match output {
                Ok(value) => {
                    self.stats.completed += 1;
                    self.stats.total_wait += start - arrival;
                    self.stats.total_service += report.duration;
                    let latency = finish - arrival;
                    self.stats.total_latency += latency;
                    self.stats.latency_samples.push(latency);
                    self.book_stages(start - arrival, report.duration, &report.stats, 1);
                    self.emit_retire(handle, dispatch, finish, None);
                    TaskOutcome::Ok(value)
                }
                Err(e) => {
                    self.stats.failed += 1;
                    self.emit_retire(handle, dispatch, finish, Some(e.to_string()));
                    TaskOutcome::Failed(e)
                }
            };
            self.completions.push(Completion {
                handle,
                priority,
                submitted_at: arrival,
                started_at: start,
                finished_at: finish,
                batch_size: n,
                dispatch: Some(dispatch),
                batch_key: Some(head_key),
                attempts: attempt + 1,
                report: report.clone(),
                outcome,
            });
        }
    }

    /// Dispatches until the given task retires and returns its
    /// completion — which may be a `Failed` one; failed work retires
    /// with an error completion rather than vanishing from the queue.
    /// Returns immediately if it already retired.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::InvalidArg`] only when the handle was never
    /// submitted to this queue.
    pub fn wait(&mut self, handle: TaskHandle) -> Result<&Completion> {
        // Completions are append-only, so scan by position to keep the
        // borrow checker happy across `step` calls.
        loop {
            if let Some(pos) = self.completions.iter().position(|c| c.handle == handle) {
                return Ok(&self.completions[pos]);
            }
            if self.pending.iter().any(|p| p.handle == handle) {
                self.step()?;
            } else {
                return Err(Error::InvalidArg(format!(
                    "unknown task handle {}",
                    handle.id()
                )));
            }
        }
    }

    /// Dispatches every pending task and returns all completions so far,
    /// ordered by finish time (FIFO for ties), consuming them from the
    /// queue. Job failures do **not** abort the drain: each failed task
    /// retires as a `Failed` completion and the drain continues.
    /// Termination is guaranteed — retries are bounded by the policy's
    /// `max_retries`, after which a task retires as failed.
    ///
    /// # Errors
    ///
    /// Reserved for queue-level invariant violations.
    pub fn drain(&mut self) -> Result<Vec<Completion>> {
        while !self.pending.is_empty() {
            self.step()?;
        }
        let mut done = std::mem::take(&mut self.completions);
        done.sort_by_key(|c| (c.finished_at, c.handle.id()));
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::timing::VecOp;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20))
    }

    fn charge_kernel(op: VecOp) -> impl FnOnce(&mut ApuContext<'_>) -> Result<()> {
        move |ctx| {
            ctx.core_mut().charge(op);
            Ok(())
        }
    }

    #[test]
    fn kernel_roundtrip_reports_cycles() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        let done = q.wait(h).unwrap();
        assert!(done.report.cycles.get() > 0);
        assert_eq!(done.submitted_at, Duration::ZERO);
        assert_eq!(done.started_at, Duration::ZERO);
        assert_eq!(done.finished_at, done.report.duration);
        assert!(done.output::<()>().is_some());
        assert_eq!(q.stats().completed, 1);
    }

    #[test]
    fn priorities_jump_the_line() {
        // One core: dispatch order is observable through start times.
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let lo = q
            .submit_kernel(Priority::Low, charge_kernel(VecOp::AddU16))
            .unwrap();
        let hi = q
            .submit_kernel(Priority::High, charge_kernel(VecOp::AddU16))
            .unwrap();
        let done = q.drain().unwrap();
        let pos = |h: TaskHandle| done.iter().position(|c| c.handle == h).unwrap();
        assert!(
            pos(hi) < pos(lo),
            "high-priority task must dispatch before the earlier low-priority one"
        );
        assert!(done[pos(hi)].started_at < done[pos(lo)].started_at);
    }

    #[test]
    fn fifo_within_a_priority_class() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let handles: Vec<TaskHandle> = (0..4)
            .map(|_| {
                q.submit_kernel(Priority::Normal, charge_kernel(VecOp::Or16))
                    .unwrap()
            })
            .collect();
        let done = q.drain().unwrap();
        let starts: Vec<Duration> = handles
            .iter()
            .map(|&h| done.iter().find(|c| c.handle == h).unwrap().started_at)
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn arrivals_gate_dispatch_and_waits_accumulate() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        // Second task arrives late; the queue idles until its arrival.
        let late = Duration::from_millis(10);
        let a = q
            .submit_at(
                Priority::Normal,
                Duration::ZERO,
                Box::new(|dev: &mut ApuDevice| {
                    let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                    Ok((r, Box::new(()) as Box<dyn Any>))
                }),
            )
            .unwrap();
        let b = q
            .submit_at(
                Priority::Normal,
                late,
                Box::new(|dev: &mut ApuDevice| {
                    let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                    Ok((r, Box::new(()) as Box<dyn Any>))
                }),
            )
            .unwrap();
        let done = q.drain().unwrap();
        let first = done.iter().find(|c| c.handle == a).unwrap();
        let second = done.iter().find(|c| c.handle == b).unwrap();
        assert!(first.finished_at < late, "first task fits before arrival");
        assert_eq!(second.started_at, late, "idle queue waits for arrival");
        assert_eq!(second.wait(), Duration::ZERO);
    }

    #[test]
    fn queue_full_rejects_and_counts() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_pending(2));
        q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        let r = q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16));
        assert!(matches!(
            r,
            Err(Error::QueueFull {
                pending: 2,
                capacity: 2
            })
        ));
        assert_eq!(q.stats().rejected, 1);
        // Draining frees capacity.
        q.drain().unwrap();
        assert!(q
            .submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .is_ok());
    }

    #[test]
    fn failed_jobs_retire_error_completions() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit(
                Priority::Normal,
                Box::new(|_dev| Err(Error::TaskFailed("boom".into()))),
            )
            .unwrap();
        // The failure is contained: waiting on the handle yields an
        // error completion instead of erroring the queue.
        let done = q.wait(h).expect("failed work still retires");
        assert!(done.is_failed());
        assert!(matches!(done.error(), Some(Error::TaskFailed(_))));
        assert!(done.output::<()>().is_none());
        assert_eq!(done.attempts, 1);
        assert_eq!(q.stats().failed, 1);
        assert_eq!(q.stats().completed, 0);
    }

    #[test]
    fn wait_on_failed_handle_is_not_unknown() {
        // Regression: `wait` on a handle whose job failed used to abort
        // with the job error (or later report "unknown task handle").
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit(
                Priority::Normal,
                Box::new(|_dev| Err(Error::TaskFailed("boom".into()))),
            )
            .unwrap();
        q.step().unwrap();
        // Already retired: a second wait still finds the completion.
        assert!(q.wait(h).unwrap().is_failed());
        // A genuinely unknown handle is still rejected.
        let bogus = TaskHandle(u64::MAX);
        assert!(matches!(q.wait(bogus), Err(Error::InvalidArg(_))));
    }

    #[test]
    fn failed_jobs_still_consume_device_time() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit(
            Priority::Normal,
            Box::new(|dev: &mut ApuDevice| {
                // Burn real device cycles, then fail.
                dev.run_task(charge_kernel(VecOp::AddU16))?;
                Err(Error::TaskFailed("late failure".into()))
            }),
        )
        .unwrap();
        let done = q.drain().unwrap();
        assert_eq!(done.len(), 1);
        assert!(done[0].is_failed());
        assert_eq!(done[0].dispatch, Some(0), "the job reached the device");
        assert!(
            done[0].report.cycles.get() > 0,
            "consumed cycles are booked on the failed completion"
        );
        assert!(done[0].finished_at > done[0].started_at);
        assert!(
            q.stats().busy > Duration::ZERO,
            "failed work still occupies the timeline"
        );
    }

    #[test]
    fn deadline_expired_tasks_shed_without_dispatching() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        // A long head job pushes the horizon past the second task's TTL.
        q.submit_weighted(
            Priority::Normal,
            Duration::ZERO,
            1,
            Box::new(|dev: &mut ApuDevice| {
                let mut r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                r.duration = Duration::from_millis(50);
                Ok((r, Box::new(()) as Box<dyn Any>))
            }),
        )
        .unwrap();
        let ttl = Duration::from_millis(1);
        let h = q
            .submit_with_ttl(
                Priority::Normal,
                Duration::ZERO,
                ttl,
                Box::new(|_dev: &mut ApuDevice| {
                    panic!("an expired task must never dispatch");
                }),
            )
            .unwrap();
        let done = q.drain().unwrap();
        let shed = done.iter().find(|c| c.handle == h).unwrap();
        assert!(shed.is_failed());
        assert!(matches!(
            shed.error(),
            Some(Error::DeadlineExceeded { deadline }) if *deadline == ttl
        ));
        assert_eq!(shed.dispatch, None, "never reached the device");
        assert_eq!(q.stats().expired, 1);
        assert_eq!(q.stats().completed, 1);
    }

    #[test]
    fn retries_are_bounded_and_deterministic() {
        use crate::fault::FaultPlan;
        let policy = RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(100),
            multiplier: 2.0,
        };
        let run = || {
            let mut dev = device();
            dev.inject_faults(FaultPlan::new(7).fail_every_kth_task(1));
            let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_retry(policy));
            let h = q
                .submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
                .unwrap();
            let done = q.wait(h).unwrap();
            (
                done.attempts,
                done.finished_at,
                q.stats().retries,
                q.stats().failed,
            )
        };
        let (attempts, finished, retries, failed) = run();
        assert_eq!(attempts, 3, "initial attempt plus two retries");
        assert_eq!(retries, 2);
        assert_eq!(failed, 1);
        // Backoff: 100µs then 200µs of delay before the final failure.
        assert_eq!(finished, Duration::from_micros(300));
        assert_eq!(
            run(),
            (attempts, finished, retries, failed),
            "deterministic"
        );
    }

    #[test]
    fn retry_recovers_a_transient_fault() {
        use crate::fault::FaultPlan;
        let mut dev = device();
        dev.inject_faults(FaultPlan::new(3).fail_task_rate(0.9));
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default().with_retry(RetryPolicy {
                max_retries: 32,
                ..RetryPolicy::default()
            }),
        );
        let h = q
            .submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        let done = q.wait(h).unwrap();
        // With 32 retries against a 0.9 fault rate, the task eventually
        // lands (the plan is deterministic, so this cannot flake).
        assert!(done.is_ok(), "outcome: {:?}", done.error());
        assert!(done.attempts > 1, "at least one retry happened");
        let attempts = done.attempts;
        assert_eq!(q.stats().completed, 1);
        assert_eq!(q.stats().failed, 0);
        assert_eq!(q.stats().retries, u64::from(attempts) - 1);
    }

    #[test]
    fn multi_core_jobs_occupy_multiple_cores() {
        let mut dev = device();
        let cores = dev.config().cores;
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit_job(Priority::Normal, Duration::ZERO, move |dev| {
            let tasks: Vec<crate::CoreTask<'_>> = (0..cores)
                .map(|_| {
                    Box::new(|ctx: &mut ApuContext<'_>| {
                        ctx.core_mut().charge(VecOp::AddU16);
                        Ok(())
                    }) as _
                })
                .collect();
            let r = dev.run_parallel(tasks)?;
            Ok((r, ()))
        })
        .unwrap();
        let done = q.drain().unwrap();
        assert_eq!(done[0].report.cores_used, cores);
        // All cores are busy until the parallel job's finish.
        assert!((q.stats().occupancy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_submission_counts_batches() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit_weighted(
            Priority::Normal,
            Duration::ZERO,
            8,
            Box::new(|dev: &mut ApuDevice| {
                let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                Ok((r, Box::new(()) as Box<dyn Any>))
            }),
        )
        .unwrap();
        q.drain().unwrap();
        let s = q.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_tasks, 8);
        assert_eq!(s.completed, 8);
        assert_eq!(
            s.max_batch_size, 8,
            "weighted submissions count toward the largest batch"
        );
        assert_eq!(s.latency_samples.len(), 8);
        assert!(q
            .submit_weighted(
                Priority::Normal,
                Duration::ZERO,
                0,
                Box::new(|_: &mut ApuDevice| unreachable!()),
            )
            .is_err());
    }

    #[test]
    fn typed_outputs_downcast() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit_job(Priority::Normal, Duration::ZERO, |dev| {
                let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                Ok((r, vec![1u32, 2, 3]))
            })
            .unwrap();
        q.wait(h).unwrap();
        let done = q.drain().unwrap();
        let v: Vec<u32> = done.into_iter().next().unwrap().into_output().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn unknown_handle_is_an_error() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
            .unwrap();
        q.drain().unwrap();
        // Handle retired and drained away: no longer known.
        assert!(q.wait(h).is_err());
    }

    /// A batch runner that charges one op for the whole dispatch and
    /// echoes every member's payload back as its output.
    fn echo_runner<'t>(op: VecOp) -> BatchRunner<'t> {
        Box::new(move |dev: &mut ApuDevice, payloads: Vec<Box<dyn Any>>| {
            let report = dev.run_task(charge_kernel(op))?;
            Ok((report, payloads.into_iter().map(Ok).collect()))
        })
    }

    fn submit_echo(
        q: &mut DeviceQueue<'_, '_>,
        priority: Priority,
        arrival: Duration,
        key: BatchKey,
        tag: u32,
    ) -> TaskHandle {
        q.submit_batchable(
            priority,
            arrival,
            key,
            Box::new(tag),
            echo_runner(VecOp::AddU16),
        )
        .unwrap()
    }

    #[test]
    fn batchable_jobs_coalesce_up_to_max_batch() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(3));
        let key = BatchKey::new(7);
        let handles: Vec<TaskHandle> = (0..5)
            .map(|i| submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, i))
            .collect();
        let done = q.drain().unwrap();
        assert_eq!(done.len(), 5);
        // First dispatch carries three members, the second the rest.
        let by_handle = |h: TaskHandle| done.iter().find(|c| c.handle == h).unwrap();
        for (i, &h) in handles.iter().enumerate() {
            let c = by_handle(h);
            assert_eq!(c.batch_key, Some(key));
            // Payloads fan back out to their own submitters.
            assert_eq!(c.output::<u32>(), Some(&(i as u32)));
            assert_eq!(c.batch_size, if i < 3 { 3 } else { 2 });
            assert_eq!(c.dispatch, Some(if i < 3 { 0 } else { 1 }));
        }
        let s = q.stats();
        assert_eq!(s.dispatches, 2);
        assert_eq!(s.dispatched_tasks, 5);
        assert_eq!(s.max_batch_size, 3);
        assert_eq!(s.completed, 5);
        assert_eq!(s.peak_pending, 5);
        assert!((s.mean_batch_size() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn batches_never_mix_keys_or_priorities() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(8));
        let (ka, kb) = (BatchKey::new(1), BatchKey::new(2));
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, ka, 0);
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, kb, 1);
        submit_echo(&mut q, Priority::High, Duration::ZERO, ka, 2);
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, ka, 3);
        let done = q.drain().unwrap();
        for c in &done {
            let peers: Vec<_> = done.iter().filter(|o| o.dispatch == c.dispatch).collect();
            assert!(peers.iter().all(|o| o.batch_key == c.batch_key));
            assert!(peers.iter().all(|o| o.priority == c.priority));
        }
        // Only the two (Normal, ka) jobs could coalesce.
        assert_eq!(q.stats().dispatches, 3);
        assert_eq!(q.stats().max_batch_size, 2);
    }

    #[test]
    fn max_batch_wait_pulls_in_stragglers() {
        let late = Duration::from_millis(1);
        let key = BatchKey::new(3);

        // Without a wait window, the head dispatches alone.
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(4));
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, 0);
        submit_echo(&mut q, Priority::Normal, late, key, 1);
        let done = q.drain().unwrap();
        assert!(done.iter().all(|c| c.batch_size == 1));

        // With the window open past the straggler's arrival, one batch
        // forms and the early member is charged the wait.
        let mut dev = device();
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default()
                .with_max_batch(4)
                .with_max_batch_wait(late),
        );
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, 0);
        submit_echo(&mut q, Priority::Normal, late, key, 1);
        let done = q.drain().unwrap();
        assert!(done.iter().all(|c| c.batch_size == 2));
        let early = done
            .iter()
            .find(|c| c.submitted_at == Duration::ZERO)
            .unwrap();
        assert_eq!(early.started_at, late, "batch waits for its last member");
        assert!(early.wait() >= late);
    }

    #[test]
    fn fifo_within_class_is_preserved_under_batching() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(2));
        let key = BatchKey::new(9);
        let handles: Vec<TaskHandle> = (0..6)
            .map(|i| submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, i))
            .collect();
        let done = q.drain().unwrap();
        let starts: Vec<Duration> = handles
            .iter()
            .map(|&h| done.iter().find(|c| c.handle == h).unwrap().started_at)
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        // Members ride with their submission neighbours: {0,1} {2,3} {4,5}.
        let dispatch_of = |h: TaskHandle| done.iter().find(|c| c.handle == h).unwrap().dispatch;
        for pair in handles.chunks(2) {
            assert_eq!(dispatch_of(pair[0]), dispatch_of(pair[1]));
        }
    }

    #[test]
    fn queue_full_fires_at_exactly_max_pending_with_batching() {
        let mut dev = device();
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default()
                .with_max_pending(3)
                .with_max_batch(12),
        );
        let key = BatchKey::new(4);
        for i in 0..3 {
            submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, i);
        }
        let r = q.submit_batchable(
            Priority::Normal,
            Duration::ZERO,
            key,
            Box::new(3u32),
            echo_runner(VecOp::AddU16),
        );
        assert!(matches!(
            r,
            Err(Error::QueueFull {
                pending: 3,
                capacity: 3
            })
        ));
        assert_eq!(q.stats().rejected, 1);
        // Draining coalesces the backlog into one dispatch and frees
        // all three admission slots at once.
        q.drain().unwrap();
        assert_eq!(q.stats().dispatches, 1);
        assert_eq!(q.stats().max_batch_size, 3);
        assert!(q
            .submit_batchable(
                Priority::Normal,
                Duration::ZERO,
                key,
                Box::new(4u32),
                echo_runner(VecOp::AddU16),
            )
            .is_ok());
    }

    #[test]
    fn batch_runner_output_arity_is_validated() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(4));
        let key = BatchKey::new(5);
        let bad: BatchRunner<'_> = Box::new(|dev: &mut ApuDevice, _payloads| {
            let report = dev.run_task(charge_kernel(VecOp::AddU16))?;
            Ok((report, Vec::new())) // wrong: drops every output
        });
        q.submit_batchable(Priority::Normal, Duration::ZERO, key, Box::new(0u32), bad)
            .unwrap();
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, 1);
        // The malformed dispatch is contained: both members retire as
        // failed completions instead of aborting the drain.
        let done = q.drain().unwrap();
        assert_eq!(done.len(), 2);
        for c in &done {
            assert!(matches!(c.error(), Some(Error::TaskFailed(_))));
        }
        assert_eq!(q.stats().failed, 2);
    }

    #[test]
    fn percentile_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&samples, 0.0), ms(1));
        // Nearest-rank: the p50 of 1..=100 is the ceil(0.5·100) = 50th
        // order statistic, not the 51st.
        assert_eq!(percentile(&samples, 0.5), ms(50));
        assert_eq!(percentile(&samples, 0.501), ms(51));
        assert_eq!(percentile(&samples, 0.99), ms(99));
        assert_eq!(percentile(&samples, 1.0), ms(100));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        // Single sample: every quantile is that sample.
        assert_eq!(percentile(&[ms(42)], 0.0), ms(42));
        assert_eq!(percentile(&[ms(42)], 1.0), ms(42));
    }

    #[test]
    fn stats_track_throughput_and_occupancy() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        for _ in 0..4 {
            q.submit_kernel(Priority::Normal, charge_kernel(VecOp::AddU16))
                .unwrap();
        }
        q.drain().unwrap();
        let s = q.stats();
        assert_eq!(s.completed, 4);
        assert!(s.throughput() > 0.0);
        assert!(s.occupancy() > 0.0 && s.occupancy() <= 1.0);
        assert!(s.mean_latency() > Duration::ZERO);
        assert!(s.latency_percentile(0.5) <= s.latency_percentile(0.99));
    }
}
