//! Device command queue: a serving engine over the simulated APU.
//!
//! The paper's host runtime drives the APU through a GDL command queue —
//! tasks are enqueued, dispatched to cores, and retired asynchronously.
//! This module provides that layer for the simulator: clients open a
//! [`DeviceQueue`] over an [`ApuDevice`], submit work described by a
//! [`TaskSpec`] — priority class, tenant, arrival timestamp, deadline,
//! weight, batch key — and receive a [`TaskHandle`]. The scheduler
//! replays jobs on the simulated device and places them on a
//! discrete-event *virtual timeline* with per-core availability, so a
//! stream of queries reports realistic queueing delay, service time, and
//! end-to-end latency without wall-clock sleeps.
//!
//! Scheduling model:
//!
//! * jobs become eligible at their arrival time (open-loop streams pass
//!   Poisson timestamps; closed-loop callers omit the arrival, which
//!   means "now"),
//! * among eligible jobs the highest [`Priority`] wins; within a class
//!   the default [`SchedPolicy::Fifo`] serves submission order, while
//!   [`SchedPolicy::SloAware`] serves tenants in weighted fair-share
//!   order (start-time fair queueing) with earliest-deadline-first
//!   tie-breaks,
//! * a job that used `c` cores (see [`TaskReport::cores_used`]) occupies
//!   the `c` earliest-available cores from its start until its finish,
//! * admission control bounds the backlog: submissions beyond
//!   [`QueueConfig::max_pending`] are rejected with [`Error::QueueFull`],
//!   and an optional [`AdmissionControl`] sheds queued low-priority work
//!   once the backlog crosses its watermarks, before it poisons
//!   high-priority tail latency.
//!
//! # Continuous batching
//!
//! Jobs submitted through [`TaskSpec::batch`] declare a
//! [`BatchKey`]: when such a job reaches the head of the line, the
//! dispatcher coalesces it with every pending job of the *same priority
//! and key* — in submission order, up to [`QueueConfig::max_batch`]
//! members — whose arrival falls within [`QueueConfig::max_batch_wait`]
//! of the dispatch opportunity. The members run as **one** device
//! dispatch (the batch runner receives every member's payload), and the
//! completions fan back out individually: each member keeps its own
//! arrival, is charged the batch's start and finish (so early arrivals
//! pay the wait for stragglers), and reports the batch-wide
//! [`TaskReport`]. Batches never mix priority classes or keys, and
//! admission control is unaffected: capacity is consumed per submission,
//! not per dispatch.
//!
//! # Failure containment
//!
//! A failing job must not poison the queue. Every submission retires
//! with a [`Completion`] whose [`TaskOutcome`] is either `Ok(value)` or
//! `Failed(error)`: job errors, poisoned batch members, injected faults
//! (see [`crate::FaultPlan`]), and deadline-shed tasks all surface as
//! error completions instead of aborting [`DeviceQueue::step`] /
//! [`DeviceQueue::wait`] / [`DeviceQueue::drain`]. A failed job still
//! consumed simulated device time, so its dispatch is booked on the
//! virtual timeline like any other. Tasks submitted with a TTL
//! ([`TaskSpec::ttl`]) are shed *without dispatching*
//! once their deadline passes (`Failed(DeadlineExceeded)`, load
//! shedding), and an optional [`RetryPolicy`] re-queues transient
//! **pre-dispatch** failures (the fault-injection gate) with bounded
//! exponential backoff. Post-dispatch failures are never retried — the
//! job closure is consumed by execution.
//!
//! Per-queue counters ([`QueueStats`]) mirror the [`crate::VcuStats`]
//! style: monotone counts plus accumulated wait/service/latency, a
//! bounded latency reservoir for percentile reporting, and batch-size /
//! occupancy accounting for the continuous-batching dispatcher. Wait,
//! service, and latency accumulators cover successful completions only;
//! failed work is visible through [`QueueStats::failed`],
//! [`QueueStats::expired`], and [`QueueStats::retries`], and its device
//! time through `busy` / `makespan`.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use crate::clock::Cycles;
use crate::device::{ApuContext, ApuDevice, TaskReport};
use crate::error::Error;
use crate::spec::{AdmissionControl, SchedPolicy, TaskSpec, TenantId};
use crate::stats::{LatencyReservoir, StageBreakdown, VcuStats, DEFAULT_RESERVOIR_CAP};
use crate::trace::{FaultScope, TraceEvent, TraceEventKind};
use crate::Result;

pub use crate::stats::{percentile, QueueStats};

/// Fixed-point scale of the fair-share virtual clock: one unit of work
/// at tenant weight 1 advances the tenant's virtual time by this much.
const VT_SCALE: u128 = 1_000_000;

/// Dispatch priority of a queued task. Lower discriminant = served first.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Priority {
    /// Latency-sensitive foreground work (interactive queries).
    High,
    /// Default class.
    Normal,
    /// Throughput-oriented background work (batch analytics).
    Low,
}

/// Identifier of a submitted task, returned by the `submit` family and
/// echoed in the matching [`Completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskHandle(u64);

impl TaskHandle {
    /// The raw submission sequence number.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// Batch-compatibility class of a [`DeviceQueue::submit_batchable`]
/// submission: jobs may be coalesced into one device dispatch only when
/// they share a key (and a [`Priority`]). Producers derive the key from
/// whatever makes dispatches fungible — e.g. the RAG layer keys on the
/// corpus and `k` so only same-corpus retrievals ever share a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey(u64);

impl BatchKey {
    /// Wraps a caller-chosen class discriminant.
    pub const fn new(v: u64) -> Self {
        BatchKey(v)
    }

    /// The raw class discriminant.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Bounded retry-with-backoff for transient **pre-dispatch** failures
/// (the fault-injection gate). Post-dispatch failures are never retried:
/// the job closure is consumed by execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-dispatch attempts after the first (0 disables retry).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff: Duration,
    /// Multiplier applied to the backoff for each further retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(100),
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay before re-dispatching after failed attempt
    /// `attempt` (0-based): `backoff · multiplierᵃᵗᵗᵉᵐᵖᵗ`.
    pub fn delay(&self, attempt: u32) -> Duration {
        self.backoff.mul_f64(self.multiplier.powi(attempt as i32))
    }
}

/// Configuration of a [`DeviceQueue`].
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Maximum number of not-yet-dispatched tasks; submissions beyond
    /// this are rejected with [`Error::QueueFull`] (admission control).
    pub max_pending: usize,
    /// Most batchable jobs coalesced into one device dispatch. The
    /// default of 1 disables coalescing.
    pub max_batch: usize,
    /// How long past a dispatch opportunity the head-of-line batchable
    /// job waits for same-class stragglers (bounds batching-induced
    /// latency). Zero — the default — coalesces only jobs that already
    /// arrived.
    pub max_batch_wait: Duration,
    /// Retry policy for transient pre-dispatch failures; `None` — the
    /// default — retires them immediately as error completions.
    pub retry: Option<RetryPolicy>,
    /// Capacity of the latency reservoir backing percentile reporting
    /// (exact below the cap, deterministic subsample above it).
    pub latency_reservoir: usize,
    /// Dispatch-ordering policy. The default [`SchedPolicy::Fifo`] is
    /// byte-exact with the historical scheduler; [`SchedPolicy::SloAware`]
    /// adds weighted fair-share dequeue and deadline awareness.
    pub scheduler: SchedPolicy,
    /// Per-tenant fair-share weights for [`SchedPolicy::SloAware`]
    /// (raw [`TenantId`] → weight; unlisted tenants weigh 1).
    pub tenant_weights: BTreeMap<u64, u64>,
    /// Human-readable display names for tenants (raw [`TenantId`] →
    /// name), carried into [`QueueStats::tenant_names`] and rendered —
    /// escaped — as Prometheus label values. Unlabelled tenants render
    /// as their numeric id.
    pub tenant_labels: BTreeMap<u64, String>,
    /// Backlog watermarks for admission shedding; `None` — the default —
    /// never sheds on backlog (only [`QueueConfig::max_pending`] rejects
    /// at submission).
    pub admission: Option<AdmissionControl>,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_pending: 1024,
            max_batch: 1,
            max_batch_wait: Duration::ZERO,
            retry: None,
            latency_reservoir: DEFAULT_RESERVOIR_CAP,
            scheduler: SchedPolicy::default(),
            tenant_weights: BTreeMap::new(),
            tenant_labels: BTreeMap::new(),
            admission: None,
        }
    }
}

impl QueueConfig {
    /// Sets the admission-control backlog bound.
    #[must_use]
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }

    /// Sets the continuous-batching coalescing bound (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets how long a head-of-line batchable job waits for stragglers.
    #[must_use]
    pub fn with_max_batch_wait(mut self, max_batch_wait: Duration) -> Self {
        self.max_batch_wait = max_batch_wait;
        self
    }

    /// Enables bounded retry for transient pre-dispatch failures.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Sets the latency-reservoir capacity (clamped to ≥ 1).
    #[must_use]
    pub fn with_latency_reservoir(mut self, cap: usize) -> Self {
        self.latency_reservoir = cap.max(1);
        self
    }

    /// Selects the dispatch-ordering policy.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets one tenant's fair-share weight (clamped to ≥ 1) for
    /// [`SchedPolicy::SloAware`]: a tenant of weight `w` receives `w`
    /// shares of the dispatch bandwidth per share of a weight-1 tenant.
    #[must_use]
    pub fn with_tenant_weight(mut self, tenant: TenantId, weight: u64) -> Self {
        self.tenant_weights.insert(tenant.get(), weight.max(1));
        self
    }

    /// Sets one tenant's human-readable display name, rendered (escaped)
    /// as the `tenant` label value in [`crate::trace::prometheus_text`].
    #[must_use]
    pub fn with_tenant_label(mut self, tenant: TenantId, name: impl Into<String>) -> Self {
        self.tenant_labels.insert(tenant.get(), name.into());
        self
    }

    /// Enables admission shedding at the given backlog watermarks.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionControl) -> Self {
        self.admission = Some(admission);
        self
    }
}

/// Per-task outcome carried by a [`Completion`].
#[derive(Debug)]
pub enum TaskOutcome {
    /// The task ran; the boxed value is the job's output.
    Ok(Box<dyn Any>),
    /// The task retired with an error: its job failed, its batch member
    /// was poisoned, the fault gate killed it, or its deadline passed
    /// before dispatch.
    Failed(Error),
}

/// A retired task: scheduling timestamps, the device-side [`TaskReport`],
/// and the task's [`TaskOutcome`].
#[derive(Debug)]
pub struct Completion {
    /// Handle returned at submission.
    pub handle: TaskHandle,
    /// Priority the task ran at.
    pub priority: Priority,
    /// Tenant the task was submitted on behalf of (see
    /// [`TaskSpec::tenant`]; [`TenantId`] 0 when unspecified).
    pub tenant: TenantId,
    /// Arrival time on the virtual timeline.
    pub submitted_at: Duration,
    /// Dispatch time (arrival + queueing delay). For work that never
    /// reached the device (shed / fault-gated) this is the retire time.
    pub started_at: Duration,
    /// Retire time (`started_at` + service).
    pub finished_at: Duration,
    /// Logical tasks the carrying dispatch coalesced (1 when unbatched;
    /// the declared weight for `submit_weighted` jobs).
    pub batch_size: usize,
    /// Sequence number of the device dispatch that carried this task —
    /// batch members share it, so it identifies who rode together.
    /// `None` when the task never reached a device dispatch (deadline
    /// shed, or failed at the dispatch gate).
    pub dispatch: Option<u64>,
    /// Batch-compatibility key, for tasks submitted via
    /// [`DeviceQueue::submit_batchable`].
    pub batch_key: Option<BatchKey>,
    /// Dispatch attempts this task consumed (> 1 after retries; a shed
    /// task reports the attempts made before its deadline passed).
    pub attempts: u32,
    /// Device-side execution report. For a coalesced batch this is the
    /// **batch-wide** report, replicated to every member: device cycles
    /// and stats cover the whole dispatch, not one member's share. For a
    /// failed job it covers the device time consumed before the error;
    /// all-zero for work that never dispatched.
    pub report: TaskReport,
    /// The task's outcome; access through [`Completion::output`],
    /// [`Completion::into_output`], or [`Completion::error`].
    pub outcome: TaskOutcome,
}

impl Completion {
    /// Queueing delay before dispatch.
    pub fn wait(&self) -> Duration {
        self.started_at - self.submitted_at
    }

    /// End-to-end latency (arrival to retire).
    pub fn latency(&self) -> Duration {
        self.finished_at - self.submitted_at
    }

    /// Whether the task retired successfully.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, TaskOutcome::Ok(_))
    }

    /// Whether the task retired with an error completion.
    pub fn is_failed(&self) -> bool {
        !self.is_ok()
    }

    /// The error that failed the task, if any.
    pub fn error(&self) -> Option<&Error> {
        match &self.outcome {
            TaskOutcome::Failed(e) => Some(e),
            TaskOutcome::Ok(_) => None,
        }
    }

    /// Downcasts the job output to `T`; `None` on type mismatch or when
    /// the task failed.
    pub fn output<T: Any>(&self) -> Option<&T> {
        match &self.outcome {
            TaskOutcome::Ok(v) => v.downcast_ref::<T>(),
            TaskOutcome::Failed(_) => None,
        }
    }

    /// Per-stage breakdown of this completion's end-to-end latency (see
    /// [`StageBreakdown`]): the four components sum *exactly* to
    /// [`Completion::latency`]. Work that never reached the device (shed
    /// or gate-failed) has an all-zero service split.
    pub fn stage_breakdown(&self) -> StageBreakdown {
        StageBreakdown::from_parts(
            self.wait(),
            self.finished_at - self.started_at,
            &self.report.stats,
        )
    }

    /// Consumes the completion, returning the job output as `T`.
    ///
    /// # Errors
    ///
    /// Returns the task's own error for a failed completion, or
    /// [`Error::InvalidArg`] when the output has a different type.
    pub fn into_output<T: Any>(self) -> Result<T> {
        match self.outcome {
            TaskOutcome::Ok(v) => v
                .downcast::<T>()
                .map(|b| *b)
                .map_err(|_| Error::InvalidArg("completion output has a different type".into())),
            TaskOutcome::Failed(e) => Err(e),
        }
    }
}

/// A queued device job: runs kernels on the device and returns the
/// task report plus an arbitrary output value.
pub type Job<'t> = Box<dyn FnOnce(&mut ApuDevice) -> Result<(TaskReport, Box<dyn Any>)> + 't>;

/// One batch member's result: its output value, or the error that failed
/// it *individually* (siblings in the same dispatch are unaffected).
pub type BatchOutput = std::result::Result<Box<dyn Any>, Error>;

/// A batched device job: receives the payloads of every coalesced
/// member (in submission order) and must return exactly one
/// [`BatchOutput`] per payload, in the same order, plus the batch-wide
/// [`TaskReport`]. A top-level `Err` fails every member of the dispatch;
/// a per-member `Err` fails only that member.
pub type BatchRunner<'t> = Box<
    dyn FnOnce(&mut ApuDevice, Vec<Box<dyn Any>>) -> Result<(TaskReport, Vec<BatchOutput>)> + 't,
>;

pub(crate) enum Work<'t> {
    /// Dispatches alone.
    Single(Job<'t>),
    /// May be coalesced with same-priority, same-key neighbours. Every
    /// member carries an equivalent `run` closure; the dispatcher uses
    /// the first member's and drops the rest.
    Batchable {
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    },
}

struct Pending<'t> {
    handle: TaskHandle,
    priority: Priority,
    tenant: TenantId,
    arrival: Duration,
    /// When the task becomes dispatchable — equals `arrival` until a
    /// retry backoff pushes it later.
    eligible: Duration,
    /// Absolute start deadline on the virtual timeline; the scheduler
    /// sheds the task if it cannot dispatch by this time.
    deadline: Option<Duration>,
    /// Dispatch attempts already consumed by fault-gate retries.
    attempt: u32,
    weight: u64,
    /// Start-time-fair-queueing tag frozen at admission (see
    /// [`DeviceQueue::submit`]); orders same-priority work under
    /// [`SchedPolicy::SloAware`].
    vstart: u128,
    work: Work<'t>,
}

/// The scheduling attributes of a batch member, captured before its
/// payload is consumed by the batch runner.
#[derive(Clone, Copy)]
struct MemberMeta {
    handle: TaskHandle,
    priority: Priority,
    tenant: TenantId,
    arrival: Duration,
    /// Dispatch attempts already consumed by fault-gate retries.
    attempt: u32,
    weight: u64,
}

/// A serving queue over a borrowed [`ApuDevice`].
///
/// See the [module documentation](self) for the scheduling model.
///
/// ```
/// use apu_sim::{DeviceQueue, Priority, QueueConfig, ApuDevice, SimConfig, TaskSpec, VecOp};
///
/// # fn main() -> Result<(), apu_sim::Error> {
/// let mut dev = ApuDevice::try_new(SimConfig::default())?;
/// let mut queue = DeviceQueue::new(&mut dev, QueueConfig::default());
/// let h = queue.submit(
///     TaskSpec::kernel(|ctx| {
///         ctx.core_mut().charge(VecOp::AddU16);
///         Ok(())
///     })
///     .priority(Priority::High),
/// )?;
/// let done = queue.wait(h)?;
/// assert!(done.report.cycles.get() > 0);
/// # Ok(())
/// # }
/// ```
pub struct DeviceQueue<'d, 't> {
    dev: &'d mut ApuDevice,
    cfg: QueueConfig,
    /// Submission order preserved for FIFO-within-priority.
    pending: VecDeque<Pending<'t>>,
    completions: Vec<Completion>,
    /// Virtual time each core becomes free.
    core_free_at: Vec<Duration>,
    next_id: u64,
    next_dispatch: u64,
    stats: QueueStats,
    /// Fair-share state for [`SchedPolicy::SloAware`]: the global
    /// virtual clock and each tenant's virtual finish tag.
    vclock: u128,
    tenant_vtime: BTreeMap<u64, u128>,
}

impl<'d, 't> DeviceQueue<'d, 't> {
    /// Opens a queue over a device.
    pub fn new(dev: &'d mut ApuDevice, cfg: QueueConfig) -> Self {
        let cores = dev.config().cores;
        let reservoir = cfg.latency_reservoir;
        let tenant_names = cfg.tenant_labels.clone();
        DeviceQueue {
            dev,
            cfg,
            pending: VecDeque::new(),
            completions: Vec::new(),
            core_free_at: vec![Duration::ZERO; cores],
            next_id: 0,
            next_dispatch: 0,
            stats: QueueStats {
                cores,
                latency_samples: LatencyReservoir::with_capacity(reservoir),
                tenant_names,
                ..QueueStats::default()
            },
            vclock: 0,
            tenant_vtime: BTreeMap::new(),
        }
    }

    /// The underlying device (e.g. to allocate task buffers between
    /// dispatches).
    pub fn device_mut(&mut self) -> &mut ApuDevice {
        self.dev
    }

    /// Enables or disables timing fast-forward on the underlying device
    /// (see [`ApuDevice::run_task_memoized`]): replayed dispatches charge
    /// a memoized cycle total instead of re-walking their kernels.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.dev.set_fast_forward(on);
    }

    /// Converts a virtual-timeline instant to device cycles, the trace
    /// clock domain.
    fn trace_ts(&self, at: Duration) -> Cycles {
        self.dev.config().clock.secs_to_cycles(at.as_secs_f64())
    }

    /// Emits one queue-domain trace event stamped at virtual time `at`.
    /// The payload is built lazily so an untraced queue never even
    /// constructs it — with no sink installed this is a branch and
    /// nothing else, and in all cases no virtual time is charged.
    fn emit_with(&self, at: Duration, kind: impl FnOnce() -> TraceEventKind) {
        if let Some(t) = self.dev.trace() {
            t.record(TraceEvent {
                ts: self.trace_ts(at),
                kind: kind(),
            });
        }
    }

    /// Tasks submitted but not yet dispatched.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Per-queue counters so far.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Submits the work described by a [`TaskSpec`] — the single entry
    /// point of the submission API. Build the spec with
    /// [`TaskSpec::job`] / [`TaskSpec::typed`] / [`TaskSpec::kernel`] /
    /// [`TaskSpec::batch`] and compose priority, tenant, arrival,
    /// TTL/deadline, and weight freely. A shard pin
    /// ([`TaskSpec::on_shard`]) is ignored here: a single queue has no
    /// placement choice (see [`crate::DeviceCluster::submit`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit, or
    /// [`Error::InvalidArg`] for a zero weight.
    pub fn submit(&mut self, spec: TaskSpec<'t>) -> Result<TaskHandle> {
        if spec.weight == 0 {
            return Err(Error::InvalidArg("batch weight must be non-zero".into()));
        }
        if self.pending.len() >= self.cfg.max_pending {
            self.stats.rejected += 1;
            return Err(Error::QueueFull {
                pending: self.pending.len(),
                capacity: self.cfg.max_pending,
            });
        }
        let TaskSpec {
            priority,
            arrival,
            tenant,
            deadline,
            weight,
            shard: _,
            work,
        } = spec;
        let handle = TaskHandle(self.next_id);
        self.next_id += 1;
        self.stats.submitted += 1;
        self.stats
            .per_tenant
            .entry(tenant.get())
            .or_default()
            .submitted += weight;
        if weight > 1 {
            self.stats.batches += 1;
            self.stats.batched_tasks += weight;
        }
        let batch_key = match &work {
            Work::Batchable { key, .. } => Some(key.get()),
            Work::Single(_) => None,
        };
        // Start-time fair queueing (SFQ): freeze the virtual-time tag at
        // admission. A tenant's tag advances by weight/share per admitted
        // unit, so backlogged heavy tenants accumulate tags faster and
        // interleave with light tenants in proportion to their shares.
        let share = self.tenant_weight(tenant) as u128;
        let vstart = self
            .vclock
            .max(self.tenant_vtime.get(&tenant.get()).copied().unwrap_or(0));
        self.tenant_vtime
            .insert(tenant.get(), vstart + weight as u128 * VT_SCALE / share);
        self.pending.push_back(Pending {
            handle,
            priority,
            tenant,
            arrival,
            eligible: arrival,
            deadline,
            attempt: 0,
            weight,
            vstart,
            work,
        });
        self.stats.peak_pending = self.stats.peak_pending.max(self.pending.len());
        let deadline_cycles = deadline.map(|d| self.trace_ts(d));
        self.emit_with(arrival, || TraceEventKind::TaskSubmitted {
            handle: handle.0,
            priority,
            batch_key,
            weight,
            deadline: deadline_cycles,
        });
        Ok(handle)
    }

    /// Submits a job with an explicit arrival time on the virtual
    /// timeline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    #[deprecated(since = "0.6.0", note = "build a `TaskSpec` and call `submit(spec)`")]
    pub fn submit_at(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: Job<'t>,
    ) -> Result<TaskHandle> {
        self.submit(TaskSpec::job(job).priority(priority).at(arrival))
    }

    /// Submits a *batch* job folding `weight` logical tasks into one
    /// dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit, or
    /// [`Error::InvalidArg`] for a zero weight.
    #[deprecated(since = "0.6.0", note = "build a `TaskSpec` and call `submit(spec)`")]
    pub fn submit_weighted(
        &mut self,
        priority: Priority,
        arrival: Duration,
        weight: u64,
        job: Job<'t>,
    ) -> Result<TaskHandle> {
        self.submit(
            TaskSpec::job(job)
                .priority(priority)
                .at(arrival)
                .weight(weight),
        )
    }

    /// Submits a job with a time-to-live (see [`TaskSpec::ttl`] for the
    /// shedding semantics).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    #[deprecated(since = "0.6.0", note = "build a `TaskSpec` and call `submit(spec)`")]
    pub fn submit_with_ttl(
        &mut self,
        priority: Priority,
        arrival: Duration,
        ttl: Duration,
        job: Job<'t>,
    ) -> Result<TaskHandle> {
        self.submit(TaskSpec::job(job).priority(priority).at(arrival).ttl(ttl))
    }

    /// Submits a job eligible for **continuous batching** (see
    /// [`TaskSpec::batch`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    #[deprecated(since = "0.6.0", note = "build a `TaskSpec` and call `submit(spec)`")]
    pub fn submit_batchable(
        &mut self,
        priority: Priority,
        arrival: Duration,
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    ) -> Result<TaskHandle> {
        self.submit(
            TaskSpec::batch(key, payload, run)
                .priority(priority)
                .at(arrival),
        )
    }

    /// [`TaskSpec::batch`] with a time-to-live.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    #[deprecated(since = "0.6.0", note = "build a `TaskSpec` and call `submit(spec)`")]
    pub fn submit_batchable_with_ttl(
        &mut self,
        priority: Priority,
        arrival: Duration,
        ttl: Duration,
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    ) -> Result<TaskHandle> {
        self.submit(
            TaskSpec::batch(key, payload, run)
                .priority(priority)
                .at(arrival)
                .ttl(ttl),
        )
    }

    /// Convenience: submits a single-core kernel arriving now, with unit
    /// output.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    #[deprecated(
        since = "0.6.0",
        note = "build a `TaskSpec::kernel` and call `submit(spec)`"
    )]
    pub fn submit_kernel<F>(&mut self, priority: Priority, kernel: F) -> Result<TaskHandle>
    where
        F: FnOnce(&mut ApuContext<'_>) -> Result<()> + 't,
    {
        self.submit(TaskSpec::kernel(kernel).priority(priority))
    }

    /// Convenience: submits a job with a typed output, boxing it for the
    /// [`Completion`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog bound is hit.
    #[deprecated(
        since = "0.6.0",
        note = "build a `TaskSpec::typed` and call `submit(spec)`"
    )]
    pub fn submit_job<T, F>(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: F,
    ) -> Result<TaskHandle>
    where
        T: Any,
        F: FnOnce(&mut ApuDevice) -> Result<(TaskReport, T)> + 't,
    {
        self.submit(TaskSpec::typed(job).priority(priority).at(arrival))
    }

    /// Index (into `pending`) of the next task to dispatch. Under
    /// [`SchedPolicy::Fifo`]: among tasks that have arrived by the time
    /// a core frees up, the highest priority wins, FIFO within a class.
    /// Under [`SchedPolicy::SloAware`]: priority still dominates, then
    /// the smallest admission-time virtual start tag (weighted fair
    /// share), then the earliest deadline, then FIFO. If nothing has
    /// arrived yet, the earliest arrival (then priority, then FIFO) is
    /// chosen and the timeline advances to it (identical under both
    /// policies).
    fn select(&self) -> Option<usize> {
        if self.pending.is_empty() {
            return None;
        }
        let horizon = self.horizon();
        let arrived = match self.cfg.scheduler {
            SchedPolicy::Fifo => self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.eligible <= horizon)
                .min_by_key(|(i, p)| (p.priority, *i))
                .map(|(i, _)| i),
            SchedPolicy::SloAware => self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.eligible <= horizon)
                .min_by_key(|(i, p)| {
                    (
                        p.priority,
                        p.vstart,
                        p.deadline.unwrap_or(Duration::MAX),
                        *i,
                    )
                })
                .map(|(i, _)| i),
        };
        arrived.or_else(|| {
            self.pending
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (p.eligible, p.priority, *i))
                .map(|(i, _)| i)
        })
    }

    /// The effective fair-share weight of a tenant (default 1; see
    /// [`QueueConfig::with_tenant_weight`]).
    fn tenant_weight(&self, tenant: TenantId) -> u64 {
        self.cfg
            .tenant_weights
            .get(&tenant.get())
            .copied()
            .unwrap_or(1)
            .max(1)
    }

    /// Advances the queue's virtual clock to a dispatched task's start
    /// tag, so tenants that go idle and return re-enter at the current
    /// virtual time instead of catching up on credit they never used.
    fn advance_virtual_clock(&mut self, vstart: u128) {
        self.vclock = self.vclock.max(vstart);
    }

    /// The virtual time the next core frees up — the earliest moment any
    /// pending task could start.
    fn horizon(&self) -> Duration {
        self.core_free_at
            .iter()
            .copied()
            .min()
            .unwrap_or(Duration::ZERO)
    }

    /// An all-zero report for work that never reached the device.
    fn empty_report() -> TaskReport {
        TaskReport {
            cycles: Cycles::ZERO,
            duration: Duration::ZERO,
            stats: VcuStats::default(),
            cores_used: 0,
        }
    }

    /// Per-core cycle counters plus merged device stats, captured before
    /// running a job so a *failed* job's consumed device time can still
    /// be booked on the virtual timeline.
    fn device_snapshot(&self) -> (Vec<Cycles>, VcuStats) {
        let cores = (0..self.core_free_at.len())
            .map(|i| self.dev.core(i).expect("core index in range").cycles())
            .collect();
        (cores, self.dev.stats_total())
    }

    /// Synthesizes the report of a failed job from the device time it
    /// consumed before erroring.
    fn failed_report(&self, snap: (Vec<Cycles>, VcuStats)) -> TaskReport {
        let (start_cycles, start_stats) = snap;
        let mut max_delta = Cycles::ZERO;
        let mut cores_used = 0usize;
        for (i, s) in start_cycles.iter().enumerate() {
            let delta = self.dev.core(i).expect("core index in range").cycles() - *s;
            if delta > Cycles::ZERO {
                cores_used += 1;
                max_delta = max_delta.max(delta);
            }
        }
        TaskReport {
            cycles: max_delta,
            duration: self.dev.config().clock.cycles_to_duration(max_delta),
            stats: &self.dev.stats_total() - &start_stats,
            cores_used,
        }
    }

    /// Sheds every pending task whose deadline passes before it could
    /// possibly start, retiring each as `Failed(DeadlineExceeded)`
    /// without dispatching. Returns whether anything was shed.
    fn shed_expired(&mut self) -> bool {
        let horizon = self.horizon();
        let mut shed_any = false;
        let mut i = 0;
        while i < self.pending.len() {
            let expired = {
                let p = &self.pending[i];
                p.deadline.is_some_and(|d| d < p.eligible.max(horizon))
            };
            if !expired {
                i += 1;
                continue;
            }
            let task = self.pending.remove(i).expect("index is valid");
            let deadline = task.deadline.expect("task was expired by deadline");
            let batch_key = match &task.work {
                Work::Batchable { key, .. } => Some(*key),
                Work::Single(_) => None,
            };
            self.stats.expired += task.weight;
            self.stats
                .per_tenant
                .entry(task.tenant.get())
                .or_default()
                .expired += task.weight;
            self.completions.push(Completion {
                handle: task.handle,
                priority: task.priority,
                tenant: task.tenant,
                submitted_at: task.arrival,
                started_at: deadline,
                finished_at: deadline,
                batch_size: task.weight as usize,
                dispatch: None,
                batch_key,
                attempts: task.attempt,
                report: Self::empty_report(),
                outcome: TaskOutcome::Failed(Error::DeadlineExceeded { deadline }),
            });
            let deadline_cycles = self.trace_ts(deadline);
            self.emit_with(deadline, || TraceEventKind::TaskExpired {
                handle: task.handle.0,
                deadline: deadline_cycles,
            });
            shed_any = true;
        }
        shed_any
    }

    /// Cluster-level admission control: while the backlog exceeds a
    /// configured watermark (see [`AdmissionControl`]), sheds the
    /// lowest-priority latest-arrived pending task so the queued work
    /// low-priority tenants pile up cannot poison high-priority tail
    /// latency. Shed tasks retire as `Failed(`[`Error::AdmissionShed`]`)`
    /// without dispatching. High-priority work is never admission-shed.
    ///
    /// Backlog depth is measured on the **virtual timeline**: only tasks
    /// that have arrived by the queue's current horizon count, and only
    /// those are shed. An open-loop trace submitted up front is load the
    /// device has not seen yet — shedding it at submission time would
    /// act on a queue depth that never exists.
    ///
    /// Returns whether anything was shed.
    fn shed_admission_backlog(&mut self) -> bool {
        let Some(adm) = self.cfg.admission else {
            return false;
        };
        let horizon = self.horizon();
        let mut shed_any = false;
        loop {
            let backlog = self
                .pending
                .iter()
                .filter(|p| p.eligible <= horizon)
                .count();
            let (victim, watermark) = if backlog > adm.shed_normal_above {
                // Over the upper watermark: shed Normal and Low work,
                // lowest class first (Priority orders High < Normal <
                // Low, so `max_by_key` prefers Low), newest first.
                (
                    self.pending
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.eligible <= horizon && p.priority != Priority::High)
                        .max_by_key(|(i, p)| (p.priority, p.arrival, *i))
                        .map(|(i, _)| i),
                    adm.shed_normal_above,
                )
            } else if backlog > adm.shed_low_above {
                (
                    self.pending
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.eligible <= horizon && p.priority == Priority::Low)
                        .max_by_key(|(i, p)| (p.arrival, *i))
                        .map(|(i, _)| i),
                    adm.shed_low_above,
                )
            } else {
                (None, 0)
            };
            let Some(idx) = victim else { break };
            let task = self.pending.remove(idx).expect("victim index is valid");
            let at = task.eligible.max(horizon);
            let batch_key = match &task.work {
                Work::Batchable { key, .. } => Some(*key),
                Work::Single(_) => None,
            };
            self.stats.shed_admission += task.weight;
            self.stats
                .per_tenant
                .entry(task.tenant.get())
                .or_default()
                .shed += task.weight;
            let e = Error::AdmissionShed { backlog, watermark };
            let error_text = e.to_string();
            self.completions.push(Completion {
                handle: task.handle,
                priority: task.priority,
                tenant: task.tenant,
                submitted_at: task.arrival,
                started_at: at,
                finished_at: at,
                batch_size: task.weight as usize,
                dispatch: None,
                batch_key,
                attempts: task.attempt,
                report: Self::empty_report(),
                outcome: TaskOutcome::Failed(e),
            });
            self.emit_with(at, || TraceEventKind::TaskFailed {
                handle: task.handle.0,
                error: error_text,
            });
            shed_any = true;
        }
        shed_any
    }

    /// Dispatches one device job — a single task, or a coalesced batch
    /// of compatible batchable tasks — and places it on the virtual
    /// timeline, after shedding any deadline-expired backlog. A batch
    /// retires one [`Completion`] per member; the last completion
    /// retired by this step is returned. Returns `Ok(None)` when the
    /// queue is empty or the only action was re-queueing work for retry.
    ///
    /// # Errors
    ///
    /// Job failures do **not** error: they retire as `Failed` completions
    /// (counted in [`QueueStats::failed`]). The `Result` is reserved for
    /// queue-level invariant violations.
    pub fn step(&mut self) -> Result<Option<&Completion>> {
        let shed_expired = self.shed_expired();
        let shed = self.shed_admission_backlog() || shed_expired;
        let retired = match self.select() {
            Some(idx) => match self.pending[idx].work {
                Work::Single(_) => self.dispatch_single(idx)?,
                Work::Batchable { .. } => self.dispatch_batch(idx)?,
            },
            None => false,
        };
        if retired || shed {
            Ok(self.completions.last())
        } else {
            Ok(None)
        }
    }

    /// Occupies the `cores_used` earliest-available cores for
    /// `duration`, starting no earlier than `not_before`. Returns the
    /// dispatch's `(start, finish, occupied_core_indices)`; the indices
    /// identify the dispatch's tracks in an exported trace.
    fn occupy(
        &mut self,
        cores_used: usize,
        not_before: Duration,
        duration: Duration,
    ) -> (Duration, Duration, Vec<usize>) {
        let c = cores_used.clamp(1, self.core_free_at.len());
        let mut order: Vec<usize> = (0..self.core_free_at.len()).collect();
        order.sort_by_key(|&i| self.core_free_at[i]);
        let ready = self.core_free_at[order[c - 1]];
        let start = not_before.max(ready);
        let finish = start + duration;
        order.truncate(c);
        for &i in &order {
            self.core_free_at[i] = finish;
        }
        (start, finish, order)
    }

    /// Emits the [`TraceEventKind::DispatchIssued`] span for a dispatch
    /// just booked via [`DeviceQueue::occupy`].
    #[allow(clippy::too_many_arguments)]
    fn emit_dispatch(
        &self,
        dispatch: u64,
        start: Duration,
        finish: Duration,
        cores: &[usize],
        members: &[TaskHandle],
        tasks: u64,
        batch_key: Option<BatchKey>,
    ) {
        let (start_cycles, finish_cycles) = (self.trace_ts(start), self.trace_ts(finish));
        self.emit_with(start, || TraceEventKind::DispatchIssued {
            dispatch,
            start: start_cycles,
            finish: finish_cycles,
            cores: cores.to_vec(),
            members: members.iter().map(|h| h.0).collect(),
            tasks,
            batch_key: batch_key.map(BatchKey::get),
        });
    }

    /// Emits the [`TraceEventKind::TaskRetired`] marker for one member of
    /// a dispatch, at the dispatch's finish time.
    fn emit_retire(&self, handle: TaskHandle, dispatch: u64, at: Duration, error: Option<String>) {
        self.emit_with(at, || TraceEventKind::TaskRetired {
            handle: handle.0,
            dispatch,
            ok: error.is_none(),
            error,
        });
    }

    /// Books one successful completion — latency counters, reservoir
    /// samples, and stage breakdown — into both the queue-wide totals
    /// and the submitting tenant's [`crate::TenantStats`], `weight`
    /// times.
    fn book_success(
        &mut self,
        tenant: TenantId,
        wait: Duration,
        service: Duration,
        latency: Duration,
        stats: &VcuStats,
        weight: u64,
    ) {
        self.stats.completed += weight;
        self.stats.total_wait += wait * weight as u32;
        self.stats.total_service += service * weight as u32;
        self.stats.total_latency += latency * weight as u32;
        for _ in 0..weight {
            self.stats.latency_samples.push(latency);
        }
        let stages = StageBreakdown::from_parts(wait, service, stats);
        self.stats.stage_dispatch += stages.dispatch * weight as u32;
        self.stats.stage_dma += stages.dma * weight as u32;
        self.stats.stage_device += stages.device * weight as u32;
        let t = self.stats.per_tenant.entry(tenant.get()).or_default();
        t.completed += weight;
        t.total_wait += wait * weight as u32;
        t.total_latency += latency * weight as u32;
        t.stage_dispatch += stages.dispatch * weight as u32;
        t.stage_dma += stages.dma * weight as u32;
        t.stage_device += stages.device * weight as u32;
    }

    /// Books a failed (never-completed) task against its tenant.
    fn book_tenant_failure(&mut self, tenant: TenantId, weight: u64) {
        self.stats
            .per_tenant
            .entry(tenant.get())
            .or_default()
            .failed += weight;
    }

    /// Contains a pre-dispatch failure (the fault gate fired before the
    /// job ran): re-queues the task with backoff when the configured
    /// retry policy still has budget, otherwise retires it as a `Failed`
    /// completion that never reached the device. Returns whether a
    /// completion was retired.
    fn contain_predispatch_failure(&mut self, idx: usize, e: Error) -> Result<bool> {
        let horizon = self.horizon();
        let retryable = self.cfg.retry.is_some_and(|policy| {
            e.is_transient() && self.pending[idx].attempt < policy.max_retries
        });
        if retryable {
            let policy = self.cfg.retry.expect("checked above");
            let p = &mut self.pending[idx];
            let decided_at = p.eligible.max(horizon);
            p.eligible = decided_at + policy.delay(p.attempt);
            p.attempt += 1;
            self.stats.retries += 1;
            let (handle, attempt, eligible) = (p.handle.0, p.attempt, p.eligible);
            let eligible_cycles = self.trace_ts(eligible);
            self.emit_with(decided_at, || TraceEventKind::TaskRetried {
                handle,
                attempt,
                eligible: eligible_cycles,
            });
            return Ok(false);
        }
        let task = self.pending.remove(idx).expect("index is valid");
        let at = task.eligible.max(horizon);
        let batch_key = match &task.work {
            Work::Batchable { key, .. } => Some(*key),
            Work::Single(_) => None,
        };
        self.stats.failed += task.weight;
        self.book_tenant_failure(task.tenant, task.weight);
        let error_text = e.to_string();
        self.completions.push(Completion {
            handle: task.handle,
            priority: task.priority,
            tenant: task.tenant,
            submitted_at: task.arrival,
            started_at: at,
            finished_at: at,
            batch_size: task.weight as usize,
            dispatch: None,
            batch_key,
            attempts: task.attempt + 1,
            report: Self::empty_report(),
            outcome: TaskOutcome::Failed(e),
        });
        self.emit_with(at, || TraceEventKind::TaskFailed {
            handle: task.handle.0,
            error: error_text,
        });
        Ok(true)
    }

    fn dispatch_single(&mut self, idx: usize) -> Result<bool> {
        if let Some(e) = self.dev.fault_check_task(None) {
            let at = self.pending[idx].eligible.max(self.horizon());
            let seq = self.dev.fault_counts().tasks_injected;
            self.emit_with(at, || TraceEventKind::FaultInjected {
                scope: FaultScope::Task,
                seq,
            });
            return self.contain_predispatch_failure(idx, e);
        }
        let task = self.pending.remove(idx).expect("selected index is valid");
        let Work::Single(job) = task.work else {
            unreachable!("dispatch_single is only called on single work");
        };
        self.advance_virtual_clock(task.vstart);
        let snap = self.device_snapshot();
        match job(self.dev) {
            Ok((report, value)) => {
                let (start, finish, cores) =
                    self.occupy(report.cores_used, task.eligible, report.duration);
                let dispatch = self.next_dispatch;
                self.next_dispatch += 1;
                self.stats.dispatches += 1;
                self.stats.dispatched_tasks += task.weight;
                self.stats.max_batch_size = self.stats.max_batch_size.max(task.weight);
                self.stats.busy += report.duration * cores.len() as u32;
                self.stats.makespan = self.stats.makespan.max(finish);
                self.book_success(
                    task.tenant,
                    start - task.arrival,
                    report.duration,
                    finish - task.arrival,
                    &report.stats,
                    task.weight,
                );
                self.emit_dispatch(
                    dispatch,
                    start,
                    finish,
                    &cores,
                    &[task.handle],
                    task.weight,
                    None,
                );
                self.emit_retire(task.handle, dispatch, finish, None);

                self.completions.push(Completion {
                    handle: task.handle,
                    priority: task.priority,
                    tenant: task.tenant,
                    submitted_at: task.arrival,
                    started_at: start,
                    finished_at: finish,
                    batch_size: task.weight as usize,
                    dispatch: Some(dispatch),
                    batch_key: None,
                    attempts: task.attempt + 1,
                    report,
                    outcome: TaskOutcome::Ok(value),
                });
            }
            Err(e) => {
                // The job consumed device time before failing; book that
                // time on the timeline so failures still cost throughput.
                let report = self.failed_report(snap);
                let (start, finish, cores) =
                    self.occupy(report.cores_used, task.eligible, report.duration);
                let dispatch = self.next_dispatch;
                self.next_dispatch += 1;
                self.stats.dispatches += 1;
                self.stats.dispatched_tasks += task.weight;
                self.stats.failed += task.weight;
                self.book_tenant_failure(task.tenant, task.weight);
                self.stats.busy += report.duration * cores.len() as u32;
                self.stats.makespan = self.stats.makespan.max(finish);
                self.emit_dispatch(
                    dispatch,
                    start,
                    finish,
                    &cores,
                    &[task.handle],
                    task.weight,
                    None,
                );
                self.emit_retire(task.handle, dispatch, finish, Some(e.to_string()));

                self.completions.push(Completion {
                    handle: task.handle,
                    priority: task.priority,
                    tenant: task.tenant,
                    submitted_at: task.arrival,
                    started_at: start,
                    finished_at: finish,
                    batch_size: task.weight as usize,
                    dispatch: Some(dispatch),
                    batch_key: None,
                    attempts: task.attempt + 1,
                    report,
                    outcome: TaskOutcome::Failed(e),
                });
            }
        }
        Ok(true)
    }

    fn dispatch_batch(&mut self, idx: usize) -> Result<bool> {
        let (head_priority, head_key, head_arrival) = {
            let head = &self.pending[idx];
            let Work::Batchable { key, .. } = &head.work else {
                unreachable!("dispatch_batch is only called on batchable work");
            };
            (head.priority, *key, head.arrival)
        };
        let horizon = self.horizon();
        let window_close = head_arrival.max(horizon) + self.cfg.max_batch_wait;

        // Gather every compatible job of the head's (priority, key)
        // class arriving inside the window, then pick `max_batch` of
        // them: FIFO in submission order under the default policy,
        // earliest-deadline-first under [`SchedPolicy::SloAware`] (so a
        // full window sheds slack from the members that can afford it,
        // not from whoever happened to submit last).
        let mut member_idx: Vec<usize> = Vec::new();
        for (i, p) in self.pending.iter().enumerate() {
            let compatible = p.priority == head_priority
                && matches!(&p.work, Work::Batchable { key, .. } if *key == head_key)
                && p.arrival <= window_close;
            if compatible {
                member_idx.push(i);
            }
        }
        if self.cfg.scheduler == SchedPolicy::SloAware {
            member_idx.sort_by_key(|&i| {
                let p = &self.pending[i];
                (p.deadline.unwrap_or(Duration::MAX), i)
            });
        }
        member_idx.truncate(self.cfg.max_batch.max(1));
        let window_close_cycles = self.trace_ts(window_close);
        self.emit_with(head_arrival.max(horizon), || TraceEventKind::BatchFormed {
            key: head_key.get(),
            members: member_idx
                .iter()
                .map(|&i| self.pending[i].handle.0)
                .collect(),
            window_close: window_close_cycles,
        });

        // Remove back-to-front so earlier indices stay valid, then
        // restore the chosen membership order (which may differ from
        // index order under EDF gathering).
        let mut removal = member_idx.clone();
        removal.sort_unstable();
        let mut extracted: Vec<(usize, Pending<'t>)> = Vec::with_capacity(removal.len());
        for &i in removal.iter().rev() {
            extracted.push((i, self.pending.remove(i).expect("member index is valid")));
        }
        let mut members: Vec<Pending<'t>> = Vec::with_capacity(member_idx.len());
        for &i in &member_idx {
            let pos = extracted
                .iter()
                .position(|(j, _)| *j == i)
                .expect("every chosen index was extracted");
            members.push(extracted.remove(pos).1);
        }

        // Fault-gate each member individually: a poisoned member fails
        // (or retries) alone while its healthy siblings still ride
        // together. A retried member rejoins at the back of the backlog,
        // giving up its FIFO spot for this batch.
        let mut retired_any = false;
        let mut payloads = Vec::with_capacity(members.len());
        let mut runner: Option<BatchRunner<'t>> = None;
        let mut meta: Vec<MemberMeta> = Vec::with_capacity(members.len());
        let mut latest_eligible = Duration::ZERO;
        for mut m in members {
            if let Some(e) = self.dev.fault_check_task(Some(head_key)) {
                let gate_at = m.eligible.max(horizon);
                let seq = self.dev.fault_counts().tasks_injected;
                self.emit_with(gate_at, || TraceEventKind::FaultInjected {
                    scope: FaultScope::Task,
                    seq,
                });
                let retryable = self
                    .cfg
                    .retry
                    .is_some_and(|policy| e.is_transient() && m.attempt < policy.max_retries);
                if retryable {
                    let policy = self.cfg.retry.expect("checked above");
                    m.eligible = gate_at + policy.delay(m.attempt);
                    m.attempt += 1;
                    self.stats.retries += 1;
                    let (handle, attempt) = (m.handle.0, m.attempt);
                    let eligible_cycles = self.trace_ts(m.eligible);
                    self.emit_with(gate_at, || TraceEventKind::TaskRetried {
                        handle,
                        attempt,
                        eligible: eligible_cycles,
                    });
                    self.pending.push_back(m);
                } else {
                    let at = gate_at;
                    self.stats.failed += m.weight;
                    self.book_tenant_failure(m.tenant, m.weight);
                    let error_text = e.to_string();
                    self.completions.push(Completion {
                        handle: m.handle,
                        priority: m.priority,
                        tenant: m.tenant,
                        submitted_at: m.arrival,
                        started_at: at,
                        finished_at: at,
                        batch_size: m.weight as usize,
                        dispatch: None,
                        batch_key: Some(head_key),
                        attempts: m.attempt + 1,
                        report: Self::empty_report(),
                        outcome: TaskOutcome::Failed(e),
                    });
                    self.emit_with(at, || TraceEventKind::TaskFailed {
                        handle: m.handle.0,
                        error: error_text,
                    });
                    retired_any = true;
                }
                continue;
            }
            let Work::Batchable { payload, run, .. } = m.work else {
                unreachable!("members are filtered to batchable work");
            };
            payloads.push(payload);
            if runner.is_none() {
                runner = Some(run);
            }
            latest_eligible = latest_eligible.max(m.eligible);
            self.advance_virtual_clock(m.vstart);
            meta.push(MemberMeta {
                handle: m.handle,
                priority: m.priority,
                tenant: m.tenant,
                arrival: m.arrival,
                attempt: m.attempt,
                weight: m.weight,
            });
        }
        let n = meta.len();
        let Some(run) = runner else {
            // Every member was poisoned or re-queued for retry.
            return Ok(retired_any);
        };

        let snap = self.device_snapshot();
        let run_result = run(self.dev, payloads);

        // Runner-level failure (or a malformed output arity) fails every
        // member of this dispatch together, booking the device time the
        // batch actually consumed.
        let e = match run_result {
            Ok((report, outputs)) if outputs.len() == n => {
                self.book_batch(&meta, head_key, latest_eligible, report, outputs);
                return Ok(true);
            }
            Ok((_, outputs)) => Error::TaskFailed(format!(
                "batch runner returned {} outputs for {n} members",
                outputs.len()
            )),
            Err(e) => e,
        };
        let report = self.failed_report(snap);
        let (start, finish, cores) =
            self.occupy(report.cores_used, latest_eligible, report.duration);
        let total_weight: u64 = meta.iter().map(|m| m.weight).sum();
        let dispatch = self.next_dispatch;
        self.next_dispatch += 1;
        self.stats.dispatches += 1;
        self.stats.dispatched_tasks += total_weight;
        self.stats.max_batch_size = self.stats.max_batch_size.max(total_weight);
        self.stats.busy += report.duration * cores.len() as u32;
        self.stats.makespan = self.stats.makespan.max(finish);
        let handles: Vec<TaskHandle> = meta.iter().map(|m| m.handle).collect();
        self.emit_dispatch(
            dispatch,
            start,
            finish,
            &cores,
            &handles,
            total_weight,
            Some(head_key),
        );
        for m in meta {
            self.stats.failed += m.weight;
            self.book_tenant_failure(m.tenant, m.weight);
            self.emit_retire(m.handle, dispatch, finish, Some(e.to_string()));
            self.completions.push(Completion {
                handle: m.handle,
                priority: m.priority,
                tenant: m.tenant,
                submitted_at: m.arrival,
                started_at: start,
                finished_at: finish,
                batch_size: total_weight as usize,
                dispatch: Some(dispatch),
                batch_key: Some(head_key),
                attempts: m.attempt + 1,
                report: report.clone(),
                outcome: TaskOutcome::Failed(e.clone()),
            });
        }
        Ok(true)
    }

    /// Books a successful batch dispatch on the timeline and fans its
    /// per-member outputs back out as completions. A member whose
    /// [`BatchOutput`] is `Err` retires as a `Failed` completion while
    /// its siblings succeed.
    fn book_batch(
        &mut self,
        meta: &[MemberMeta],
        head_key: BatchKey,
        latest_eligible: Duration,
        report: TaskReport,
        outputs: Vec<BatchOutput>,
    ) {
        // One device dispatch for the whole batch; it cannot start
        // before its last member became eligible.
        let (start, finish, cores) =
            self.occupy(report.cores_used, latest_eligible, report.duration);
        let total_weight: u64 = meta.iter().map(|m| m.weight).sum();
        let dispatch = self.next_dispatch;
        self.next_dispatch += 1;
        self.stats.dispatches += 1;
        self.stats.dispatched_tasks += total_weight;
        self.stats.max_batch_size = self.stats.max_batch_size.max(total_weight);
        self.stats.busy += report.duration * cores.len() as u32;
        self.stats.makespan = self.stats.makespan.max(finish);
        let handles: Vec<TaskHandle> = meta.iter().map(|m| m.handle).collect();
        self.emit_dispatch(
            dispatch,
            start,
            finish,
            &cores,
            &handles,
            total_weight,
            Some(head_key),
        );

        // Fan the completions back out: each member keeps its own
        // arrival and is charged the shared start/finish.
        for (m, output) in meta.iter().zip(outputs) {
            let outcome = match output {
                Ok(value) => {
                    self.book_success(
                        m.tenant,
                        start - m.arrival,
                        report.duration,
                        finish - m.arrival,
                        &report.stats,
                        m.weight,
                    );
                    self.emit_retire(m.handle, dispatch, finish, None);
                    TaskOutcome::Ok(value)
                }
                Err(e) => {
                    self.stats.failed += m.weight;
                    self.book_tenant_failure(m.tenant, m.weight);
                    self.emit_retire(m.handle, dispatch, finish, Some(e.to_string()));
                    TaskOutcome::Failed(e)
                }
            };
            self.completions.push(Completion {
                handle: m.handle,
                priority: m.priority,
                tenant: m.tenant,
                submitted_at: m.arrival,
                started_at: start,
                finished_at: finish,
                batch_size: total_weight as usize,
                dispatch: Some(dispatch),
                batch_key: Some(head_key),
                attempts: m.attempt + 1,
                report: report.clone(),
                outcome,
            });
        }
    }

    /// Dispatches until the given task retires and returns its
    /// completion — which may be a `Failed` one; failed work retires
    /// with an error completion rather than vanishing from the queue.
    /// Returns immediately if it already retired.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::InvalidArg`] only when the handle was never
    /// submitted to this queue.
    pub fn wait(&mut self, handle: TaskHandle) -> Result<&Completion> {
        // Completions are append-only, so scan by position to keep the
        // borrow checker happy across `step` calls.
        loop {
            if let Some(pos) = self.completions.iter().position(|c| c.handle == handle) {
                return Ok(&self.completions[pos]);
            }
            if self.pending.iter().any(|p| p.handle == handle) {
                self.step()?;
            } else {
                return Err(Error::InvalidArg(format!(
                    "unknown task handle {}",
                    handle.id()
                )));
            }
        }
    }

    /// Dispatches every pending task and returns all completions so far,
    /// ordered by finish time (FIFO for ties), consuming them from the
    /// queue. Job failures do **not** abort the drain: each failed task
    /// retires as a `Failed` completion and the drain continues.
    /// Termination is guaranteed — retries are bounded by the policy's
    /// `max_retries`, after which a task retires as failed.
    ///
    /// # Errors
    ///
    /// Reserved for queue-level invariant violations.
    pub fn drain(&mut self) -> Result<Vec<Completion>> {
        while !self.pending.is_empty() {
            self.step()?;
        }
        let mut done = std::mem::take(&mut self.completions);
        done.sort_by_key(|c| (c.finished_at, c.handle.id()));
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::timing::VecOp;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20))
    }

    fn charge_kernel(op: VecOp) -> impl FnOnce(&mut ApuContext<'_>) -> Result<()> {
        move |ctx| {
            ctx.core_mut().charge(op);
            Ok(())
        }
    }

    #[test]
    fn kernel_roundtrip_reports_cycles() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).priority(Priority::Normal))
            .unwrap();
        let done = q.wait(h).unwrap();
        assert!(done.report.cycles.get() > 0);
        assert_eq!(done.submitted_at, Duration::ZERO);
        assert_eq!(done.started_at, Duration::ZERO);
        assert_eq!(done.finished_at, done.report.duration);
        assert!(done.output::<()>().is_some());
        assert_eq!(q.stats().completed, 1);
    }

    #[test]
    fn priorities_jump_the_line() {
        // One core: dispatch order is observable through start times.
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let lo = q
            .submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).priority(Priority::Low))
            .unwrap();
        let hi = q
            .submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).priority(Priority::High))
            .unwrap();
        let done = q.drain().unwrap();
        let pos = |h: TaskHandle| done.iter().position(|c| c.handle == h).unwrap();
        assert!(
            pos(hi) < pos(lo),
            "high-priority task must dispatch before the earlier low-priority one"
        );
        assert!(done[pos(hi)].started_at < done[pos(lo)].started_at);
    }

    #[test]
    fn fifo_within_a_priority_class() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let handles: Vec<TaskHandle> = (0..4)
            .map(|_| {
                q.submit(TaskSpec::kernel(charge_kernel(VecOp::Or16)).priority(Priority::Normal))
                    .unwrap()
            })
            .collect();
        let done = q.drain().unwrap();
        let starts: Vec<Duration> = handles
            .iter()
            .map(|&h| done.iter().find(|c| c.handle == h).unwrap().started_at)
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn arrivals_gate_dispatch_and_waits_accumulate() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        // Second task arrives late; the queue idles until its arrival.
        let late = Duration::from_millis(10);
        let a = q
            .submit(TaskSpec::job(Box::new(|dev: &mut ApuDevice| {
                let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                Ok((r, Box::new(()) as Box<dyn Any>))
            })))
            .unwrap();
        let b = q
            .submit(
                TaskSpec::job(Box::new(|dev: &mut ApuDevice| {
                    let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                    Ok((r, Box::new(()) as Box<dyn Any>))
                }))
                .at(late),
            )
            .unwrap();
        let done = q.drain().unwrap();
        let first = done.iter().find(|c| c.handle == a).unwrap();
        let second = done.iter().find(|c| c.handle == b).unwrap();
        assert!(first.finished_at < late, "first task fits before arrival");
        assert_eq!(second.started_at, late, "idle queue waits for arrival");
        assert_eq!(second.wait(), Duration::ZERO);
    }

    #[test]
    fn queue_full_rejects_and_counts() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_pending(2));
        q.submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).priority(Priority::Normal))
            .unwrap();
        q.submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).priority(Priority::Normal))
            .unwrap();
        let r = q.submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).priority(Priority::Normal));
        assert!(matches!(
            r,
            Err(Error::QueueFull {
                pending: 2,
                capacity: 2
            })
        ));
        assert_eq!(q.stats().rejected, 1);
        // Draining frees capacity.
        q.drain().unwrap();
        assert!(q
            .submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).priority(Priority::Normal))
            .is_ok());
    }

    #[test]
    fn failed_jobs_retire_error_completions() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit(TaskSpec::job(Box::new(|_dev| {
                Err(Error::TaskFailed("boom".into()))
            })))
            .unwrap();
        // The failure is contained: waiting on the handle yields an
        // error completion instead of erroring the queue.
        let done = q.wait(h).expect("failed work still retires");
        assert!(done.is_failed());
        assert!(matches!(done.error(), Some(Error::TaskFailed(_))));
        assert!(done.output::<()>().is_none());
        assert_eq!(done.attempts, 1);
        assert_eq!(q.stats().failed, 1);
        assert_eq!(q.stats().completed, 0);
    }

    #[test]
    fn wait_on_failed_handle_is_not_unknown() {
        // Regression: `wait` on a handle whose job failed used to abort
        // with the job error (or later report "unknown task handle").
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit(TaskSpec::job(Box::new(|_dev| {
                Err(Error::TaskFailed("boom".into()))
            })))
            .unwrap();
        q.step().unwrap();
        // Already retired: a second wait still finds the completion.
        assert!(q.wait(h).unwrap().is_failed());
        // A genuinely unknown handle is still rejected.
        let bogus = TaskHandle(u64::MAX);
        assert!(matches!(q.wait(bogus), Err(Error::InvalidArg(_))));
    }

    #[test]
    fn failed_jobs_still_consume_device_time() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit(TaskSpec::job(Box::new(|dev: &mut ApuDevice| {
            // Burn real device cycles, then fail.
            dev.run_task(charge_kernel(VecOp::AddU16))?;
            Err(Error::TaskFailed("late failure".into()))
        })))
        .unwrap();
        let done = q.drain().unwrap();
        assert_eq!(done.len(), 1);
        assert!(done[0].is_failed());
        assert_eq!(done[0].dispatch, Some(0), "the job reached the device");
        assert!(
            done[0].report.cycles.get() > 0,
            "consumed cycles are booked on the failed completion"
        );
        assert!(done[0].finished_at > done[0].started_at);
        assert!(
            q.stats().busy > Duration::ZERO,
            "failed work still occupies the timeline"
        );
    }

    #[test]
    fn deadline_expired_tasks_shed_without_dispatching() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        // A long head job pushes the horizon past the second task's TTL.
        q.submit(TaskSpec::job(Box::new(|dev: &mut ApuDevice| {
            let mut r = dev.run_task(charge_kernel(VecOp::AddU16))?;
            r.duration = Duration::from_millis(50);
            Ok((r, Box::new(()) as Box<dyn Any>))
        })))
        .unwrap();
        let ttl = Duration::from_millis(1);
        let h = q
            .submit(
                TaskSpec::job(Box::new(|_dev: &mut ApuDevice| {
                    panic!("an expired task must never dispatch");
                }))
                .ttl(ttl),
            )
            .unwrap();
        let done = q.drain().unwrap();
        let shed = done.iter().find(|c| c.handle == h).unwrap();
        assert!(shed.is_failed());
        assert!(matches!(
            shed.error(),
            Some(Error::DeadlineExceeded { deadline }) if *deadline == ttl
        ));
        assert_eq!(shed.dispatch, None, "never reached the device");
        assert_eq!(q.stats().expired, 1);
        assert_eq!(q.stats().completed, 1);
    }

    #[test]
    fn retries_are_bounded_and_deterministic() {
        use crate::fault::FaultPlan;
        let policy = RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_micros(100),
            multiplier: 2.0,
        };
        let run = || {
            let mut dev = device();
            dev.inject_faults(FaultPlan::new(7).fail_every_kth_task(1));
            let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_retry(policy));
            let h = q
                .submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).priority(Priority::Normal))
                .unwrap();
            let done = q.wait(h).unwrap();
            (
                done.attempts,
                done.finished_at,
                q.stats().retries,
                q.stats().failed,
            )
        };
        let (attempts, finished, retries, failed) = run();
        assert_eq!(attempts, 3, "initial attempt plus two retries");
        assert_eq!(retries, 2);
        assert_eq!(failed, 1);
        // Backoff: 100µs then 200µs of delay before the final failure.
        assert_eq!(finished, Duration::from_micros(300));
        assert_eq!(
            run(),
            (attempts, finished, retries, failed),
            "deterministic"
        );
    }

    #[test]
    fn retry_recovers_a_transient_fault() {
        use crate::fault::FaultPlan;
        let mut dev = device();
        dev.inject_faults(FaultPlan::new(3).fail_task_rate(0.9));
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default().with_retry(RetryPolicy {
                max_retries: 32,
                ..RetryPolicy::default()
            }),
        );
        let h = q
            .submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).priority(Priority::Normal))
            .unwrap();
        let done = q.wait(h).unwrap();
        // With 32 retries against a 0.9 fault rate, the task eventually
        // lands (the plan is deterministic, so this cannot flake).
        assert!(done.is_ok(), "outcome: {:?}", done.error());
        assert!(done.attempts > 1, "at least one retry happened");
        let attempts = done.attempts;
        assert_eq!(q.stats().completed, 1);
        assert_eq!(q.stats().failed, 0);
        assert_eq!(q.stats().retries, u64::from(attempts) - 1);
    }

    #[test]
    fn multi_core_jobs_occupy_multiple_cores() {
        let mut dev = device();
        let cores = dev.config().cores;
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit(TaskSpec::typed(move |dev| {
            let tasks: Vec<crate::CoreTask<'_>> = (0..cores)
                .map(|_| {
                    Box::new(|ctx: &mut ApuContext<'_>| {
                        ctx.core_mut().charge(VecOp::AddU16);
                        Ok(())
                    }) as _
                })
                .collect();
            let r = dev.run_parallel(tasks)?;
            Ok((r, ()))
        }))
        .unwrap();
        let done = q.drain().unwrap();
        assert_eq!(done[0].report.cores_used, cores);
        // All cores are busy until the parallel job's finish.
        assert!((q.stats().occupancy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_submission_counts_batches() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        q.submit(
            TaskSpec::job(Box::new(|dev: &mut ApuDevice| {
                let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                Ok((r, Box::new(()) as Box<dyn Any>))
            }))
            .weight(8),
        )
        .unwrap();
        q.drain().unwrap();
        let s = q.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.batched_tasks, 8);
        assert_eq!(s.completed, 8);
        assert_eq!(
            s.max_batch_size, 8,
            "weighted submissions count toward the largest batch"
        );
        assert_eq!(s.latency_samples.len(), 8);
        assert!(q
            .submit(TaskSpec::job(Box::new(|_: &mut ApuDevice| unreachable!())).weight(0))
            .is_err());
    }

    #[test]
    fn typed_outputs_downcast() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit(TaskSpec::typed(|dev| {
                let r = dev.run_task(charge_kernel(VecOp::AddU16))?;
                Ok((r, vec![1u32, 2, 3]))
            }))
            .unwrap();
        q.wait(h).unwrap();
        let done = q.drain().unwrap();
        let v: Vec<u32> = done.into_iter().next().unwrap().into_output().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn unknown_handle_is_an_error() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).priority(Priority::Normal))
            .unwrap();
        q.drain().unwrap();
        // Handle retired and drained away: no longer known.
        assert!(q.wait(h).is_err());
    }

    /// A batch runner that charges one op for the whole dispatch and
    /// echoes every member's payload back as its output.
    fn echo_runner<'t>(op: VecOp) -> BatchRunner<'t> {
        Box::new(move |dev: &mut ApuDevice, payloads: Vec<Box<dyn Any>>| {
            let report = dev.run_task(charge_kernel(op))?;
            Ok((report, payloads.into_iter().map(Ok).collect()))
        })
    }

    fn submit_echo(
        q: &mut DeviceQueue<'_, '_>,
        priority: Priority,
        arrival: Duration,
        key: BatchKey,
        tag: u32,
    ) -> TaskHandle {
        q.submit(
            TaskSpec::batch(key, Box::new(tag), echo_runner(VecOp::AddU16))
                .priority(priority)
                .at(arrival),
        )
        .unwrap()
    }

    #[test]
    fn batchable_jobs_coalesce_up_to_max_batch() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(3));
        let key = BatchKey::new(7);
        let handles: Vec<TaskHandle> = (0..5)
            .map(|i| submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, i))
            .collect();
        let done = q.drain().unwrap();
        assert_eq!(done.len(), 5);
        // First dispatch carries three members, the second the rest.
        let by_handle = |h: TaskHandle| done.iter().find(|c| c.handle == h).unwrap();
        for (i, &h) in handles.iter().enumerate() {
            let c = by_handle(h);
            assert_eq!(c.batch_key, Some(key));
            // Payloads fan back out to their own submitters.
            assert_eq!(c.output::<u32>(), Some(&(i as u32)));
            assert_eq!(c.batch_size, if i < 3 { 3 } else { 2 });
            assert_eq!(c.dispatch, Some(if i < 3 { 0 } else { 1 }));
        }
        let s = q.stats();
        assert_eq!(s.dispatches, 2);
        assert_eq!(s.dispatched_tasks, 5);
        assert_eq!(s.max_batch_size, 3);
        assert_eq!(s.completed, 5);
        assert_eq!(s.peak_pending, 5);
        assert!((s.mean_batch_size() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn batches_never_mix_keys_or_priorities() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(8));
        let (ka, kb) = (BatchKey::new(1), BatchKey::new(2));
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, ka, 0);
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, kb, 1);
        submit_echo(&mut q, Priority::High, Duration::ZERO, ka, 2);
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, ka, 3);
        let done = q.drain().unwrap();
        for c in &done {
            let peers: Vec<_> = done.iter().filter(|o| o.dispatch == c.dispatch).collect();
            assert!(peers.iter().all(|o| o.batch_key == c.batch_key));
            assert!(peers.iter().all(|o| o.priority == c.priority));
        }
        // Only the two (Normal, ka) jobs could coalesce.
        assert_eq!(q.stats().dispatches, 3);
        assert_eq!(q.stats().max_batch_size, 2);
    }

    #[test]
    fn max_batch_wait_pulls_in_stragglers() {
        let late = Duration::from_millis(1);
        let key = BatchKey::new(3);

        // Without a wait window, the head dispatches alone.
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(4));
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, 0);
        submit_echo(&mut q, Priority::Normal, late, key, 1);
        let done = q.drain().unwrap();
        assert!(done.iter().all(|c| c.batch_size == 1));

        // With the window open past the straggler's arrival, one batch
        // forms and the early member is charged the wait.
        let mut dev = device();
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default()
                .with_max_batch(4)
                .with_max_batch_wait(late),
        );
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, 0);
        submit_echo(&mut q, Priority::Normal, late, key, 1);
        let done = q.drain().unwrap();
        assert!(done.iter().all(|c| c.batch_size == 2));
        let early = done
            .iter()
            .find(|c| c.submitted_at == Duration::ZERO)
            .unwrap();
        assert_eq!(early.started_at, late, "batch waits for its last member");
        assert!(early.wait() >= late);
    }

    #[test]
    fn fifo_within_class_is_preserved_under_batching() {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20).with_cores(1));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(2));
        let key = BatchKey::new(9);
        let handles: Vec<TaskHandle> = (0..6)
            .map(|i| submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, i))
            .collect();
        let done = q.drain().unwrap();
        let starts: Vec<Duration> = handles
            .iter()
            .map(|&h| done.iter().find(|c| c.handle == h).unwrap().started_at)
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        // Members ride with their submission neighbours: {0,1} {2,3} {4,5}.
        let dispatch_of = |h: TaskHandle| done.iter().find(|c| c.handle == h).unwrap().dispatch;
        for pair in handles.chunks(2) {
            assert_eq!(dispatch_of(pair[0]), dispatch_of(pair[1]));
        }
    }

    #[test]
    fn queue_full_fires_at_exactly_max_pending_with_batching() {
        let mut dev = device();
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default()
                .with_max_pending(3)
                .with_max_batch(12),
        );
        let key = BatchKey::new(4);
        for i in 0..3 {
            submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, i);
        }
        let r = q.submit(TaskSpec::batch(
            key,
            Box::new(3u32),
            echo_runner(VecOp::AddU16),
        ));
        assert!(matches!(
            r,
            Err(Error::QueueFull {
                pending: 3,
                capacity: 3
            })
        ));
        assert_eq!(q.stats().rejected, 1);
        // Draining coalesces the backlog into one dispatch and frees
        // all three admission slots at once.
        q.drain().unwrap();
        assert_eq!(q.stats().dispatches, 1);
        assert_eq!(q.stats().max_batch_size, 3);
        assert!(q
            .submit(TaskSpec::batch(
                key,
                Box::new(4u32),
                echo_runner(VecOp::AddU16)
            ))
            .is_ok());
    }

    #[test]
    fn batch_runner_output_arity_is_validated() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(4));
        let key = BatchKey::new(5);
        let bad: BatchRunner<'_> = Box::new(|dev: &mut ApuDevice, _payloads| {
            let report = dev.run_task(charge_kernel(VecOp::AddU16))?;
            Ok((report, Vec::new())) // wrong: drops every output
        });
        q.submit(TaskSpec::batch(key, Box::new(0u32), bad)).unwrap();
        submit_echo(&mut q, Priority::Normal, Duration::ZERO, key, 1);
        // The malformed dispatch is contained: both members retire as
        // failed completions instead of aborting the drain.
        let done = q.drain().unwrap();
        assert_eq!(done.len(), 2);
        for c in &done {
            assert!(matches!(c.error(), Some(Error::TaskFailed(_))));
        }
        assert_eq!(q.stats().failed, 2);
    }

    #[test]
    fn percentile_nearest_rank() {
        let ms = |n: u64| Duration::from_millis(n);
        let samples: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&samples, 0.0), ms(1));
        // Nearest-rank: the p50 of 1..=100 is the ceil(0.5·100) = 50th
        // order statistic, not the 51st.
        assert_eq!(percentile(&samples, 0.5), ms(50));
        assert_eq!(percentile(&samples, 0.501), ms(51));
        assert_eq!(percentile(&samples, 0.99), ms(99));
        assert_eq!(percentile(&samples, 1.0), ms(100));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        // Single sample: every quantile is that sample.
        assert_eq!(percentile(&[ms(42)], 0.0), ms(42));
        assert_eq!(percentile(&[ms(42)], 1.0), ms(42));
    }

    #[test]
    fn stats_track_throughput_and_occupancy() {
        let mut dev = device();
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        for _ in 0..4 {
            q.submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).priority(Priority::Normal))
                .unwrap();
        }
        q.drain().unwrap();
        let s = q.stats();
        assert_eq!(s.completed, 4);
        assert!(s.throughput() > 0.0);
        assert!(s.occupancy() > 0.0 && s.occupancy() <= 1.0);
        assert!(s.mean_latency() > Duration::ZERO);
        assert!(s.latency_percentile(0.5) <= s.latency_percentile(0.99));
    }

    #[test]
    fn slo_scheduler_interleaves_tenants_by_fair_share_weight() {
        let heavy = TenantId::new(1);
        let light = TenantId::new(2);
        let mut dev = device();
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default()
                .with_scheduler(SchedPolicy::SloAware)
                .with_tenant_weight(heavy, 3)
                .with_tenant_weight(light, 1),
        );
        for _ in 0..4 {
            q.submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).tenant(heavy))
                .unwrap();
        }
        for _ in 0..4 {
            q.submit(TaskSpec::kernel(charge_kernel(VecOp::AddU16)).tenant(light))
                .unwrap();
        }
        let done = q.drain().unwrap();
        // Start-time fair queueing: the 3:1 weight ratio shows up in the
        // dispatch order — of the first four dispatches, three go to the
        // heavy tenant and one to the light tenant (not four-and-zero as
        // FIFO-by-submission would give, since all heavy work arrived
        // first).
        let first_four: Vec<u64> = done.iter().take(4).map(|c| c.tenant.get()).collect();
        assert_eq!(
            first_four.iter().filter(|&&t| t == heavy.get()).count(),
            3,
            "heavy tenant should win 3 of the first 4 slots, order {first_four:?}"
        );
        assert_eq!(
            first_four.iter().filter(|&&t| t == light.get()).count(),
            1,
            "light tenant must not be starved out of the first round"
        );
        let s = q.stats();
        assert_eq!(s.per_tenant[&heavy.get()].completed, 4);
        assert_eq!(s.per_tenant[&light.get()].completed, 4);
    }

    #[test]
    fn admission_control_sheds_lowest_class_newest_first() {
        let mut dev = device();
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default().with_admission(AdmissionControl::new(1, 2)),
        );
        let spec = |p: Priority, t: u64| {
            TaskSpec::kernel(charge_kernel(VecOp::AddU16))
                .priority(p)
                .tenant(TenantId::new(t))
        };
        q.submit(spec(Priority::Low, 10)).unwrap();
        q.submit(spec(Priority::Low, 10)).unwrap();
        q.submit(spec(Priority::Normal, 20)).unwrap();
        q.submit(spec(Priority::Normal, 20)).unwrap();
        q.submit(spec(Priority::High, 30)).unwrap();
        let done = q.drain().unwrap();
        assert_eq!(done.len(), 5);
        // Backlog of 5 over the upper watermark (2): both Low tasks shed
        // first, then one Normal, leaving a backlog of 2 to dispatch.
        let shed: Vec<_> = done
            .iter()
            .filter(|c| matches!(c.error(), Some(Error::AdmissionShed { .. })))
            .collect();
        assert_eq!(shed.len(), 3);
        assert!(shed.iter().all(|c| c.priority != Priority::High));
        assert_eq!(
            shed.iter().filter(|c| c.priority == Priority::Low).count(),
            2,
            "both Low tasks go before any second Normal is considered"
        );
        let s = q.stats();
        assert_eq!(s.shed_admission, 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.per_tenant[&10].shed, 2);
        assert_eq!(s.per_tenant[&20].shed, 1);
        assert_eq!(s.per_tenant[&30].completed, 1);
        // Admission shedding is a terminal load-control decision, not a
        // fault worth retrying.
        assert!(!shed[0].error().unwrap().is_transient());
    }

    #[test]
    fn slo_batches_coalesce_earliest_deadline_first() {
        let ms = Duration::from_millis;
        let mut dev = device();
        let mut q = DeviceQueue::new(
            &mut dev,
            QueueConfig::default()
                .with_scheduler(SchedPolicy::SloAware)
                .with_max_batch(2),
        );
        let key = BatchKey::new(9);
        let submit = |q: &mut DeviceQueue<'_, '_>, tag: u32, deadline: Duration| {
            q.submit(
                TaskSpec::batch(key, Box::new(tag), echo_runner(VecOp::AddU16))
                    .deadline_at(deadline),
            )
            .unwrap()
        };
        let slack = submit(&mut q, 0, ms(30_000));
        let urgent = submit(&mut q, 1, ms(10_000));
        let middling = submit(&mut q, 2, ms(20_000));
        let done = q.drain().unwrap();
        assert_eq!(done.len(), 3);
        // With room for two members, the coalescer takes the two
        // earliest deadlines (urgent + middling) even though the slack
        // task was submitted first; FIFO would have paired slack+urgent.
        let first_dispatch = done.iter().filter_map(|c| c.dispatch).min().unwrap();
        let first_batch: Vec<TaskHandle> = done
            .iter()
            .filter(|c| c.dispatch == Some(first_dispatch))
            .map(|c| c.handle)
            .collect();
        assert_eq!(first_batch.len(), 2);
        assert!(first_batch.contains(&urgent) && first_batch.contains(&middling));
        assert!(!first_batch.contains(&slack));
    }
}
