//! Device-timeline tracing: structured span events for the serving stack.
//!
//! The paper's methodology rests on *attributing* time — Tables 4/5
//! calibrate per-op latencies and §4–§5 decompose workloads into DMA,
//! compute, and queueing components. This module gives the simulator the
//! same capability at the serving layer: a [`TraceSink`] installed on an
//! [`crate::ApuDevice`] receives typed [`TraceEvent`]s for the full task
//! lifecycle (submitted → queued → dispatched → retired / failed /
//! expired), continuous-batch formation (key, members, wait window),
//! asynchronous DMA issue/wait on both per-core engines, retry/backoff
//! decisions, and fault injections.
//!
//! Every event is stamped with the **virtual device clock** ([`Cycles`]),
//! never the wall clock, so traces are deterministic: the same seed and
//! workload produce a byte-identical event stream on every run.
//!
//! Two sinks ship with the crate:
//!
//! * [`TraceRecorder`] — an in-memory event log for tests and invariant
//!   checking ([`TraceRecorder::signature`] is byte-stable),
//! * [`ChromeTraceSink`] — buffers events and exports Chrome
//!   `trace_event` JSON ([`chrome_trace_json`]) loadable in Perfetto or
//!   `chrome://tracing`, with one track for the queue, one per core, and
//!   one per DMA engine.
//!
//! Tracing is strictly an observer: when no sink is installed every
//! instrumentation site is a no-op (a `None` check — no event is even
//! constructed), and with a sink installed **zero virtual-time cost** is
//! added — no instrumentation path ever charges cycles, so golden-timing
//! numbers are bit-identical with and without a sink
//! (`crates/apu-sim/tests/timing_golden.rs` pins this).
//!
//! A companion [`prometheus_text`] exporter renders [`QueueStats`] /
//! [`VcuStats`] counters and the per-stage latency breakdown
//! ([`crate::stats::StageBreakdown`]) in the Prometheus text exposition
//! format for scrape-style metrics collection.

use std::cell::RefCell;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::clock::{Cycles, Frequency};
use crate::queue::Priority;
use crate::stats::{QueueStats, VcuStats};

/// Where a fault injection fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScope {
    /// The task-level dispatch gate (see [`crate::FaultPlan`] triggers).
    Task,
    /// A DMA transfer issue.
    Dma,
}

/// One structured trace event: a virtual-clock timestamp plus a typed
/// payload.
///
/// Queue-domain events carry timestamps converted from the scheduler's
/// virtual timeline with the device clock; DMA-domain events carry the
/// issuing core's own cycle counter. Both are deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual-clock timestamp of the event.
    pub ts: Cycles,
    /// The typed payload.
    pub kind: TraceEventKind,
}

/// The typed payload of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A task was admitted to the queue backlog (submission == enqueue:
    /// admission control either accepts into the backlog or rejects).
    TaskSubmitted {
        /// Submission handle (see [`crate::TaskHandle::id`]).
        handle: u64,
        /// Priority class submitted at.
        priority: Priority,
        /// Batch-compatibility key for batchable submissions.
        batch_key: Option<u64>,
        /// Logical tasks folded into the submission (`submit_weighted`).
        weight: u64,
        /// Absolute start deadline, for TTL submissions.
        deadline: Option<Cycles>,
    },
    /// A continuous batch was formed at a dispatch opportunity: the
    /// members that will ride one device dispatch together.
    BatchFormed {
        /// Batch-compatibility key shared by every member.
        key: u64,
        /// Member handles, in submission order.
        members: Vec<u64>,
        /// Close of the straggler wait window on the virtual timeline.
        window_close: Cycles,
    },
    /// A device dispatch was issued and booked on the virtual timeline.
    /// Every dispatch — single, weighted, or coalesced batch — emits
    /// exactly one of these.
    DispatchIssued {
        /// Dispatch sequence number (shared by all batch members).
        dispatch: u64,
        /// Dispatch start on the virtual timeline.
        start: Cycles,
        /// Dispatch finish on the virtual timeline.
        finish: Cycles,
        /// Device cores the dispatch occupies.
        cores: Vec<usize>,
        /// Member handles carried by the dispatch, in submission order.
        members: Vec<u64>,
        /// Logical tasks carried (member count, or the declared weight
        /// of a `submit_weighted` job). Summed over all `DispatchIssued`
        /// events this equals [`QueueStats::dispatched_tasks`].
        tasks: u64,
        /// Batch key, for coalesced dispatches.
        batch_key: Option<u64>,
    },
    /// A dispatched task retired — successfully or with an error. Every
    /// member of every dispatch emits exactly one of these.
    TaskRetired {
        /// The retiring task.
        handle: u64,
        /// The dispatch that carried it.
        dispatch: u64,
        /// Whether the task retired successfully.
        ok: bool,
        /// The retirement error, for failed members.
        error: Option<String>,
    },
    /// A task failed *before* reaching the device (fault gate, exhausted
    /// retries) and retired as an error completion without a dispatch.
    TaskFailed {
        /// The failed task.
        handle: u64,
        /// The retirement error.
        error: String,
    },
    /// A task's deadline passed before it could start: shed without
    /// dispatching.
    TaskExpired {
        /// The shed task.
        handle: u64,
        /// The deadline that passed.
        deadline: Cycles,
    },
    /// A transient pre-dispatch failure was re-queued with backoff.
    TaskRetried {
        /// The re-queued task.
        handle: u64,
        /// Dispatch attempts consumed so far (1 after the first retry).
        attempt: u32,
        /// When the task becomes dispatchable again.
        eligible: Cycles,
    },
    /// An asynchronous DMA transfer was booked on an engine.
    DmaIssued {
        /// Issuing core.
        core: usize,
        /// Engine the transfer was booked on (0 or 1).
        engine: usize,
        /// Transfer start (after any queueing behind the engine).
        start: Cycles,
        /// Transfer completion.
        completes_at: Cycles,
        /// Bytes moved.
        bytes: u64,
    },
    /// The control processor waited on a DMA engine.
    DmaWaited {
        /// Waiting core.
        core: usize,
        /// Engine waited on.
        engine: usize,
        /// Cycles the CP actually stalled (zero when compute already
        /// covered the transfer).
        stall: Cycles,
    },
    /// An armed [`crate::FaultPlan`] injected a fault.
    FaultInjected {
        /// Task-gate or DMA-issue scope.
        scope: FaultScope,
        /// The plan's injection sequence number within the scope
        /// (matches [`crate::FaultCounts`]).
        seq: u64,
    },
    /// Cluster health tracking marked this device's replica down;
    /// replica routing steers reads around it until it serves again.
    ReplicaDown {
        /// Cluster-wide device index of the downed replica.
        device: usize,
        /// Lifetime device-attributable failures recorded for it.
        failures: u64,
    },
    /// A failed task was transparently resubmitted on another replica
    /// of the same logical shard.
    FailoverIssued {
        /// Submission handle of the new attempt on the target device.
        handle: u64,
        /// Device whose failure triggered the failover.
        from_device: usize,
        /// Device the work was resubmitted on (the event's timeline).
        to_device: usize,
    },
    /// An IVF-indexed retrieval dispatch selected and rescored its
    /// probe set: an on-device centroid scan picked up to `nprobe`
    /// clusters per query, and the union of those selections was
    /// exactly rescored (emitted by the `rag` crate via
    /// [`crate::ApuDevice::emit_trace`]).
    IvfProbe {
        /// Queries in the dispatched batch.
        queries: usize,
        /// Clusters in the index.
        nlist: usize,
        /// Clusters probed per query.
        nprobe: usize,
        /// Distinct clusters the dispatch scanned.
        scanned: usize,
        /// Candidate chunks exactly rescored across (query, cluster)
        /// pairs.
        candidates: u64,
    },
}

impl TraceEvent {
    /// A timestamp-free projection of the event: the variant name plus
    /// its identity fields (handles, dispatch ids, cores, engines,
    /// counts) with every virtual-clock value elided. Two runs of the
    /// same workload in different [`crate::ExecMode`]s produce identical
    /// kind signatures even where cycle stamps could legitimately differ.
    pub fn kind_signature(&self) -> String {
        use TraceEventKind::*;
        match &self.kind {
            TaskSubmitted {
                handle,
                priority,
                batch_key,
                weight,
                deadline,
            } => format!(
                "submitted h={handle} prio={priority:?} key={batch_key:?} w={weight} ttl={}",
                deadline.is_some()
            ),
            BatchFormed { key, members, .. } => {
                format!("batch-formed key={key} members={members:?}")
            }
            DispatchIssued {
                dispatch,
                cores,
                members,
                tasks,
                batch_key,
                ..
            } => format!(
                "dispatch d={dispatch} cores={cores:?} members={members:?} tasks={tasks} key={batch_key:?}"
            ),
            TaskRetired {
                handle,
                dispatch,
                ok,
                error,
            } => format!("retired h={handle} d={dispatch} ok={ok} err={error:?}"),
            TaskFailed { handle, error } => format!("failed h={handle} err={error}"),
            TaskExpired { handle, .. } => format!("expired h={handle}"),
            TaskRetried {
                handle, attempt, ..
            } => format!("retried h={handle} attempt={attempt}"),
            DmaIssued {
                core,
                engine,
                bytes,
                ..
            } => format!("dma-issued core={core} engine={engine} bytes={bytes}"),
            DmaWaited { core, engine, .. } => format!("dma-waited core={core} engine={engine}"),
            FaultInjected { scope, seq } => format!("fault scope={scope:?} seq={seq}"),
            ReplicaDown { device, failures } => {
                format!("replica-down device={device} failures={failures}")
            }
            FailoverIssued {
                handle,
                from_device,
                to_device,
            } => format!("failover h={handle} from={from_device} to={to_device}"),
            IvfProbe {
                queries,
                nlist,
                nprobe,
                scanned,
                candidates,
            } => format!(
                "ivf-probe q={queries} nlist={nlist} nprobe={nprobe} scanned={scanned} cand={candidates}"
            ),
        }
    }
}

/// Receiver of trace events.
///
/// Implementations must be cheap: `record` is called synchronously from
/// the scheduler and DMA hot paths (only when a sink is installed).
/// Sinks observe; they can never perturb simulated time.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);
}

/// A shareable handle to an installed [`TraceSink`].
///
/// Cloning shares the sink, so a caller can keep one handle for reading
/// results while the device holds the other:
///
/// ```
/// use apu_sim::trace::TraceRecorder;
/// use apu_sim::{ApuDevice, SimConfig};
///
/// let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
/// let (sink, recorder) = TraceRecorder::shared();
/// dev.install_trace_sink(sink);
/// // ... run traced work ...
/// assert_eq!(recorder.borrow().len(), 0);
/// ```
#[derive(Clone)]
pub struct SharedSink(Rc<RefCell<dyn TraceSink>>);

impl SharedSink {
    /// Wraps a sink for installation on a device.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        SharedSink(Rc::new(RefCell::new(sink)))
    }

    /// Wraps an already-shared sink cell.
    pub fn from_rc(sink: Rc<RefCell<dyn TraceSink>>) -> Self {
        SharedSink(sink)
    }

    /// Forwards one event to the sink.
    pub fn record(&self, event: TraceEvent) {
        self.0.borrow_mut().record(event);
    }
}

impl fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SharedSink")
    }
}

/// In-memory trace sink for tests: records every event in order.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// An empty recorder plus an installable handle sharing it: install
    /// the [`SharedSink`] on the device, keep the `Rc` to read the
    /// recorded events afterwards.
    #[allow(clippy::type_complexity)]
    pub fn shared() -> (SharedSink, Rc<RefCell<TraceRecorder>>) {
        let rec = Rc::new(RefCell::new(TraceRecorder::new()));
        (SharedSink::from_rc(rec.clone()), rec)
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A byte-stable rendering of the full event stream (timestamps
    /// included): two runs of the same seeded workload must produce
    /// identical signatures, so this is the golden-trace comparator.
    pub fn signature(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(out, "{:?}", e);
        }
        out
    }

    /// The timestamp-free projection of the stream (see
    /// [`TraceEvent::kind_signature`]), for cross-[`crate::ExecMode`]
    /// comparison.
    pub fn kind_signatures(&self) -> Vec<String> {
        self.events.iter().map(TraceEvent::kind_signature).collect()
    }
}

impl TraceSink for TraceRecorder {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Trace sink that buffers events for Chrome `trace_event` JSON export.
///
/// The exported JSON (see [`ChromeTraceSink::json`]) loads in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`: the queue gets one
/// track, each device core one track (dispatch spans), and each
/// per-core DMA engine one track (transfer spans).
#[derive(Debug)]
pub struct ChromeTraceSink {
    clock: Frequency,
    events: Vec<TraceEvent>,
}

impl ChromeTraceSink {
    /// A sink converting cycle stamps with the given device clock.
    pub fn new(clock: Frequency) -> Self {
        ChromeTraceSink {
            clock,
            events: Vec::new(),
        }
    }

    /// A sink plus an installable handle sharing it (see
    /// [`TraceRecorder::shared`]).
    #[allow(clippy::type_complexity)]
    pub fn shared(clock: Frequency) -> (SharedSink, Rc<RefCell<ChromeTraceSink>>) {
        let sink = Rc::new(RefCell::new(ChromeTraceSink::new(clock)));
        (SharedSink::from_rc(sink.clone()), sink)
    }

    /// The buffered events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Exports the buffered events as Chrome `trace_event` JSON.
    pub fn json(&self) -> String {
        chrome_trace_json(&self.events, self.clock)
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Track ids in the exported trace: the queue, then one per core, then
/// one per (core, engine).
const TID_QUEUE: u64 = 0;

fn tid_core(core: usize) -> u64 {
    1 + core as u64
}

fn tid_dma(core: usize, engine: usize) -> u64 {
    1000 + (core as u64) * 2 + engine as u64
}

/// Renders a recorded event stream as Chrome `trace_event` JSON
/// (the `{"traceEvents": [...]}` object form), loadable in Perfetto.
///
/// Durations and timestamps are microseconds of *virtual* device time,
/// converted from [`Cycles`] with `clock`. Instant events (`ph: "i"`)
/// carry queue-lifecycle markers; complete events (`ph: "X"`) carry
/// dispatch spans on core tracks and transfer spans on DMA-engine
/// tracks; metadata events name every track.
///
/// Single-device form of [`chrome_trace_json_grouped`]: the whole
/// stream renders as one `"device"` track group.
pub fn chrome_trace_json(events: &[TraceEvent], clock: Frequency) -> String {
    chrome_trace_json_grouped(&[("device", events)], clock)
}

/// Renders several recorded event streams as one Chrome `trace_event`
/// JSON document, one **track group** (Chrome "process") per named
/// stream — the multi-device export used by the sharded serving stack,
/// where each cluster shard's device timeline gets its own group.
///
/// Group `i` renders under `pid = i + 1` with a `process_name` metadata
/// row carrying its name; within each group the track layout matches
/// [`chrome_trace_json`] (queue track, core tracks, DMA-engine tracks).
/// All groups share one clock, so Perfetto aligns the shard timelines
/// on a common virtual-time axis.
pub fn chrome_trace_json_grouped(groups: &[(&str, &[TraceEvent])], clock: Frequency) -> String {
    use TraceEventKind::*;
    let us = |c: Cycles| clock.cycles_to_secs(c) * 1e6;
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |row: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&row);
    };
    for (group, (group_name, events)) in groups.iter().enumerate() {
        let pid = group as u64 + 1;
        let mut rows: Vec<String> = Vec::new();
        let mut tracks: Vec<(u64, String)> = vec![(TID_QUEUE, "queue".to_string())];
        let track = |tid: u64, name: String, tracks: &mut Vec<(u64, String)>| {
            if !tracks.iter().any(|(t, _)| *t == tid) {
                tracks.push((tid, name));
            }
            tid
        };
        let instant = |name: &str, ts: f64, tid: u64, args: String| {
            format!(
                r#"{{"name":"{}","ph":"i","s":"t","ts":{:.3},"pid":{},"tid":{},"args":{{{}}}}}"#,
                json_escape(name),
                ts,
                pid,
                tid,
                args
            )
        };
        let span = |name: &str, ts: f64, dur: f64, tid: u64, args: String| {
            format!(
                r#"{{"name":"{}","ph":"X","ts":{:.3},"dur":{:.3},"pid":{},"tid":{},"args":{{{}}}}}"#,
                json_escape(name),
                ts,
                dur,
                pid,
                tid,
                args
            )
        };
        for e in *events {
            let ts = us(e.ts);
            match &e.kind {
                TaskSubmitted {
                    handle,
                    priority,
                    batch_key,
                    weight,
                    ..
                } => rows.push(instant(
                    &format!("submit #{handle}"),
                    ts,
                    TID_QUEUE,
                    format!(
                        r#""priority":"{priority:?}","batch_key":{},"weight":{weight}"#,
                        batch_key.map_or("null".into(), |k| k.to_string())
                    ),
                )),
                BatchFormed { key, members, .. } => rows.push(instant(
                    &format!("batch key={key} ×{}", members.len()),
                    ts,
                    TID_QUEUE,
                    format!(r#""key":{key},"members":{members:?}"#),
                )),
                DispatchIssued {
                    dispatch,
                    start,
                    finish,
                    cores,
                    members,
                    tasks,
                    batch_key,
                } => {
                    let dur = us(*finish) - us(*start);
                    for &c in cores {
                        let tid = track(tid_core(c), format!("core {c}"), &mut tracks);
                        rows.push(span(
                            &format!(
                                "dispatch {dispatch} ({tasks} task{})",
                                if *tasks == 1 { "" } else { "s" }
                            ),
                            us(*start),
                            dur,
                            tid,
                            format!(
                                r#""dispatch":{dispatch},"members":{members:?},"batch_key":{}"#,
                                batch_key.map_or("null".into(), |k| k.to_string())
                            ),
                        ));
                    }
                }
                TaskRetired {
                    handle,
                    dispatch,
                    ok,
                    error,
                } => rows.push(instant(
                    &format!("retire #{handle}"),
                    ts,
                    TID_QUEUE,
                    format!(
                        r#""dispatch":{dispatch},"ok":{ok},"error":{}"#,
                        error
                            .as_deref()
                            .map_or("null".into(), |e| format!("\"{}\"", json_escape(e)))
                    ),
                )),
                TaskFailed { handle, error } => rows.push(instant(
                    &format!("fail #{handle}"),
                    ts,
                    TID_QUEUE,
                    format!(r#""error":"{}""#, json_escape(error)),
                )),
                TaskExpired { handle, .. } => rows.push(instant(
                    &format!("shed #{handle}"),
                    ts,
                    TID_QUEUE,
                    String::new(),
                )),
                TaskRetried {
                    handle, attempt, ..
                } => rows.push(instant(
                    &format!("retry #{handle}"),
                    ts,
                    TID_QUEUE,
                    format!(r#""attempt":{attempt}"#),
                )),
                DmaIssued {
                    core,
                    engine,
                    start,
                    completes_at,
                    bytes,
                } => {
                    let tid = track(
                        tid_dma(*core, *engine),
                        format!("core {core} dma {engine}"),
                        &mut tracks,
                    );
                    rows.push(span(
                        &format!("dma {bytes} B"),
                        us(*start),
                        us(*completes_at) - us(*start),
                        tid,
                        format!(r#""bytes":{bytes}"#),
                    ));
                }
                DmaWaited {
                    core,
                    engine,
                    stall,
                } => {
                    let tid = track(
                        tid_dma(*core, *engine),
                        format!("core {core} dma {engine}"),
                        &mut tracks,
                    );
                    rows.push(instant(
                        "dma wait",
                        ts,
                        tid,
                        format!(r#""stall_cycles":{}"#, stall.get()),
                    ));
                }
                FaultInjected { scope, seq } => rows.push(instant(
                    &format!("fault {scope:?} #{seq}"),
                    ts,
                    TID_QUEUE,
                    format!(r#""scope":"{scope:?}","seq":{seq}"#),
                )),
                ReplicaDown { device, failures } => rows.push(instant(
                    &format!("replica down d{device}"),
                    ts,
                    TID_QUEUE,
                    format!(r#""device":{device},"failures":{failures}"#),
                )),
                FailoverIssued {
                    handle,
                    from_device,
                    to_device,
                } => rows.push(instant(
                    &format!("failover d{from_device}→d{to_device}"),
                    ts,
                    TID_QUEUE,
                    format!(r#""handle":{handle},"from":{from_device},"to":{to_device}"#),
                )),
                IvfProbe {
                    queries,
                    nlist,
                    nprobe,
                    scanned,
                    candidates,
                } => rows.push(instant(
                    &format!("ivf probe {scanned}/{nlist}"),
                    ts,
                    TID_QUEUE,
                    format!(
                        r#""queries":{queries},"nlist":{nlist},"nprobe":{nprobe},"scanned":{scanned},"candidates":{candidates}"#
                    ),
                )),
            }
        }
        push(
            format!(
                r#"{{"name":"process_name","ph":"M","pid":{},"args":{{"name":"{}"}}}}"#,
                pid,
                json_escape(group_name)
            ),
            &mut out,
        );
        push(
            format!(
                r#"{{"name":"process_sort_index","ph":"M","pid":{pid},"args":{{"sort_index":{pid}}}}}"#
            ),
            &mut out,
        );
        for (tid, name) in &tracks {
            push(
                format!(
                    r#"{{"name":"thread_name","ph":"M","pid":{},"tid":{},"args":{{"name":"{}"}}}}"#,
                    pid,
                    tid,
                    json_escape(name)
                ),
                &mut out,
            );
        }
        for row in rows {
            push(row, &mut out);
        }
    }
    out.push_str("]}");
    out
}

/// Escapes a string for use as a Prometheus label *value*: per the text
/// exposition format, backslash, double-quote, and line-feed must be
/// escaped (`\\`, `\"`, `\n`); everything else passes through. Without
/// this, a tenant named `a"b` or one containing a newline would inject
/// into the exposition stream and break scrapes.
pub fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders queue and (optionally) device counters in the Prometheus
/// text exposition format, including the per-stage latency totals
/// (`queue_wait` / `dispatch` / `dma` / `device`) and latency quantiles
/// from the bounded reservoir.
///
/// Tenant series use the display name from
/// [`QueueStats::tenant_names`] when one was configured (see
/// `QueueConfig::with_tenant_label`), the numeric id otherwise; either
/// way the label value goes through [`label_escape`]. The `apu_replica_*`
/// series emitted by downstream serving reports carry no labels and need
/// no escaping.
pub fn prometheus_text(queue: &QueueStats, vcu: Option<&VcuStats>) -> String {
    let tenant_label = |id: &u64| -> String {
        match queue.tenant_names.get(id) {
            Some(name) => label_escape(name),
            None => id.to_string(),
        }
    };
    let mut out = String::new();
    let counter = |name: &str, help: &str, value: String, out: &mut String| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    counter(
        "apu_queue_submitted_total",
        "Tasks accepted by admission control",
        queue.submitted.to_string(),
        &mut out,
    );
    counter(
        "apu_queue_rejected_total",
        "Tasks rejected by admission control",
        queue.rejected.to_string(),
        &mut out,
    );
    counter(
        "apu_queue_completed_total",
        "Tasks that ran to successful completion",
        queue.completed.to_string(),
        &mut out,
    );
    counter(
        "apu_queue_failed_total",
        "Tasks retired with an error completion",
        queue.failed.to_string(),
        &mut out,
    );
    counter(
        "apu_queue_expired_total",
        "Tasks shed past their deadline without dispatching",
        queue.expired.to_string(),
        &mut out,
    );
    counter(
        "apu_queue_retries_total",
        "Re-dispatch attempts made by the retry policy",
        queue.retries.to_string(),
        &mut out,
    );
    counter(
        "apu_queue_dispatches_total",
        "Device dispatches issued (a coalesced batch counts once)",
        queue.dispatches.to_string(),
        &mut out,
    );
    counter(
        "apu_queue_dispatched_tasks_total",
        "Logical tasks carried by device dispatches",
        queue.dispatched_tasks.to_string(),
        &mut out,
    );
    let _ = writeln!(
        out,
        "# HELP apu_queue_stage_seconds_total Accumulated per-stage latency over completions"
    );
    let _ = writeln!(out, "# TYPE apu_queue_stage_seconds_total counter");
    let stages = queue.stage_totals();
    for (stage, d) in [
        ("queue_wait", stages.queue_wait),
        ("dispatch", stages.dispatch),
        ("dma", stages.dma),
        ("device", stages.device),
    ] {
        let _ = writeln!(
            out,
            "apu_queue_stage_seconds_total{{stage=\"{stage}\"}} {:.9}",
            d.as_secs_f64()
        );
    }
    let _ = writeln!(
        out,
        "# HELP apu_queue_latency_seconds End-to-end task latency (bounded-reservoir quantiles)"
    );
    let _ = writeln!(out, "# TYPE apu_queue_latency_seconds summary");
    for q in [0.5, 0.9, 0.99] {
        let _ = writeln!(
            out,
            "apu_queue_latency_seconds{{quantile=\"{q}\"}} {:.9}",
            queue.latency_percentile(q).as_secs_f64()
        );
    }
    let _ = writeln!(
        out,
        "apu_queue_latency_seconds_sum {:.9}",
        queue.total_latency.as_secs_f64()
    );
    let _ = writeln!(out, "apu_queue_latency_seconds_count {}", queue.completed);
    let _ = writeln!(
        out,
        "# HELP apu_queue_occupancy_ratio Busy core-time over the makespan\n# TYPE apu_queue_occupancy_ratio gauge\napu_queue_occupancy_ratio {:.9}",
        queue.occupancy()
    );
    let _ = writeln!(
        out,
        "# HELP apu_queue_throughput_tasks_per_second Sustained completions per second\n# TYPE apu_queue_throughput_tasks_per_second gauge\napu_queue_throughput_tasks_per_second {:.6}",
        queue.throughput()
    );
    if !queue.per_tenant.is_empty() {
        let _ = writeln!(
            out,
            "# HELP apu_tenant_tasks_total Logical task units by tenant and disposition"
        );
        let _ = writeln!(out, "# TYPE apu_tenant_tasks_total counter");
        for (tenant, t) in &queue.per_tenant {
            let tenant = tenant_label(tenant);
            for (state, value) in [
                ("submitted", t.submitted),
                ("completed", t.completed),
                ("failed", t.failed),
                ("expired", t.expired),
                ("shed", t.shed),
            ] {
                let _ = writeln!(
                    out,
                    "apu_tenant_tasks_total{{tenant=\"{tenant}\",state=\"{state}\"}} {value}"
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP apu_tenant_stage_seconds_total Accumulated per-stage latency by tenant"
        );
        let _ = writeln!(out, "# TYPE apu_tenant_stage_seconds_total counter");
        for (tenant, t) in &queue.per_tenant {
            let tenant = tenant_label(tenant);
            let stages = t.stage_totals();
            for (stage, d) in [
                ("queue_wait", stages.queue_wait),
                ("dispatch", stages.dispatch),
                ("dma", stages.dma),
                ("device", stages.device),
            ] {
                let _ = writeln!(
                    out,
                    "apu_tenant_stage_seconds_total{{tenant=\"{tenant}\",stage=\"{stage}\"}} {:.9}",
                    d.as_secs_f64()
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP apu_tenant_latency_seconds_total Accumulated end-to-end latency by tenant"
        );
        let _ = writeln!(out, "# TYPE apu_tenant_latency_seconds_total counter");
        for (tenant, t) in &queue.per_tenant {
            let tenant = tenant_label(tenant);
            let _ = writeln!(
                out,
                "apu_tenant_latency_seconds_total{{tenant=\"{tenant}\"}} {:.9}",
                t.total_latency.as_secs_f64()
            );
        }
    }
    if let Some(v) = vcu {
        counter(
            "apu_vcu_commands_total",
            "Vector commands issued",
            v.commands.to_string(),
            &mut out,
        );
        counter(
            "apu_vcu_micro_ops_total",
            "Micro-operations executed",
            v.micro_ops.to_string(),
            &mut out,
        );
        counter(
            "apu_vcu_l4_bytes_total",
            "Bytes moved over the device DRAM interface",
            v.l4_bytes.to_string(),
            &mut out,
        );
        counter(
            "apu_vcu_dma_transactions_total",
            "DMA transactions initiated",
            v.dma_transactions.to_string(),
            &mut out,
        );
        let _ = writeln!(
            out,
            "# HELP apu_vcu_cycles_total Busy cycles by attribution class"
        );
        let _ = writeln!(out, "# TYPE apu_vcu_cycles_total counter");
        for (class, cycles) in [
            ("compute", v.compute_cycles),
            ("dma", v.dma_cycles),
            ("pio", v.pio_cycles),
            ("lookup", v.lookup_cycles),
            ("issue", v.issue_cycles),
        ] {
            let _ = writeln!(out, "apu_vcu_cycles_total{{class=\"{class}\"}} {cycles}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                ts: Cycles::new(0),
                kind: TraceEventKind::TaskSubmitted {
                    handle: 0,
                    priority: Priority::Normal,
                    batch_key: Some(7),
                    weight: 1,
                    deadline: None,
                },
            },
            TraceEvent {
                ts: Cycles::new(10),
                kind: TraceEventKind::DispatchIssued {
                    dispatch: 0,
                    start: Cycles::new(10),
                    finish: Cycles::new(110),
                    cores: vec![0],
                    members: vec![0],
                    tasks: 1,
                    batch_key: Some(7),
                },
            },
            TraceEvent {
                ts: Cycles::new(110),
                kind: TraceEventKind::TaskRetired {
                    handle: 0,
                    dispatch: 0,
                    ok: false,
                    error: Some("boom \"quoted\"\npath".into()),
                },
            },
            TraceEvent {
                ts: Cycles::new(42),
                kind: TraceEventKind::DmaIssued {
                    core: 0,
                    engine: 1,
                    start: Cycles::new(42),
                    completes_at: Cycles::new(99),
                    bytes: 65536,
                },
            },
        ]
    }

    #[test]
    fn recorder_signature_is_stable_and_ordered() {
        let mut rec = TraceRecorder::new();
        for e in sample_events() {
            rec.record(e);
        }
        assert_eq!(rec.len(), 4);
        let again = {
            let mut r = TraceRecorder::new();
            for e in sample_events() {
                r.record(e);
            }
            r.signature()
        };
        assert_eq!(rec.signature(), again);
        assert_eq!(rec.kind_signatures().len(), 4);
        // Kind signatures elide the clock: events differing only in ts
        // project identically.
        let mut shifted = sample_events();
        for e in &mut shifted {
            e.ts = Cycles::new(e.ts.get() + 1000);
        }
        let shifted_sigs: Vec<String> = shifted.iter().map(TraceEvent::kind_signature).collect();
        assert_eq!(rec.kind_signatures(), shifted_sigs);
    }

    #[test]
    fn chrome_export_escapes_and_balances() {
        let json = chrome_trace_json(&sample_events(), Frequency::LEDA_E);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("thread_name"));
        // The quoted error string must be escaped, not break the JSON.
        assert!(json.contains(r#"boom \"quoted\"\npath"#));
        // Crude structural check: balanced braces and brackets.
        let depth = json.chars().fold((0i64, 0i64), |(b, s), c| match c {
            '{' => (b + 1, s),
            '}' => (b - 1, s),
            '[' => (b, s + 1),
            ']' => (b, s - 1),
            _ => (b, s),
        });
        assert_eq!(depth, (0, 0));
    }

    #[test]
    fn grouped_chrome_export_gives_each_shard_its_own_track_group() {
        let events = sample_events();
        let groups: Vec<(&str, &[TraceEvent])> =
            vec![("shard 0", &events), ("shard 1", &events), ("shard 2", &[])];
        let json = chrome_trace_json_grouped(&groups, Frequency::LEDA_E);
        // One process per group, named and sorted.
        for (pid, name) in [(1, "shard 0"), (2, "shard 1"), (3, "shard 2")] {
            assert!(
                json.contains(&format!(
                    r#"{{"name":"process_name","ph":"M","pid":{pid},"args":{{"name":"{name}"}}}}"#
                )),
                "missing process_name for {name}"
            );
        }
        // Event rows land on their group's pid.
        assert!(json.contains(r#""ph":"i","s":"t","ts":0.000,"pid":1"#));
        assert!(json.contains(r#""ph":"i","s":"t","ts":0.000,"pid":2"#));
        // Balanced structure.
        let depth = json.chars().fold((0i64, 0i64), |(b, s), c| match c {
            '{' => (b + 1, s),
            '}' => (b - 1, s),
            '[' => (b, s + 1),
            ']' => (b, s - 1),
            _ => (b, s),
        });
        assert_eq!(depth, (0, 0));
        // The single-group export is the one-device special case.
        assert_eq!(
            chrome_trace_json(&events, Frequency::LEDA_E),
            chrome_trace_json_grouped(&[("device", events.as_slice())], Frequency::LEDA_E)
        );
    }

    #[test]
    fn prometheus_text_renders_counters_and_stages() {
        let mut stats = QueueStats {
            submitted: 5,
            completed: 4,
            failed: 1,
            ..QueueStats::default()
        };
        let tenant = stats.per_tenant.entry(7).or_default();
        tenant.submitted = 5;
        tenant.completed = 4;
        tenant.shed = 1;
        tenant.total_latency = std::time::Duration::from_millis(250);
        let text = prometheus_text(&stats, Some(&VcuStats::default()));
        assert!(text.contains("apu_queue_submitted_total 5"));
        assert!(text.contains("apu_queue_completed_total 4"));
        assert!(text.contains("apu_queue_stage_seconds_total{stage=\"dma\"}"));
        assert!(text.contains("apu_vcu_cycles_total{class=\"compute\"} 0"));
        assert!(text.contains("apu_tenant_tasks_total{tenant=\"7\",state=\"completed\"} 4"));
        assert!(text.contains("apu_tenant_tasks_total{tenant=\"7\",state=\"shed\"} 1"));
        assert!(text.contains("apu_tenant_stage_seconds_total{tenant=\"7\",stage=\"queue_wait\"}"));
        assert!(text.contains("apu_tenant_latency_seconds_total{tenant=\"7\"} 0.250000000"));
        // Queues that never saw tenant-tagged work emit no tenant series.
        let untagged = prometheus_text(&QueueStats::default(), None);
        assert!(!untagged.contains("apu_tenant_"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "line: {line}");
        }
    }

    #[test]
    fn label_escape_covers_the_exposition_metacharacters() {
        assert_eq!(label_escape("plain"), "plain");
        assert_eq!(label_escape("a\"b"), "a\\\"b");
        assert_eq!(label_escape("a\\b"), "a\\\\b");
        assert_eq!(label_escape("a\nb"), "a\\nb");
        assert_eq!(label_escape("a\"b\n"), "a\\\"b\\n");
    }

    #[test]
    fn prometheus_text_escapes_hostile_tenant_names() {
        let mut stats = QueueStats::default();
        stats.tenant_names.insert(7, "a\"b\n".to_string());
        stats.tenant_names.insert(8, "back\\slash".to_string());
        let t = stats.per_tenant.entry(7).or_default();
        t.submitted = 2;
        t.completed = 2;
        let t8 = stats.per_tenant.entry(8).or_default();
        t8.completed = 1;
        let text = prometheus_text(&stats, None);
        // The hostile name is escaped, so the exposition stays valid:
        // one "name{labels} value" pair per line, no raw newline or
        // unescaped quote leaks out of the label value.
        assert!(text.contains("apu_tenant_tasks_total{tenant=\"a\\\"b\\n\",state=\"completed\"} 2"));
        assert!(text.contains("apu_tenant_latency_seconds_total{tenant=\"back\\\\slash\"}"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(!line.is_empty(), "blank line injected");
            // Label values contain no unescaped quote: stripping escaped
            // sequences first, quotes must balance to an even count.
            let stripped = line.replace("\\\\", "").replace("\\\"", "");
            assert_eq!(
                stripped.matches('"').count() % 2,
                0,
                "unbalanced quotes: {line}"
            );
            let name_part = line.split([' ', '{']).next().unwrap();
            assert!(
                name_part.starts_with("apu_"),
                "line does not start with a metric name: {line}"
            );
        }
    }
}
