//! Simulator configuration.

use serde::{Deserialize, Serialize};

use crate::clock::Frequency;
use crate::timing::DeviceTiming;

/// How the simulator executes device programs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// Data is really moved and computed. Used by tests, examples, and
    /// small-scale experiment runs; results are bit-exact.
    #[default]
    Functional,
    /// Only the command stream and cycle accounting run; bulk data movement
    /// and element-wise arithmetic are elided. Used for paper-scale sweeps
    /// (e.g. a 200 GB RAG corpus) where functional simulation would take
    /// hours. By construction the charged cycles are identical to
    /// [`ExecMode::Functional`]; `tests/mode_equivalence.rs` asserts this.
    TimingOnly,
}

impl ExecMode {
    /// Whether data should actually be computed/moved.
    pub fn is_functional(self) -> bool {
        matches!(self, ExecMode::Functional)
    }

    /// Resolves the mode from the `APU_SIM_TEST_MODE` environment
    /// variable (`functional` or `timing`/`timing-only`), falling back to
    /// `default` when unset or unrecognized. The CI matrix uses this to
    /// run the same test suites in both simulator modes.
    pub fn from_env(default: ExecMode) -> ExecMode {
        match std::env::var("APU_SIM_TEST_MODE").as_deref() {
            Ok("functional") => ExecMode::Functional,
            Ok("timing") | Ok("timing-only") | Ok("timing_only") => ExecMode::TimingOnly,
            _ => default,
        }
    }
}

/// Static configuration of a simulated APU platform.
///
/// The default matches the GSI Leda-E used in the paper: 4 cores,
/// 32,768-element VRs of 16-bit data, 24 VRs + 48 VMRs per core, 64 KB L2,
/// 1 MB L3, and a 500 MHz clock. `l4_bytes` defaults to 256 MiB rather than
/// the device's 16 GB so that unit tests do not allocate gigabytes; scale
/// it up (or use [`ExecMode::TimingOnly`]) for paper-scale experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Execution mode (functional vs timing-only).
    pub exec_mode: ExecMode,
    /// Number of APU cores (vector engines).
    pub cores: usize,
    /// Elements per vector register (the paper's `l` = 32,768).
    pub vr_len: usize,
    /// Computation-enabled vector registers per core.
    pub num_vrs: usize,
    /// L1 "background" vector memory registers per core.
    pub num_vmrs: usize,
    /// Per-core L2 DMA scratchpad size in bytes.
    pub l2_bytes: usize,
    /// Control-processor L3 cache size in bytes (shared).
    pub l3_bytes: usize,
    /// Device DRAM (L4) size in bytes.
    pub l4_bytes: usize,
    /// Device core clock.
    pub clock: Frequency,
    /// Latency calibration table.
    pub timing: DeviceTiming,
    /// Opt-in timing fast-forward: lets [`crate::ApuDevice`] replay the
    /// memoized cycle charge of a previously executed kernel signature
    /// instead of re-walking its micro-ops. Only ever consulted in
    /// timing-only mode with no fault plan and no trace sink installed,
    /// so it cannot change any observable output — only wall-clock.
    /// Defaults from the `APU_SIM_FAST_FORWARD` environment variable
    /// (`1`/`true` to enable).
    #[serde(default)]
    pub fast_forward: bool,
}

impl SimConfig {
    /// Configuration of the GSI Leda-E evaluated in the paper, with a
    /// reduced default L4 size (see type-level docs).
    pub fn leda_e() -> Self {
        SimConfig {
            exec_mode: ExecMode::Functional,
            cores: 4,
            vr_len: 32 * 1024,
            num_vrs: 24,
            num_vmrs: 48,
            l2_bytes: 64 * 1024,
            l3_bytes: 1024 * 1024,
            l4_bytes: 256 * 1024 * 1024,
            clock: Frequency::LEDA_E,
            timing: DeviceTiming::leda_e(),
            fast_forward: fast_forward_from_env(),
        }
    }

    /// Builder-style: set the execution mode.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Builder-style: enable or disable timing fast-forward (see the
    /// [`SimConfig::fast_forward`] field).
    pub fn with_fast_forward(mut self, fast_forward: bool) -> Self {
        self.fast_forward = fast_forward;
        self
    }

    /// Builder-style: set the device DRAM capacity in bytes.
    pub fn with_l4_bytes(mut self, bytes: usize) -> Self {
        self.l4_bytes = bytes;
        self
    }

    /// Builder-style: set the core count (a zero count is rejected by
    /// [`SimConfig::validate`]).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Builder-style: replace the latency calibration table (used for
    /// design-space exploration).
    pub fn with_timing(mut self, timing: DeviceTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Bytes occupied by one full vector register (32 K × 16-bit = 64 KB
    /// with default parameters).
    pub fn vr_bytes(&self) -> usize {
        self.vr_len * 2
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidArg`] if any capacity is zero, if the
    /// L2 scratchpad cannot hold a full vector, or if `vr_len` is not a
    /// multiple of the 16-bank organization.
    pub fn validate(&self) -> crate::Result<()> {
        if self.cores == 0 || self.vr_len == 0 || self.num_vrs == 0 || self.num_vmrs == 0 {
            return Err(crate::Error::InvalidArg(
                "core/register counts must be non-zero".into(),
            ));
        }
        if self.l2_bytes < self.vr_bytes() {
            return Err(crate::Error::InvalidArg(format!(
                "L2 ({} B) must hold one full vector ({} B)",
                self.l2_bytes,
                self.vr_bytes()
            )));
        }
        if !self.vr_len.is_multiple_of(crate::core::NUM_BANKS) {
            return Err(crate::Error::InvalidArg(format!(
                "vr_len {} must be a multiple of the {}-bank organization",
                self.vr_len,
                crate::core::NUM_BANKS
            )));
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::leda_e()
    }
}

/// Resolves the default for [`SimConfig::fast_forward`] from the
/// `APU_SIM_FAST_FORWARD` environment variable (`1` or `true` enables;
/// anything else — including unset — disables). The CI matrix uses this
/// to run the same suites with and without memoized timing replay.
pub fn fast_forward_from_env() -> bool {
    matches!(
        std::env::var("APU_SIM_FAST_FORWARD").as_deref(),
        Ok("1") | Ok("true")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_leda_e() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.vr_len, 32768);
        assert_eq!(cfg.num_vrs, 24);
        assert_eq!(cfg.num_vmrs, 48);
        assert_eq!(cfg.vr_bytes(), 65536);
        assert_eq!(cfg.l2_bytes, 65536);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_tiny_l2() {
        let cfg = SimConfig {
            l2_bytes: 1024,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_bank_mismatch() {
        let cfg = SimConfig {
            vr_len: 1000, // not a multiple of 16
            l2_bytes: 1_000_000,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builders_chain() {
        let cfg = SimConfig::leda_e()
            .with_exec_mode(ExecMode::TimingOnly)
            .with_l4_bytes(1 << 20);
        assert_eq!(cfg.exec_mode, ExecMode::TimingOnly);
        assert_eq!(cfg.l4_bytes, 1 << 20);
        assert!(!cfg.exec_mode.is_functional());
    }
}
