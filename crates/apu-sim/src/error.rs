//! Simulator error type.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by the APU simulator.
///
/// All public fallible operations in this crate (and the layers built on
/// top of it) return [`crate::Result`] with this error type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An access touched device DRAM (L4) outside an allocation.
    L4OutOfBounds {
        /// Byte offset of the access.
        offset: usize,
        /// Length of the access in bytes.
        len: usize,
        /// Capacity of the L4 memory in bytes.
        capacity: usize,
    },
    /// An access touched L3 / L2 outside its capacity.
    ScratchOutOfBounds {
        /// Which scratch level ("L2" or "L3").
        level: &'static str,
        /// Byte offset of the access.
        offset: usize,
        /// Length of the access in bytes.
        len: usize,
        /// Capacity of the memory in bytes.
        capacity: usize,
    },
    /// A vector-register index was out of range.
    BadVr {
        /// The requested register index.
        index: usize,
        /// Number of registers of that kind.
        count: usize,
        /// Register kind ("VR" or "VMR").
        kind: &'static str,
    },
    /// Device DRAM allocator ran out of space.
    OutOfDeviceMemory {
        /// Requested allocation in bytes.
        requested: usize,
        /// Free bytes remaining.
        available: usize,
    },
    /// A memory handle did not refer to a live allocation.
    InvalidHandle,
    /// Host/device transfer sizes disagreed with the allocation size.
    SizeMismatch {
        /// What the caller supplied.
        got: usize,
        /// What the allocation / register expects.
        expected: usize,
    },
    /// An argument violated a documented precondition.
    InvalidArg(String),
    /// A device kernel reported failure.
    TaskFailed(String),
    /// A command-queue submission was rejected by admission control.
    QueueFull {
        /// Tasks already pending in the queue.
        pending: usize,
        /// The queue's admission bound.
        capacity: usize,
    },
    /// A queued task's deadline passed before it could dispatch; the
    /// scheduler shed it without running it (load shedding).
    DeadlineExceeded {
        /// The task's absolute deadline on the virtual timeline.
        deadline: std::time::Duration,
    },
    /// The fault-injection harness killed this operation (see
    /// [`crate::FaultPlan`]). Only produced when faults are armed.
    FaultInjected(String),
    /// Cluster-level admission control shed this queued task to protect
    /// higher-priority tail latency: the backlog exceeded the configured
    /// watermark and the task was retired without dispatching.
    AdmissionShed {
        /// Backlog size observed when the task was shed.
        backlog: usize,
        /// The watermark the backlog exceeded.
        watermark: usize,
    },
}

impl Error {
    /// Whether a retry could plausibly succeed. Injected faults and
    /// kernel-reported failures are transient (the bounded retry policy
    /// of [`crate::DeviceQueue`] re-attempts them); programming errors
    /// (bad arguments, out-of-bounds accesses, stale handles) and
    /// admission/deadline outcomes are permanent.
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::FaultInjected(_) | Error::TaskFailed(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::L4OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "L4 access out of bounds: offset {offset} len {len} exceeds capacity {capacity}"
            ),
            Error::ScratchOutOfBounds {
                level,
                offset,
                len,
                capacity,
            } => write!(
                f,
                "{level} access out of bounds: offset {offset} len {len} exceeds capacity {capacity}"
            ),
            Error::BadVr { index, count, kind } => {
                write!(f, "{kind} index {index} out of range (device has {count})")
            }
            Error::OutOfDeviceMemory {
                requested,
                available,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} available"
            ),
            Error::InvalidHandle => write!(f, "invalid device memory handle"),
            Error::SizeMismatch { got, expected } => {
                write!(f, "size mismatch: got {got}, expected {expected}")
            }
            Error::InvalidArg(msg) => write!(f, "invalid argument: {msg}"),
            Error::TaskFailed(msg) => write!(f, "device task failed: {msg}"),
            Error::QueueFull { pending, capacity } => write!(
                f,
                "device queue full: {pending} tasks pending (admission bound {capacity})"
            ),
            Error::DeadlineExceeded { deadline } => write!(
                f,
                "task deadline exceeded: shed before dispatch (deadline {deadline:?})"
            ),
            Error::FaultInjected(msg) => write!(f, "injected fault: {msg}"),
            Error::AdmissionShed { backlog, watermark } => write!(
                f,
                "admission control shed task: backlog {backlog} over watermark {watermark}"
            ),
        }
    }
}

impl StdError for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::L4OutOfBounds {
            offset: 10,
            len: 20,
            capacity: 16,
        };
        let msg = e.to_string();
        assert!(msg.contains("L4"));
        assert!(msg.contains("10"));
        assert!(msg.contains("16"));

        let e = Error::BadVr {
            index: 25,
            count: 24,
            kind: "VR",
        };
        assert!(e.to_string().contains("25"));

        let e = Error::QueueFull {
            pending: 128,
            capacity: 128,
        };
        let msg = e.to_string();
        assert!(msg.contains("queue full"));
        assert!(msg.contains("128"));
    }

    #[test]
    fn transience_classification() {
        assert!(Error::FaultInjected("kth task".into()).is_transient());
        assert!(Error::TaskFailed("kernel".into()).is_transient());
        assert!(!Error::InvalidArg("bad".into()).is_transient());
        assert!(!Error::InvalidHandle.is_transient());
        let e = Error::DeadlineExceeded {
            deadline: std::time::Duration::from_millis(3),
        };
        assert!(!e.is_transient());
        assert!(e.to_string().contains("deadline"));
        let e = Error::AdmissionShed {
            backlog: 9,
            watermark: 4,
        };
        assert!(!e.is_transient());
        assert!(e.to_string().contains("watermark 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
