//! Cycle counting and clock-domain conversion.
//!
//! The APU control processor measures kernel latency with cycle counters;
//! the simulator mirrors that: every operation charges [`Cycles`] and the
//! host converts to wall-clock time with the device [`Frequency`]
//! (500 MHz on the Leda-E part).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A count of device clock cycles.
///
/// A newtype over `u64` so cycle counts cannot be confused with element
/// counts, byte counts, or nanoseconds in latency formulas.
///
/// ```
/// use apu_sim::{Cycles, Frequency};
/// let c = Cycles::new(500);
/// assert_eq!((c + Cycles::new(500)).get(), 1000);
/// // 1000 cycles at 500 MHz is 2 µs.
/// assert_eq!(Frequency::LEDA_E.cycles_to_duration(c * 2).as_micros(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Wraps a raw cycle count.
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Returns the raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; useful when comparing two points in time.
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Largest of the two counts (used when joining parallel cores).
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Converts a non-negative floating point cycle estimate, rounding to
    /// nearest. Negative inputs clamp to zero.
    ///
    /// Analytical latency formulas (e.g. `0.19 d + 41164`) produce `f64`;
    /// this is the single place where they are quantized.
    pub fn from_f64(estimate: f64) -> Cycles {
        if estimate <= 0.0 {
            Cycles(0)
        } else {
            Cycles(estimate.round() as u64)
        }
    }

    /// The cycle count as `f64`, for ratio/report computation.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

/// A clock frequency in hertz.
///
/// ```
/// use apu_sim::Frequency;
/// assert_eq!(Frequency::LEDA_E.hz(), 500.0e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// The GSI Leda-E APU core clock: 500 MHz.
    pub const LEDA_E: Frequency = Frequency(500.0e6);

    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not finite and positive.
    pub fn from_hz(hz: f64) -> Frequency {
        assert!(hz.is_finite() && hz > 0.0, "frequency must be positive");
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Frequency {
        Frequency::from_hz(mhz * 1.0e6)
    }

    /// The frequency in hertz.
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Converts a cycle count in this clock domain to seconds.
    pub fn cycles_to_secs(self, cycles: Cycles) -> f64 {
        cycles.as_f64() / self.0
    }

    /// Converts a cycle count in this clock domain to a [`Duration`].
    pub fn cycles_to_duration(self, cycles: Cycles) -> Duration {
        Duration::from_secs_f64(self.cycles_to_secs(cycles))
    }

    /// Converts seconds to cycles in this clock domain (rounded).
    pub fn secs_to_cycles(self, secs: f64) -> Cycles {
        Cycles::from_f64(secs * self.0)
    }
}

impl Default for Frequency {
    fn default() -> Self {
        Frequency::LEDA_E
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0e9 {
            write!(f, "{:.2} GHz", self.0 / 1.0e9)
        } else {
            write!(f, "{:.1} MHz", self.0 / 1.0e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(32);
        assert_eq!((a + b).get(), 42);
        assert_eq!((b - a).get(), 22);
        assert_eq!((a * 3).get(), 30);
        let mut c = a;
        c += b;
        assert_eq!(c.get(), 42);
        c -= a;
        assert_eq!(c.get(), 32);
    }

    #[test]
    fn cycles_sum_and_max() {
        let total: Cycles = [1u64, 2, 3].iter().map(|&c| Cycles::new(c)).sum();
        assert_eq!(total.get(), 6);
        assert_eq!(Cycles::new(5).max(Cycles::new(9)).get(), 9);
        assert_eq!(Cycles::new(5).saturating_sub(Cycles::new(9)), Cycles::ZERO);
    }

    #[test]
    fn from_f64_rounds_and_clamps() {
        assert_eq!(Cycles::from_f64(1.4).get(), 1);
        assert_eq!(Cycles::from_f64(1.5).get(), 2);
        assert_eq!(Cycles::from_f64(-3.0).get(), 0);
        assert_eq!(Cycles::from_f64(0.0).get(), 0);
    }

    #[test]
    fn frequency_conversions() {
        let f = Frequency::from_mhz(500.0);
        assert_eq!(f.hz(), 500.0e6);
        let c = Cycles::new(500_000_000);
        assert!((f.cycles_to_secs(c) - 1.0).abs() < 1e-12);
        assert_eq!(f.secs_to_cycles(2.0).get(), 1_000_000_000);
        assert_eq!(f.cycles_to_duration(Cycles::new(1000)).as_nanos(), 2000);
    }

    #[test]
    fn frequency_display() {
        assert_eq!(Frequency::LEDA_E.to_string(), "500.0 MHz");
        assert_eq!(Frequency::from_hz(2.7e9).to_string(), "2.70 GHz");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn frequency_rejects_zero() {
        let _ = Frequency::from_hz(0.0);
    }
}
