//! One APU core: 24 computation-enabled vector registers backed by bit
//! processors, 48 L1 vector-memory registers, a 64 KB L2 scratchpad, the
//! micro-op state, marker registers, and the core's cycle/statistics
//! accounting.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::clock::Cycles;
use crate::config::SimConfig;
use crate::dma_async::PendingDma;
use crate::error::Error;
use crate::micro::{MicroOp, MicroState};
use crate::stats::VcuStats;
use crate::timing::VecOp;
use crate::Result;

/// Number of physical banks a VR is striped across (Fig. 4a).
pub const NUM_BANKS: usize = 16;

/// Number of marker registers modeled per core.
///
/// GVML exposes boolean "marks" produced by comparison operations; four
/// registers are ample for every kernel in this repository.
pub const NUM_MARKERS: usize = 4;

/// Index of a computation-enabled vector register (0..24).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Vr(u8);

impl Vr {
    /// Creates a VR index.
    pub const fn new(index: u8) -> Self {
        Vr(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Vr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VR{}", self.0)
    }
}

/// Index of an L1 vector-memory ("background") register (0..48).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Vmr(u8);

impl Vmr {
    /// Creates a VMR index.
    pub const fn new(index: u8) -> Self {
        Vmr(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Vmr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VMR{}", self.0)
    }
}

/// Index of a marker register (0..4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Marker(u8);

impl Marker {
    /// Creates a marker-register index.
    pub const fn new(index: u8) -> Self {
        Marker(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Marker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MRK{}", self.0)
    }
}

/// Broad command classes for cycle attribution (consumed by the energy
/// model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CycleClass {
    /// Vector arithmetic / logic executing in the bit processors.
    Compute,
    /// DMA engine busy time.
    Dma,
    /// Programmed I/O through the RSP FIFO.
    Pio,
    /// L3 indexed lookup.
    Lookup,
    /// Command issue/decode overhead on the control processor.
    Issue,
}

/// One APU core.
///
/// Created by [`crate::ApuDevice`]; device kernels receive access through
/// [`crate::ApuContext`].
#[derive(Debug)]
pub struct ApuCore {
    id: usize,
    cfg: SimConfig,
    vrs: Vec<Vec<u16>>,
    vmrs: Vec<Vec<u16>>,
    l2: Vec<u8>,
    micro: MicroState,
    markers: Vec<Vec<bool>>,
    cycles: Cycles,
    stats: VcuStats,
    /// Busy-until timestamps of the two parallel DMA engines (for the
    /// asynchronous transfer API).
    dma_engines: [Cycles; 2],
    /// Functional copies deferred until the in-flight transfer on each
    /// engine is waited on (see [`crate::dma_async`]); always `None` in
    /// timing-only mode.
    pending_dma: [Option<PendingDma>; 2],
    /// Multiplier on L4-touching DMA latency while other cores contend
    /// for the shared device DRAM (set by the device for parallel runs).
    l4_contention: f64,
}

impl ApuCore {
    /// Creates a core with zeroed registers.
    pub(crate) fn new(id: usize, cfg: SimConfig) -> Self {
        let n = cfg.vr_len;
        ApuCore {
            id,
            vrs: vec![vec![0; n]; cfg.num_vrs],
            vmrs: vec![vec![0; n]; cfg.num_vmrs],
            l2: vec![0; cfg.l2_bytes],
            micro: MicroState::new(n),
            markers: vec![vec![false; n]; NUM_MARKERS],
            cycles: Cycles::ZERO,
            stats: VcuStats::default(),
            dma_engines: [Cycles::ZERO; 2],
            pending_dma: [None, None],
            l4_contention: 1.0,
            cfg,
        }
    }

    /// This core's index within the device.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Elements per vector register.
    pub fn vr_len(&self) -> usize {
        self.cfg.vr_len
    }

    /// Whether data is actually computed (vs timing-only).
    pub fn is_functional(&self) -> bool {
        self.cfg.exec_mode.is_functional()
    }

    /// Current cycle count of this core's control processor.
    pub fn cycles(&self) -> Cycles {
        self.cycles
    }

    /// Cumulative command statistics.
    pub fn stats(&self) -> &VcuStats {
        &self.stats
    }

    /// Crate-internal mutable access for the data-movement layer.
    pub(crate) fn stats_mut(&mut self) -> &mut VcuStats {
        &mut self.stats
    }

    /// Current L4 contention multiplier (1.0 when running alone).
    pub fn l4_contention(&self) -> f64 {
        self.l4_contention
    }

    pub(crate) fn set_l4_contention(&mut self, factor: f64) {
        self.l4_contention = factor;
    }

    pub(crate) fn sync_to(&mut self, cycles: Cycles) {
        self.cycles = self.cycles.max(cycles);
    }

    fn check_vr(&self, vr: Vr) -> Result<usize> {
        if vr.index() < self.vrs.len() {
            Ok(vr.index())
        } else {
            Err(Error::BadVr {
                index: vr.index(),
                count: self.vrs.len(),
                kind: "VR",
            })
        }
    }

    fn check_vmr(&self, vmr: Vmr) -> Result<usize> {
        if vmr.index() < self.vmrs.len() {
            Ok(vmr.index())
        } else {
            Err(Error::BadVr {
                index: vmr.index(),
                count: self.vmrs.len(),
                kind: "VMR",
            })
        }
    }

    fn check_marker(&self, m: Marker) -> Result<usize> {
        if m.index() < self.markers.len() {
            Ok(m.index())
        } else {
            Err(Error::BadVr {
                index: m.index(),
                count: self.markers.len(),
                kind: "MRK",
            })
        }
    }

    /// Read access to a VR's elements.
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range.
    pub fn vr(&self, vr: Vr) -> Result<&[u16]> {
        Ok(&self.vrs[self.check_vr(vr)?])
    }

    /// Mutable access to a VR's elements.
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range.
    pub fn vr_mut(&mut self, vr: Vr) -> Result<&mut [u16]> {
        let i = self.check_vr(vr)?;
        Ok(&mut self.vrs[i])
    }

    /// Disjoint (mutable destination, shared source) access to two VRs.
    ///
    /// # Errors
    ///
    /// Fails on bad indices or when `dst == src` (callers handle aliasing
    /// with an in-place code path).
    pub fn vr_pair_mut(&mut self, dst: Vr, src: Vr) -> Result<(&mut [u16], &[u16])> {
        let d = self.check_vr(dst)?;
        let s = self.check_vr(src)?;
        if d == s {
            return Err(Error::InvalidArg(format!("aliased VR operands: {dst}")));
        }
        // Safe split: indices are distinct and in-bounds.
        if d < s {
            let (lo, hi) = self.vrs.split_at_mut(s);
            Ok((&mut lo[d], &hi[0]))
        } else {
            let (lo, hi) = self.vrs.split_at_mut(d);
            Ok((&mut hi[0], &lo[s]))
        }
    }

    /// Disjoint access to three VRs: mutable `dst`, shared `a` and `b`.
    ///
    /// # Errors
    ///
    /// Fails on bad indices or when `dst` aliases a source (`a == b` is
    /// allowed).
    pub fn vr3_mut(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<(&mut [u16], &[u16], &[u16])> {
        let d = self.check_vr(dst)?;
        let ai = self.check_vr(a)?;
        let bi = self.check_vr(b)?;
        if d == ai || d == bi {
            return Err(Error::InvalidArg(format!(
                "destination {dst} aliases a source operand"
            )));
        }
        let ptr = self.vrs.as_mut_ptr();
        // SAFETY: d, ai, bi are in-bounds; d is distinct from ai and bi, so
        // the mutable borrow does not alias the shared ones. `a == b`
        // yields two shared borrows of the same element, which is fine.
        unsafe {
            let dst_ref: &mut Vec<u16> = &mut *ptr.add(d);
            let a_ref: &Vec<u16> = &*ptr.add(ai);
            let b_ref: &Vec<u16> = &*ptr.add(bi);
            Ok((dst_ref.as_mut_slice(), a_ref.as_slice(), b_ref.as_slice()))
        }
    }

    /// Read access to an L1 vector-memory register.
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range.
    pub fn vmr(&self, vmr: Vmr) -> Result<&[u16]> {
        Ok(&self.vmrs[self.check_vmr(vmr)?])
    }

    /// Mutable access to an L1 vector-memory register.
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range.
    pub fn vmr_mut(&mut self, vmr: Vmr) -> Result<&mut [u16]> {
        let i = self.check_vmr(vmr)?;
        Ok(&mut self.vmrs[i])
    }

    /// Read access to a marker register.
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range.
    pub fn marker(&self, m: Marker) -> Result<&[bool]> {
        Ok(&self.markers[self.check_marker(m)?])
    }

    /// Mutable access to a marker register.
    ///
    /// # Errors
    ///
    /// Fails if the index is out of range.
    pub fn marker_mut(&mut self, m: Marker) -> Result<&mut [bool]> {
        let i = self.check_marker(m)?;
        Ok(&mut self.markers[i])
    }

    /// Mutable marker plus two shared VR operands (for compare ops).
    ///
    /// # Errors
    ///
    /// Fails if any index is out of range.
    pub fn marker_with_vrs(
        &mut self,
        m: Marker,
        a: Vr,
        b: Vr,
    ) -> Result<(&mut [bool], &[u16], &[u16])> {
        let mi = self.check_marker(m)?;
        let ai = self.check_vr(a)?;
        let bi = self.check_vr(b)?;
        let mrk = self.markers.as_mut_ptr();
        // SAFETY: markers and vrs are distinct fields; indices in-bounds.
        unsafe {
            Ok((
                (*mrk.add(mi)).as_mut_slice(),
                self.vrs[ai].as_slice(),
                self.vrs[bi].as_slice(),
            ))
        }
    }

    /// The per-core L2 DMA scratchpad.
    pub fn l2(&self) -> &[u8] {
        &self.l2
    }

    /// Mutable access to the L2 scratchpad.
    pub fn l2_mut(&mut self) -> &mut [u8] {
        &mut self.l2
    }

    /// The micro-op state (read latches and global latches).
    pub fn micro(&self) -> &MicroState {
        &self.micro
    }

    // ---- cycle & statistics accounting ------------------------------

    /// Charges one fixed-latency vector command (Table 4/5 constant rows),
    /// including the VCU issue overhead, and updates statistics.
    pub fn charge(&mut self, op: VecOp) {
        let t = &self.cfg.timing;
        let cost = t.op_cycles(op);
        self.cycles += Cycles::new(cost + t.cmd_issue);
        self.stats.record_op(op, cost, t.cmd_issue);
    }

    /// Charges a variable-latency operation (DMA, PIO, lookup, shift).
    pub fn charge_cycles(&mut self, class: CycleClass, cycles: Cycles) {
        self.cycles += cycles;
        self.stats.record_class(class, cycles.get());
    }

    /// Records `elems` serial RSP-FIFO element transfers in the VCU
    /// statistics. Library layers that move elements through the FIFO
    /// (e.g. marked-entry extraction) call this alongside
    /// [`ApuCore::charge_cycles`] so PIO traffic is visible in reports.
    pub fn note_pio_transfer(&mut self, elems: u64) {
        self.stats.record_pio_elems(elems, 2);
    }

    /// Records DMA-engine busy time in the statistics without advancing
    /// the control-processor clock (asynchronous transfers overlap with
    /// compute; see [`crate::dma_async`]).
    pub fn note_dma_busy(&mut self, cycles: Cycles) {
        self.stats.dma_cycles += cycles.get();
    }

    /// The earliest-free DMA engine and the cycle it becomes free.
    pub fn earliest_dma_engine(&self) -> (usize, Cycles) {
        if self.dma_engines[0] <= self.dma_engines[1] {
            (0, self.dma_engines[0])
        } else {
            (1, self.dma_engines[1])
        }
    }

    /// Books a DMA engine as busy until `until`.
    pub fn book_dma_engine(&mut self, engine: usize, until: Cycles) {
        self.dma_engines[engine.min(1)] = until;
    }

    /// Busy-until timestamps of both DMA engines.
    pub fn dma_engines_busy_until(&self) -> [Cycles; 2] {
        self.dma_engines
    }

    /// Stashes the deferred functional copy of an engine's in-flight
    /// transfer, returning the copy previously pending there (the engine
    /// serializes its transfers, so a displaced copy completed earlier
    /// and must be applied before the new transfer's data could land).
    pub(crate) fn stash_pending_dma(
        &mut self,
        engine: usize,
        pending: PendingDma,
    ) -> Option<PendingDma> {
        self.pending_dma[engine.min(1)].replace(pending)
    }

    /// Takes the pending copy on `engine` if it completes at or before
    /// `by` (a wait on a ticket must not apply a *newer* transfer's data).
    pub(crate) fn take_pending_dma(&mut self, engine: usize, by: Cycles) -> Option<PendingDma> {
        let slot = &mut self.pending_dma[engine.min(1)];
        if slot.as_ref().is_some_and(|p| p.completes_at <= by) {
            slot.take()
        } else {
            None
        }
    }

    /// Takes whatever copy is pending on `engine`, regardless of time
    /// (full-barrier waits and task-end flushes).
    pub(crate) fn take_pending_dma_any(&mut self, engine: usize) -> Option<PendingDma> {
        self.pending_dma[engine.min(1)].take()
    }

    /// Issues one micro-operation: executes it (in functional mode) and
    /// charges one cycle.
    ///
    /// # Errors
    ///
    /// Fails if the micro-op references a VR index out of range.
    pub fn issue_micro(&mut self, op: &MicroOp) -> Result<()> {
        // Validate VR indices up-front so MicroState::execute cannot panic.
        let max = self.vrs.len();
        let check = |i: &usize| -> Result<()> {
            if *i < max {
                Ok(())
            } else {
                Err(Error::BadVr {
                    index: *i,
                    count: max,
                    kind: "VR",
                })
            }
        };
        match op {
            MicroOp::ReadVr { vrs, .. } => vrs.iter().try_for_each(check)?,
            MicroOp::ReadVrOpLatch { vr, .. }
            | MicroOp::OpVr { vr, .. }
            | MicroOp::OpVrOpLatch { vr, .. }
            | MicroOp::WriteVr { vr, .. } => check(vr)?,
            _ => {}
        }
        if self.is_functional() {
            self.micro.execute(&mut self.vrs, op);
        }
        self.cycles += Cycles::new(1);
        self.stats.record_micro();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{SliceMask, WriteSrc};

    fn small_core() -> ApuCore {
        let cfg = SimConfig {
            vr_len: 64,
            l2_bytes: 128,
            ..SimConfig::default()
        };
        ApuCore::new(0, cfg)
    }

    #[test]
    fn vr_indexing_and_bounds() {
        let mut c = small_core();
        assert!(c.vr(Vr::new(23)).is_ok());
        assert!(c.vr(Vr::new(24)).is_err());
        assert!(c.vmr(Vmr::new(47)).is_ok());
        assert!(c.vmr(Vmr::new(48)).is_err());
        assert!(c.marker(Marker::new(3)).is_ok());
        assert!(c.marker(Marker::new(4)).is_err());
        c.vr_mut(Vr::new(0)).unwrap()[5] = 42;
        assert_eq!(c.vr(Vr::new(0)).unwrap()[5], 42);
    }

    #[test]
    fn vr_pair_rejects_alias_and_splits() {
        let mut c = small_core();
        assert!(c.vr_pair_mut(Vr::new(1), Vr::new(1)).is_err());
        c.vr_mut(Vr::new(2)).unwrap()[0] = 9;
        let (d, s) = c.vr_pair_mut(Vr::new(1), Vr::new(2)).unwrap();
        d[0] = s[0] + 1;
        assert_eq!(c.vr(Vr::new(1)).unwrap()[0], 10);
    }

    #[test]
    fn vr3_allows_equal_sources() {
        let mut c = small_core();
        c.vr_mut(Vr::new(5)).unwrap().fill(3);
        let (d, a, b) = c.vr3_mut(Vr::new(0), Vr::new(5), Vr::new(5)).unwrap();
        for i in 0..d.len() {
            d[i] = a[i] + b[i];
        }
        assert!(c.vr(Vr::new(0)).unwrap().iter().all(|&v| v == 6));
        assert!(c.vr3_mut(Vr::new(5), Vr::new(5), Vr::new(1)).is_err());
    }

    #[test]
    fn charge_accumulates_cycles_and_stats() {
        let mut c = small_core();
        c.charge(VecOp::AddU16); // 12 + 2 issue
        c.charge(VecOp::Or16); // 8 + 2 issue
        assert_eq!(c.cycles().get(), 24);
        assert_eq!(c.stats().commands, 2);
        assert_eq!(c.stats().micro_ops, 20); // ≈ one µop per busy cycle
    }

    #[test]
    fn charge_cycles_classifies() {
        let mut c = small_core();
        c.charge_cycles(CycleClass::Dma, Cycles::new(100));
        c.charge_cycles(CycleClass::Pio, Cycles::new(50));
        assert_eq!(c.cycles().get(), 150);
        assert_eq!(c.stats().dma_cycles, 100);
        assert_eq!(c.stats().pio_cycles, 50);
    }

    #[test]
    fn issue_micro_validates_and_executes() {
        let mut c = small_core();
        c.vr_mut(Vr::new(0)).unwrap().fill(0xF0F0);
        c.issue_micro(&MicroOp::ReadVr {
            mask: SliceMask::FULL,
            vrs: vec![0],
        })
        .unwrap();
        c.issue_micro(&MicroOp::WriteVr {
            mask: SliceMask::FULL,
            vr: 1,
            src: WriteSrc::RlNeg,
        })
        .unwrap();
        assert!(c.vr(Vr::new(1)).unwrap().iter().all(|&v| v == 0x0F0F));
        assert_eq!(c.cycles().get(), 2);
        assert!(c
            .issue_micro(&MicroOp::ReadVr {
                mask: SliceMask::FULL,
                vrs: vec![99],
            })
            .is_err());
    }

    #[test]
    fn timing_only_mode_skips_data_but_charges() {
        let cfg = SimConfig {
            vr_len: 64,
            l2_bytes: 128,
            exec_mode: crate::config::ExecMode::TimingOnly,
            ..SimConfig::default()
        };
        let mut c = ApuCore::new(0, cfg);
        c.vr_mut(Vr::new(0)).unwrap().fill(0xFFFF);
        c.issue_micro(&MicroOp::ReadVr {
            mask: SliceMask::FULL,
            vrs: vec![0],
        })
        .unwrap();
        // Data untouched in timing-only mode...
        assert!(c.micro().rl.iter().all(|&r| r == 0));
        // ...but the cycle was charged.
        assert_eq!(c.cycles().get(), 1);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Vr::new(3).to_string(), "VR3");
        assert_eq!(Vmr::new(7).to_string(), "VMR7");
        assert_eq!(Marker::new(1).to_string(), "MRK1");
    }
}
