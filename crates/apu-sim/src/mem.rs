//! Device DRAM (L4) with a GDL-style allocator, plus byte-level helpers
//! shared by the scratch memories.
//!
//! The paper's host programs manage device memory through the GSI GDL
//! library (`gdl_mem_alloc_aligned`, `gdl_mem_cpy_to_dev`, ...). This
//! module provides the equivalent: a bump-with-free-list allocator over a
//! flat byte array, handing out opaque [`MemHandle`]s.

use serde::{Deserialize, Serialize};

use crate::error::Error;
use crate::Result;

/// Alignment of every device allocation, matching the 512-byte DMA chunk
/// granularity of the APU's DMA engines.
pub const ALLOC_ALIGN: usize = 512;

/// An opaque handle to a live allocation in device DRAM.
///
/// Handles are the device-side analogue of `gdl_mem_handle_t`: the host
/// obtains them from [`crate::ApuDevice::alloc`] and passes them to device
/// kernels through task arguments. [`MemHandle::offset_by`] derives a
/// sub-handle at a byte offset, like pointer arithmetic on the C side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemHandle {
    /// Byte offset within device DRAM.
    offset: usize,
    /// Remaining length in bytes this handle may address.
    len: usize,
    /// Generation of the allocator entry, detecting use-after-free.
    generation: u32,
    /// Index of the owning allocation record.
    slot: u32,
}

impl MemHandle {
    /// Byte offset of this handle within device DRAM.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Bytes addressable through this handle.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the handle addresses zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a handle addressing the same allocation `bytes` further in,
    /// with the remaining length shrunk accordingly — the analogue of
    /// `handle + offset` arithmetic in the paper's host code (Fig. 5).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SizeMismatch`] if `bytes` exceeds the handle's
    /// remaining length.
    pub fn offset_by(&self, bytes: usize) -> Result<MemHandle> {
        if bytes > self.len {
            return Err(Error::SizeMismatch {
                got: bytes,
                expected: self.len,
            });
        }
        Ok(MemHandle {
            offset: self.offset + bytes,
            len: self.len - bytes,
            generation: self.generation,
            slot: self.slot,
        })
    }

    /// Returns a handle addressing only the first `bytes` of this handle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SizeMismatch`] if `bytes` exceeds the handle's
    /// remaining length.
    pub fn truncated(&self, bytes: usize) -> Result<MemHandle> {
        if bytes > self.len {
            return Err(Error::SizeMismatch {
                got: bytes,
                expected: self.len,
            });
        }
        Ok(MemHandle {
            offset: self.offset,
            len: bytes,
            generation: self.generation,
            slot: self.slot,
        })
    }
}

/// One allocation record.
#[derive(Debug, Clone)]
struct AllocRecord {
    offset: usize,
    len: usize,
    generation: u32,
    live: bool,
}

/// Device DRAM: flat byte storage plus the allocator.
#[derive(Debug)]
pub struct Dram {
    bytes: Vec<u8>,
    /// Logical capacity. Equals `bytes.len()` for a backed DRAM; a
    /// *virtual* DRAM (timing-only devices) tracks allocations against
    /// this capacity without any backing store, so 16 GB paper-scale
    /// configurations do not allocate host memory.
    capacity: usize,
    records: Vec<AllocRecord>,
    /// Next never-used offset (bump pointer).
    bump: usize,
    /// Total live bytes, for out-of-memory reporting.
    live_bytes: usize,
}

impl Dram {
    /// Creates a DRAM of `capacity` bytes, zero-initialized.
    pub fn new(capacity: usize) -> Self {
        Dram {
            bytes: vec![0; capacity],
            capacity,
            records: Vec::new(),
            bump: 0,
            live_bytes: 0,
        }
    }

    /// Creates a *virtual* DRAM: full allocator semantics and bounds
    /// checking against `capacity`, but no backing store. Reads return
    /// zeros and writes are discarded — only valid for timing-only
    /// devices, which never consume data.
    pub fn new_virtual(capacity: usize) -> Self {
        Dram {
            bytes: Vec::new(),
            capacity,
            records: Vec::new(),
            bump: 0,
            live_bytes: 0,
        }
    }

    /// Whether this DRAM has a backing store.
    pub fn is_backed(&self) -> bool {
        self.bytes.len() == self.capacity
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Allocates `len` bytes aligned to [`ALLOC_ALIGN`].
    ///
    /// First tries to reuse a freed record large enough, then bumps.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfDeviceMemory`] when no space remains.
    pub fn alloc(&mut self, len: usize) -> Result<MemHandle> {
        let aligned = len.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        // Reuse a dead record whose region is large enough.
        for (slot, rec) in self.records.iter_mut().enumerate() {
            if !rec.live && rec.len >= aligned {
                rec.live = true;
                rec.generation = rec.generation.wrapping_add(1);
                self.live_bytes += rec.len;
                return Ok(MemHandle {
                    offset: rec.offset,
                    len,
                    generation: rec.generation,
                    slot: slot as u32,
                });
            }
        }
        if self.bump + aligned > self.capacity {
            return Err(Error::OutOfDeviceMemory {
                requested: aligned,
                available: self.capacity - self.bump,
            });
        }
        let offset = self.bump;
        self.bump += aligned;
        self.live_bytes += aligned;
        let generation = 1;
        self.records.push(AllocRecord {
            offset,
            len: aligned,
            generation,
            live: true,
        });
        Ok(MemHandle {
            offset,
            len,
            generation,
            slot: (self.records.len() - 1) as u32,
        })
    }

    /// Frees an allocation. Sub-handles derived with
    /// [`MemHandle::offset_by`] free the whole underlying allocation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHandle`] for stale or unknown handles.
    pub fn free(&mut self, handle: MemHandle) -> Result<()> {
        let rec = self
            .records
            .get_mut(handle.slot as usize)
            .ok_or(Error::InvalidHandle)?;
        if !rec.live || rec.generation != handle.generation {
            return Err(Error::InvalidHandle);
        }
        rec.live = false;
        self.live_bytes -= rec.len;
        Ok(())
    }

    /// Validates that `handle` is live and `handle.offset + extra_len`
    /// stays within its allocation and the DRAM.
    fn check(&self, handle: &MemHandle, access_len: usize) -> Result<()> {
        let rec = self
            .records
            .get(handle.slot as usize)
            .ok_or(Error::InvalidHandle)?;
        if !rec.live || rec.generation != handle.generation {
            return Err(Error::InvalidHandle);
        }
        if access_len > handle.len {
            return Err(Error::SizeMismatch {
                got: access_len,
                expected: handle.len,
            });
        }
        bounds_check(self.capacity, handle.offset, access_len).map_err(|_| Error::L4OutOfBounds {
            offset: handle.offset,
            len: access_len,
            capacity: self.capacity,
        })
    }

    /// Validates a handle/length pair without touching data (used by
    /// timing-only code paths).
    ///
    /// # Errors
    ///
    /// Fails on stale handles or out-of-range accesses.
    pub fn validate(&self, handle: MemHandle, len: usize) -> Result<()> {
        self.check(&handle, len)
    }

    /// Reads `dst.len()` bytes from the allocation.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or reads beyond the allocation.
    pub fn read(&self, handle: MemHandle, dst: &mut [u8]) -> Result<()> {
        self.check(&handle, dst.len())?;
        if self.is_backed() {
            dst.copy_from_slice(&self.bytes[handle.offset..handle.offset + dst.len()]);
        } else {
            dst.fill(0);
        }
        Ok(())
    }

    /// Writes `src.len()` bytes to the allocation.
    ///
    /// # Errors
    ///
    /// Fails on stale handles or writes beyond the allocation.
    pub fn write(&mut self, handle: MemHandle, src: &[u8]) -> Result<()> {
        self.check(&handle, src.len())?;
        if self.is_backed() {
            self.bytes[handle.offset..handle.offset + src.len()].copy_from_slice(src);
        }
        Ok(())
    }

    /// Borrow of `len` bytes at `handle` (for DMA engines).
    ///
    /// # Errors
    ///
    /// Fails on stale handles or out-of-bounds ranges.
    pub fn slice(&self, handle: MemHandle, len: usize) -> Result<&[u8]> {
        self.check(&handle, len)?;
        if !self.is_backed() {
            return Err(Error::InvalidArg(
                "cannot borrow data from a virtual (timing-only) DRAM".into(),
            ));
        }
        Ok(&self.bytes[handle.offset..handle.offset + len])
    }

    /// Mutable borrow of `len` bytes at `handle` (for DMA engines).
    ///
    /// # Errors
    ///
    /// Fails on stale handles or out-of-bounds ranges.
    pub fn slice_mut(&mut self, handle: MemHandle, len: usize) -> Result<&mut [u8]> {
        self.check(&handle, len)?;
        if !self.is_backed() {
            return Err(Error::InvalidArg(
                "cannot borrow data from a virtual (timing-only) DRAM".into(),
            ));
        }
        Ok(&mut self.bytes[handle.offset..handle.offset + len])
    }

    /// Raw read of a byte range by absolute offset, bypassing the
    /// allocator (used by DMA with programmed chunk addresses).
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds capacity.
    pub fn raw(&self, offset: usize, len: usize) -> Result<&[u8]> {
        bounds_check(self.capacity, offset, len).map_err(|_| Error::L4OutOfBounds {
            offset,
            len,
            capacity: self.capacity,
        })?;
        if !self.is_backed() {
            return Err(Error::InvalidArg(
                "cannot borrow data from a virtual (timing-only) DRAM".into(),
            ));
        }
        Ok(&self.bytes[offset..offset + len])
    }

    /// Raw mutable access by absolute offset (see [`Dram::raw`]).
    ///
    /// # Errors
    ///
    /// Fails when the range exceeds capacity.
    pub fn raw_mut(&mut self, offset: usize, len: usize) -> Result<&mut [u8]> {
        bounds_check(self.capacity, offset, len).map_err(|_| Error::L4OutOfBounds {
            offset,
            len,
            capacity: self.capacity,
        })?;
        if !self.is_backed() {
            return Err(Error::InvalidArg(
                "cannot borrow data from a virtual (timing-only) DRAM".into(),
            ));
        }
        Ok(&mut self.bytes[offset..offset + len])
    }
}

/// Overflow-safe bounds check shared by all memory levels.
pub(crate) fn bounds_check(
    capacity: usize,
    offset: usize,
    len: usize,
) -> std::result::Result<(), ()> {
    match offset.checked_add(len) {
        Some(end) if end <= capacity => Ok(()),
        _ => Err(()),
    }
}

/// A plain-old-data element that can cross the host–device boundary.
///
/// Device DRAM stores raw little-endian bytes; `Pod` defines the
/// conversion for each transferable element type so the host API can be
/// generic ([`crate::ApuDevice::copy_to_device`] /
/// [`crate::ApuDevice::copy_from_device`]) instead of one method pair
/// per type. Implemented for the fixed-width integer and float
/// primitives; all conversions are explicit, no `unsafe` transmutes.
pub trait Pod: Copy {
    /// Serialized size of one element in bytes.
    const SIZE: usize;

    /// Writes the little-endian encoding into `out` (exactly
    /// [`Pod::SIZE`] bytes).
    fn write_le(self, out: &mut [u8]);

    /// Decodes one element from exactly [`Pod::SIZE`] little-endian
    /// bytes.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            fn write_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            fn read_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("caller passes SIZE bytes"))
            }
        }
    )*};
}

impl_pod!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Serializes a `Pod` slice to its little-endian byte representation.
pub fn pods_to_bytes<T: Pod>(values: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; values.len() * T::SIZE];
    for (chunk, v) in out.chunks_exact_mut(T::SIZE).zip(values) {
        v.write_le(chunk);
    }
    out
}

/// Decodes little-endian bytes into `out`.
///
/// # Panics
///
/// Panics if `bytes.len() != out.len() * T::SIZE`.
pub fn bytes_to_pods<T: Pod>(bytes: &[u8], out: &mut [T]) {
    assert_eq!(bytes.len(), out.len() * T::SIZE, "length mismatch");
    for (chunk, v) in bytes.chunks_exact(T::SIZE).zip(out.iter_mut()) {
        *v = T::read_le(chunk);
    }
}

/// Converts a `u16` slice to its little-endian byte representation.
pub fn u16s_to_bytes(values: &[u16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Reinterprets a little-endian byte slice as `u16`s.
///
/// # Panics
///
/// Panics if `bytes.len()` is odd.
pub fn bytes_to_u16s(bytes: &[u8]) -> Vec<u16> {
    assert!(bytes.len().is_multiple_of(2), "byte length must be even");
    bytes
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut d = Dram::new(4096);
        let h = d.alloc(100).unwrap();
        d.write(h, &[7u8; 100]).unwrap();
        let mut buf = [0u8; 100];
        d.read(h, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 100]);
    }

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut d = Dram::new(8192);
        let a = d.alloc(10).unwrap();
        let b = d.alloc(10).unwrap();
        assert_eq!(a.offset() % ALLOC_ALIGN, 0);
        assert_eq!(b.offset() % ALLOC_ALIGN, 0);
        assert!(b.offset() >= a.offset() + ALLOC_ALIGN);
    }

    #[test]
    fn out_of_memory_reports_available() {
        let mut d = Dram::new(1024);
        let _a = d.alloc(512).unwrap();
        match d.alloc(1024) {
            Err(Error::OutOfDeviceMemory { available, .. }) => assert_eq!(available, 512),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn free_allows_reuse_and_invalidates_handle() {
        let mut d = Dram::new(1024);
        let a = d.alloc(512).unwrap();
        let _b = d.alloc(512).unwrap();
        d.free(a).unwrap();
        // old handle is dead
        assert_eq!(d.read(a, &mut [0u8; 1]), Err(Error::InvalidHandle));
        assert_eq!(d.free(a), Err(Error::InvalidHandle));
        // reuse succeeds even though the bump pointer is exhausted
        let c = d.alloc(256).unwrap();
        assert_eq!(c.offset(), a.offset());
        d.write(c, &[1u8; 256]).unwrap();
    }

    #[test]
    fn sub_handles_address_within_allocation() {
        let mut d = Dram::new(4096);
        let h = d.alloc(100).unwrap();
        d.write(h, &(0u8..100).collect::<Vec<_>>()).unwrap();
        let sub = h.offset_by(10).unwrap();
        let mut buf = [0u8; 5];
        d.read(sub, &mut buf).unwrap();
        assert_eq!(buf, [10, 11, 12, 13, 14]);
        assert_eq!(sub.len(), 90);
        assert!(h.offset_by(101).is_err());
        let t = h.truncated(4).unwrap();
        assert_eq!(t.len(), 4);
        assert!(d.read(t, &mut [0u8; 5]).is_err());
    }

    #[test]
    fn oversized_access_is_rejected() {
        let mut d = Dram::new(4096);
        let h = d.alloc(8).unwrap();
        assert!(d.write(h, &[0u8; 9]).is_err());
        assert!(d.read(h, &mut [0u8; 9]).is_err());
    }

    #[test]
    fn raw_access_bounds() {
        let mut d = Dram::new(64);
        assert!(d.raw(60, 4).is_ok());
        assert!(d.raw(60, 5).is_err());
        assert!(d.raw_mut(usize::MAX, 2).is_err());
    }

    #[test]
    fn u16_byte_conversions_roundtrip() {
        let v = vec![0u16, 1, 0xBEEF, u16::MAX];
        assert_eq!(bytes_to_u16s(&u16s_to_bytes(&v)), v);
    }

    #[test]
    fn pod_conversions_roundtrip() {
        let v = vec![-3i32, 0, 7, i32::MAX, i32::MIN];
        let bytes = pods_to_bytes(&v);
        assert_eq!(bytes.len(), v.len() * 4);
        let mut out = vec![0i32; v.len()];
        bytes_to_pods(&bytes, &mut out);
        assert_eq!(out, v);

        let f = vec![0.5f64, -1.25, f64::MAX];
        let mut fout = vec![0.0f64; f.len()];
        bytes_to_pods(&pods_to_bytes(&f), &mut fout);
        assert_eq!(fout, f);

        // u16 Pod encoding matches the legacy helper byte-for-byte.
        let u = vec![0u16, 1, 0xBEEF, u16::MAX];
        assert_eq!(pods_to_bytes(&u), u16s_to_bytes(&u));
    }

    #[test]
    fn live_bytes_tracks_alloc_and_free() {
        let mut d = Dram::new(4096);
        assert_eq!(d.live_bytes(), 0);
        let h = d.alloc(100).unwrap();
        assert_eq!(d.live_bytes(), 512);
        d.free(h).unwrap();
        assert_eq!(d.live_bytes(), 0);
    }
}
