//! Replica health tracking: marks devices down after consecutive
//! device-attributable failures so the router steers reads around them.
//!
//! Only *device-attributable* outcomes feed the tracker — injected
//! faults and task failures ([`Error::is_transient`](crate::Error::is_transient)).
//! Deadline expiry and admission shedding say nothing about replica
//! health (the device was merely busy or the SLO lapsed), so callers
//! must not record them here; [`DeviceCluster::record_outcome`]
//! (see [`super::DeviceCluster`]) enforces that convention.
//!
//! A successful completion always revives a replica: serving a request
//! is the definitive health probe on the virtual timeline.

/// Per-device health state machine for a replicated cluster.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    down_after: u32,
    states: Vec<ReplicaState>,
    transitions: u64,
}

#[derive(Debug, Clone, Default)]
struct ReplicaState {
    consecutive: u32,
    down: bool,
    failures: u64,
    successes: u64,
}

impl HealthTracker {
    /// Tracker over `devices` replicas that marks a device down after a
    /// single device-attributable failure (threshold 1).
    pub fn new(devices: usize) -> Self {
        Self::with_threshold(devices, 1)
    }

    /// Tracker that tolerates `down_after - 1` consecutive failures
    /// before marking a device down. A threshold of 0 is clamped to 1.
    pub fn with_threshold(devices: usize, down_after: u32) -> Self {
        HealthTracker {
            down_after: down_after.max(1),
            states: vec![ReplicaState::default(); devices],
            transitions: 0,
        }
    }

    /// Number of devices tracked.
    pub fn devices(&self) -> usize {
        self.states.len()
    }

    /// Whether `device` is currently considered servable.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn is_up(&self, device: usize) -> bool {
        !self.states[device].down
    }

    /// Records a successful completion: resets the failure streak and
    /// revives the device if it was down.
    pub fn record_success(&mut self, device: usize) {
        let st = &mut self.states[device];
        st.consecutive = 0;
        st.down = false;
        st.successes += 1;
    }

    /// Records a device-attributable failure. Returns `true` exactly
    /// when this failure transitions the device from up to down.
    pub fn record_failure(&mut self, device: usize) -> bool {
        let st = &mut self.states[device];
        st.failures += 1;
        st.consecutive += 1;
        if !st.down && st.consecutive >= self.down_after {
            st.down = true;
            self.transitions += 1;
            return true;
        }
        false
    }

    /// Administratively revives a device (elastic re-add / repair).
    pub fn revive(&mut self, device: usize) {
        let st = &mut self.states[device];
        st.consecutive = 0;
        st.down = false;
    }

    /// Devices currently marked down, in index order.
    pub fn down_devices(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, st)| st.down)
            .map(|(d, _)| d)
            .collect()
    }

    /// Total up→down transitions observed over the tracker's lifetime
    /// (exported as `apu_replica_down_total`).
    pub fn down_transitions(&self) -> u64 {
        self.transitions
    }

    /// Lifetime `(successes, failures)` recorded for `device`.
    pub fn totals(&self, device: usize) -> (u64, u64) {
        let st = &self.states[device];
        (st.successes, st.failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_failure_downs_at_the_default_threshold() {
        let mut h = HealthTracker::new(2);
        assert!(h.is_up(0) && h.is_up(1));
        assert!(h.record_failure(0));
        assert!(!h.is_up(0));
        assert!(h.is_up(1));
        assert_eq!(h.down_devices(), vec![0]);
        assert_eq!(h.down_transitions(), 1);
    }

    #[test]
    fn a_success_revives_and_resets_the_streak() {
        let mut h = HealthTracker::with_threshold(1, 2);
        assert!(!h.record_failure(0));
        h.record_success(0);
        assert!(!h.record_failure(0)); // streak restarted
        assert!(h.record_failure(0));
        assert!(!h.is_up(0));
        h.record_success(0);
        assert!(h.is_up(0));
        assert_eq!(h.totals(0), (2, 3));
    }

    #[test]
    fn repeat_failures_while_down_do_not_retransition() {
        let mut h = HealthTracker::new(1);
        assert!(h.record_failure(0));
        assert!(!h.record_failure(0));
        assert_eq!(h.down_transitions(), 1);
    }
}
