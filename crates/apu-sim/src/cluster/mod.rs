//! Multi-device scale-out: a cluster of independent simulated APUs.
//!
//! The paper serves every workload from **one** device and §5.3 shows
//! the corpus-scaling wall that follows (10 → 200 GB corpora stream
//! ever-longer embedding scans through one HBM interface). This module
//! is the scale-out answer sketched in the roadmap: [`DeviceCluster`]
//! owns N fully independent [`DeviceQueue`]s — each over its own
//! [`ApuDevice`] with its own virtual clock, fault plan, and trace sink
//! — and routes submissions across them with a pluggable
//! [`RoutePolicy`]:
//!
//! * [`RoutePolicy::RoundRobin`] — rotate through shards in submission
//!   order (stateless load spreading),
//! * [`RoutePolicy::LeastOutstanding`] — pick the shard with the
//!   smallest not-yet-dispatched backlog (join-the-shortest-queue),
//! * [`RoutePolicy::ConsistentHash`] — map each [`crate::BatchKey`] to a
//!   stable shard with a jump consistent hash, so same-key work always
//!   lands where its batch mates are and continuous batching keeps
//!   coalescing across the cluster.
//!
//! All submissions flow through [`DeviceCluster::submit`] with a
//! [`TaskSpec`]. Explicit placement ([`TaskSpec::on_shard`]) bypasses
//! the router: scatter-gather callers — e.g. `rag`'s sharded server,
//! which fans each query to **every** shard and merges per-shard top-k —
//! address shards directly and use [`DeviceCluster::scatter`] /
//! [`DeviceCluster::drain`] for the fan-out/fan-in.
//!
//! Shards never share state: a fault plan armed on one device, a retry
//! storm, or a TTL shed on one shard cannot perturb another shard's
//! virtual timeline. Cluster-level reporting is therefore pure
//! aggregation — [`ClusterReport`] keeps the per-shard
//! [`QueueStats`] and [`QueueStats::merge`] folds them into one block
//! for fleet-level metrics.
//!
//! # Replication
//!
//! A cluster can optionally carry a [`Placement`]
//! ([`DeviceCluster::set_placement`]) mapping *logical* shards onto
//! replica sets of device queues. Three primitives then implement
//! replicated reads on top of the plain submission API:
//!
//! * [`DeviceCluster::route_replica`] — read load-balancing: pick the
//!   least-outstanding *healthy* member of a shard's replica set
//!   (excluding already-tried devices on the failover path),
//! * [`DeviceCluster::record_outcome`] — feed the [`HealthTracker`]
//!   with device-attributable outcomes; an up→down transition emits a
//!   [`TraceEventKind::ReplicaDown`] event on that device's sink,
//! * [`DeviceCluster::submit_failover`] — resubmit a failed task on
//!   another replica, stamping a [`TraceEventKind::FailoverIssued`]
//!   event on the target's timeline.
//!
//! The cluster never fails over on its own: callers own the retry loop
//! (see `rag`'s `ShardedRagServer`), because only they know which
//! completions belong to one logical request.

mod health;
mod placement;
mod report;
mod routing;

pub use health::HealthTracker;
pub use placement::{key_shard, Placement};
pub use report::{ClusterHandle, ClusterReport, ShardDrain};
pub use routing::RoutePolicy;

use std::any::Any;
use std::time::Duration;

use crate::device::ApuDevice;
use crate::error::Error;
use crate::queue::{BatchKey, BatchRunner, Completion, DeviceQueue, Job, Priority, QueueConfig};
use crate::spec::TaskSpec;
use crate::stats::QueueStats;
use crate::trace::{TraceEvent, TraceEventKind};
use crate::Result;

use routing::{jump_hash, mix64};

/// A cluster of independent simulated APU devices behind one router.
///
/// See the [module documentation](self) for the scale-out model. Every
/// shard is a full [`DeviceQueue`] — priorities, admission control,
/// continuous batching, TTL shedding, bounded retry, fault containment,
/// and tracing all work per shard exactly as on a single device.
///
/// ```
/// use apu_sim::{
///     ApuDevice, DeviceCluster, QueueConfig, RoutePolicy, SimConfig, TaskSpec, VecOp,
/// };
///
/// # fn main() -> Result<(), apu_sim::Error> {
/// let mut devs: Vec<ApuDevice> = (0..2)
///     .map(|_| ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20)))
///     .collect();
/// let mut cluster = DeviceCluster::new(
///     devs.iter_mut().collect(),
///     QueueConfig::default(),
///     RoutePolicy::RoundRobin,
/// )?;
/// for _ in 0..4 {
///     cluster.submit(TaskSpec::typed(|dev: &mut ApuDevice| {
///         let r = dev.run_task(|ctx| {
///             ctx.core_mut().charge(VecOp::AddU16);
///             Ok(())
///         })?;
///         Ok((r, ()))
///     }))?;
/// }
/// let report = cluster.drain()?;
/// assert_eq!(report.len(), 4);
/// # Ok(())
/// # }
/// ```
pub struct DeviceCluster<'d, 't> {
    nodes: Vec<DeviceQueue<'d, 't>>,
    policy: RoutePolicy,
    rr_next: usize,
    placement: Option<Placement>,
    health: HealthTracker,
}

impl<'d, 't> DeviceCluster<'d, 't> {
    /// Opens a cluster over the given devices, one [`DeviceQueue`] per
    /// device, each configured with a clone of `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for an empty device set.
    pub fn new(
        devices: Vec<&'d mut ApuDevice>,
        cfg: QueueConfig,
        policy: RoutePolicy,
    ) -> Result<Self> {
        if devices.is_empty() {
            return Err(Error::InvalidArg(
                "a device cluster needs at least one device".into(),
            ));
        }
        let nodes: Vec<DeviceQueue<'d, 't>> = devices
            .into_iter()
            .map(|dev| DeviceQueue::new(dev, cfg.clone()))
            .collect();
        let health = HealthTracker::new(nodes.len());
        Ok(DeviceCluster {
            nodes,
            policy,
            rr_next: 0,
            placement: None,
            health,
        })
    }

    /// Number of shards (devices) in the cluster.
    pub fn shard_count(&self) -> usize {
        self.nodes.len()
    }

    /// The routing policy in force.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Replaces the routing policy (placement of *future* submissions).
    pub fn set_policy(&mut self, policy: RoutePolicy) {
        self.policy = policy;
    }

    /// One shard's queue.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn node(&self, shard: usize) -> &DeviceQueue<'d, 't> {
        &self.nodes[shard]
    }

    /// One shard's queue, mutably (e.g. to submit through shard-local
    /// APIs not mirrored here).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn node_mut(&mut self, shard: usize) -> &mut DeviceQueue<'d, 't> {
        &mut self.nodes[shard]
    }

    /// One shard's device (e.g. to arm a per-shard [`crate::FaultPlan`]
    /// or allocate buffers between dispatches).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn device_mut(&mut self, shard: usize) -> &mut ApuDevice {
        self.nodes[shard].device_mut()
    }

    /// Enables or disables timing fast-forward on every shard's device
    /// (see [`ApuDevice::run_task_memoized`]): replayed dispatches charge
    /// a memoized cycle total instead of re-walking their kernels.
    pub fn set_fast_forward(&mut self, on: bool) {
        for n in &mut self.nodes {
            n.set_fast_forward(on);
        }
    }

    /// Total not-yet-dispatched backlog across all shards.
    pub fn pending(&self) -> usize {
        self.nodes.iter().map(DeviceQueue::pending).sum()
    }

    /// One shard's queue counters.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn stats(&self, shard: usize) -> &QueueStats {
        self.nodes[shard].stats()
    }

    /// Cluster-wide counters: every shard's [`QueueStats`] folded with
    /// [`QueueStats::merge`].
    pub fn merged_stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for n in &self.nodes {
            total.merge(n.stats());
        }
        total
    }

    /// Installs a replica placement mapping logical shards onto device
    /// queues (see the [module documentation](self), *Replication*).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] when the placement was built over a
    /// different device-pool size than this cluster.
    pub fn set_placement(&mut self, placement: Placement) -> Result<()> {
        if placement.devices() != self.nodes.len() {
            return Err(Error::InvalidArg(format!(
                "placement spans {} devices but the cluster has {}",
                placement.devices(),
                self.nodes.len()
            )));
        }
        self.placement = Some(placement);
        Ok(())
    }

    /// The installed replica placement, if any.
    pub fn placement(&self) -> Option<&Placement> {
        self.placement.as_ref()
    }

    /// The per-device health tracker.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The per-device health tracker, mutably (e.g. to
    /// [`HealthTracker::revive`] a repaired device).
    pub fn health_mut(&mut self) -> &mut HealthTracker {
        &mut self.health
    }

    /// Read load-balancing across a logical shard's replica set: picks
    /// the least-outstanding healthy replica of `shard` not listed in
    /// `exclude` (ties go to the lowest device index). When every
    /// non-excluded replica is marked down the health filter is dropped
    /// — a down replica might still answer, and guessing beats refusing.
    /// Returns `None` only when every replica is excluded (the failover
    /// path has exhausted the set) or `shard` is out of range.
    ///
    /// Without a [`Placement`] the replica set of shard `s` is just
    /// device `s`, so the method degenerates to the identity routing the
    /// unreplicated scatter-gather callers already use.
    pub fn route_replica(&self, shard: usize, exclude: &[usize]) -> Option<usize> {
        let identity = [shard];
        let group: &[usize] = match &self.placement {
            Some(p) => {
                if shard >= p.shards() {
                    return None;
                }
                p.replicas(shard)
            }
            None => {
                if shard >= self.nodes.len() {
                    return None;
                }
                &identity
            }
        };
        let pick = |healthy_only: bool| {
            group
                .iter()
                .copied()
                .filter(|d| !exclude.contains(d))
                .filter(|&d| !healthy_only || self.health.is_up(d))
                .min_by_key(|&d| (self.nodes[d].pending(), d))
        };
        pick(true).or_else(|| pick(false))
    }

    /// Feeds the health tracker with a completion outcome observed at
    /// virtual time `at` on `device`. Callers must only report
    /// *device-attributable* failures (`ok == false` for faults and task
    /// failures, [`Error::is_transient`]); deadline expiry and admission
    /// shedding say nothing about replica health and must not be
    /// recorded. An up→down transition emits a
    /// [`TraceEventKind::ReplicaDown`] event on the device's trace sink.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range device index.
    pub fn record_outcome(&mut self, device: usize, ok: bool, at: Duration) {
        if ok {
            self.health.record_success(device);
        } else if self.health.record_failure(device) {
            let (_, failures) = self.health.totals(device);
            self.emit_on(device, at, TraceEventKind::ReplicaDown { device, failures });
        }
    }

    /// Failover resubmission: submits a *pinned* spec (the caller picks
    /// the target replica, typically via [`DeviceCluster::route_replica`]
    /// with the already-tried devices excluded) and stamps a
    /// [`TraceEventKind::FailoverIssued`] event at virtual time `at` on
    /// the target's timeline. Resubmitting with the **original** arrival
    /// keeps stage accounting exact: the elapsed failover delay lands in
    /// the new attempt's queue-wait stage, so its stage sum still equals
    /// the end-to-end latency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for an unpinned spec or a bad
    /// device index, or [`Error::QueueFull`] when the target's backlog
    /// bound is hit.
    pub fn submit_failover(
        &mut self,
        spec: TaskSpec<'t>,
        from_device: usize,
        at: Duration,
    ) -> Result<ClusterHandle> {
        let Some(target) = spec.shard else {
            return Err(Error::InvalidArg(
                "a failover spec must be pinned to its target replica".into(),
            ));
        };
        self.check_shard(target)?;
        self.check_shard(from_device)?;
        let task = self.nodes[target].submit(spec)?;
        self.emit_on(
            target,
            at,
            TraceEventKind::FailoverIssued {
                handle: task.id(),
                from_device,
                to_device: target,
            },
        );
        Ok(ClusterHandle::new(target, task))
    }

    /// Emits a cluster-level event on one device's trace sink, if any.
    fn emit_on(&mut self, device: usize, at: Duration, kind: TraceEventKind) {
        let dev = self.nodes[device].device_mut();
        if let Some(sink) = dev.trace() {
            let ts = dev.config().clock.secs_to_cycles(at.as_secs_f64());
            sink.record(TraceEvent { ts, kind });
        }
    }

    /// Picks the shard for a router-placed submission.
    fn route(&mut self, key: Option<BatchKey>) -> usize {
        match self.policy {
            RoutePolicy::RoundRobin => self.round_robin(),
            RoutePolicy::LeastOutstanding => self
                .nodes
                .iter()
                .enumerate()
                .min_by_key(|(i, n)| (n.pending(), *i))
                .map(|(i, _)| i)
                .expect("cluster is never empty"),
            RoutePolicy::ConsistentHash => match key {
                Some(k) => jump_hash(mix64(k.get()), self.nodes.len()),
                None => self.round_robin(),
            },
        }
    }

    fn round_robin(&mut self) -> usize {
        let s = self.rr_next;
        self.rr_next = (self.rr_next + 1) % self.nodes.len();
        s
    }

    fn check_shard(&self, shard: usize) -> Result<()> {
        if shard >= self.nodes.len() {
            return Err(Error::InvalidArg(format!(
                "shard {shard} out of range (cluster has {})",
                self.nodes.len()
            )));
        }
        Ok(())
    }

    /// Submits the work described by a [`TaskSpec`] — the single entry
    /// point of the cluster submission API. A pinned spec
    /// ([`TaskSpec::on_shard`]) bypasses the router; otherwise the
    /// [`RoutePolicy`] places it (batchable specs route by their key
    /// under [`RoutePolicy::ConsistentHash`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for a bad shard pin or zero weight,
    /// or [`Error::QueueFull`] when the chosen shard's backlog bound is
    /// hit.
    pub fn submit(&mut self, spec: TaskSpec<'t>) -> Result<ClusterHandle> {
        let shard = match spec.shard {
            Some(s) => {
                self.check_shard(s)?;
                s
            }
            None => self.route(spec.batch_key()),
        };
        let task = self.nodes[shard].submit(spec)?;
        Ok(ClusterHandle::new(shard, task))
    }

    /// Router-placed raw-job submission with an explicit arrival.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the chosen shard's backlog
    /// bound is hit.
    #[deprecated(since = "0.6.0", note = "build a `TaskSpec` and call `submit(spec)`")]
    pub fn submit_at(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: Job<'t>,
    ) -> Result<ClusterHandle> {
        self.submit(TaskSpec::job(job).priority(priority).at(arrival))
    }

    /// Raw-job submission on an explicit shard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for a bad shard index or
    /// [`Error::QueueFull`] when that shard's backlog bound is hit.
    #[deprecated(
        since = "0.6.0",
        note = "build a `TaskSpec` with `.on_shard(shard)` and call `submit(spec)`"
    )]
    pub fn submit_to(
        &mut self,
        shard: usize,
        priority: Priority,
        arrival: Duration,
        job: Job<'t>,
    ) -> Result<ClusterHandle> {
        self.submit(
            TaskSpec::job(job)
                .priority(priority)
                .at(arrival)
                .on_shard(shard),
        )
    }

    /// Router-placed typed-output job.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the chosen shard's backlog
    /// bound is hit.
    #[deprecated(
        since = "0.6.0",
        note = "build a `TaskSpec::typed` and call `submit(spec)`"
    )]
    pub fn submit_job<T, F>(
        &mut self,
        priority: Priority,
        arrival: Duration,
        job: F,
    ) -> Result<ClusterHandle>
    where
        T: Any,
        F: FnOnce(&mut ApuDevice) -> Result<(crate::TaskReport, T)> + 't,
    {
        self.submit(TaskSpec::typed(job).priority(priority).at(arrival))
    }

    /// Raw-job submission with a time-to-live on an explicit shard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for a bad shard index or
    /// [`Error::QueueFull`] when that shard's backlog bound is hit.
    #[deprecated(
        since = "0.6.0",
        note = "build a `TaskSpec` with `.ttl(...)` / `.on_shard(...)` and call `submit(spec)`"
    )]
    pub fn submit_with_ttl_to(
        &mut self,
        shard: usize,
        priority: Priority,
        arrival: Duration,
        ttl: Duration,
        job: Job<'t>,
    ) -> Result<ClusterHandle> {
        self.submit(
            TaskSpec::job(job)
                .priority(priority)
                .at(arrival)
                .ttl(ttl)
                .on_shard(shard),
        )
    }

    /// Router-placed batchable submission: under
    /// [`RoutePolicy::ConsistentHash`] the key pins the shard, so
    /// same-key submissions keep coalescing into shared dispatches.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the chosen shard's backlog
    /// bound is hit.
    #[deprecated(
        since = "0.6.0",
        note = "build a `TaskSpec::batch` and call `submit(spec)`"
    )]
    pub fn submit_batchable(
        &mut self,
        priority: Priority,
        arrival: Duration,
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    ) -> Result<ClusterHandle> {
        self.submit(
            TaskSpec::batch(key, payload, run)
                .priority(priority)
                .at(arrival),
        )
    }

    /// Batchable submission on an explicit shard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for a bad shard index or
    /// [`Error::QueueFull`] when that shard's backlog bound is hit.
    #[deprecated(
        since = "0.6.0",
        note = "build a `TaskSpec::batch` with `.on_shard(shard)` and call `submit(spec)`"
    )]
    pub fn submit_batchable_to(
        &mut self,
        shard: usize,
        priority: Priority,
        arrival: Duration,
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    ) -> Result<ClusterHandle> {
        self.submit(
            TaskSpec::batch(key, payload, run)
                .priority(priority)
                .at(arrival)
                .on_shard(shard),
        )
    }

    /// Batchable submission with a time-to-live on an explicit shard.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for a bad shard index or
    /// [`Error::QueueFull`] when that shard's backlog bound is hit.
    #[deprecated(
        since = "0.6.0",
        note = "build a `TaskSpec::batch` with `.ttl(...)` / `.on_shard(...)` and call `submit(spec)`"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn submit_batchable_with_ttl_to(
        &mut self,
        shard: usize,
        priority: Priority,
        arrival: Duration,
        ttl: Duration,
        key: BatchKey,
        payload: Box<dyn Any>,
        run: BatchRunner<'t>,
    ) -> Result<ClusterHandle> {
        self.submit(
            TaskSpec::batch(key, payload, run)
                .priority(priority)
                .at(arrival)
                .ttl(ttl)
                .on_shard(shard),
        )
    }

    /// Scatter: submits one job per shard (built by `make`, which
    /// receives the shard index), all arriving at the same instant —
    /// the fan-out half of scatter-gather execution. Returns one handle
    /// per shard, in shard order; gather with [`DeviceCluster::drain`]
    /// and [`ClusterReport::take`], or [`DeviceCluster::wait`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] if any shard rejects its piece;
    /// pieces admitted before the rejection stay queued.
    pub fn scatter<F>(
        &mut self,
        priority: Priority,
        arrival: Duration,
        mut make: F,
    ) -> Result<Vec<ClusterHandle>>
    where
        F: FnMut(usize) -> Job<'t>,
    {
        (0..self.nodes.len())
            .map(|shard| {
                self.submit(
                    TaskSpec::job(make(shard))
                        .priority(priority)
                        .at(arrival)
                        .on_shard(shard),
                )
            })
            .collect()
    }

    /// Runs one shard's queue until the given task retires and returns
    /// its completion (other shards are untouched).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for a bad shard index or an unknown
    /// handle on that shard.
    pub fn wait(&mut self, handle: ClusterHandle) -> Result<&Completion> {
        self.check_shard(handle.shard())?;
        self.nodes[handle.shard()].wait(handle.task())
    }

    /// Gather: drains every shard's queue to completion (each on its own
    /// virtual timeline) and returns the per-shard completions and
    /// counters. Shards drain independently — one shard's faults, sheds,
    /// or retries never block another's progress.
    ///
    /// # Errors
    ///
    /// Propagates queue-level invariant violations; per-task failures
    /// retire as error completions instead.
    pub fn drain(&mut self) -> Result<ClusterReport> {
        let mut shards = Vec::with_capacity(self.nodes.len());
        for (shard, node) in self.nodes.iter_mut().enumerate() {
            let completions = node.drain()?;
            shards.push(ShardDrain {
                shard,
                completions,
                stats: node.stats().clone(),
            });
        }
        Ok(ClusterReport { shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::timing::VecOp;

    fn devices(n: usize) -> Vec<ApuDevice> {
        (0..n)
            .map(|_| ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20)))
            .collect()
    }

    fn charge_job<'t>(tag: u32) -> Job<'t> {
        Box::new(move |dev: &mut ApuDevice| {
            let r = dev.run_task(|ctx| {
                ctx.core_mut().charge(VecOp::AddU16);
                Ok(())
            })?;
            Ok((r, Box::new(tag) as Box<dyn Any>))
        })
    }

    #[test]
    fn empty_cluster_is_rejected() {
        assert!(matches!(
            DeviceCluster::new(Vec::new(), QueueConfig::default(), RoutePolicy::RoundRobin),
            Err(Error::InvalidArg(_))
        ));
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let mut devs = devices(3);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
        let handles: Vec<ClusterHandle> = (0..9)
            .map(|i| cluster.submit(TaskSpec::job(charge_job(i))).unwrap())
            .collect();
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(h.shard(), i % 3);
        }
        let report = cluster.drain().unwrap();
        assert_eq!(report.len(), 9);
        for s in &report.shards {
            assert_eq!(s.completions.len(), 3);
            assert_eq!(s.stats.completed, 3);
        }
    }

    #[test]
    fn least_outstanding_prefers_the_shortest_backlog() {
        let mut devs = devices(2);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::LeastOutstanding,
        )
        .unwrap();
        // Pre-load shard 0 with explicit placements; the router must
        // then prefer shard 1 until the backlogs level out.
        for i in 0..4 {
            cluster
                .submit(TaskSpec::job(charge_job(i)).on_shard(0))
                .unwrap();
        }
        for i in 0..4 {
            let h = cluster.submit(TaskSpec::job(charge_job(100 + i))).unwrap();
            assert_eq!(h.shard(), 1, "submission {i} must go to the idle shard");
        }
        // Backlogs now equal: ties go to the lowest index.
        let h = cluster.submit(TaskSpec::job(charge_job(200))).unwrap();
        assert_eq!(h.shard(), 0);
    }

    #[test]
    fn consistent_hash_is_stable_and_covers_shards() {
        let mut devs = devices(4);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default().with_max_batch(8),
            RoutePolicy::ConsistentHash,
        )
        .unwrap();
        let noop_runner = || -> BatchRunner<'static> {
            Box::new(|dev: &mut ApuDevice, payloads: Vec<Box<dyn Any>>| {
                let report = dev.run_task(|ctx| {
                    ctx.core_mut().charge(VecOp::AddU16);
                    Ok(())
                })?;
                Ok((report, payloads.into_iter().map(Ok).collect()))
            })
        };
        let mut seen = std::collections::HashSet::new();
        for key in 0..64u64 {
            let a = cluster
                .submit(TaskSpec::batch(
                    BatchKey::new(key),
                    Box::new(()),
                    noop_runner(),
                ))
                .unwrap();
            let b = cluster
                .submit(TaskSpec::batch(
                    BatchKey::new(key),
                    Box::new(()),
                    noop_runner(),
                ))
                .unwrap();
            assert_eq!(a.shard(), b.shard(), "key {key} must pin one shard");
            seen.insert(a.shard());
        }
        assert_eq!(seen.len(), 4, "64 keys must cover all 4 shards");
        // Same-key members coalesce on their shard.
        let report = cluster.drain().unwrap();
        let merged = report.merged_stats();
        assert_eq!(merged.submitted, 128);
        assert_eq!(merged.completed, 128);
        assert!(merged.max_batch_size >= 2, "pinned keys must batch");
    }

    #[test]
    fn pinned_specs_bypass_the_router_and_bad_pins_error() {
        let mut devs = devices(3);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
        // Pins don't advance the round-robin cursor.
        let pinned = cluster
            .submit(TaskSpec::job(charge_job(1)).on_shard(2))
            .unwrap();
        assert_eq!(pinned.shard(), 2);
        let routed = cluster.submit(TaskSpec::job(charge_job(2))).unwrap();
        assert_eq!(routed.shard(), 0, "router starts at shard 0 regardless");
        assert!(matches!(
            cluster.submit(TaskSpec::job(charge_job(3)).on_shard(9)),
            Err(Error::InvalidArg(_))
        ));
    }

    #[test]
    fn scatter_places_one_piece_per_shard() {
        let mut devs = devices(3);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
        let handles = cluster
            .scatter(Priority::Normal, Duration::ZERO, |shard| {
                charge_job(shard as u32)
            })
            .unwrap();
        assert_eq!(handles.len(), 3);
        let mut report = cluster.drain().unwrap();
        for (shard, h) in handles.into_iter().enumerate() {
            assert_eq!(h.shard(), shard);
            let c = report.take(h).expect("scattered piece retired");
            assert_eq!(c.output::<u32>(), Some(&(shard as u32)));
            assert!(report.take(h).is_none(), "take is consuming");
        }
    }

    #[test]
    fn shards_have_independent_timelines_and_faults() {
        let mut devs = devices(2);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
        cluster
            .device_mut(1)
            .inject_faults(crate::FaultPlan::new(3).fail_every_kth_task(1));
        for i in 0..4 {
            cluster
                .submit(TaskSpec::job(charge_job(i as u32)).on_shard(i % 2))
                .unwrap();
        }
        let report = cluster.drain().unwrap();
        assert_eq!(report.shards[0].stats.completed, 2);
        assert_eq!(report.shards[0].stats.failed, 0);
        assert_eq!(report.shards[1].stats.completed, 0);
        assert_eq!(report.shards[1].stats.failed, 2);
        // The faulted shard books no device time; the clean one does.
        assert!(report.shards[0].stats.busy > Duration::ZERO);
        assert_eq!(report.shards[1].stats.busy, Duration::ZERO);
        let merged = report.merged_stats();
        assert_eq!(merged.completed, 2);
        assert_eq!(merged.failed, 2);
        assert_eq!(merged.cores, report.shards[0].stats.cores * 2);
    }

    #[test]
    fn replica_routing_balances_excludes_and_routes_around_down_devices() {
        let mut devs = devices(4);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
        // Mismatched pool size is rejected; the right one installs.
        assert!(cluster
            .set_placement(Placement::new(2, 2, 3).unwrap())
            .is_err());
        cluster
            .set_placement(Placement::new(2, 2, 4).unwrap())
            .unwrap();
        // Shard 0 lives on devices {0, 1}: idle cluster ties to the
        // lowest index, backlog shifts the pick, exclusion walks the
        // set, exhaustion yields None.
        assert_eq!(cluster.route_replica(0, &[]), Some(0));
        cluster
            .submit(TaskSpec::job(charge_job(1)).on_shard(0))
            .unwrap();
        assert_eq!(cluster.route_replica(0, &[]), Some(1));
        assert_eq!(cluster.route_replica(0, &[1]), Some(0));
        assert_eq!(cluster.route_replica(0, &[0, 1]), None);
        assert_eq!(cluster.route_replica(9, &[]), None);
        // A down replica is avoided while an up one remains…
        cluster.record_outcome(1, false, Duration::ZERO);
        assert!(!cluster.health().is_up(1));
        cluster
            .submit(TaskSpec::job(charge_job(2)).on_shard(0))
            .unwrap();
        assert_eq!(
            cluster.route_replica(0, &[]),
            Some(0),
            "device 0 is busier but device 1 is down"
        );
        // …and the health filter drops when the whole set is down.
        cluster.record_outcome(0, false, Duration::ZERO);
        assert_eq!(cluster.route_replica(0, &[]), Some(1));
        // A success revives.
        cluster.record_outcome(1, true, Duration::ZERO);
        assert!(cluster.health().is_up(1));
        assert_eq!(cluster.health().down_transitions(), 2);
    }

    #[test]
    fn failover_resubmission_retires_on_the_surviving_replica() {
        let mut devs = devices(2);
        devs[0].inject_faults(crate::FaultPlan::new(3).fail_every_kth_task(1));
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
        cluster
            .set_placement(Placement::new(1, 2, 2).unwrap())
            .unwrap();
        let primary = cluster.route_replica(0, &[]).unwrap();
        assert_eq!(primary, 0);
        let h = cluster
            .submit(TaskSpec::job(charge_job(7)).on_shard(primary))
            .unwrap();
        let report = cluster.drain().unwrap();
        let failed = &report.shards[0].completions[0];
        assert!(!failed.is_ok());
        assert_eq!(failed.handle, h.task());
        let observed = failed.finished_at;
        cluster.record_outcome(primary, false, observed);
        // Unpinned failover specs are rejected; a pinned one lands on
        // the surviving replica and succeeds.
        assert!(matches!(
            cluster.submit_failover(TaskSpec::job(charge_job(7)), primary, observed),
            Err(Error::InvalidArg(_))
        ));
        let next = cluster.route_replica(0, &[primary]).unwrap();
        assert_eq!(next, 1);
        let h2 = cluster
            .submit_failover(
                TaskSpec::job(charge_job(7)).on_shard(next),
                primary,
                observed,
            )
            .unwrap();
        assert_eq!(h2.shard(), 1);
        let done = cluster.wait(h2).unwrap();
        assert!(done.is_ok());
        assert_eq!(done.output::<u32>(), Some(&7));
    }

    #[test]
    fn wait_retires_one_shard_without_draining_others() {
        let mut devs = devices(2);
        let mut cluster = DeviceCluster::new(
            devs.iter_mut().collect(),
            QueueConfig::default(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
        let a = cluster
            .submit(TaskSpec::job(charge_job(7)).on_shard(0))
            .unwrap();
        cluster
            .submit(TaskSpec::job(charge_job(8)).on_shard(1))
            .unwrap();
        let done = cluster.wait(a).unwrap();
        assert_eq!(done.output::<u32>(), Some(&7));
        assert_eq!(cluster.node(1).pending(), 1, "shard 1 still holds its job");
        let bad = ClusterHandle::new(9, a.task());
        assert!(cluster.wait(bad).is_err());
    }
}
