//! Fan-in types of a cluster drain: per-shard handles, drained
//! completions, and merged fleet counters.

use crate::queue::{Completion, TaskHandle};
use crate::stats::QueueStats;

/// Identifier of a task submitted through a [`crate::DeviceCluster`]:
/// the shard it was placed on plus the shard-local [`TaskHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterHandle {
    shard: usize,
    task: TaskHandle,
}

impl ClusterHandle {
    pub(crate) fn new(shard: usize, task: TaskHandle) -> Self {
        ClusterHandle { shard, task }
    }

    /// The shard the task was placed on.
    pub fn shard(self) -> usize {
        self.shard
    }

    /// The shard-local queue handle.
    pub fn task(self) -> TaskHandle {
        self.task
    }
}

/// One shard's drained output: its retired completions (in retire order)
/// and its queue counters.
///
/// Under a replica [`Placement`](crate::Placement) the cluster's queues
/// are *devices*, not logical shards — `shard` is then the cluster-wide
/// device index, and the placement maps logical shards onto these.
#[derive(Debug)]
pub struct ShardDrain {
    /// The shard index within the cluster.
    pub shard: usize,
    /// Every completion the shard's queue retired during the drain.
    pub completions: Vec<Completion>,
    /// The shard queue's cumulative counters.
    pub stats: QueueStats,
}

/// Fan-in result of [`crate::DeviceCluster::drain`]: per-shard
/// completions and stats, in shard order.
#[derive(Debug)]
pub struct ClusterReport {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardDrain>,
}

impl ClusterReport {
    /// Total completions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.completions.len()).sum()
    }

    /// Whether no shard retired anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates `(shard, completion)` pairs in shard order.
    pub fn completions(&self) -> impl Iterator<Item = (usize, &Completion)> {
        self.shards
            .iter()
            .flat_map(|s| s.completions.iter().map(move |c| (s.shard, c)))
    }

    /// Removes and returns the completion of one cluster handle, or
    /// `None` if it already retired elsewhere (or never existed).
    pub fn take(&mut self, handle: ClusterHandle) -> Option<Completion> {
        let shard = self.shards.get_mut(handle.shard())?;
        let at = shard
            .completions
            .iter()
            .position(|c| c.handle == handle.task())?;
        Some(shard.completions.remove(at))
    }

    /// The per-queue cumulative counters in queue (device) order.
    ///
    /// Queue counters are cumulative across drains, so in a multi-round
    /// failover drain the **last** report's entries are the totals — do
    /// not sum entries across rounds.
    pub fn device_stats(&self) -> Vec<QueueStats> {
        self.shards.iter().map(|s| s.stats.clone()).collect()
    }

    /// Folds the per-shard counters into one cluster-wide block (see
    /// [`QueueStats::merge`] for the aggregation semantics).
    pub fn merged_stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for s in &self.shards {
            total.merge(&s.stats);
        }
        total
    }
}
