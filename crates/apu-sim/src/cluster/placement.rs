//! Replica placement: mapping logical corpus shards onto replica sets
//! of device queues.
//!
//! A [`Placement`] answers "which devices hold a copy of shard `s`?".
//! [`DeviceCluster::set_placement`](super::DeviceCluster::set_placement)
//! installs one on a cluster, after which
//! [`route_replica`](super::DeviceCluster::route_replica) load-balances
//! reads across the healthy members of each replica set and failover
//! resubmission ([`submit_failover`](super::DeviceCluster::submit_failover))
//! walks the remaining members.
//!
//! Key-to-shard assignment uses the same consistent hash as
//! [`RoutePolicy::ConsistentHash`](super::RoutePolicy) (a SplitMix64
//! finalizer feeding Lamping & Veach jump hashing), exposed here as
//! [`key_shard`] so that elastic resharding N → N±1 provably moves only
//! ~`keys / max(N, N±1)` keys (`tests/failover_props.rs` bounds it).

use super::routing::{jump_hash, mix64};
use crate::error::Error;
use crate::Result;

/// Maps each logical shard to the set of device-queue indices holding a
/// replica of that shard's data.
///
/// Construction is deterministic: replicas are dealt round-robin over
/// the device pool, so equal inputs always produce equal placements and
/// groups are disjoint whenever the pool is large enough
/// (`devices >= shards * replicas`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    groups: Vec<Vec<usize>>,
    devices: usize,
}

impl Placement {
    /// Builds a placement of `shards` logical shards, each replicated
    /// `replicas` times, over `devices` device queues.
    ///
    /// Replicas of one shard land on distinct devices whenever capacity
    /// allows; when `devices < replicas` the group is clamped to
    /// `devices` members rather than placing two copies on one device.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidArg`] if any of the three counts is zero.
    pub fn new(shards: usize, replicas: usize, devices: usize) -> Result<Self> {
        if shards == 0 || replicas == 0 || devices == 0 {
            return Err(Error::InvalidArg(format!(
                "placement needs non-zero shards/replicas/devices, got {shards}/{replicas}/{devices}"
            )));
        }
        let width = replicas.min(devices);
        let mut cursor = 0usize;
        let groups = (0..shards)
            .map(|_| {
                let mut group = Vec::with_capacity(width);
                while group.len() < width {
                    let d = cursor % devices;
                    cursor += 1;
                    if !group.contains(&d) {
                        group.push(d);
                    }
                }
                group
            })
            .collect();
        Ok(Placement { groups, devices })
    }

    /// Number of logical shards.
    pub fn shards(&self) -> usize {
        self.groups.len()
    }

    /// Size of the device pool the placement was built over.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Replicas per shard actually placed (`min(replicas, devices)`).
    pub fn width(&self) -> usize {
        self.groups.first().map_or(0, Vec::len)
    }

    /// Device indices holding a replica of `shard`, in placement order
    /// (index 0 is the "first" replica, used by single-replica APIs).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn replicas(&self, shard: usize) -> &[usize] {
        &self.groups[shard]
    }

    /// Locates `device` in the placement, returning the first
    /// `(shard, replica_index)` that maps to it, if any.
    pub fn locate(&self, device: usize) -> Option<(usize, usize)> {
        self.groups
            .iter()
            .enumerate()
            .find_map(|(s, g)| g.iter().position(|&d| d == device).map(|r| (s, r)))
    }

    /// Rebuilds the placement for a new logical shard count over the
    /// same device pool — the elastic scale-up/down path. Key-to-shard
    /// assignment under the new count is given by [`key_shard`]; the
    /// consistent hash guarantees only ~`keys / max(old, new)` keys
    /// change shards on an N → N±1 resize.
    pub fn resized(&self, shards: usize) -> Result<Self> {
        Placement::new(shards, self.width().max(1), self.devices)
    }
}

/// Consistent-hash assignment of a key to one of `shards` logical
/// shards — the stable mapping used for elastic resharding.
///
/// Identical to what [`RoutePolicy::ConsistentHash`](super::RoutePolicy)
/// computes inside the cluster router: growing or shrinking the shard
/// count by one remaps only the minimal ~`1 / max(N, N±1)` fraction of
/// keys (Lamping & Veach).
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn key_shard(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "key_shard needs at least one shard");
    jump_hash(mix64(key), shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_contiguous_groups_when_capacity_allows() {
        let p = Placement::new(3, 2, 6).unwrap();
        assert_eq!(p.replicas(0), &[0, 1]);
        assert_eq!(p.replicas(1), &[2, 3]);
        assert_eq!(p.replicas(2), &[4, 5]);
        assert_eq!(p.width(), 2);
        assert_eq!(p.locate(3), Some((1, 1)));
        assert_eq!(p.locate(6), None);
    }

    #[test]
    fn small_pools_share_devices_but_never_within_a_group() {
        let p = Placement::new(3, 2, 3).unwrap();
        for s in 0..3 {
            let g = p.replicas(s);
            assert_eq!(g.len(), 2);
            assert_ne!(g[0], g[1]);
        }
    }

    #[test]
    fn replica_width_clamps_to_the_pool() {
        let p = Placement::new(2, 5, 3).unwrap();
        assert_eq!(p.width(), 3);
        for s in 0..2 {
            let mut g = p.replicas(s).to_vec();
            g.sort_unstable();
            g.dedup();
            assert_eq!(g.len(), 3);
        }
    }

    #[test]
    fn zero_counts_are_rejected() {
        assert!(Placement::new(0, 1, 1).is_err());
        assert!(Placement::new(1, 0, 1).is_err());
        assert!(Placement::new(1, 1, 0).is_err());
    }

    #[test]
    fn key_shard_is_stable_and_in_range() {
        for key in 0..512u64 {
            let s = key_shard(key, 7);
            assert!(s < 7);
            assert_eq!(s, key_shard(key, 7));
        }
    }

    #[test]
    fn resizing_by_one_moves_few_keys() {
        let keys: Vec<u64> = (0..1024).map(|i| i * 2654435761).collect();
        let moved = keys
            .iter()
            .filter(|&&k| key_shard(k, 4) != key_shard(k, 5))
            .count();
        // Expected movement is keys/5 ≈ 205; anything under a third is
        // far from the rehash-everything failure mode.
        assert!(moved < keys.len() / 3, "moved {moved} of {}", keys.len());
    }
}
