//! Placement policy of router-submitted work: the [`RoutePolicy`] enum
//! and the stateless hashing primitives behind
//! [`RoutePolicy::ConsistentHash`].

/// How a [`crate::DeviceCluster`] places router-submitted work onto
/// shards.
///
/// Explicit placement ([`crate::TaskSpec::on_shard`]) always bypasses
/// the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Rotate through shards in submission order.
    #[default]
    RoundRobin,
    /// Pick the shard with the smallest pending backlog (ties go to the
    /// lowest shard index).
    LeastOutstanding,
    /// Map each [`crate::BatchKey`] to a stable shard (jump consistent
    /// hash), so same-key submissions coalesce on one device.
    /// Non-batchable submissions carry no key and fall back to
    /// round-robin. The same hash is exposed as [`crate::key_shard`]
    /// for elastic resharding, so key→shard assignment and routing
    /// never disagree.
    ConsistentHash,
}

/// SplitMix64 finalizer: decorrelates adjacent key values before they
/// reach the consistent-hash bucketing.
pub(crate) fn mix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Jump consistent hash (Lamping & Veach): maps `key` to a bucket in
/// `[0, buckets)` such that growing the bucket count relocates only
/// `1/buckets` of the keys. Deterministic, stateless, O(ln buckets).
pub(crate) fn jump_hash(mut key: u64, buckets: usize) -> usize {
    debug_assert!(buckets > 0);
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        j = ((b.wrapping_add(1) as f64)
            * ((1u64 << 31) as f64 / ((key >> 33).wrapping_add(1) as f64))) as i64;
    }
    b as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_hash_is_consistent_under_growth() {
        // Growing the cluster must relocate only a fraction of keys.
        let keys: Vec<u64> = (0..512).map(mix64).collect();
        let moved = keys
            .iter()
            .filter(|&&k| jump_hash(k, 4) != jump_hash(k, 5))
            .count();
        assert!(moved > 0, "some keys must move");
        assert!(
            moved < 512 / 3,
            "jump hash must relocate ~1/5 of keys, moved {moved}"
        );
        for &k in &keys {
            assert_eq!(jump_hash(k, 1), 0);
            assert!(jump_hash(k, 7) < 7);
        }
    }
}
