//! Deterministic fault injection for exercising failure paths.
//!
//! A simulation harness is only trustworthy if its failure paths are
//! exercised, not just its happy paths. [`FaultPlan`] arms the device
//! with a seed-driven plan — fail every k-th task, fail every task of a
//! specific [`BatchKey`], fail a pseudo-random fraction of tasks, or
//! kill every k-th DMA transfer — and [`crate::ApuDevice::inject_faults`]
//! installs it. The [`crate::DeviceQueue`] consults the plan at dispatch
//! time (so faulted tasks retire as error completions and, when
//! transient, are eligible for bounded retry), while the DMA layer
//! consults it on every transfer issue.
//!
//! All decisions are pure functions of the plan and a monotone check
//! counter, so a faulted run is exactly reproducible: same plan, same
//! submission order, same injected failures.

use crate::error::Error;
use crate::queue::BatchKey;

/// A deterministic fault-injection plan. All triggers are optional and
/// compose with OR: a task check fires if *any* armed trigger matches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Fail every k-th task check (1-indexed: k = 3 fails checks 3, 6, …).
    pub every_kth_task: Option<u64>,
    /// Fail every task carrying this batch key.
    pub batch_key: Option<BatchKey>,
    /// Caps the batch-key trigger: fire on at most this many checks of
    /// the armed key, then let later checks of the same key pass.
    /// `None` (the default) keeps the trigger permanent. Used to model
    /// transient failures that a bounded retry can outlast — e.g. a
    /// compaction task that fails twice and succeeds on the third
    /// attempt.
    pub batch_key_limit: Option<u64>,
    /// Fail this fraction of task checks, chosen by a seeded hash of the
    /// check sequence number (0.0 disables the trigger).
    pub task_rate: f64,
    /// Seed for the rate-based trigger.
    pub seed: u64,
    /// Fail every k-th DMA transfer issue.
    pub every_kth_dma: Option<u64>,
}

impl FaultPlan {
    /// A plan with no triggers armed, carrying `seed` for the rate trigger.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Arms the every-k-th-task trigger (k = 0 disarms it).
    #[must_use]
    pub fn fail_every_kth_task(mut self, k: u64) -> Self {
        self.every_kth_task = (k > 0).then_some(k);
        self
    }

    /// Arms the batch-key trigger.
    #[must_use]
    pub fn fail_batch_key(mut self, key: BatchKey) -> Self {
        self.batch_key = Some(key);
        self
    }

    /// Arms the batch-key trigger for at most `times` firings: the
    /// first `times` checks of `key` fail, every later one passes
    /// (`times` = 0 disarms the trigger entirely).
    #[must_use]
    pub fn fail_batch_key_times(mut self, key: BatchKey, times: u64) -> Self {
        if times == 0 {
            self.batch_key = None;
            self.batch_key_limit = None;
        } else {
            self.batch_key = Some(key);
            self.batch_key_limit = Some(times);
        }
        self
    }

    /// Arms the rate trigger: fail roughly `rate` of task checks
    /// (clamped to `[0, 1]`), deterministically from the seed.
    #[must_use]
    pub fn fail_task_rate(mut self, rate: f64) -> Self {
        self.task_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Arms the every-k-th-DMA trigger (k = 0 disarms it).
    #[must_use]
    pub fn fail_every_kth_dma(mut self, k: u64) -> Self {
        self.every_kth_dma = (k > 0).then_some(k);
        self
    }
}

/// Observed fault-injection activity, for assertions in tests and
/// reporting in benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Task-level fault checks performed.
    pub tasks_checked: u64,
    /// Task-level faults injected.
    pub tasks_injected: u64,
    /// DMA-level fault checks performed.
    pub dmas_checked: u64,
    /// DMA-level faults injected.
    pub dmas_injected: u64,
}

impl FaultCounts {
    /// Total faults injected across both scopes — the number of
    /// [`crate::trace::TraceEventKind::FaultInjected`] events a traced
    /// run emits.
    pub fn injected_total(&self) -> u64 {
        self.tasks_injected + self.dmas_injected
    }
}

/// The armed plan plus its monotone check counters.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    counts: FaultCounts,
    /// Times the batch-key trigger has fired (for `batch_key_limit`).
    key_hits: u64,
}

fn seq_hash(seed: u64, seq: u64) -> u64 {
    // SplitMix64 finalizer over (seed, seq): a decorrelated per-check
    // coin that is reproducible and independent of call sites.
    let mut z = seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            counts: FaultCounts::default(),
            key_hits: 0,
        }
    }

    pub(crate) fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// One task-level check; `key` is the task's batch key, if any.
    pub(crate) fn check_task(&mut self, key: Option<BatchKey>) -> Option<Error> {
        self.counts.tasks_checked += 1;
        let seq = self.counts.tasks_checked;
        let kth = self
            .plan
            .every_kth_task
            .is_some_and(|k| seq.is_multiple_of(k));
        let keyed = key.is_some()
            && key == self.plan.batch_key
            && self.plan.batch_key_limit.is_none_or(|n| self.key_hits < n);
        if keyed {
            self.key_hits += 1;
        }
        let rated = self.plan.task_rate > 0.0
            && (seq_hash(self.plan.seed, seq) as f64 / u64::MAX as f64) < self.plan.task_rate;
        if kth || keyed || rated {
            self.counts.tasks_injected += 1;
            Some(Error::FaultInjected(format!(
                "task check {seq} hit the armed fault plan"
            )))
        } else {
            None
        }
    }

    /// One DMA-level check, at transfer issue.
    pub(crate) fn check_dma(&mut self) -> Option<Error> {
        self.counts.dmas_checked += 1;
        let seq = self.counts.dmas_checked;
        if self
            .plan
            .every_kth_dma
            .is_some_and(|k| seq.is_multiple_of(k))
        {
            self.counts.dmas_injected += 1;
            Some(Error::FaultInjected(format!(
                "DMA transfer {seq} hit the armed fault plan"
            )))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kth_task_fires_periodically() {
        let mut st = FaultState::new(FaultPlan::new(0).fail_every_kth_task(3));
        let hits: Vec<bool> = (0..9).map(|_| st.check_task(None).is_some()).collect();
        assert_eq!(
            hits,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(st.counts().tasks_injected, 3);
        assert_eq!(st.counts().tasks_checked, 9);
    }

    #[test]
    fn batch_key_trigger_is_selective() {
        let poisoned = BatchKey::new(7);
        let mut st = FaultState::new(FaultPlan::new(0).fail_batch_key(poisoned));
        assert!(st.check_task(Some(BatchKey::new(8))).is_none());
        assert!(st.check_task(None).is_none());
        assert!(st.check_task(Some(poisoned)).is_some());
    }

    #[test]
    fn bounded_batch_key_trigger_stops_after_the_limit() {
        let poisoned = BatchKey::new(7);
        let mut st = FaultState::new(FaultPlan::new(0).fail_batch_key_times(poisoned, 2));
        // Checks of other keys never consume the budget.
        assert!(st.check_task(Some(BatchKey::new(8))).is_none());
        assert!(st.check_task(Some(poisoned)).is_some());
        assert!(st.check_task(None).is_none());
        assert!(st.check_task(Some(poisoned)).is_some());
        // Budget exhausted: the same key now passes, permanently.
        assert!(st.check_task(Some(poisoned)).is_none());
        assert!(st.check_task(Some(poisoned)).is_none());
        assert_eq!(st.counts().tasks_injected, 2);
        // times = 0 disarms the trigger entirely.
        let mut off = FaultState::new(FaultPlan::new(0).fail_batch_key_times(poisoned, 0));
        assert!(off.check_task(Some(poisoned)).is_none());
    }

    #[test]
    fn rate_trigger_is_deterministic_and_roughly_calibrated() {
        let run = |seed| {
            let mut st = FaultState::new(FaultPlan::new(seed).fail_task_rate(0.1));
            (0..1000)
                .map(|_| st.check_task(None).is_some())
                .collect::<Vec<_>>()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same injections");
        assert_ne!(a, run(43), "different seed, different injections");
        let injected = a.iter().filter(|&&h| h).count();
        assert!(
            (50..200).contains(&injected),
            "10% rate injected {injected}/1000"
        );
    }

    #[test]
    fn dma_trigger_counts_independently() {
        let mut st = FaultState::new(FaultPlan::new(0).fail_every_kth_dma(2));
        assert!(st.check_task(None).is_none());
        assert!(st.check_dma().is_none());
        assert!(st.check_dma().is_some());
        assert_eq!(st.counts().dmas_checked, 2);
        assert_eq!(st.counts().dmas_injected, 1);
        assert_eq!(st.counts().tasks_injected, 0);
    }
}
