//! Device latency calibration.
//!
//! The constants here are the **measured** columns of the paper's Table 4
//! (data movement) and Table 5 (computation), obtained on the GSI Leda-E
//! with control-processor cycle counters. They are the ground truth this
//! simulator is calibrated against; the `cis-model` crate re-derives the
//! *analytical* columns independently and is validated against the
//! simulator (paper Table 7).
//!
//! A handful of *second-order* constants (per-command VCU issue overhead,
//! extra per-transaction DMA setup, bank-crossing penalties) model effects
//! that the paper's analytical framework deliberately omits; they are the
//! source of the small measured-vs-predicted error in Table 7.

use serde::{Deserialize, Serialize};

use crate::clock::Cycles;

/// Identifier for every fixed-latency vector operation of the paper's
/// Table 5 plus the constant-latency data-movement primitives of Table 4.
///
/// Variant names follow the paper's operation mnemonics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // the mnemonic-to-description mapping lives in `describe`
pub enum VecOp {
    And16,
    Or16,
    Not16,
    Xor16,
    AShift,
    AddU16,
    AddS16,
    SubU16,
    SubS16,
    Popcnt16,
    MulU16,
    MulS16,
    MulF16,
    DivU16,
    DivS16,
    Eq16,
    GtU16,
    LtU16,
    LtGf16,
    GeU16,
    LeU16,
    RecipU16,
    ExpF16,
    SinFx,
    CosFx,
    CountM,
    /// VR ↔ L1 load or store (Table 4 `load, store`).
    LdSt,
    /// VR ↔ VR element-wise copy (Table 4 `cpy`).
    Cpy,
    /// Copy a VR subgroup across its group (Table 4 `cpy_subgrp`).
    CpySubgrp,
    /// Broadcast an immediate to a VR (Table 4 `cpy_imm`).
    CpyImm,
}

impl VecOp {
    /// All operations, in the order of the paper's tables.
    pub const ALL: [VecOp; 30] = [
        VecOp::And16,
        VecOp::Or16,
        VecOp::Not16,
        VecOp::Xor16,
        VecOp::AShift,
        VecOp::AddU16,
        VecOp::AddS16,
        VecOp::SubU16,
        VecOp::SubS16,
        VecOp::Popcnt16,
        VecOp::MulU16,
        VecOp::MulS16,
        VecOp::MulF16,
        VecOp::DivU16,
        VecOp::DivS16,
        VecOp::Eq16,
        VecOp::GtU16,
        VecOp::LtU16,
        VecOp::LtGf16,
        VecOp::GeU16,
        VecOp::LeU16,
        VecOp::RecipU16,
        VecOp::ExpF16,
        VecOp::SinFx,
        VecOp::CosFx,
        VecOp::CountM,
        VecOp::LdSt,
        VecOp::Cpy,
        VecOp::CpySubgrp,
        VecOp::CpyImm,
    ];

    /// The paper's mnemonic for the operation (e.g. `add_u16`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            VecOp::And16 => "and_16",
            VecOp::Or16 => "or_16",
            VecOp::Not16 => "not_16",
            VecOp::Xor16 => "xor_16",
            VecOp::AShift => "ashift",
            VecOp::AddU16 => "add_u16",
            VecOp::AddS16 => "add_s16",
            VecOp::SubU16 => "sub_u16",
            VecOp::SubS16 => "sub_s16",
            VecOp::Popcnt16 => "popcnt_16",
            VecOp::MulU16 => "mul_u16",
            VecOp::MulS16 => "mul_s16",
            VecOp::MulF16 => "mul_f16",
            VecOp::DivU16 => "div_u16",
            VecOp::DivS16 => "div_s16",
            VecOp::Eq16 => "eq_16",
            VecOp::GtU16 => "gt_u16",
            VecOp::LtU16 => "lt_u16",
            VecOp::LtGf16 => "lt_gf16",
            VecOp::GeU16 => "ge_u16",
            VecOp::LeU16 => "le_u16",
            VecOp::RecipU16 => "recip_u16",
            VecOp::ExpF16 => "exp_f16",
            VecOp::SinFx => "sin_fx",
            VecOp::CosFx => "cos_fx",
            VecOp::CountM => "count_m",
            VecOp::LdSt => "load/store",
            VecOp::Cpy => "cpy",
            VecOp::CpySubgrp => "cpy_subgrp",
            VecOp::CpyImm => "cpy_imm",
        }
    }

    /// Human-readable description (the paper tables' description column).
    pub fn describe(self) -> &'static str {
        match self {
            VecOp::And16 => "16-bit bit-wise and",
            VecOp::Or16 => "16-bit bit-wise or",
            VecOp::Not16 => "16-bit bit-wise not",
            VecOp::Xor16 => "16-bit bit-wise xor",
            VecOp::AShift => "int16 arithmetic shift",
            VecOp::AddU16 => "uint16 element-wise addition",
            VecOp::AddS16 => "int16 element-wise addition",
            VecOp::SubU16 => "uint16 element-wise subtraction",
            VecOp::SubS16 => "int16 element-wise subtraction",
            VecOp::Popcnt16 => "16-bit population count",
            VecOp::MulU16 => "uint16 element-wise multiplication",
            VecOp::MulS16 => "int16 element-wise multiplication",
            VecOp::MulF16 => "float16 element-wise multiplication",
            VecOp::DivU16 => "uint16 element-wise division",
            VecOp::DivS16 => "int16 element-wise division",
            VecOp::Eq16 => "16-bit element-wise equal",
            VecOp::GtU16 => "uint16 element-wise greater than",
            VecOp::LtU16 => "uint16 element-wise less than",
            VecOp::LtGf16 => "gsi float16 element-wise less than",
            VecOp::GeU16 => "uint16 greater than or equal",
            VecOp::LeU16 => "uint16 less than or equal",
            VecOp::RecipU16 => "uint16 element-wise reciprocal",
            VecOp::ExpF16 => "float16 exponential",
            VecOp::SinFx => "fixed-point sine",
            VecOp::CosFx => "fixed-point cosine",
            VecOp::CountM => "count marked entries",
            VecOp::LdSt => "VR<->L1 load store",
            VecOp::Cpy => "VR<->VR element-wise copy",
            VecOp::CpySubgrp => "copy VR subgroup to group",
            VecOp::CpyImm => "broadcast an immediate to VR",
        }
    }
}

/// Latency calibration table for one device.
///
/// All `*_cycles` fields are in device clock cycles; `*_per_byte`,
/// `*_per_elem` and `*_per_entry` fields are cycles per unit.
///
/// Obtain the paper's device with [`DeviceTiming::leda_e`], then derive
/// design-space variants with the `with_*` builders, e.g. doubling off-chip
/// bandwidth:
///
/// ```
/// use apu_sim::DeviceTiming;
/// let t = DeviceTiming::leda_e().with_offchip_bw_scale(2.0);
/// assert!(t.dma_l4_l2(65536) < DeviceTiming::leda_e().dma_l4_l2(65536));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceTiming {
    // ---- Table 5: computation (cycles per 32K-element vector command) ----
    /// `and_16`.
    pub and_16: u64,
    /// `or_16`.
    pub or_16: u64,
    /// `not_16`.
    pub not_16: u64,
    /// `xor_16`.
    pub xor_16: u64,
    /// `ashift` (arithmetic shift by immediate).
    pub ashift: u64,
    /// `add_u16`.
    pub add_u16: u64,
    /// `add_s16`.
    pub add_s16: u64,
    /// `sub_u16`.
    pub sub_u16: u64,
    /// `sub_s16`.
    pub sub_s16: u64,
    /// `popcnt_16`.
    pub popcnt_16: u64,
    /// `mul_u16`.
    pub mul_u16: u64,
    /// `mul_s16`.
    pub mul_s16: u64,
    /// `mul_f16`.
    pub mul_f16: u64,
    /// `div_u16`.
    pub div_u16: u64,
    /// `div_s16`.
    pub div_s16: u64,
    /// `eq_16`.
    pub eq_16: u64,
    /// `gt_u16`.
    pub gt_u16: u64,
    /// `lt_u16`.
    pub lt_u16: u64,
    /// `lt_gf16`.
    pub lt_gf16: u64,
    /// `ge_u16`.
    pub ge_u16: u64,
    /// `le_u16`.
    pub le_u16: u64,
    /// `recip_u16`.
    pub recip_u16: u64,
    /// `exp_f16`.
    pub exp_f16: u64,
    /// `sin_fx`.
    pub sin_fx: u64,
    /// `cos_fx`.
    pub cos_fx: u64,
    /// `count_m`.
    pub count_m: u64,

    // ---- Table 4: data movement ----
    /// L4→L3 DMA cycles per byte (`0.19 d + 41164`).
    pub dma_l4_l3_per_byte: f64,
    /// L4→L3 DMA fixed initialization cycles.
    pub dma_l4_l3_init: f64,
    /// L4→L2 DMA cycles per byte (`0.63 d + 548`).
    pub dma_l4_l2_per_byte: f64,
    /// L4→L2 DMA fixed initialization cycles.
    pub dma_l4_l2_init: f64,
    /// L2→L1 full-vector DMA (16-bit × 32 K).
    pub dma_l2_l1: u64,
    /// L4→L1 full-vector DMA.
    pub dma_l4_l1: u64,
    /// L1→L4 full-vector DMA.
    pub dma_l1_l4: u64,
    /// PIO load cycles per element (L4→VR).
    pub pio_ld_per_elem: u64,
    /// PIO store cycles per element (VR→L4).
    pub pio_st_per_elem: u64,
    /// Indexed-lookup cycles per table entry (`7.15 σ + 629`).
    pub lookup_per_entry: f64,
    /// Indexed-lookup fixed initialization cycles.
    pub lookup_init: f64,
    /// VR↔L1 load/store.
    pub ld_st: u64,
    /// VR↔VR element-wise copy.
    pub cpy: u64,
    /// Subgroup-to-group copy.
    pub cpy_subgrp: u64,
    /// Immediate broadcast to VR.
    pub cpy_imm: u64,
    /// Element shift toward head/tail, cycles per element of shift
    /// magnitude (`373 k`).
    pub shift_e_per_elem: u64,
    /// Intra-bank shift fixed cost (`8 + k` for a shift of `4·k`).
    pub shift_bank_base: u64,
    /// Intra-bank shift cycles per 4-element stride unit.
    pub shift_bank_per_unit: u64,

    // ---- Second-order effects (omitted by the analytical framework) ----
    /// Control-processor → VCU command issue/decode overhead per vector
    /// command.
    pub cmd_issue: u64,
    /// Extra DMA descriptor setup per transaction beyond the analytical
    /// init term (engine programming, completion interrupt).
    pub dma_setup_extra: u64,
    /// Penalty when a subgroup copy crosses a physical bank boundary.
    pub bank_cross_penalty: u64,
}

impl DeviceTiming {
    /// The GSI Leda-E calibration (measured columns of the paper's
    /// Tables 4 and 5).
    pub fn leda_e() -> Self {
        DeviceTiming {
            and_16: 12,
            or_16: 8,
            not_16: 10,
            xor_16: 12,
            ashift: 15,
            add_u16: 12,
            add_s16: 13,
            sub_u16: 15,
            sub_s16: 16,
            popcnt_16: 23,
            mul_u16: 115,
            mul_s16: 201,
            mul_f16: 77,
            div_u16: 664,
            div_s16: 739,
            eq_16: 13,
            gt_u16: 13,
            lt_u16: 13,
            lt_gf16: 45,
            ge_u16: 13,
            le_u16: 13,
            recip_u16: 735,
            exp_f16: 40295,
            sin_fx: 761,
            cos_fx: 761,
            count_m: 239,

            dma_l4_l3_per_byte: 0.19,
            dma_l4_l3_init: 41164.0,
            dma_l4_l2_per_byte: 0.63,
            dma_l4_l2_init: 548.0,
            dma_l2_l1: 386,
            dma_l4_l1: 22272,
            dma_l1_l4: 22186,
            pio_ld_per_elem: 57,
            pio_st_per_elem: 61,
            lookup_per_entry: 7.15,
            lookup_init: 629.0,
            ld_st: 29,
            cpy: 29,
            cpy_subgrp: 82,
            cpy_imm: 13,
            shift_e_per_elem: 373,
            shift_bank_base: 8,
            shift_bank_per_unit: 1,

            cmd_issue: 2,
            dma_setup_extra: 11,
            bank_cross_penalty: 5,
        }
    }

    /// Cycles for one fixed-latency vector command (Table 5 / constant rows
    /// of Table 4), **excluding** the per-command issue overhead, which the
    /// core charges separately.
    pub fn op_cycles(&self, op: VecOp) -> u64 {
        match op {
            VecOp::And16 => self.and_16,
            VecOp::Or16 => self.or_16,
            VecOp::Not16 => self.not_16,
            VecOp::Xor16 => self.xor_16,
            VecOp::AShift => self.ashift,
            VecOp::AddU16 => self.add_u16,
            VecOp::AddS16 => self.add_s16,
            VecOp::SubU16 => self.sub_u16,
            VecOp::SubS16 => self.sub_s16,
            VecOp::Popcnt16 => self.popcnt_16,
            VecOp::MulU16 => self.mul_u16,
            VecOp::MulS16 => self.mul_s16,
            VecOp::MulF16 => self.mul_f16,
            VecOp::DivU16 => self.div_u16,
            VecOp::DivS16 => self.div_s16,
            VecOp::Eq16 => self.eq_16,
            VecOp::GtU16 => self.gt_u16,
            VecOp::LtU16 => self.lt_u16,
            VecOp::LtGf16 => self.lt_gf16,
            VecOp::GeU16 => self.ge_u16,
            VecOp::LeU16 => self.le_u16,
            VecOp::RecipU16 => self.recip_u16,
            VecOp::ExpF16 => self.exp_f16,
            VecOp::SinFx => self.sin_fx,
            VecOp::CosFx => self.cos_fx,
            VecOp::CountM => self.count_m,
            VecOp::LdSt => self.ld_st,
            VecOp::Cpy => self.cpy,
            VecOp::CpySubgrp => self.cpy_subgrp,
            VecOp::CpyImm => self.cpy_imm,
        }
    }

    /// L4→L3 DMA latency for `d` bytes (one transaction).
    pub fn dma_l4_l3(&self, d: usize) -> Cycles {
        Cycles::from_f64(self.dma_l4_l3_per_byte * d as f64 + self.dma_l4_l3_init)
    }

    /// L4→L2 (or L2→L4) DMA latency for `d` bytes (one transaction).
    pub fn dma_l4_l2(&self, d: usize) -> Cycles {
        Cycles::from_f64(self.dma_l4_l2_per_byte * d as f64 + self.dma_l4_l2_init)
    }

    /// PIO latency for `n` element loads.
    pub fn pio_ld(&self, n: usize) -> Cycles {
        Cycles::new(self.pio_ld_per_elem * n as u64)
    }

    /// PIO latency for `n` element stores.
    pub fn pio_st(&self, n: usize) -> Cycles {
        Cycles::new(self.pio_st_per_elem * n as u64)
    }

    /// Indexed-lookup latency for a table of `sigma` entries.
    pub fn lookup(&self, sigma: usize) -> Cycles {
        Cycles::from_f64(self.lookup_per_entry * sigma as f64 + self.lookup_init)
    }

    /// Element-shift latency for a shift of magnitude `k` elements.
    pub fn shift_e(&self, k: usize) -> Cycles {
        Cycles::new(self.shift_e_per_elem * k as u64)
    }

    /// Intra-bank element-shift latency for a shift of `4·k` elements.
    pub fn shift_bank(&self, k: usize) -> Cycles {
        Cycles::new(self.shift_bank_base + self.shift_bank_per_unit * k as u64)
    }

    /// Effective off-chip (L4) streaming bandwidth in bytes/cycle implied
    /// by the L4→L2 DMA slope. Used by the analytical framework.
    pub fn l4_bytes_per_cycle(&self) -> f64 {
        1.0 / self.dma_l4_l2_per_byte
    }

    /// Scales off-chip DMA bandwidth by `factor` (> 1 is faster). Models
    /// replacing the device DDR with a faster memory in design-space
    /// exploration.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn with_offchip_bw_scale(mut self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "factor must be > 0");
        self.dma_l4_l3_per_byte /= factor;
        self.dma_l4_l2_per_byte /= factor;
        self.dma_l4_l1 = ((self.dma_l4_l1 as f64) / factor).round() as u64;
        self.dma_l1_l4 = ((self.dma_l1_l4 as f64) / factor).round() as u64;
        self
    }

    /// Scales every computation latency by `factor` (< 1 is faster).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn with_compute_scale(mut self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "factor must be > 0");
        let scale = |c: &mut u64| *c = ((*c as f64) * factor).round().max(1.0) as u64;
        for op in VecOp::ALL {
            match op {
                VecOp::And16 => scale(&mut self.and_16),
                VecOp::Or16 => scale(&mut self.or_16),
                VecOp::Not16 => scale(&mut self.not_16),
                VecOp::Xor16 => scale(&mut self.xor_16),
                VecOp::AShift => scale(&mut self.ashift),
                VecOp::AddU16 => scale(&mut self.add_u16),
                VecOp::AddS16 => scale(&mut self.add_s16),
                VecOp::SubU16 => scale(&mut self.sub_u16),
                VecOp::SubS16 => scale(&mut self.sub_s16),
                VecOp::Popcnt16 => scale(&mut self.popcnt_16),
                VecOp::MulU16 => scale(&mut self.mul_u16),
                VecOp::MulS16 => scale(&mut self.mul_s16),
                VecOp::MulF16 => scale(&mut self.mul_f16),
                VecOp::DivU16 => scale(&mut self.div_u16),
                VecOp::DivS16 => scale(&mut self.div_s16),
                VecOp::Eq16 => scale(&mut self.eq_16),
                VecOp::GtU16 => scale(&mut self.gt_u16),
                VecOp::LtU16 => scale(&mut self.lt_u16),
                VecOp::LtGf16 => scale(&mut self.lt_gf16),
                VecOp::GeU16 => scale(&mut self.ge_u16),
                VecOp::LeU16 => scale(&mut self.le_u16),
                VecOp::RecipU16 => scale(&mut self.recip_u16),
                VecOp::ExpF16 => scale(&mut self.exp_f16),
                VecOp::SinFx => scale(&mut self.sin_fx),
                VecOp::CosFx => scale(&mut self.cos_fx),
                VecOp::CountM => scale(&mut self.count_m),
                VecOp::LdSt => scale(&mut self.ld_st),
                VecOp::Cpy => scale(&mut self.cpy),
                VecOp::CpySubgrp => scale(&mut self.cpy_subgrp),
                VecOp::CpyImm => scale(&mut self.cpy_imm),
            }
        }
        self
    }

    /// Returns a copy with all second-order overheads zeroed — i.e. the
    /// idealized device the analytical framework models. Used by validation
    /// tests to isolate the intended model error.
    pub fn idealized(mut self) -> Self {
        self.cmd_issue = 0;
        self.dma_setup_extra = 0;
        self.bank_cross_penalty = 0;
        self
    }
}

impl Default for DeviceTiming {
    fn default() -> Self {
        DeviceTiming::leda_e()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_values_match_paper() {
        let t = DeviceTiming::leda_e();
        assert_eq!(t.op_cycles(VecOp::And16), 12);
        assert_eq!(t.op_cycles(VecOp::Or16), 8);
        assert_eq!(t.op_cycles(VecOp::AddU16), 12);
        assert_eq!(t.op_cycles(VecOp::SubS16), 16);
        assert_eq!(t.op_cycles(VecOp::MulS16), 201);
        assert_eq!(t.op_cycles(VecOp::DivS16), 739);
        assert_eq!(t.op_cycles(VecOp::ExpF16), 40295);
        assert_eq!(t.op_cycles(VecOp::CountM), 239);
        assert_eq!(t.op_cycles(VecOp::Cpy), 29);
        assert_eq!(t.op_cycles(VecOp::CpySubgrp), 82);
        assert_eq!(t.op_cycles(VecOp::CpyImm), 13);
    }

    #[test]
    fn table4_formulas_match_paper() {
        let t = DeviceTiming::leda_e();
        // 0.19 d + 41164 at d = 0 and d = 100000
        assert_eq!(t.dma_l4_l3(0).get(), 41164);
        assert_eq!(t.dma_l4_l3(100_000).get(), 41164 + 19_000);
        // 0.63 d + 548
        assert_eq!(t.dma_l4_l2(1000).get(), 548 + 630);
        assert_eq!(t.dma_l2_l1, 386);
        assert_eq!(t.dma_l4_l1, 22272);
        assert_eq!(t.dma_l1_l4, 22186);
        assert_eq!(t.pio_ld(10).get(), 570);
        assert_eq!(t.pio_st(10).get(), 610);
        // 7.15 σ + 629
        assert_eq!(t.lookup(100).get(), 1344);
        assert_eq!(t.shift_e(3).get(), 1119);
        assert_eq!(t.shift_bank(4).get(), 12);
    }

    #[test]
    fn every_op_has_nonzero_latency() {
        let t = DeviceTiming::leda_e();
        for op in VecOp::ALL {
            assert!(t.op_cycles(op) > 0, "{} has zero latency", op.mnemonic());
            assert!(!op.mnemonic().is_empty());
            assert!(!op.describe().is_empty());
        }
    }

    #[test]
    fn bw_scaling_halves_slope() {
        let t = DeviceTiming::leda_e().with_offchip_bw_scale(2.0);
        assert!((t.dma_l4_l2_per_byte - 0.315).abs() < 1e-12);
        assert_eq!(t.dma_l4_l1, 11136);
    }

    #[test]
    fn compute_scaling_applies_to_all_ops() {
        let t = DeviceTiming::leda_e().with_compute_scale(0.5);
        assert_eq!(t.op_cycles(VecOp::AddU16), 6);
        assert_eq!(t.op_cycles(VecOp::Or16), 4);
        // never drops to zero
        let t2 = DeviceTiming::leda_e().with_compute_scale(0.0001);
        assert!(t2.op_cycles(VecOp::Or16) >= 1);
    }

    #[test]
    fn idealized_zeroes_overheads() {
        let t = DeviceTiming::leda_e().idealized();
        assert_eq!(t.cmd_issue, 0);
        assert_eq!(t.dma_setup_extra, 0);
        assert_eq!(t.bank_cross_penalty, 0);
        // primary constants untouched
        assert_eq!(t.op_cycles(VecOp::AddU16), 12);
    }

    #[test]
    fn implied_l4_bandwidth_is_plausible() {
        // 1/0.63 B/cycle * 500 MHz ≈ 0.79 GB/s per DMA stream.
        let bpc = DeviceTiming::leda_e().l4_bytes_per_cycle();
        assert!(bpc > 1.5 && bpc < 1.7);
    }
}
