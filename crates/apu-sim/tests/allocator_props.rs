//! Property tests for the device-DRAM allocator and the micro-op layer.

use apu_sim::mem::{Dram, ALLOC_ALIGN};
use apu_sim::{BitOp, MicroOp, SliceMask, WriteSrc};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Live allocations never overlap and always respect alignment,
    /// under arbitrary interleavings of alloc and free.
    #[test]
    fn allocations_never_overlap(ops in proptest::collection::vec((any::<bool>(), 1usize..4096), 1..60)) {
        let mut dram = Dram::new(1 << 20);
        let mut live: Vec<apu_sim::MemHandle> = Vec::new();
        for (is_alloc, size) in ops {
            if is_alloc || live.is_empty() {
                if let Ok(h) = dram.alloc(size) {
                    prop_assert_eq!(h.offset() % ALLOC_ALIGN, 0);
                    for other in &live {
                        let a = (h.offset(), h.offset() + size);
                        let b = (other.offset(), other.offset() + other.len());
                        prop_assert!(
                            a.1 <= b.0 || b.1 <= a.0,
                            "overlap: {:?} vs {:?}", a, b
                        );
                    }
                    live.push(h);
                }
            } else {
                let h = live.swap_remove(size % live.len());
                prop_assert!(dram.free(h).is_ok());
                // stale handle is dead
                prop_assert!(dram.read(h, &mut [0u8; 1]).is_err());
            }
        }
    }

    /// Reads always return exactly what was last written, across frees
    /// and reuse.
    #[test]
    fn write_read_roundtrip(payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..1500), 1..20)) {
        let mut dram = Dram::new(1 << 20);
        let mut entries = Vec::new();
        for p in &payloads {
            let h = dram.alloc(p.len()).unwrap();
            dram.write(h, p).unwrap();
            entries.push((h, p.clone()));
        }
        for (h, p) in &entries {
            let mut buf = vec![0u8; p.len()];
            dram.read(*h, &mut buf).unwrap();
            prop_assert_eq!(&buf, p);
        }
    }

    /// A virtual DRAM accepts the same allocator traffic but never hands
    /// out data.
    #[test]
    fn virtual_dram_allocates_without_backing(sizes in proptest::collection::vec(1usize..100_000, 1..30)) {
        let mut dram = Dram::new_virtual(1 << 30);
        for s in sizes {
            let h = dram.alloc(s).unwrap();
            prop_assert!(dram.write(h, &vec![1u8; s]).is_ok());
            let mut buf = vec![9u8; s.min(64)];
            dram.read(h.truncated(buf.len()).unwrap(), &mut buf).unwrap();
            prop_assert!(buf.iter().all(|&b| b == 0)); // zeros, not data
            prop_assert!(dram.slice(h, s).is_err());
        }
    }

    /// Micro-op writes through WBL then WBLB restore the original value
    /// (double negation), for any slice mask.
    #[test]
    fn wblb_is_an_involution(pattern in any::<u16>(), mask_bits in any::<u16>()) {
        let mut dev = apu_sim::ApuDevice::new(
            apu_sim::SimConfig::default().with_l4_bytes(1 << 20),
        );
        dev.run_task(|ctx| {
            let core = ctx.core_mut();
            core.vr_mut(apu_sim::Vr::new(0))?.fill(pattern);
            let m = SliceMask::new(mask_bits);
            core.issue_micro(&MicroOp::ReadVr { mask: m, vrs: vec![0] })?;
            core.issue_micro(&MicroOp::WriteVr { mask: m, vr: 1, src: WriteSrc::RlNeg })?;
            core.issue_micro(&MicroOp::ReadVr { mask: m, vrs: vec![1] })?;
            core.issue_micro(&MicroOp::WriteVr { mask: m, vr: 2, src: WriteSrc::RlNeg })?;
            let v0 = core.vr(apu_sim::Vr::new(0))?[17];
            let v2 = core.vr(apu_sim::Vr::new(2))?[17];
            assert_eq!(v0 & mask_bits, v2 & mask_bits);
            Ok(())
        }).unwrap();
    }

    /// XOR built from micro-ops agrees with the scalar operator on the
    /// masked slices.
    #[test]
    fn micro_xor_matches_scalar(a in any::<u16>(), b in any::<u16>(), mask_bits in any::<u16>()) {
        let mut dev = apu_sim::ApuDevice::new(
            apu_sim::SimConfig::default().with_l4_bytes(1 << 20),
        );
        dev.run_task(|ctx| {
            let core = ctx.core_mut();
            core.vr_mut(apu_sim::Vr::new(0))?.fill(a);
            core.vr_mut(apu_sim::Vr::new(1))?.fill(b);
            let m = SliceMask::new(mask_bits);
            core.issue_micro(&MicroOp::ReadVr { mask: m, vrs: vec![0] })?;
            core.issue_micro(&MicroOp::OpVr { mask: m, op: BitOp::Xor, vr: 1 })?;
            core.issue_micro(&MicroOp::WriteVr { mask: m, vr: 2, src: WriteSrc::Rl })?;
            let got = core.vr(apu_sim::Vr::new(2))?[99];
            assert_eq!(got & mask_bits, (a ^ b) & mask_bits);
            Ok(())
        }).unwrap();
    }
}
