//! Golden calibration tests: the simulator's per-op cycle costs must
//! keep matching the **measured** columns of the paper's Tables 4 and 5
//! (GSI Leda-E control-processor cycle counters), and the serving queue
//! must charge exactly those costs on its virtual timeline. This is the
//! regression guard for `timing.rs` against scheduler-layer changes.

use std::collections::HashMap;
use std::time::Duration;

use apu_sim::{
    ApuDevice, BatchKey, Cycles, DeviceCluster, DeviceQueue, DeviceTiming, Error, ExecMode,
    FaultPlan, Placement, Priority, QueueConfig, RetryPolicy, RoutePolicy, SimConfig, TaskSpec,
    TraceRecorder, VecOp, Vmr,
};

/// Table 5 measured column (cycles per 32K-element vector command).
const TABLE5_GOLDEN: &[(VecOp, u64)] = &[
    (VecOp::And16, 12),
    (VecOp::Or16, 8),
    (VecOp::Not16, 10),
    (VecOp::Xor16, 12),
    (VecOp::AShift, 15),
    (VecOp::AddU16, 12),
    (VecOp::AddS16, 13),
    (VecOp::SubU16, 15),
    (VecOp::SubS16, 16),
    (VecOp::Popcnt16, 23),
    (VecOp::MulU16, 115),
    (VecOp::MulS16, 201),
    (VecOp::MulF16, 77),
    (VecOp::DivU16, 664),
    (VecOp::DivS16, 739),
    (VecOp::Eq16, 13),
    (VecOp::GtU16, 13),
    (VecOp::LtU16, 13),
    (VecOp::LtGf16, 45),
    (VecOp::GeU16, 13),
    (VecOp::LeU16, 13),
    (VecOp::RecipU16, 735),
    (VecOp::ExpF16, 40295),
    (VecOp::SinFx, 761),
    (VecOp::CosFx, 761),
    (VecOp::CountM, 239),
];

/// Table 4 constant rows (movement primitives with fixed cost).
const TABLE4_GOLDEN: &[(VecOp, u64)] = &[
    (VecOp::LdSt, 29),
    (VecOp::Cpy, 29),
    (VecOp::CpySubgrp, 82),
    (VecOp::CpyImm, 13),
];

#[test]
fn table5_measured_column_is_golden() {
    let t = DeviceTiming::leda_e();
    for &(op, cycles) in TABLE5_GOLDEN {
        assert_eq!(
            t.op_cycles(op),
            cycles,
            "{} drifted from the paper's measured column",
            op.mnemonic()
        );
    }
}

#[test]
fn table4_constant_rows_are_golden() {
    let t = DeviceTiming::leda_e();
    for &(op, cycles) in TABLE4_GOLDEN {
        assert_eq!(
            t.op_cycles(op),
            cycles,
            "{} drifted from the paper's measured column",
            op.mnemonic()
        );
    }
    assert_eq!(t.pio_ld(1), Cycles::new(57));
    assert_eq!(t.pio_st(1), Cycles::new(61));
    assert_eq!(t.dma_l2_l1, 386);
    assert_eq!(t.dma_l4_l1, 22272);
    assert_eq!(t.dma_l1_l4, 22186);
}

#[test]
fn table4_formula_rows_are_golden() {
    let t = DeviceTiming::leda_e();
    // DMA: `0.19 d + 41164` (L4→L3) and `0.63 d + 548` (L4→L2).
    assert_eq!(t.dma_l4_l3(0), Cycles::from_f64(41164.0));
    assert_eq!(
        t.dma_l4_l3(1 << 20),
        Cycles::from_f64(0.19 * (1 << 20) as f64 + 41164.0)
    );
    assert_eq!(t.dma_l4_l2(0), Cycles::from_f64(548.0));
    assert_eq!(t.dma_l4_l2(65536), Cycles::from_f64(0.63 * 65536.0 + 548.0));
    // Indexed lookup: `7.15 σ + 629`.
    assert_eq!(t.lookup(1024), Cycles::from_f64(7.15 * 1024.0 + 629.0));
    // Element shift: `373 k`; intra-bank shift: `8 + k`.
    assert_eq!(t.shift_e(9), Cycles::new(373 * 9));
    assert_eq!(t.shift_bank(6), Cycles::new(8 + 6));
}

/// The queue's virtual timeline must charge the calibrated cost plus
/// the per-command issue overhead — no more, no less — for every op,
/// whether the job is dispatched alone or coalesced into a batch.
#[test]
fn queue_dispatch_charges_calibrated_op_costs() {
    let golden: Vec<(VecOp, u64)> = TABLE5_GOLDEN.iter().chain(TABLE4_GOLDEN).copied().collect();
    let t = DeviceTiming::leda_e();
    for (op, cycles) in golden {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        let h = q
            .submit(TaskSpec::kernel(move |ctx| {
                ctx.core_mut().charge(op);
                Ok(())
            }))
            .expect("submission");
        let done = q.wait(h).expect("dispatch");
        assert_eq!(
            done.report.cycles,
            Cycles::new(cycles + t.cmd_issue),
            "queued {} must cost its Table 4/5 cycles plus cmd_issue",
            op.mnemonic()
        );
        assert_eq!(done.report.stats.commands, 1);
    }
}

/// Batch coalescing must not distort per-op accounting: a batched
/// dispatch charging one op reports the same cycles as the same job
/// dispatched alone.
#[test]
fn batched_dispatch_charges_the_same_cycles_as_single() {
    let run = |max_batch: usize| -> (Cycles, Duration) {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(1 << 20));
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default().with_max_batch(max_batch));
        for _ in 0..3 {
            q.submit(TaskSpec::batch(
                apu_sim::BatchKey::new(1),
                Box::new(()),
                Box::new(
                    |dev: &mut ApuDevice, payloads: Vec<Box<dyn std::any::Any>>| {
                        let report = dev.run_task(|ctx| {
                            ctx.core_mut().charge(VecOp::MulS16);
                            Ok(())
                        })?;
                        Ok((report, payloads.into_iter().map(Ok).collect()))
                    },
                ),
            ))
            .expect("submission");
        }
        let done = q.drain().expect("drain");
        (done[0].report.cycles, done[0].report.duration)
    };
    let (single_cycles, _) = run(1);
    let (batched_cycles, _) = run(3);
    assert_eq!(single_cycles, batched_cycles);
    let t = DeviceTiming::leda_e();
    assert_eq!(single_cycles, Cycles::new(t.mul_s16 + t.cmd_issue));
}

/// Cluster width for the determinism workload: the CI shard axis
/// (`APU_SIM_TEST_SHARDS`) when set, otherwise 3.
fn cluster_shards() -> usize {
    std::env::var("APU_SIM_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3)
}

/// A fixed mixed workload on a [`DeviceCluster`] — consistent-hash
/// routed batchables, a high-priority scatter, a fault plan on one
/// shard, bounded retries — with a [`TraceRecorder`] on every device.
/// Returns per-shard full trace signatures, per-shard timestamp-free
/// kind signatures, and per-shard completion timelines (cycles and
/// queue timestamps).
type ClusterGolden = (
    Vec<String>,
    Vec<Vec<String>>,
    Vec<Vec<(Cycles, Duration, Duration, bool)>>,
);

fn run_cluster_workload(mode: ExecMode) -> ClusterGolden {
    let shards = cluster_shards();
    let mut devices: Vec<ApuDevice> = (0..shards)
        .map(|_| {
            ApuDevice::new(
                SimConfig::default()
                    .with_l4_bytes(1 << 20)
                    .with_exec_mode(mode),
            )
        })
        .collect();
    let recorders: Vec<_> = devices
        .iter_mut()
        .map(|dev| {
            let (sink, rec) = TraceRecorder::shared();
            dev.install_trace_sink(sink);
            rec
        })
        .collect();
    if shards > 1 {
        // One shard faults every third task; its siblings stay clean.
        devices[1].inject_faults(FaultPlan::new(9).fail_every_kth_task(3));
    }

    let cfg = QueueConfig::default()
        .with_max_batch(4)
        .with_max_batch_wait(Duration::from_micros(50))
        .with_retry(RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        });
    let mut cluster = DeviceCluster::new(
        devices.iter_mut().collect(),
        cfg,
        RoutePolicy::ConsistentHash,
    )
    .expect("cluster construction");

    for i in 0..12u64 {
        cluster
            .submit(
                TaskSpec::batch(
                    BatchKey::new(i % 5 + 1),
                    Box::new(i),
                    Box::new(
                        |dev: &mut ApuDevice, payloads: Vec<Box<dyn std::any::Any>>| {
                            let report = dev.run_task(|ctx| {
                                ctx.core_mut().charge(VecOp::MulS16);
                                Ok(())
                            })?;
                            Ok((report, payloads.into_iter().map(Ok).collect()))
                        },
                    ),
                )
                .at(Duration::from_micros(10 * i)),
            )
            .expect("submission");
    }
    cluster
        .scatter(Priority::High, Duration::from_micros(5), |shard| {
            Box::new(move |dev: &mut ApuDevice| {
                let r = dev.run_task(|ctx| {
                    ctx.core_mut().charge(VecOp::AddU16);
                    Ok(())
                })?;
                Ok((r, Box::new(shard) as Box<dyn std::any::Any>))
            })
        })
        .expect("scatter");
    let report = cluster.drain().expect("drain");

    let signatures = recorders.iter().map(|r| r.borrow().signature()).collect();
    let kinds = recorders
        .iter()
        .map(|r| r.borrow().kind_signatures())
        .collect();
    let timelines = report
        .shards
        .iter()
        .map(|d| {
            d.completions
                .iter()
                .map(|c| (c.report.cycles, c.started_at, c.finished_at, c.is_ok()))
                .collect()
        })
        .collect();
    (signatures, kinds, timelines)
}

/// Same seed + same shard count ⇒ byte-identical per-shard trace
/// signatures (timestamps included) and identical completion timelines:
/// the cluster layer — routing, batching, per-shard faults, retries —
/// adds no nondeterminism on top of the simulator.
#[test]
fn cluster_trace_signatures_are_deterministic_per_shard() {
    let a = run_cluster_workload(ExecMode::Functional);
    let b = run_cluster_workload(ExecMode::Functional);
    assert!(
        a.0.iter().all(|s| !s.is_empty()),
        "every shard must record a timeline"
    );
    for (shard, (sa, sb)) in a.0.iter().zip(&b.0).enumerate() {
        assert_eq!(sa, sb, "shard {shard} trace signature diverged across runs");
    }
    assert_eq!(a.2, b.2, "completion timelines diverged across runs");
}

/// Functional and timing-only execution agree on cluster-level cycle
/// accounting: the workload charges fixed per-op costs, so per-shard
/// event streams (timestamp-free projection), per-completion cycles,
/// and queue timestamps must all be mode-independent.
#[test]
fn cluster_functional_and_timing_modes_agree_on_cycles() {
    let f = run_cluster_workload(ExecMode::Functional);
    let t = run_cluster_workload(ExecMode::TimingOnly);
    assert_eq!(f.1, t.1, "per-shard event kinds diverged across exec modes");
    assert_eq!(
        f.2, t.2,
        "per-completion cycle accounting diverged across exec modes"
    );
}

/// Replication factor for the replicated workload: the CI replica axis
/// (`APU_SIM_TEST_REPLICAS`) when set, otherwise 2.
fn cluster_replicas() -> usize {
    std::env::var("APU_SIM_TEST_REPLICAS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// Per-job timeline row of the replicated workload:
/// `(job, device, cycles, started, finished, ok)`.
type ReplicatedGolden = (Vec<String>, Vec<Vec<String>>, ReplicaTimeline);
type ReplicaTimeline = Vec<(u64, usize, Cycles, Duration, Duration, bool)>;

/// A fixed replicated workload on a [`DeviceCluster`] with a
/// [`Placement`]: `APU_SIM_TEST_SHARDS` shard groups ×
/// `APU_SIM_TEST_REPLICAS` replicas, the first replica of shard 0
/// killed outright (every task faults), two jobs per shard routed to
/// the least-loaded healthy replica, and a manual
/// drain → [`DeviceCluster::record_outcome`] →
/// [`DeviceCluster::submit_failover`] loop re-issuing transient
/// failures on untried replicas. Returns per-device full trace
/// signatures, per-device timestamp-free kind signatures, and the
/// job timeline sorted by (job, device).
fn run_replicated_workload(mode: ExecMode) -> ReplicatedGolden {
    let shards = cluster_shards();
    let replicas = cluster_replicas();
    let n_devices = shards * replicas;
    let mut devices: Vec<ApuDevice> = (0..n_devices)
        .map(|_| {
            ApuDevice::new(
                SimConfig::default()
                    .with_l4_bytes(1 << 20)
                    .with_exec_mode(mode),
            )
        })
        .collect();
    let recorders: Vec<_> = devices
        .iter_mut()
        .map(|dev| {
            let (sink, rec) = TraceRecorder::shared();
            dev.install_trace_sink(sink);
            rec
        })
        .collect();
    let placement = Placement::new(shards, replicas, n_devices).expect("placement");
    let victim = placement.replicas(0)[0];
    devices[victim].inject_faults(FaultPlan::new(9).fail_every_kth_task(1));

    let mut cluster = DeviceCluster::new(
        devices.iter_mut().collect(),
        QueueConfig::default(),
        RoutePolicy::ConsistentHash,
    )
    .expect("cluster construction");
    cluster
        .set_placement(placement)
        .expect("placement matches width");

    let charge = || {
        TaskSpec::kernel(|ctx| {
            ctx.core_mut().charge(VecOp::MulS16);
            Ok(())
        })
    };
    // (device, handle) → (job, shard, original arrival, replicas tried).
    type Booked = (u64, usize, Duration, Vec<usize>);
    let mut book: HashMap<(usize, apu_sim::TaskHandle), Booked> = HashMap::new();
    let mut job = 0u64;
    for s in 0..shards {
        for _ in 0..2 {
            let at = Duration::from_micros(10 * job);
            let device = cluster.route_replica(s, &[]).expect("a replica exists");
            let handle = cluster
                .submit(charge().at(at).on_shard(device))
                .expect("submission");
            book.insert((device, handle.task()), (job, s, at, vec![device]));
            job += 1;
        }
    }

    let mut timeline: ReplicaTimeline = Vec::new();
    loop {
        let report = cluster.drain().expect("drain");
        if report.is_empty() {
            break;
        }
        let mut resubmits = Vec::new();
        for (device, c) in report.completions() {
            let (job, shard, arrival, tried) = book
                .get(&(device, c.handle))
                .cloned()
                .expect("every completion was booked");
            cluster.record_outcome(device, c.is_ok(), c.finished_at);
            timeline.push((
                job,
                device,
                c.report.cycles,
                c.started_at,
                c.finished_at,
                c.is_ok(),
            ));
            if c.error().is_some_and(Error::is_transient) {
                resubmits.push((job, shard, arrival, tried, device, c.finished_at));
            }
        }
        for (job, shard, arrival, mut tried, from, observed) in resubmits {
            let Some(next) = cluster.route_replica(shard, &tried) else {
                continue; // every replica tried — the job fails for good
            };
            let handle = cluster
                .submit_failover(charge().at(arrival).on_shard(next), from, observed)
                .expect("failover resubmission");
            tried.push(next);
            book.insert((next, handle.task()), (job, shard, arrival, tried));
        }
    }
    timeline.sort_unstable_by_key(|&(job, device, ..)| (job, device));

    let signatures = recorders.iter().map(|r| r.borrow().signature()).collect();
    let kinds = recorders
        .iter()
        .map(|r| r.borrow().kind_signatures())
        .collect();
    (signatures, kinds, timeline)
}

/// The replicated workload is deterministic end to end: same shard and
/// replica counts ⇒ byte-identical per-device trace signatures and the
/// same job timeline, failovers included. With replication every job
/// retires successfully despite the dead replica; without it the dead
/// shard's jobs fail for good.
#[test]
fn replicated_cluster_failover_is_deterministic() {
    let a = run_replicated_workload(ExecMode::Functional);
    let b = run_replicated_workload(ExecMode::Functional);
    for (device, (sa, sb)) in a.0.iter().zip(&b.0).enumerate() {
        assert_eq!(
            sa, sb,
            "device {device} trace signature diverged across runs"
        );
    }
    assert_eq!(a.2, b.2, "job timelines diverged across runs");

    let shards = cluster_shards();
    let replicas = cluster_replicas();
    let jobs = 2 * shards;
    let ok = a.2.iter().filter(|row| row.5).count();
    if replicas >= 2 {
        assert_eq!(ok, jobs, "failover must recover every job");
        assert!(
            a.2.iter().any(|row| !row.5),
            "the dead replica must fail at least one attempt"
        );
        let all_kinds: Vec<String> = a.1.iter().flatten().cloned().collect();
        assert!(
            all_kinds.iter().any(|k| k.starts_with("replica-down")),
            "the dead replica must be marked down"
        );
        assert!(
            all_kinds.iter().any(|k| k.starts_with("failover")),
            "failover re-issues must be traced"
        );
    } else {
        assert_eq!(ok, jobs - 2, "shard 0's jobs have nowhere to go");
    }
}

/// Functional and timing-only execution agree on the replicated
/// workload: identical per-device event narratives and identical job
/// timelines — the failover path charges the same virtual time in both
/// modes.
#[test]
fn replicated_cluster_modes_agree_on_cycles() {
    let f = run_replicated_workload(ExecMode::Functional);
    let t = run_replicated_workload(ExecMode::TimingOnly);
    assert_eq!(
        f.1, t.1,
        "per-device event kinds diverged across exec modes"
    );
    assert_eq!(f.2, t.2, "job timelines diverged across exec modes");
}

/// Tracing is an observer, never a participant: a run with a sink
/// installed charges bit-identical golden cycles to an untraced run —
/// per-task reports, queue timestamps, and the stats block all match.
#[test]
fn tracing_adds_zero_virtual_time() {
    let run = |traced: bool| -> (String, Vec<(Cycles, Duration, Duration)>) {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(4 << 20));
        let recorder = traced.then(|| {
            let (sink, recorder) = TraceRecorder::shared();
            dev.install_trace_sink(sink);
            recorder
        });
        // Async DMA under the queue: both instrumentation domains
        // (scheduler timeline and core cycle counter) are on the path.
        let n = dev.config().vr_len;
        let mut q = DeviceQueue::new(&mut dev, QueueConfig::default());
        for i in 0..4u64 {
            q.submit(
                TaskSpec::typed(move |dev: &mut ApuDevice| {
                    let h = dev.alloc_u16(2 * n)?;
                    let r = dev.run_task(|ctx| {
                        let t0 = ctx.dma_l4_to_l1_async(Vmr::new(0), h)?;
                        let t1 = ctx.dma_l4_to_l1_async(Vmr::new(1), h.offset_by(n * 2)?)?;
                        for _ in 0..50 {
                            ctx.core_mut().charge(VecOp::MulS16);
                        }
                        ctx.dma_wait(t0);
                        ctx.dma_wait(t1);
                        Ok(())
                    })?;
                    Ok((r, i))
                })
                .at(Duration::from_micros(30 * i)),
            )
            .expect("submission");
        }
        let done = q.drain().expect("drain");
        let timeline = done
            .iter()
            .map(|c| (c.report.cycles, c.started_at, c.finished_at))
            .collect();
        let stats = format!("{:?}", q.stats());
        if let Some(r) = &recorder {
            assert!(!r.borrow().is_empty(), "the recorder must observe events");
        }
        (stats, timeline)
    };
    assert_eq!(run(false), run(true));
}
