//! APU rail-level energy model.

use serde::{Deserialize, Serialize};

use apu_sim::{Frequency, TaskReport};

/// Power/energy constants for the APU board.
///
/// Defaults are calibrated against the paper's Fig. 15 energy breakdown
/// (static-dominated) under the 60 W TDP budget of the Leda-E.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApuPowerModel {
    /// Always-on static power of the four cores + control (watts).
    pub static_w: f64,
    /// Additional power while the bit-processor array computes (watts).
    pub compute_w: f64,
    /// Additional power while the DMA engines move data (watts).
    pub dma_w: f64,
    /// L3/cache access energy per lookup cycle (nanojoules).
    pub cache_nj_per_cycle: f64,
    /// Board peripherals / regulators (watts, always on).
    pub other_w: f64,
}

impl ApuPowerModel {
    /// Calibrated Leda-E model.
    pub fn leda_e() -> Self {
        ApuPowerModel {
            static_w: 30.0,
            compute_w: 12.0,
            dma_w: 4.0,
            cache_nj_per_cycle: 0.35,
            other_w: 0.5,
        }
    }

    /// Computes the breakdown for one device task.
    ///
    /// `clock` converts busy-cycle counts to busy time; `dram_j` is the
    /// off-chip DRAM energy for the task (from `hbm-sim` when the
    /// off-chip memory is simulated, or a DDR estimate otherwise).
    pub fn breakdown(
        &self,
        report: &TaskReport,
        clock: Frequency,
        dram_j: f64,
    ) -> ApuEnergyBreakdown {
        let total_secs = report.duration.as_secs_f64();
        let compute_secs =
            (report.stats.compute_cycles + report.stats.issue_cycles) as f64 / clock.hz();
        let dma_secs = report.stats.dma_cycles as f64 / clock.hz();
        ApuEnergyBreakdown {
            static_j: self.static_w * total_secs,
            compute_j: self.compute_w * compute_secs,
            dram_j,
            cache_j: report.stats.lookup_cycles as f64 * self.cache_nj_per_cycle * 1e-9,
            other_j: self.other_w * total_secs + self.dma_w * dma_secs,
        }
    }
}

impl Default for ApuPowerModel {
    fn default() -> Self {
        ApuPowerModel::leda_e()
    }
}

/// Task energy split by rail, in joules (the paper's Fig. 15 categories).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ApuEnergyBreakdown {
    /// Static (leakage + always-on) energy.
    pub static_j: f64,
    /// Bit-processor compute energy.
    pub compute_j: f64,
    /// Off-chip DRAM energy.
    pub dram_j: f64,
    /// L3/cache energy.
    pub cache_j: f64,
    /// Everything else (board, regulators, DMA engines).
    pub other_j: f64,
}

impl ApuEnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.static_j + self.compute_j + self.dram_j + self.cache_j + self.other_j
    }

    /// Each category as a fraction of the total, in Fig. 15 order
    /// (static, compute, DRAM, other, cache).
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total_j();
        if t == 0.0 {
            return [0.0; 5];
        }
        [
            self.static_j / t,
            self.compute_j / t,
            self.dram_j / t,
            self.other_j / t,
            self.cache_j / t,
        ]
    }

    /// Sums two breakdowns (e.g. retrieval stages).
    pub fn combine(&self, other: &ApuEnergyBreakdown) -> ApuEnergyBreakdown {
        ApuEnergyBreakdown {
            static_j: self.static_j + other.static_j,
            compute_j: self.compute_j + other.compute_j,
            dram_j: self.dram_j + other.dram_j,
            cache_j: self.cache_j + other.cache_j,
            other_j: self.other_j + other.other_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::{Cycles, VcuStats};
    use std::time::Duration;

    fn fake_report(total_ms: f64, compute_frac: f64, dma_frac: f64) -> TaskReport {
        let clock = Frequency::LEDA_E;
        let total_cycles = (total_ms / 1e3 * clock.hz()) as u64;
        let stats = VcuStats {
            compute_cycles: (total_cycles as f64 * compute_frac) as u64,
            dma_cycles: (total_cycles as f64 * dma_frac) as u64,
            ..VcuStats::default()
        };
        TaskReport {
            cycles: Cycles::new(total_cycles),
            duration: Duration::from_secs_f64(total_ms / 1e3),
            stats,
            cores_used: 1,
        }
    }

    #[test]
    fn static_power_dominates_retrieval_like_tasks() {
        // Shape of the paper's 200 GB RAG retrieval: ~88% of the time in
        // distance computation, modest DRAM traffic.
        let model = ApuPowerModel::leda_e();
        let report = fake_report(84.2, 0.88, 0.08);
        let e = model.breakdown(&report, Frequency::LEDA_E, 0.095);
        let f = e.fractions();
        assert!(f[0] > 0.60 && f[0] < 0.80, "static fraction {}", f[0]);
        assert!(f[1] > 0.15 && f[1] < 0.35, "compute fraction {}", f[1]);
        assert!(f[2] < 0.05, "dram fraction {}", f[2]);
        assert!(f[4] < 0.001, "cache fraction {}", f[4]);
        // Total power stays under the 60 W TDP.
        let avg_w = e.total_j() / report.duration.as_secs_f64();
        assert!(avg_w < 60.0, "average power {avg_w} W");
    }

    #[test]
    fn idle_heavy_tasks_are_almost_entirely_static() {
        let model = ApuPowerModel::leda_e();
        let report = fake_report(10.0, 0.01, 0.01);
        let e = model.breakdown(&report, Frequency::LEDA_E, 0.0);
        assert!(e.fractions()[0] > 0.9);
    }

    #[test]
    fn combine_adds_categories() {
        let a = ApuEnergyBreakdown {
            static_j: 1.0,
            compute_j: 2.0,
            dram_j: 3.0,
            cache_j: 4.0,
            other_j: 5.0,
        };
        let b = a.combine(&a);
        assert_eq!(b.total_j(), 30.0);
        assert_eq!(b.static_j, 2.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let model = ApuPowerModel::leda_e();
        let report = fake_report(5.0, 0.5, 0.3);
        let e = model.breakdown(&report, Frequency::LEDA_E, 0.01);
        let s: f64 = e.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_breakdown_has_zero_fractions() {
        let e = ApuEnergyBreakdown::default();
        assert_eq!(e.fractions(), [0.0; 5]);
    }
}
