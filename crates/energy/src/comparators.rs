//! GPU and CPU energy comparators.
//!
//! The paper measures GPU energy with `nvidia-smi` power sampling during
//! top-5 retrieval on an NVIDIA A6000, and compares against the APU's
//! board telemetry. These models reproduce that methodology: average
//! draw × busy time, with an idle floor for the duty-cycled case.

use serde::{Deserialize, Serialize};

/// GPU board power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuPowerModel {
    /// Device name (for reports).
    pub name: String,
    /// Average board draw while the retrieval kernels run (watts).
    /// `nvidia-smi` on an A6000 running bandwidth-bound flat search
    /// reports close to (but under) the 300 W board limit.
    pub busy_w: f64,
    /// Idle draw (watts).
    pub idle_w: f64,
}

impl GpuPowerModel {
    /// NVIDIA RTX A6000 (300 W board power limit).
    pub fn a6000() -> Self {
        GpuPowerModel {
            name: "NVIDIA A6000".into(),
            busy_w: 270.0,
            idle_w: 22.0,
        }
    }

    /// Energy for a kernel busy for `busy_secs` within a window of
    /// `window_secs` (idle draw covers the remainder).
    pub fn energy_j(&self, busy_secs: f64, window_secs: f64) -> f64 {
        let window = window_secs.max(busy_secs);
        self.busy_w * busy_secs + self.idle_w * (window - busy_secs)
    }

    /// Energy when the device is fully busy for the whole interval.
    pub fn busy_energy_j(&self, secs: f64) -> f64 {
        self.busy_w * secs
    }
}

/// CPU socket power model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuPowerModel {
    /// Device name (for reports).
    pub name: String,
    /// Package draw under all-core AVX load (watts).
    pub busy_w: f64,
    /// Idle package draw (watts).
    pub idle_w: f64,
}

impl CpuPowerModel {
    /// Intel Xeon Gold 6230R (150 W TDP).
    pub fn xeon_6230r() -> Self {
        CpuPowerModel {
            name: "Xeon Gold 6230R".into(),
            busy_w: 150.0,
            idle_w: 35.0,
        }
    }

    /// Energy for a region busy for `busy_secs`.
    pub fn busy_energy_j(&self, secs: f64) -> f64 {
        self.busy_w * secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apu::ApuPowerModel;
    use apu_sim::{Cycles, Frequency, TaskReport, VcuStats};
    use std::time::Duration;

    #[test]
    fn gpu_energy_scales_with_busy_time() {
        let gpu = GpuPowerModel::a6000();
        assert!(gpu.energy_j(2.0, 2.0) > 1.9 * gpu.energy_j(1.0, 1.0));
        // idle tail counted at idle power
        let e = gpu.energy_j(1.0, 3.0);
        assert!((e - (270.0 + 2.0 * 22.0)).abs() < 1e-9);
        // window shorter than busy clamps
        assert_eq!(gpu.energy_j(1.0, 0.5), gpu.energy_j(1.0, 1.0));
    }

    #[test]
    fn apu_vs_gpu_energy_ratio_matches_paper_band() {
        // Paper: top-5 retrieval on the APU is 54.4x–117.9x more
        // energy-efficient than the A6000 at comparable latency. With
        // comparable retrieval latencies, the ratio is roughly
        // (GPU busy power) / (APU average power) ≈ 270 / ~38 ≈ 7 per
        // equal time; the rest of the gap comes from the GPU retrieval
        // being invoked on a device burning busy power during the whole
        // window while the APU sips static power. Reproduce the bounding
        // case: equal latency, full-window accounting on both sides.
        let apu_model = ApuPowerModel::leda_e();
        let secs = 0.0842;
        let stats = VcuStats {
            compute_cycles: (secs * Frequency::LEDA_E.hz() * 0.88) as u64,
            ..VcuStats::default()
        };
        let report = TaskReport {
            cycles: Cycles::new((secs * Frequency::LEDA_E.hz()) as u64),
            duration: Duration::from_secs_f64(secs),
            stats,
            cores_used: 4,
        };
        let apu_j = apu_model
            .breakdown(&report, Frequency::LEDA_E, 0.1)
            .total_j();
        let gpu = GpuPowerModel::a6000();
        let gpu_j = gpu.busy_energy_j(secs);
        let ratio = gpu_j / apu_j;
        assert!(ratio > 5.0, "per-equal-time ratio {ratio}");
    }

    #[test]
    fn cpu_model_energy() {
        let cpu = CpuPowerModel::xeon_6230r();
        assert_eq!(cpu.busy_energy_j(2.0), 300.0);
    }
}
