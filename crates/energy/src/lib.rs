#![warn(missing_docs)]

//! Energy accounting for the compute-in-SRAM device and its CPU/GPU
//! comparators (paper §5.3.5, Fig. 15).
//!
//! The paper measures APU energy with a TI UCD9090 voltage monitor and
//! Renesas ISL8273M power modules providing rail-level telemetry; this
//! crate is the simulation equivalent: rail power constants integrated
//! over simulated time and activity. The APU rail model is calibrated so
//! the 200 GB RAG retrieval breakdown reproduces the paper's observation
//! that **static power dominates** (71.4% static, 24.7% compute, 2.7%
//! DRAM, 1.1% other, ~0.005% cache).
//!
//! GPU and CPU comparators follow the paper's methodology: board power ×
//! busy time (`nvidia-smi`-style for the GPU).

pub mod apu;
pub mod comparators;

pub use apu::{ApuEnergyBreakdown, ApuPowerModel};
pub use comparators::{CpuPowerModel, GpuPowerModel};
