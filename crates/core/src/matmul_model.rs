//! Closed-form cost and operational-intensity model for the binary
//! matrix-multiplication motivating example (paper §4.1–§4.4,
//! Eqs. 2–14).
//!
//! Matrices are bit-packed along the reduction axis: `A (M × K_w)` and
//! `B (K_w × N)` hold `u16` words, each packing 16 binary values, and the
//! output `C (M × N)` is `i16`. Throughout, `K` denotes the *packed*
//! word count (`K_w`), matching the paper's use of the equations with
//! 16-bit elements.
//!
//! Variants follow the evaluation's convention (Figs. 12–13): the
//! baseline, each optimization applied **alone**, and all three together.
//! The per-stage expressions follow Eqs. 2–14, with the `M` outer-loop
//! factor included where the printed per-pass expressions elide it
//! (Eq. 6), and `T_sg_add(K, 1)` — "reduce groups of K to scalars" —
//! evaluated as the reduction model's `t_sg_add(r = K, s = K)`.
//!
//! With the Leda-E calibration, the modeled 1024³ baseline lands near the
//! paper's measured 226.3 ms (dominated by the PIO result write-back) and
//! the all-opts variant in the low milliseconds (paper: 12.0 ms).

use serde::{Deserialize, Serialize};

use apu_sim::VecOp;
use cis_model::ModelParams;

/// Problem shape for the binary matmul.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatmulShape {
    /// Rows of A / C.
    pub m: usize,
    /// Columns of B / C.
    pub n: usize,
    /// Packed reduction length in u16 words (bits / 16).
    pub k_words: usize,
    /// Logical + arithmetic operations per packed word pair (`α`); each
    /// u16 word carries 16 binary MACs, so 32 is the natural default.
    pub alpha: usize,
}

impl MatmulShape {
    /// The paper's 1024 × 1024 microbenchmark (1024 binary values packed
    /// into 64 words).
    pub fn paper_1024() -> Self {
        MatmulShape {
            m: 1024,
            n: 1024,
            k_words: 64,
            alpha: 32,
        }
    }

    /// Total modeled operations (for roofline placement).
    pub fn total_ops(&self) -> f64 {
        (self.m * self.n * self.k_words * self.alpha) as f64
    }
}

/// The optimization configuration being modeled (Fig. 12/13 convention:
/// each optimization standalone, plus all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatmulVariant {
    /// Inner-product algorithm with spatial reduction (Fig. 7).
    Baseline,
    /// Only communication-aware reduction mapping (temporal SVP, §4.2):
    /// contiguous outputs return via DMA, LHS scalars broadcast via PIO.
    Opt1,
    /// Only DMA coalescing (§4.3): the LHS duplication traffic collapses
    /// into full-vector loads plus on-chip subgroup copies; the
    /// inner-product structure (and its PIO write-back) stays.
    Opt2,
    /// Only the broadcast-friendly layout (§4.4): standalone it merely
    /// improves the contiguity of the duplication DMA — the paper notes
    /// its opportunities "often emerge only after other optimizations".
    Opt3,
    /// All three, plus the §5.1 extras (k-axis RHS packing and the tuned
    /// `[(32,32):…]` broadcast window).
    AllOpts,
}

impl MatmulVariant {
    /// All variants in Fig. 12 order.
    pub const ALL: [MatmulVariant; 5] = [
        MatmulVariant::Baseline,
        MatmulVariant::Opt1,
        MatmulVariant::Opt2,
        MatmulVariant::Opt3,
        MatmulVariant::AllOpts,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MatmulVariant::Baseline => "baseline",
            MatmulVariant::Opt1 => "opt1",
            MatmulVariant::Opt2 => "opt2",
            MatmulVariant::Opt3 => "opt3",
            MatmulVariant::AllOpts => "all opts",
        }
    }
}

/// Per-stage cost breakdown in cycles, matching the Fig. 12 stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatmulCost {
    /// LHS (A) load cycles.
    pub t_a: f64,
    /// RHS (B) load cycles.
    pub t_b: f64,
    /// Result (C) store cycles.
    pub t_c: f64,
    /// On-VR compute cycles (including subgroup-copy duplication work).
    pub t_mac: f64,
    /// Operational intensity (ops per off-chip byte).
    pub oi: f64,
}

impl MatmulCost {
    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.t_a + self.t_b + self.t_c + self.t_mac
    }

    /// Total milliseconds under the given clock.
    pub fn total_ms(&self, params: &ModelParams) -> f64 {
        params.cycles_to_us(self.total()) / 1e3
    }

    /// Achieved throughput in GOPS for a shape.
    pub fn achieved_gops(&self, shape: &MatmulShape, params: &ModelParams) -> f64 {
        shape.total_ops() / (self.total() / params.clock.hz()) / 1e9
    }
}

/// Evaluates the cost model for one variant.
pub fn cost(params: &ModelParams, shape: &MatmulShape, variant: MatmulVariant) -> MatmulCost {
    let l = params.vr_len as f64;
    let m = shape.m as f64;
    let n = shape.n as f64;
    let k = shape.k_words as f64;
    let sf = 2.0; // size_of(u16)
    let bw = params.l4_bytes_per_cycle();
    let init = params.timing.dma_l4_l2_init;
    let t = |op: VecOp| params.t_op(op);
    let mac_elem = t(VecOp::Xor16) + t(VecOp::Popcnt16) + t(VecOp::AShift) + t(VecOp::SubS16);

    // ---- baseline building blocks (inner product, Eqs. 2–6) ----
    let dup_k = (l / k).floor().max(1.0); // A duplication factor ⌊l/K⌋
    let base_oi = shape.total_ops() / ((m * k * dup_k + k * n + m * n) * sf);
    // Eq. 3: per row, the duplicated copies form one chunked DMA
    // transaction (programmed 512-byte chunk addresses), then L2→L1.
    let base_t_a = m * ((k * sf * dup_k) / bw + init + params.t_dma_l2_l1());
    // Eq. 4: B column-major, ⌊l/K⌋ columns per full-vector load.
    let base_t_b = (n / dup_k).ceil() * params.t_dma_l4_l1();
    // Eq. 5: scattered results leave one at a time via PIO.
    let base_t_c = params.t_pio_st(shape.m * shape.n);
    // Eq. 6 (× M outer loop): each pass computes ⌊l/K⌋ outputs.
    let base_t_mac =
        m * (n / dup_k).ceil() * (mac_elem + params.t_sg_add(shape.k_words, shape.k_words));

    // ---- temporal (SVP) building blocks (Eqs. 7–11) ----
    let dup_n = (l / n).floor().max(1.0); // C rows per VR pass ⌊l/N⌋
    let passes = (m / dup_n).ceil();
    let svp_t_mac = (mac_elem + t(VecOp::AddS16)) * passes * k;
    let svp_t_c = passes * params.t_dma_l1_l4(); // Eq. 8, via DMA

    match variant {
        MatmulVariant::Baseline => MatmulCost {
            t_a: base_t_a,
            t_b: base_t_b,
            t_c: base_t_c,
            t_mac: base_t_mac,
            oi: base_oi,
        },
        MatmulVariant::Opt1 => {
            // Eq. 9.
            let oi = shape.total_ops() / ((m * k + n * k * dup_n + m * n) * sf);
            // Standalone opt1 broadcasts each A scalar with a PIO read
            // plus a masked immediate copy (no coalescing, no layout
            // help): ⌊l/N⌋ scalars per (pass, k) iteration.
            let t_a = passes * k * dup_n * (params.t_pio_ld(1) + t(VecOp::CpyImm));
            // Eq. 11: B rows duplicated ⌊l/N⌋ times by separate DMAs.
            let t_b = ((n * sf) / bw + init) * dup_n * k + k * params.t_dma_l2_l1();
            MatmulCost {
                t_a,
                t_b,
                t_c: svp_t_c,
                t_mac: svp_t_mac,
                oi,
            }
        }
        MatmulVariant::Opt2 => {
            // Coalescing alone: the A duplication traffic becomes
            // ⌈M·K/l⌉ full-vector loads plus one subgroup copy per row
            // (on-chip duplication from the reuse VR); the algorithm is
            // still the inner product.
            let t_a = (m * k / l).ceil() * params.t_dma_l4_l1();
            let t_mac = base_t_mac + m * t(VecOp::CpySubgrp);
            let oi = shape.total_ops() / ((m * k + k * n + m * n) * sf);
            MatmulCost {
                t_a,
                t_b: base_t_b,
                t_c: base_t_c,
                t_mac,
                oi,
            }
        }
        MatmulVariant::Opt3 => {
            // Layout alone: duplication chunks of adjacent rows become
            // contiguous, so two rows share one transaction's init.
            let t_a = (m / 2.0) * ((k * sf * dup_k * 2.0) / bw + init) + m * params.t_dma_l2_l1();
            MatmulCost {
                t_a,
                t_b: base_t_b,
                t_c: base_t_c,
                t_mac: base_t_mac,
                oi: base_oi,
            }
        }
        MatmulVariant::AllOpts => {
            // Eq. 13.
            let oi = shape.total_ops() / ((m * k + n * k + m * n) * sf);
            // LHS: streamed once by DMA, broadcast by lookup over the
            // tuned window (⌊l/N⌋ entries instead of K·N — §5.1).
            let window = (dup_n as usize).min(shape.n).max(1);
            let t_a = (m * k * sf) / bw + init + params.t_lookup(window) * passes * k;
            // Eq. 12 with k-axis packing halving the staging passes.
            let t_b = ((k * n / l) / 2.0).ceil() * params.t_dma_l4_l1() + k * t(VecOp::CpySubgrp);
            // Subgroup copies for the RHS reuse VR show up as VR ops.
            let t_mac = svp_t_mac + passes * k * t(VecOp::CpySubgrp);
            MatmulCost {
                t_a,
                t_b,
                t_c: svp_t_c,
                t_mac,
                oi,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> (ModelParams, MatmulShape) {
        (ModelParams::leda_e(), MatmulShape::paper_1024())
    }

    #[test]
    fn baseline_total_near_paper_measurement() {
        let (p, s) = paper();
        let ms = cost(&p, &s, MatmulVariant::Baseline).total_ms(&p);
        // Paper: 226.3 ms on the device.
        assert!((150.0..320.0).contains(&ms), "baseline modeled at {ms} ms");
    }

    #[test]
    fn all_opts_total_near_paper_measurement() {
        let (p, s) = paper();
        let ms = cost(&p, &s, MatmulVariant::AllOpts).total_ms(&p);
        // Paper: 12.0 ms.
        assert!((3.0..25.0).contains(&ms), "all-opts modeled at {ms} ms");
    }

    #[test]
    fn overall_speedup_matches_headline_factor() {
        let (p, s) = paper();
        let base = cost(&p, &s, MatmulVariant::Baseline).total();
        let all = cost(&p, &s, MatmulVariant::AllOpts).total();
        let speedup = base / all;
        // Paper: 18.9×.
        assert!((8.0..60.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn baseline_is_bottlenecked_by_result_writeback() {
        let (p, s) = paper();
        let c = cost(&p, &s, MatmulVariant::Baseline);
        assert!(c.t_c > c.t_a && c.t_c > c.t_b && c.t_c > c.t_mac);
    }

    #[test]
    fn opt1_kills_the_pio_store_but_inflates_rhs() {
        let (p, s) = paper();
        let base = cost(&p, &s, MatmulVariant::Baseline);
        let o1 = cost(&p, &s, MatmulVariant::Opt1);
        assert!(o1.t_c < base.t_c / 10.0);
        // RHS loading gets worse due to duplication (§5.1).
        assert!(o1.t_b > base.t_b);
        // ... but overall opt1 is the big standalone win.
        assert!(o1.total() < base.total() / 3.0);
    }

    #[test]
    fn opt2_and_opt3_standalone_gains_are_modest() {
        let (p, s) = paper();
        let base = cost(&p, &s, MatmulVariant::Baseline).total();
        let o2 = cost(&p, &s, MatmulVariant::Opt2).total();
        let o3 = cost(&p, &s, MatmulVariant::Opt3).total();
        // Both help, neither changes the order of magnitude: the PIO
        // write-back still dominates.
        assert!(o2 < base && o3 < base);
        assert!(o2 > base / 3.0 && o3 > base / 3.0);
    }

    #[test]
    fn all_opts_beats_every_standalone_variant() {
        let (p, s) = paper();
        let all = cost(&p, &s, MatmulVariant::AllOpts).total();
        for v in [
            MatmulVariant::Opt1,
            MatmulVariant::Opt2,
            MatmulVariant::Opt3,
        ] {
            assert!(all < cost(&p, &s, v).total(), "{} beat all-opts", v.label());
        }
    }

    #[test]
    fn oi_improves_with_all_opts() {
        let (p, s) = paper();
        let base = cost(&p, &s, MatmulVariant::Baseline);
        let all = cost(&p, &s, MatmulVariant::AllOpts);
        assert!(all.oi > base.oi);
    }

    #[test]
    fn gops_rise_toward_the_roofline() {
        let (p, s) = paper();
        let base = cost(&p, &s, MatmulVariant::Baseline).achieved_gops(&s, &p);
        let all = cost(&p, &s, MatmulVariant::AllOpts).achieved_gops(&s, &p);
        assert!(all > 5.0 * base);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = MatmulVariant::ALL.iter().map(|v| v.label()).collect();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
