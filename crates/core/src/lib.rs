#![warn(missing_docs)]

//! Data-movement and data-layout optimizations for ultra-long-vector
//! compute-in-SRAM devices — the paper's primary contribution (§4).
//!
//! Compute-in-SRAM devices compute *inside* the memory array, yet remain
//! easy to bottleneck on data movement: intra-VR communication is far
//! more expensive than element-wise inter-VR operations, off-chip DMA
//! dwarfs on-chip copies, and scattered results force slow PIO. This
//! crate packages the paper's three counter-measures as reusable
//! planning/analysis components:
//!
//! 1. **Communication-aware reduction mapping** ([`reduction`]) — map
//!    reduction axes to *temporal* inter-VR element-wise operations
//!    instead of *spatial* intra-VR subgroup reductions, and keep results
//!    contiguous so they can return via DMA instead of PIO.
//! 2. **Coalesced DMA** ([`coalesce`]) — merge per-row DMA transactions
//!    into single programmed transactions and materialize duplicated data
//!    with on-chip subgroup copies from a reuse VR instead of re-reading
//!    off-chip memory.
//! 3. **Broadcast-friendly data layouts** ([`layout`]) — reorder operands
//!    (expressed as Graphene-style size/stride layouts) so scalar
//!    broadcast windows are contiguous, shrinking lookup tables from
//!    `K · N` to `N` entries.
//!
//! [`matmul_model`] implements the paper's closed-form cost/OI equations
//! (Eqs. 2–14) for the motivating binary-matmul example, and
//! [`roofline`] provides the roofline analysis of Fig. 2.

pub mod coalesce;
pub mod layout;
pub mod matmul_model;
pub mod reduction;
pub mod roofline;

pub use coalesce::{CoalescePlan, RowTransfer};
pub use layout::{Dim, Layout};
pub use matmul_model::{MatmulCost, MatmulShape, MatmulVariant};
pub use reduction::{recommend_mapping, ReductionMapping};
pub use roofline::{Roofline, RooflinePoint};

/// Crate-wide result alias (errors are [`apu_sim::Error`]).
pub type Result<T> = apu_sim::Result<T>;
