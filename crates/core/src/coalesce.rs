//! DMA coalescing (paper §4.3).
//!
//! When a kernel repeatedly needs the same (or adjacent) chunks of
//! off-chip data — e.g. every iteration of the matmul `k` loop re-reads a
//! row of B — issuing one DMA transaction per row wastes bandwidth on
//! per-transaction initialization and re-reads duplicated data. The
//! coalescing planner instead:
//!
//! 1. merges adjacent/overlapping row transfers into maximal contiguous
//!    runs, each fetched by **one** programmed chunk within a single DMA
//!    transaction (initialization paid once), and
//! 2. materializes any required duplication *on-chip* with subgroup
//!    copies from a "reuse VR" instead of re-fetching from L4.

use serde::{Deserialize, Serialize};

use apu_sim::dma::ChunkCopy;
use apu_sim::VecOp;
use cis_model::ModelParams;

/// One logical row the kernel needs in the vector register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowTransfer {
    /// Byte offset of the row in the source (L4) region.
    pub src_off: usize,
    /// Row length in bytes.
    pub bytes: usize,
    /// Destination element-byte offset within the staged vector.
    pub dst_off: usize,
}

/// A coalescing plan: the merged chunk list plus duplication work.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalescePlan {
    /// Programmed chunks for one DMA transaction.
    pub chunks: Vec<(usize, usize, usize)>, // (src_off, dst_off, bytes)
    /// Number of on-chip subgroup copies needed to materialize
    /// duplicated rows.
    pub subgroup_copies: usize,
    /// Transactions the naive per-row strategy would have issued.
    pub naive_transactions: usize,
    /// Unique bytes fetched from L4.
    pub unique_bytes: usize,
    /// Bytes the naive strategy would have fetched (with duplicates).
    pub naive_bytes: usize,
}

impl CoalescePlan {
    /// Builds a plan from the rows a kernel pass needs.
    ///
    /// Rows with identical `src_off`/`bytes` beyond the first occurrence
    /// become subgroup copies; distinct rows are sorted and merged into
    /// maximal contiguous chunks.
    pub fn plan(rows: &[RowTransfer]) -> CoalescePlan {
        let naive_transactions = rows.len();
        let naive_bytes: usize = rows.iter().map(|r| r.bytes).sum();

        // Split into first occurrences and duplicates.
        let mut uniques: Vec<RowTransfer> = Vec::new();
        let mut dup_count = 0usize;
        for r in rows {
            if uniques
                .iter()
                .any(|u| u.src_off == r.src_off && u.bytes == r.bytes)
            {
                dup_count += 1;
            } else {
                uniques.push(*r);
            }
        }
        uniques.sort_by_key(|r| r.src_off);

        // Merge source-contiguous rows that are also destination-contiguous.
        let mut chunks: Vec<(usize, usize, usize)> = Vec::new();
        for u in &uniques {
            if let Some(last) = chunks.last_mut() {
                let (src, dst, len) = *last;
                if src + len == u.src_off && dst + len == u.dst_off {
                    last.2 += u.bytes;
                    continue;
                }
            }
            chunks.push((u.src_off, u.dst_off, u.bytes));
        }

        CoalescePlan {
            chunks,
            subgroup_copies: dup_count,
            naive_transactions,
            unique_bytes: uniques.iter().map(|r| r.bytes).sum(),
            naive_bytes,
        }
    }

    /// The plan's chunks as simulator DMA descriptors.
    pub fn chunk_copies(&self) -> Vec<ChunkCopy> {
        self.chunks
            .iter()
            .map(|&(src, dst, len)| ChunkCopy::new(src, dst, len))
            .collect()
    }

    /// Predicted cycles for the coalesced plan under the analytical
    /// framework: one chunked transaction plus subgroup copies.
    pub fn coalesced_cost(&self, params: &ModelParams) -> f64 {
        params.t_dma_l4_l2(self.unique_bytes)
            + self.subgroup_copies as f64 * params.t_op(VecOp::CpySubgrp)
    }

    /// Predicted cycles for the naive per-row strategy: one transaction
    /// (with its own initialization) per row, duplicates re-fetched.
    pub fn naive_cost(&self, params: &ModelParams) -> f64 {
        let avg = self.naive_bytes as f64 / self.naive_transactions.max(1) as f64;
        self.naive_transactions as f64 * params.t_dma_l4_l2(avg.round() as usize)
    }

    /// Speedup of the coalesced plan over the naive plan.
    pub fn predicted_speedup(&self, params: &ModelParams) -> f64 {
        self.naive_cost(params) / self.coalesced_cost(params).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_contiguous(n: usize, bytes: usize) -> Vec<RowTransfer> {
        (0..n)
            .map(|i| RowTransfer {
                src_off: i * bytes,
                bytes,
                dst_off: i * bytes,
            })
            .collect()
    }

    #[test]
    fn contiguous_rows_merge_into_one_chunk() {
        let plan = CoalescePlan::plan(&rows_contiguous(16, 2048));
        assert_eq!(plan.chunks.len(), 1);
        assert_eq!(plan.chunks[0], (0, 0, 16 * 2048));
        assert_eq!(plan.naive_transactions, 16);
        assert_eq!(plan.subgroup_copies, 0);
    }

    #[test]
    fn duplicated_rows_become_subgroup_copies() {
        // The Fig. 10 pattern: the same row of B fetched at every k
        // iteration.
        let rows: Vec<RowTransfer> = (0..8)
            .map(|i| RowTransfer {
                src_off: 0,
                bytes: 2048,
                dst_off: i * 2048,
            })
            .collect();
        let plan = CoalescePlan::plan(&rows);
        assert_eq!(plan.chunks.len(), 1);
        assert_eq!(plan.subgroup_copies, 7);
        assert_eq!(plan.unique_bytes, 2048);
        assert_eq!(plan.naive_bytes, 8 * 2048);
    }

    #[test]
    fn strided_rows_stay_separate_chunks() {
        let rows: Vec<RowTransfer> = (0..4)
            .map(|i| RowTransfer {
                src_off: i * 10_000,
                bytes: 2048,
                dst_off: i * 2048,
            })
            .collect();
        let plan = CoalescePlan::plan(&rows);
        assert_eq!(plan.chunks.len(), 4);
        // ... but still one transaction: initialization paid once.
        let p = ModelParams::leda_e();
        assert!(plan.coalesced_cost(&p) < plan.naive_cost(&p));
    }

    #[test]
    fn predicted_speedup_grows_with_row_count() {
        let p = ModelParams::leda_e();
        let few = CoalescePlan::plan(&rows_contiguous(4, 512)).predicted_speedup(&p);
        let many = CoalescePlan::plan(&rows_contiguous(64, 512)).predicted_speedup(&p);
        assert!(many > few);
        assert!(many > 2.0);
    }

    #[test]
    fn chunk_copies_roundtrip() {
        let plan = CoalescePlan::plan(&rows_contiguous(2, 512));
        let cc = plan.chunk_copies();
        assert_eq!(cc.len(), 1);
        assert_eq!(cc[0].bytes, 1024);
    }
}
